"""Store-level result caching, eviction/GC and campaign streaming."""

from __future__ import annotations

import json

import pytest

from repro.backends import Scenario, evaluate_scenario, evaluation_count
from repro.core import MachineConfig
from repro.engine import (
    CampaignResult,
    CampaignSpec,
    KernelSpec,
    ResultKey,
    TraceStore,
    kernel_trace_cached,
    kernel_trace_key,
    run_campaign,
)


def small_spec(backend: str = "untimed") -> CampaignSpec:
    return CampaignSpec(
        name="cache-spec",
        backend=backend,
        kernels=(KernelSpec("hydro_fragment", n=120),),
        pes=(1, 2, 4),
        page_sizes=(16, 32),
        cache_elems=(0, 64),
    )


class TestResultStore:
    def test_outcome_disk_round_trip_is_bit_exact(self, tmp_path):
        store = TraceStore(tmp_path)
        trace = kernel_trace_cached("hydro_fragment", n=120, store=store)
        scenario = Scenario(
            config=MachineConfig(n_pes=4, page_size=32), backend="timed"
        )
        outcome = evaluate_scenario(trace, scenario)
        key = ResultKey.make(kernel_trace_key("hydro_fragment", n=120), scenario)
        store.put_result(key, outcome)
        # A fresh store on the same root must replay from disk, exactly.
        fresh = TraceStore(tmp_path)
        loaded = fresh.lookup_result(key)
        assert loaded is not None
        assert loaded.identical(outcome)
        assert fresh.result_counters.disk_hits == 1

    def test_lookup_counts_misses(self, tmp_path):
        store = TraceStore(tmp_path)
        scenario = Scenario(config=MachineConfig(n_pes=2, page_size=32))
        key = ResultKey.make(kernel_trace_key("iccg", n=64), scenario)
        assert store.lookup_result(key) is None
        assert store.result_counters.misses == 1

    def test_get_result_computes_once(self, tmp_path):
        store = TraceStore(tmp_path)
        trace = kernel_trace_cached("hydro_fragment", n=120, store=store)
        scenario = Scenario(config=MachineConfig(n_pes=2, page_size=32))
        key = ResultKey.make(
            kernel_trace_key("hydro_fragment", n=120), scenario
        )
        calls = 0

        def compute():
            nonlocal calls
            calls += 1
            return evaluate_scenario(trace, scenario)

        first = store.get_result(key, compute)
        second = store.get_result(key, compute)
        assert calls == 1
        assert first.identical(second)

    def test_clear_drops_results(self, tmp_path):
        store = TraceStore(tmp_path)
        run_campaign(small_spec(), store=store, parallel=False)
        assert store.n_results() > 0
        store.clear()
        assert store.n_results() == 0

    def test_results_live_in_shards_and_index(self, tmp_path):
        store = TraceStore(tmp_path)
        run_campaign(small_spec(), store=store, parallel=False)
        data = json.loads((tmp_path / "index.json").read_text())
        results = {
            ref: e
            for ref, e in data["entries"].items()
            if e["kind"] == "result"
        }
        assert len(results) == small_spec().n_points
        for ref, entry in results.items():
            assert entry["path"].startswith(f"results/{ref[:2]}/")
            assert (tmp_path / entry["path"]).is_file()


class TestEvictionOrdering:
    def test_results_are_evicted_before_traces(self, tmp_path):
        """The GC contract: result entries (recomputable from a stored
        trace in milliseconds) always go before traces (an interpreter
        run each)."""
        store = TraceStore(tmp_path)
        run_campaign(small_spec(), store=store, parallel=False)
        n_traces, n_results = len(store), store.n_results()
        assert n_traces == 1 and n_results == small_spec().n_points
        trace_bytes = store.stats()["trace_bytes"]
        # Budget just below current total: evicts results one by one
        # (LRU first) and never touches the trace.
        report = store.gc(max_bytes=store.total_bytes() - 1)
        assert report.evicted_traces == 0
        assert report.evicted_results >= 1
        assert len(store) == n_traces
        # Budget below the trace alone: every result goes, then traces.
        report = store.gc(max_bytes=trace_bytes - 1)
        kinds = [kind for kind, _ref, _b in report.evicted]
        assert kinds == sorted(kinds, key=("result", "trace").index)
        assert store.n_results() == 0
        assert store.result_counters.evictions == n_results
        assert store.counters.evictions == n_traces

    def test_lru_results_are_evicted_first(self, tmp_path):
        store = TraceStore(tmp_path)
        run_campaign(small_spec(), store=store, parallel=False)
        # Touch the first point's entry so it is the most recent.
        spec = small_spec()
        kernel, scenario = next(iter(spec.points()))
        key = ResultKey(
            trace_digest=kernel_trace_key(kernel.name, n=kernel.n).digest,
            scenario_digest=scenario.digest,
            backend=scenario.backend,
        )
        assert store.lookup_result(key) is not None
        report = store.gc(max_bytes=store.total_bytes() - 1)
        evicted_refs = {ref for _k, ref, _b in report.evicted}
        assert key.ref not in evicted_refs

    def test_surviving_entries_still_hit_after_gc(self, tmp_path):
        """Acceptance: after GC under a budget, a second identical
        campaign reports a cache hit for every surviving entry and
        rebuilds exactly the evicted ones."""
        spec = small_spec()
        store = TraceStore(tmp_path)
        first = run_campaign(spec, store=store, parallel=False)
        # Keep roughly half the result bytes (plus the trace).
        budget = store.stats()["trace_bytes"] + (
            store.stats()["result_bytes"] // 2
        )
        report = store.gc(max_bytes=budget)
        survivors = store.n_results()
        assert 0 < survivors < spec.n_points
        fresh = TraceStore(tmp_path)
        again = run_campaign(spec, store=fresh, parallel=False)
        assert again.identical(first)
        assert fresh.result_counters.disk_hits == survivors
        assert fresh.result_counters.misses == report.evicted_results

    def test_gc_counts_ride_in_campaign_store_stats(self, tmp_path):
        store = TraceStore(tmp_path, max_bytes=10**12)
        result = run_campaign(small_spec(), store=store, parallel=False)
        stats = result.store_stats
        assert stats is not None
        assert stats["result_entries"] == small_spec().n_points
        assert stats["result_misses_total"] == small_spec().n_points
        assert json.loads(result.to_json())["store"]["policy"] == "lru"


class TestCampaignResultCache:
    @pytest.mark.parametrize("backend", ["untimed", "timed"])
    def test_rerun_skips_simulation_entirely(self, tmp_path, backend):
        """The satellite contract: an identical campaign re-run is
        served from the result cache — zero backend evaluations."""
        spec = small_spec(backend)
        store = TraceStore(tmp_path)
        first = run_campaign(spec, store=store, parallel=False)
        assert store.result_counters.misses == spec.n_points
        before = evaluation_count()
        again = run_campaign(spec, store=store, parallel=False)
        assert evaluation_count() == before
        assert again.identical(first)
        assert f"cache[{spec.n_points}/{spec.n_points}]" in again.executor

    def test_cache_survives_process_boundary_via_disk(self, tmp_path):
        """A fresh store object on the same root (what a new process
        sees) replays every record from disk."""
        spec = small_spec()
        first = run_campaign(spec, store=TraceStore(tmp_path), parallel=False)
        fresh = TraceStore(tmp_path)
        before = evaluation_count()
        again = run_campaign(spec, store=fresh, parallel=False)
        assert evaluation_count() == before
        assert fresh.result_counters.disk_hits == spec.n_points
        assert again.identical(first)

    def test_cache_distinguishes_backends(self, tmp_path):
        """Untimed results must never satisfy a timed campaign."""
        store = TraceStore(tmp_path)
        run_campaign(small_spec("untimed"), store=store, parallel=False)
        before = evaluation_count()
        timed = run_campaign(small_spec("timed"), store=store, parallel=False)
        assert evaluation_count() == before + timed.spec.n_points
        assert all(r.backend == "timed" for r in timed)

    def test_failed_construction_releases_claims(self, tmp_path):
        """A stream whose construction dies after claiming points must
        release them, or peers would block on events nobody sets."""
        from repro.engine.executor import CampaignStream

        spec = small_spec()
        store = TraceStore(tmp_path)

        def explode(*_a, **_k):
            raise RuntimeError("trace acquisition failed")

        import repro.engine.store as store_mod

        original = store_mod.kernel_trace_cached
        store_mod.kernel_trace_cached = explode
        try:
            with pytest.raises(RuntimeError, match="acquisition failed"):
                CampaignStream(spec, store=store, parallel=False)
        finally:
            store_mod.kernel_trace_cached = original
        # Every claim was abandoned: a fresh campaign claims them all
        # itself and runs normally (no deferred waits, no stalls).
        result = run_campaign(spec, store=store, parallel=False)
        assert len(result) == spec.n_points
        assert "shared[" not in result.executor

    def test_untagged_merge_spares_fresh_touch_files(self, tmp_path):
        """An admin merge (stats/gc CLI) must not swallow write-ahead
        files a live campaign is still appending to."""
        store = TraceStore(tmp_path)
        store.touch_dir.mkdir(parents=True)
        live = store.touch_dir / "deadbeef-123.jsonl"
        live.write_text('{"ref": "ab", "kind": "trace", "at": 1.0}\n')
        merged = store.merge_touches(stale_after_s=300.0)
        assert merged["files"] == 0
        assert live.is_file()  # left for its owner
        merged = store.merge_touches()  # a tagged/owner-style merge
        assert merged["files"] == 1
        assert not live.is_file()

    def test_parallel_workers_merge_counts_into_parent(self, tmp_path):
        """The satellite contract: hit and evaluation counts produced
        inside pool workers are folded back into the parent's counters
        (write-ahead touch files merged on campaign completion), not
        lost with the pool."""
        spec = small_spec()
        store = TraceStore(tmp_path)
        before_hits = store.counters.memory_hits
        before_evals = evaluation_count()
        run_campaign(
            spec, store=store, parallel=True, workers=2, use_cache=False
        )
        # One trace-access record per evaluated job, logged by whichever
        # process ran it, all merged home.
        assert (
            store.counters.memory_hits - before_hits == spec.n_points
        )
        # Worker-side evaluate_scenario calls joined the parent count.
        assert evaluation_count() - before_evals == spec.n_points
        # Nothing left pending: the write-ahead files were consumed.
        assert not list(store.touch_dir.glob("*.jsonl"))

    def test_use_cache_false_bypasses(self, tmp_path):
        spec = small_spec()
        store = TraceStore(tmp_path)
        run_campaign(spec, store=store, parallel=False)
        before = evaluation_count()
        result = run_campaign(
            spec, store=store, parallel=False, use_cache=False
        )
        assert evaluation_count() == before + spec.n_points
        assert result.executor == "serial"


class TestCampaignStreaming:
    def test_stream_yields_every_record_once(self, tmp_path):
        spec = small_spec()
        stream = run_campaign(
            spec, store=TraceStore(tmp_path), parallel=False, stream=True
        )
        records = list(stream)
        assert sorted(r.index for r in records) == list(range(spec.n_points))
        assert list(stream) == []  # single-pass

    def test_stream_result_matches_plain_run(self, tmp_path):
        spec = small_spec()
        store = TraceStore(tmp_path)
        plain = run_campaign(spec, store=store, parallel=False, use_cache=False)
        stream = run_campaign(
            spec, store=store, parallel=True, workers=2,
            stream=True, use_cache=False,
        )
        consumed = 0
        for record in stream:
            consumed += 1
            assert record.backend == "untimed"
        assert consumed == spec.n_points
        assert stream.result().identical(plain)

    def test_result_drains_unconsumed_stream(self, tmp_path):
        spec = small_spec()
        stream = run_campaign(
            spec, store=TraceStore(tmp_path), parallel=False, stream=True
        )
        iterator = iter(stream)
        next(iterator)  # consume one record only
        result = stream.result()
        assert isinstance(result, CampaignResult)
        assert len(result) == spec.n_points
        assert [r.index for r in result.records] == list(range(spec.n_points))

    def test_streamed_cache_hits_come_first(self, tmp_path):
        spec = small_spec()
        store = TraceStore(tmp_path)
        run_campaign(spec, store=store, parallel=False)
        stream = run_campaign(spec, store=store, parallel=False, stream=True)
        indices = [r.index for r in stream]
        assert indices == list(range(spec.n_points))  # all hits, in order
        assert f"cache[{spec.n_points}/{spec.n_points}]" in stream.executor

    def test_concurrent_streams_do_not_interfere(self, tmp_path):
        """Two in-flight streams must not share trace state: records
        from interleaved consumption equal isolated serial runs."""
        spec_a = small_spec()
        spec_b = CampaignSpec(
            name="other",
            kernels=(KernelSpec("first_diff", n=96),),
            pes=(1, 2),
            page_sizes=(16, 32),
            cache_elems=(0, 64),
        )
        store = TraceStore(tmp_path)
        baseline_a = run_campaign(spec_a, store=store, parallel=False, use_cache=False)
        baseline_b = run_campaign(spec_b, store=store, parallel=False, use_cache=False)
        stream_a = run_campaign(
            spec_a, store=store, parallel=False, stream=True, use_cache=False
        )
        stream_b = run_campaign(
            spec_b, store=store, parallel=False, stream=True, use_cache=False
        )
        iter_a, iter_b = iter(stream_a), iter(stream_b)
        # Interleave consumption of the two live streams.
        next(iter_a)
        next(iter_b)
        next(iter_a)
        assert stream_a.result().identical(baseline_a)
        assert stream_b.result().identical(baseline_b)

    def test_unconsumed_stream_starts_no_work(self, tmp_path):
        """Constructing a stream without iterating runs no evaluations
        (and therefore starts no pool)."""
        from repro.backends import evaluation_count

        spec = small_spec()
        before = evaluation_count()
        stream = run_campaign(
            spec, store=TraceStore(tmp_path), parallel=False,
            stream=True, use_cache=False,
        )
        assert evaluation_count() == before
        assert len(list(stream)) == spec.n_points

    def test_fully_cached_campaign_loads_no_traces(self, tmp_path):
        """A 100% cache-hit campaign needs only digests: a fresh store
        on the same root serves it without reading a single trace."""
        spec = small_spec()
        run_campaign(spec, store=TraceStore(tmp_path), parallel=False)
        fresh = TraceStore(tmp_path)
        result = run_campaign(spec, store=fresh, parallel=False)
        assert fresh.counters.total == 0  # no trace-store lookups at all
        assert result.trace_meta == {}
        assert len(result) == spec.n_points

    def test_timed_stream_parallel_identical_to_serial(self, tmp_path):
        spec = CampaignSpec(
            name="timed-stream",
            backend="timed",
            kernels=(KernelSpec("hydro_fragment", n=120),),
            pes=(2, 4),
            page_sizes=(32,),
            cache_elems=(64,),
            modes=("blocking", "multithreaded"),
        )
        store = TraceStore(tmp_path)
        serial = run_campaign(spec, store=store, parallel=False, use_cache=False)
        stream = run_campaign(
            spec, store=store, parallel=True, workers=2,
            stream=True, use_cache=False,
        )
        assert stream.result().identical(serial)
