"""Store-level result caching and campaign streaming."""

from __future__ import annotations

import pytest

from repro.backends import Scenario, evaluate_scenario, evaluation_count
from repro.core import MachineConfig
from repro.engine import (
    CampaignResult,
    CampaignSpec,
    KernelSpec,
    ResultKey,
    TraceStore,
    kernel_trace_cached,
    kernel_trace_key,
    run_campaign,
)


def small_spec(backend: str = "untimed") -> CampaignSpec:
    return CampaignSpec(
        name="cache-spec",
        backend=backend,
        kernels=(KernelSpec("hydro_fragment", n=120),),
        pes=(1, 2, 4),
        page_sizes=(16, 32),
        cache_elems=(0, 64),
    )


class TestResultStore:
    def test_outcome_disk_round_trip_is_bit_exact(self, tmp_path):
        store = TraceStore(tmp_path)
        trace = kernel_trace_cached("hydro_fragment", n=120, store=store)
        scenario = Scenario(
            config=MachineConfig(n_pes=4, page_size=32), backend="timed"
        )
        outcome = evaluate_scenario(trace, scenario)
        key = ResultKey.make(kernel_trace_key("hydro_fragment", n=120), scenario)
        store.put_result(key, outcome)
        # A fresh store on the same root must replay from disk, exactly.
        fresh = TraceStore(tmp_path)
        loaded = fresh.lookup_result(key)
        assert loaded is not None
        assert loaded.identical(outcome)
        assert fresh.result_counters.disk_hits == 1

    def test_lookup_counts_misses(self, tmp_path):
        store = TraceStore(tmp_path)
        scenario = Scenario(config=MachineConfig(n_pes=2, page_size=32))
        key = ResultKey.make(kernel_trace_key("iccg", n=64), scenario)
        assert store.lookup_result(key) is None
        assert store.result_counters.misses == 1

    def test_get_result_computes_once(self, tmp_path):
        store = TraceStore(tmp_path)
        trace = kernel_trace_cached("hydro_fragment", n=120, store=store)
        scenario = Scenario(config=MachineConfig(n_pes=2, page_size=32))
        key = ResultKey.make(
            kernel_trace_key("hydro_fragment", n=120), scenario
        )
        calls = 0

        def compute():
            nonlocal calls
            calls += 1
            return evaluate_scenario(trace, scenario)

        first = store.get_result(key, compute)
        second = store.get_result(key, compute)
        assert calls == 1
        assert first.identical(second)

    def test_clear_drops_results(self, tmp_path):
        store = TraceStore(tmp_path)
        run_campaign(small_spec(), store=store, parallel=False)
        assert store.n_results() > 0
        store.clear()
        assert store.n_results() == 0


class TestCampaignResultCache:
    @pytest.mark.parametrize("backend", ["untimed", "timed"])
    def test_rerun_skips_simulation_entirely(self, tmp_path, backend):
        """The satellite contract: an identical campaign re-run is
        served from the result cache — zero backend evaluations."""
        spec = small_spec(backend)
        store = TraceStore(tmp_path)
        first = run_campaign(spec, store=store, parallel=False)
        assert store.result_counters.misses == spec.n_points
        before = evaluation_count()
        again = run_campaign(spec, store=store, parallel=False)
        assert evaluation_count() == before
        assert again.identical(first)
        assert f"cache[{spec.n_points}/{spec.n_points}]" in again.executor

    def test_cache_survives_process_boundary_via_disk(self, tmp_path):
        """A fresh store object on the same root (what a new process
        sees) replays every record from disk."""
        spec = small_spec()
        first = run_campaign(spec, store=TraceStore(tmp_path), parallel=False)
        fresh = TraceStore(tmp_path)
        before = evaluation_count()
        again = run_campaign(spec, store=fresh, parallel=False)
        assert evaluation_count() == before
        assert fresh.result_counters.disk_hits == spec.n_points
        assert again.identical(first)

    def test_cache_distinguishes_backends(self, tmp_path):
        """Untimed results must never satisfy a timed campaign."""
        store = TraceStore(tmp_path)
        run_campaign(small_spec("untimed"), store=store, parallel=False)
        before = evaluation_count()
        timed = run_campaign(small_spec("timed"), store=store, parallel=False)
        assert evaluation_count() == before + timed.spec.n_points
        assert all(r.backend == "timed" for r in timed)

    def test_use_cache_false_bypasses(self, tmp_path):
        spec = small_spec()
        store = TraceStore(tmp_path)
        run_campaign(spec, store=store, parallel=False)
        before = evaluation_count()
        result = run_campaign(
            spec, store=store, parallel=False, use_cache=False
        )
        assert evaluation_count() == before + spec.n_points
        assert result.executor == "serial"


class TestCampaignStreaming:
    def test_stream_yields_every_record_once(self, tmp_path):
        spec = small_spec()
        stream = run_campaign(
            spec, store=TraceStore(tmp_path), parallel=False, stream=True
        )
        records = list(stream)
        assert sorted(r.index for r in records) == list(range(spec.n_points))
        assert list(stream) == []  # single-pass

    def test_stream_result_matches_plain_run(self, tmp_path):
        spec = small_spec()
        store = TraceStore(tmp_path)
        plain = run_campaign(spec, store=store, parallel=False, use_cache=False)
        stream = run_campaign(
            spec, store=store, parallel=True, workers=2,
            stream=True, use_cache=False,
        )
        consumed = 0
        for record in stream:
            consumed += 1
            assert record.backend == "untimed"
        assert consumed == spec.n_points
        assert stream.result().identical(plain)

    def test_result_drains_unconsumed_stream(self, tmp_path):
        spec = small_spec()
        stream = run_campaign(
            spec, store=TraceStore(tmp_path), parallel=False, stream=True
        )
        iterator = iter(stream)
        next(iterator)  # consume one record only
        result = stream.result()
        assert isinstance(result, CampaignResult)
        assert len(result) == spec.n_points
        assert [r.index for r in result.records] == list(range(spec.n_points))

    def test_streamed_cache_hits_come_first(self, tmp_path):
        spec = small_spec()
        store = TraceStore(tmp_path)
        run_campaign(spec, store=store, parallel=False)
        stream = run_campaign(spec, store=store, parallel=False, stream=True)
        indices = [r.index for r in stream]
        assert indices == list(range(spec.n_points))  # all hits, in order
        assert f"cache[{spec.n_points}/{spec.n_points}]" in stream.executor

    def test_concurrent_streams_do_not_interfere(self, tmp_path):
        """Two in-flight streams must not share trace state: records
        from interleaved consumption equal isolated serial runs."""
        spec_a = small_spec()
        spec_b = CampaignSpec(
            name="other",
            kernels=(KernelSpec("first_diff", n=96),),
            pes=(1, 2),
            page_sizes=(16, 32),
            cache_elems=(0, 64),
        )
        store = TraceStore(tmp_path)
        baseline_a = run_campaign(spec_a, store=store, parallel=False, use_cache=False)
        baseline_b = run_campaign(spec_b, store=store, parallel=False, use_cache=False)
        stream_a = run_campaign(
            spec_a, store=store, parallel=False, stream=True, use_cache=False
        )
        stream_b = run_campaign(
            spec_b, store=store, parallel=False, stream=True, use_cache=False
        )
        iter_a, iter_b = iter(stream_a), iter(stream_b)
        # Interleave consumption of the two live streams.
        next(iter_a)
        next(iter_b)
        next(iter_a)
        assert stream_a.result().identical(baseline_a)
        assert stream_b.result().identical(baseline_b)

    def test_unconsumed_stream_starts_no_work(self, tmp_path):
        """Constructing a stream without iterating runs no evaluations
        (and therefore starts no pool)."""
        from repro.backends import evaluation_count

        spec = small_spec()
        before = evaluation_count()
        stream = run_campaign(
            spec, store=TraceStore(tmp_path), parallel=False,
            stream=True, use_cache=False,
        )
        assert evaluation_count() == before
        assert len(list(stream)) == spec.n_points

    def test_fully_cached_campaign_loads_no_traces(self, tmp_path):
        """A 100% cache-hit campaign needs only digests: a fresh store
        on the same root serves it without reading a single trace."""
        spec = small_spec()
        run_campaign(spec, store=TraceStore(tmp_path), parallel=False)
        fresh = TraceStore(tmp_path)
        result = run_campaign(spec, store=fresh, parallel=False)
        assert fresh.counters.total == 0  # no trace-store lookups at all
        assert result.trace_meta == {}
        assert len(result) == spec.n_points

    def test_timed_stream_parallel_identical_to_serial(self, tmp_path):
        spec = CampaignSpec(
            name="timed-stream",
            backend="timed",
            kernels=(KernelSpec("hydro_fragment", n=120),),
            pes=(2, 4),
            page_sizes=(32,),
            cache_elems=(64,),
            modes=("blocking", "multithreaded"),
        )
        store = TraceStore(tmp_path)
        serial = run_campaign(spec, store=store, parallel=False, use_cache=False)
        stream = run_campaign(
            spec, store=store, parallel=True, workers=2,
            stream=True, use_cache=False,
        )
        assert stream.result().identical(serial)
