"""SingleAssignmentArray and the distributed heap."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import DataLayout, ModuloPartition
from repro.memory import (
    DistributedHeap,
    DoubleWriteError,
    NotOwnerError,
    SingleAssignmentArray,
    UndefinedElementError,
)


class TestSingleAssignmentArray:
    def test_write_read(self):
        arr = SingleAssignmentArray(4, name="X")
        arr[2] = 1.5
        assert arr[2] == 1.5

    def test_multi_dim(self):
        arr = SingleAssignmentArray((3, 4))
        arr[1, 2] = 9.0
        assert arr[1, 2] == 9.0

    def test_double_write(self):
        arr = SingleAssignmentArray(4, name="X")
        arr[0] = 1.0
        with pytest.raises(DoubleWriteError, match="single assignment violated"):
            arr[0] = 2.0

    def test_undefined_read(self):
        arr = SingleAssignmentArray(4, name="X")
        with pytest.raises(UndefinedElementError):
            _ = arr[1]

    def test_from_values_fully_defined(self):
        arr = SingleAssignmentArray.from_values(np.arange(6.0).reshape(2, 3))
        assert arr.defined_fraction() == 1.0
        assert arr[1, 2] == 5.0

    def test_to_numpy_requires_full(self):
        arr = SingleAssignmentArray(3)
        arr[0] = 1.0
        with pytest.raises(UndefinedElementError, match="2 element"):
            arr.to_numpy()
        partial = arr.to_numpy(require_full=False)
        assert partial[0] == 1.0 and np.isnan(partial[1])

    def test_reinitialize_allows_reuse(self):
        arr = SingleAssignmentArray(3)
        arr[0] = 1.0
        arr.reinitialize()
        arr[0] = 2.0
        assert arr[0] == 2.0

    def test_bad_shape(self):
        with pytest.raises(ValueError):
            SingleAssignmentArray((0,))

    def test_is_defined(self):
        arr = SingleAssignmentArray(3)
        arr[1] = 0.0
        assert arr.is_defined(1) and not arr.is_defined(0)


@pytest.fixture
def layout():
    return DataLayout(
        {"A": (100,), "B": (100,), "C": (100,)},
        page_size=32,
        n_pes=4,
        scheme=ModuloPartition(),
    )


class TestDistributedHeap:
    def test_hosts_round_robin(self, layout):
        heap = DistributedHeap(layout)
        assert sorted(heap.hosts.values()) == [0, 1, 2]

    def test_owner_checked_write(self, layout):
        heap = DistributedHeap(layout)
        owner = heap.owner_of("A", 0)
        heap.write(owner, "A", 0, 1.0)
        with pytest.raises(NotOwnerError, match="area of responsibility"):
            heap.write((owner + 1) % 4, "A", 1, 1.0)

    def test_deferred_read_through_heap(self, layout):
        heap = DistributedHeap(layout)
        seen = []
        assert not heap.read("A", 5, seen.append)
        heap.write(heap.owner_of("A", 5), "A", 5, 2.5)
        assert seen == [2.5]

    def test_initialize_whole_array(self, layout):
        heap = DistributedHeap(layout)
        heap.initialize("B", np.arange(100.0))
        assert heap.try_read("B", 99) == 99.0

    def test_page_values_partial_nan(self, layout):
        heap = DistributedHeap(layout)
        heap.write(heap.owner_of("A", 0), "A", 0, 7.0)
        page = heap.page_values("A", 0)
        assert page[0] == 7.0
        assert np.isnan(page[1:]).all()
        assert not heap.page_fully_defined("A", 0)

    def test_partial_page_size_matches_paper_example(self, layout):
        # PE 3 holds the 4-element partial page of each array (§2).
        heap = DistributedHeap(layout)
        assert heap.layout.subranges("A", 3) == [(96, 100)]
        assert len(heap.page_values("A", 3)) == 4

    def test_reinitialize(self, layout):
        heap = DistributedHeap(layout)
        heap.write(heap.owner_of("A", 0), "A", 0, 1.0)
        heap.reinitialize("A")
        assert heap.try_read("A", 0) is None
        heap.write(heap.owner_of("A", 0), "A", 0, 2.0)

    def test_usage_balanced(self, layout):
        heap = DistributedHeap(layout)
        usage = heap.usage_per_pe()
        # 3 arrays x 100 elements over 4 PEs: 32+32+32+4 pattern each.
        assert usage.sum() == 300
        assert usage.tolist() == [96, 96, 96, 12]
