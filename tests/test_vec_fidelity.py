"""Generative differential fidelity: ``untimed`` vs ``untimed-vec``.

The columnar replay engine earns its registration by being
indistinguishable from the scalar engine on *every counter it is
allowed to report*: the four access categories (per PE and per
array), page fetches and distinct fetched pages, per PE.  This suite
holds it to that contract generatively — hypothesis draws whole
synthetic traces and machine configurations from
``tests/strategies.py`` (kernels x cache policies x partitions x
reduction strategies, istructure-style future reads included) — plus
a grid of real paper kernels, the backend-level outcome comparison,
and the unsupported-scenario backstops.

Flipping the engine default later is a one-line change precisely
because this file exists; the nightly ``vec-fuzz`` CI job re-runs it
under the ``ci-deep`` hypothesis profile (see ``tests/conftest.py``).
"""

from __future__ import annotations

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.backends import (
    Scenario,
    UnsupportedScenarioError,
    evaluate_scenario,
    get_backend,
)
from repro.bench import kernel_trace
from repro.cache import make_cache
from repro.core import MachineConfig, named_scheme, simulate, simulate_vec
from repro.core.vec_simulator import (
    _count_misses_scalar,
    _count_misses_vec,
    _fifo_fixed_point,
)
from repro.ir import TraceBuilder
from repro.kernels import get_kernel
from strategies import CACHE_POLICIES, machine_configs, scenarios, traces

# Local floor of 200 generated examples; the nightly ci-deep profile
# raises settings.default.max_examples past it (profiles load before
# test modules import, so this picks the active profile up).
_EXAMPLES = max(200, settings.default.max_examples)


def assert_identical(scalar, vec) -> None:
    """Bit-exact equality of everything a SimResult reports."""
    assert np.array_equal(scalar.stats.counts, vec.stats.counts)
    assert np.array_equal(scalar.stats.by_array, vec.stats.by_array)
    assert np.array_equal(scalar.page_fetches, vec.page_fetches)
    assert np.array_equal(
        scalar.distinct_pages_fetched, vec.distinct_pages_fetched
    )


class TestGenerativeFidelity:
    @settings(max_examples=_EXAMPLES, deadline=None)
    @given(trace=traces(), config=machine_configs())
    def test_counters_bit_identical(self, trace, config):
        """The headline property: any trace, any configuration."""
        assert_identical(simulate(trace, config), simulate_vec(trace, config))

    @settings(max_examples=60, deadline=None)
    @given(trace=traces(), scenario=scenarios())
    def test_backend_outcomes_bit_identical(self, trace, scenario):
        """Same property one layer up, through the registry: stats,
        per-PE arrays and the shared metric columns all agree."""
        from dataclasses import replace

        scalar = evaluate_scenario(trace, scenario)
        vec = evaluate_scenario(
            trace, replace(scenario, backend="untimed-vec")
        )
        assert np.array_equal(scalar.stats.counts, vec.stats.counts)
        assert np.array_equal(scalar.stats.by_array, vec.stats.by_array)
        for name in ("page_fetches", "distinct_pages_fetched"):
            assert scalar.metrics[name] == vec.metrics[name]
            assert np.array_equal(scalar.per_pe[name], vec.per_pe[name])
        assert "vec_fallback_pes" in vec.metrics


KERNELS = (
    ("hydro_fragment", 120),
    ("first_diff", 120),
    ("inner_product", 120),
    ("pic_1d_fragment", 120),
    ("hydro_2d", 80),
    ("iccg", 32),
)


@pytest.fixture(scope="module")
def kernel_traces():
    out = {}
    for name, n in KERNELS:
        program, inputs = get_kernel(name).build(n=n)
        out[name] = kernel_trace(program, inputs)
    return out


class TestKernelGrid:
    """Real paper kernels across the policy/partition/strategy grid."""

    @pytest.mark.parametrize("policy", CACHE_POLICIES)
    @pytest.mark.parametrize("name", [k for k, _ in KERNELS])
    def test_kernels_bit_identical(self, kernel_traces, name, policy):
        trace = kernel_traces[name]
        for pes, cache, partition, strategy in itertools.product(
            (1, 4, 7), (0, 64, 256), ("modulo", "block-cyclic:2"),
            ("host", "subrange"),
        ):
            config = MachineConfig(
                n_pes=pes,
                page_size=16,
                cache_elems=cache,
                cache_policy=policy,
                partition=named_scheme(partition),
                reduction_strategy=strategy,
            )
            assert_identical(
                simulate(trace, config), simulate_vec(trace, config)
            )


def _thrashing_trace(page_size: int = 4):
    """Two full sweeps over the odd (nonlocal-to-PE-0) pages of one
    array: with a 2-page cache every revisit's window exceeds the
    capacity.  LRU decides by stack distance, FIFO by the
    eviction-epoch fixed point (pure thrash converges in one round);
    only the seeded-random policy must take the scalar fallback."""
    builder = TraceBuilder(["W", "X"], [page_size, 16 * page_size])
    for _ in range(2):
        for page in range(1, 16, 2):
            builder.record_read(1, page * page_size)
            builder.commit_instance(0, 0, 0, True)
    return builder.freeze()


class TestFallbackPaths:
    """The order-dependent spans really do take the scalar path —
    and still match it bit for bit."""

    @pytest.mark.parametrize("policy", CACHE_POLICIES)
    def test_thrashing_trace_identical(self, policy):
        trace = _thrashing_trace()
        config = MachineConfig(
            n_pes=2, page_size=4, cache_elems=8, cache_policy=policy
        )
        telemetry: dict[str, int] = {}
        assert_identical(
            simulate(trace, config),
            simulate_vec(trace, config, telemetry),
        )
        if policy == "random":  # the seeded RNG must replay in order
            assert telemetry["fallback_pes"] == 1
            assert telemetry["vectorised_pes"] == 0
        else:  # lru by stack distance, fifo by eviction epochs,
            # direct by slot hash — all closed-form
            assert telemetry["fallback_pes"] == 0
            assert telemetry["vectorised_pes"] == 1

    def test_trace_columnar_view_is_memoised(self):
        trace = _thrashing_trace()
        assert trace.columnar() is trace.columnar()
        assert trace.columnar().r_instance.shape == (trace.n_reads,)

    def test_empty_trace(self):
        trace = TraceBuilder(["A"], [8]).freeze()
        config = MachineConfig(n_pes=4, page_size=4)
        assert_identical(simulate(trace, config), simulate_vec(trace, config))


def _rle(keys: np.ndarray) -> np.ndarray:
    """Collapse equal-adjacent keys, as the replay engine does before
    handing run sequences to the miss counters."""
    change = np.empty(keys.size, dtype=bool)
    change[0] = True
    change[1:] = keys[1:] != keys[:-1]
    return keys[change]


class TestBatchedLruWindows:
    """The batched per-window distinct counts (which replaced a
    per-window ``np.unique`` Python loop that dominated short-trace
    replays with many modest windows — the hydro_2d small-n
    regression) must agree with the scalar cache replay exactly."""

    @settings(max_examples=_EXAMPLES, deadline=None)
    @given(
        keys=st.lists(st.integers(0, 12), min_size=1, max_size=300),
        capacity=st.integers(1, 8),
    )
    def test_window_counts_match_scalar(self, keys, capacity):
        run_keys = _rle(np.asarray(keys, dtype=np.int64))
        arrs = np.zeros_like(run_keys)
        misses, distinct = _count_misses_vec(
            run_keys, arrs, run_keys, "lru", capacity
        )
        assert distinct == np.unique(run_keys).size
        if misses is None:  # over budget: scalar replay, covered above
            return
        assert misses == _count_misses_scalar(
            arrs, run_keys, "lru", capacity
        )

    def test_window_heavy_sequence_stays_vectorised(self):
        """The regressing shape: thousands of undecided windows, each
        a handful of keys long.  The batched pass must decide them
        (no wholesale fallback) and match the scalar count."""
        rng = np.random.default_rng(7)
        run_keys = _rle(rng.integers(0, 10, size=4000))
        arrs = np.zeros_like(run_keys)
        capacity = 4
        misses, _ = _count_misses_vec(
            run_keys, arrs, run_keys, "lru", capacity
        )
        assert misses is not None
        assert misses == _count_misses_scalar(
            arrs, run_keys, "lru", capacity
        )

    def test_hydro_2d_bench_case_is_vectorised(self):
        """The BENCH_vec.json near-parity case: every PE's LRU walk
        must take the columnar path, bit-identically."""
        program, inputs = get_kernel("hydro_2d").build(n=40)
        trace = kernel_trace(program, inputs)
        config = MachineConfig(
            n_pes=16, page_size=32, cache_elems=256, cache_policy="lru"
        )
        telemetry: dict[str, int] = {}
        assert_identical(
            simulate(trace, config),
            simulate_vec(trace, config, telemetry),
        )
        assert telemetry["fallback_pes"] == 0
        assert telemetry["vectorised_pes"] > 0


class TestFifoFixedPoint:
    """The FIFO eviction-epoch fixed point is exact whenever it
    converges — any fixed point of the rule equals the true
    simulation (uniqueness by induction on position), so these
    properties hold by construction; what they actually guard is the
    plumbing around the iteration."""

    @settings(max_examples=_EXAMPLES, deadline=None)
    @given(
        keys=st.lists(st.integers(0, 12), min_size=1, max_size=300),
        capacity=st.integers(1, 8),
    )
    def test_fixed_point_matches_scalar(self, keys, capacity):
        run_keys = _rle(np.asarray(keys, dtype=np.int64))
        solved = _fifo_fixed_point(run_keys, capacity)
        if solved is None:  # budget exhausted: honest scalar fallback
            return
        miss, admit = solved
        cache = make_cache("fifo", capacity)
        truth = np.array(
            [not cache.access((0, int(k))) for k in run_keys.tolist()]
        )
        assert np.array_equal(miss, truth)
        # Inclusive admission epochs are consistent with the mask:
        # a miss is admitted at its own fill count.
        fills = np.cumsum(miss) - miss
        assert np.array_equal(admit[miss], fills[miss])

    @settings(max_examples=_EXAMPLES, deadline=None)
    @given(
        parts=st.lists(
            st.lists(st.integers(0, 9), min_size=1, max_size=80),
            min_size=1,
            max_size=4,
        ),
        capacity=st.integers(1, 6),
    )
    def test_segmented_streams_are_independent(self, parts, capacity):
        """One call over concatenated segments equals per-segment
        simulation from a cold cache each — segments never leak."""
        runs = [_rle(np.asarray(p, dtype=np.int64)) for p in parts]
        keys = np.concatenate(runs)
        seg = np.concatenate(
            [np.full(r.size, i, dtype=np.int64) for i, r in enumerate(runs)]
        )
        solved = _fifo_fixed_point(keys, capacity, seg=seg)
        if solved is None:
            return
        truth = []
        for r in runs:
            cache = make_cache("fifo", capacity)
            truth.extend(not cache.access((0, int(k))) for k in r.tolist())
        assert np.array_equal(solved[0], np.asarray(truth))

    @settings(max_examples=_EXAMPLES, deadline=None)
    @given(
        keys=st.lists(st.integers(0, 20), min_size=1, max_size=300),
        capacity=st.integers(1, 8),
    )
    def test_count_misses_vec_fifo_matches_scalar(self, keys, capacity):
        run_keys = _rle(np.asarray(keys, dtype=np.int64))
        arrs = np.zeros_like(run_keys)
        misses, distinct = _count_misses_vec(
            run_keys, arrs, run_keys, "fifo", capacity
        )
        assert distinct == np.unique(run_keys).size
        if misses is None:  # non-convergent within budget
            return
        assert misses == _count_misses_scalar(
            arrs, run_keys, "fifo", capacity
        )

    def test_over_capacity_thrash_converges_fast(self):
        """The bench shape: heavy over-capacity streams stabilise in
        a couple of rounds, so the closed form (not the fallback)
        must carry them."""
        rng = np.random.default_rng(11)
        run_keys = _rle(rng.integers(0, 50, size=5000).astype(np.int64))
        arrs = np.zeros_like(run_keys)
        misses, _ = _count_misses_vec(run_keys, arrs, run_keys, "fifo", 4)
        assert misses is not None
        assert misses == _count_misses_scalar(arrs, run_keys, "fifo", 4)

    def test_fifo_bench_case_is_vectorised(self):
        """The BENCH_vec.json FIFO row: every PE must take the
        columnar path now (`vec_fallback_pes == 0`), bit-identically
        — the acceptance criterion of the fast-path widening."""
        program, inputs = get_kernel("inner_product").build(n=4000)
        trace = kernel_trace(program, inputs)
        config = MachineConfig(
            n_pes=8, page_size=32, cache_elems=64, cache_policy="fifo"
        )
        telemetry: dict[str, int] = {}
        assert_identical(
            simulate(trace, config),
            simulate_vec(trace, config, telemetry),
        )
        assert telemetry["fallback_pes"] == 0
        assert telemetry["vectorised_pes"] > 0


class TestBackendEnvelope:
    def test_registered_with_schema(self):
        backend = get_backend("untimed-vec")
        assert backend.supported_reductions == ("host", "subrange")
        assert "vec_fallback_pes" in backend.result_schema
        assert backend.scenario_axes == ()

    def test_unknown_cache_policy_is_unsupported(self, hydro_trace):
        config = MachineConfig(n_pes=4, page_size=32, cache_elems=64)
        object.__setattr__(config, "cache_policy", "plru")
        with pytest.raises(UnsupportedScenarioError, match="plru"):
            evaluate_scenario(
                hydro_trace, Scenario(config=config, backend="untimed-vec")
            )

    def test_smuggled_reduction_strategy_is_unsupported(self, hydro_trace):
        config = MachineConfig(n_pes=4, page_size=32)
        object.__setattr__(config, "reduction_strategy", "tree")
        with pytest.raises(UnsupportedScenarioError, match="untimed-vec"):
            evaluate_scenario(
                hydro_trace, Scenario(config=config, backend="untimed-vec")
            )

    def test_profile_adds_vec_phase_columns(self, hydro_trace, monkeypatch):
        monkeypatch.setenv("REPRO_PROFILE", "1")
        # The random policy is the one remaining order-dependent
        # fallback (FIFO now solves in closed form), so it is what
        # exercises the fallback_scalar phase column.
        config = MachineConfig(
            n_pes=2, page_size=4, cache_elems=8, cache_policy="random"
        )
        outcome = evaluate_scenario(
            _thrashing_trace(), Scenario(config=config, backend="untimed-vec")
        )
        assert "profile_classify_vec_s" in outcome.metrics
        assert "profile_cache_sim_vec_s" in outcome.metrics
        assert "profile_fallback_scalar_s" in outcome.metrics
        assert outcome.metrics["vec_fallback_pes"] == 1.0
