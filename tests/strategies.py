"""Hypothesis strategies shared by the differential fidelity suites.

One generator instead of hand-picked cases: `machine_configs` and
`scenarios` draw valid points from the paper's parameter space
(PE counts x page sizes x cache sizes x replacement policies x
partitions x reduction strategies), and `traces` builds small
synthetic access traces directly through
:class:`~repro.ir.trace.TraceBuilder` — including subrange-reduction
folds (repeated writes to accumulator cells under ``reduction_mask``)
and, in the unconstrained mode, reads of elements only written later
in the trace (the istructure-defer pattern).

Two consumers with different validity envelopes share these:

* ``test_vec_fidelity.py`` (untimed vs untimed-vec) replays traces on
  order-free engines, so it draws ``traces()`` unconstrained;
* ``test_timed_fidelity.py`` replays on the discrete-event machine,
  where a read can park forever if its producer never completes, so it
  draws ``traces(timed_safe=True)``: single-assignment writes, and
  reads that touch only pure-input arrays or elements already written
  by an *earlier* instance — progress is then inductively guaranteed.
"""

from __future__ import annotations

from hypothesis import strategies as st

from repro.backends import Scenario
from repro.core import MachineConfig, named_scheme
from repro.ir.trace import Trace, TraceBuilder

__all__ = [
    "CACHE_POLICIES",
    "PARTITIONS",
    "REDUCTION_STRATEGIES",
    "cyclic_traces",
    "machine_configs",
    "scenarios",
    "sweep_traces",
    "traces",
]

PARTITIONS = ("modulo", "block", "block-cyclic:2", "block-cyclic:4")
CACHE_POLICIES = ("lru", "fifo", "random", "direct")
REDUCTION_STRATEGIES = ("host", "subrange")


@st.composite
def machine_configs(
    draw,
    *,
    cache_policies: tuple[str, ...] = CACHE_POLICIES,
    max_pes: int = 9,
) -> MachineConfig:
    """A valid machine configuration anywhere in the paper's space.

    Small cache sizes against small page sizes are deliberately
    over-represented: capacities of 1-4 pages force evictions, which
    is where replacement policies actually disagree.
    """
    return MachineConfig(
        n_pes=draw(st.integers(min_value=1, max_value=max_pes)),
        page_size=draw(st.sampled_from((2, 4, 8, 16, 32))),
        # 2-element caches (capacity 1 at the smallest page size) put
        # maximum eviction pressure on the FIFO/LRU closed forms.
        cache_elems=draw(st.sampled_from((0, 2, 4, 8, 16, 32, 64, 256))),
        cache_policy=draw(st.sampled_from(cache_policies)),
        partition=named_scheme(draw(st.sampled_from(PARTITIONS))),
        reduction_strategy=draw(st.sampled_from(REDUCTION_STRATEGIES)),
    )


@st.composite
def scenarios(
    draw,
    *,
    backend: str = "untimed",
    topologies: tuple[str, ...] = ("crossbar",),
    modes: tuple[str, ...] = ("blocking",),
    **config_kwargs,
) -> Scenario:
    """A valid :class:`Scenario` for ``backend`` (untimed by default)."""
    return Scenario(
        config=draw(machine_configs(**config_kwargs)),
        backend=backend,
        topology=draw(st.sampled_from(topologies)),
        mode=draw(st.sampled_from(modes)),
    )


@st.composite
def traces(
    draw,
    *,
    timed_safe: bool = False,
    max_arrays: int = 4,
    max_instances: int = 48,
    max_reads_per_instance: int = 4,
) -> Trace:
    """A small synthetic access trace (validated by ``freeze()``).

    Arrays split into *written* arrays and at least one pure-input
    array.  Roughly a quarter of instances are reduction folds into a
    small pool of accumulator cells, so the subrange strategy's
    placement and combine paths are always in play.  With
    ``timed_safe=True`` the trace additionally respects single
    assignment and never reads ahead of its producers (see module
    docstring); unconstrained traces freely read cells that a later
    instance writes — untimed replay ignores ordering, and the timed
    machine must never be handed such a trace.
    """
    n_arrays = draw(st.integers(min_value=2, max_value=max_arrays))
    sizes = tuple(
        draw(
            st.lists(
                st.integers(min_value=4, max_value=96),
                min_size=n_arrays,
                max_size=n_arrays,
            )
        )
    )
    names = tuple(f"A{i}" for i in range(n_arrays))
    builder = TraceBuilder(names, sizes)
    n_written = draw(st.integers(min_value=1, max_value=n_arrays - 1))
    written_ids = tuple(range(n_written))
    input_ids = tuple(range(n_written, n_arrays))

    # Accumulator pool for reduction folds (repeated writes are exempt
    # from single assignment via the reduction mask).
    accumulators: list[tuple[int, int]] = []
    for _ in range(draw(st.integers(min_value=0, max_value=3))):
        arr = draw(st.sampled_from(written_ids))
        accumulators.append((arr, draw(st.integers(0, sizes[arr] - 1))))
    accumulators = list(dict.fromkeys(accumulators))

    # Cells still writable under single assignment (timed_safe mode).
    free_cells = [
        (arr, flat)
        for arr in written_ids
        for flat in range(sizes[arr])
        if (arr, flat) not in accumulators
    ]
    completed: list[tuple[int, int]] = []

    n_instances = draw(st.integers(min_value=0, max_value=max_instances))
    for _ in range(n_instances):
        is_reduction = bool(accumulators) and draw(
            st.integers(min_value=0, max_value=3)
        ) == 0
        if is_reduction:
            w_arr, w_flat = draw(st.sampled_from(accumulators))
        elif timed_safe:
            if not free_cells:
                break  # every cell written once already
            w_arr, w_flat = free_cells.pop(
                draw(st.integers(0, len(free_cells) - 1))
            )
        else:
            w_arr = draw(st.sampled_from(written_ids))
            w_flat = draw(st.integers(0, sizes[w_arr] - 1))
        for _ in range(
            draw(st.integers(min_value=0, max_value=max_reads_per_instance))
        ):
            if timed_safe:
                if completed and draw(st.booleans()):
                    r_arr, r_flat = draw(st.sampled_from(completed))
                else:
                    r_arr = draw(st.sampled_from(input_ids))
                    r_flat = draw(st.integers(0, sizes[r_arr] - 1))
            else:
                # Unconstrained: any cell of any array, including ones
                # a later instance writes (istructure defers) or the
                # accumulators themselves.
                r_arr = draw(st.integers(0, n_arrays - 1))
                r_flat = draw(st.integers(0, sizes[r_arr] - 1))
            builder.record_read(r_arr, r_flat)
        builder.commit_instance(
            draw(st.integers(min_value=0, max_value=3)),
            w_arr,
            w_flat,
            is_reduction,
        )
        if not is_reduction:
            completed.append((w_arr, w_flat))
    return builder.freeze()


@st.composite
def sweep_traces(
    draw,
    *,
    min_sweeps: int = 2,
    max_sweeps: int = 3,
) -> Trace:
    """Back-to-back affine sweeps over one shared input array.

    The shape the warm-cache super-op closed form exists for: each
    sweep compacts into its own super-op, and every sweep after the
    first enters with the cache still warm from the previous one —
    touching overlapping pages of the same array, so the seeded
    reuse-distance decisions (LRU) and the warm-FIFO wall are both
    genuinely exercised.  Read streams are shifted well away from the
    write stream so a healthy share of reads is *nonlocal* under any
    partition (local reads never reach a cache), and a second read
    stream shifted further still produces long-gap page revisits
    within one op — the FIFO eviction-epoch arithmetic's home turf.
    ``min_sweeps=1`` gives the cold single-op variant.
    """
    n = draw(st.integers(min_value=96, max_value=224))
    n_sweeps = draw(st.integers(min_sweeps, max_sweeps))
    shift = draw(st.sampled_from((8, 24, 40)))
    extra = draw(st.sampled_from((0, 16, 32, 48)))
    offsets = [0] + ([extra] if extra else [])
    src_size = n + shift + extra + 4
    builder = TraceBuilder(("out", "src"), (n + 4, src_size))
    for _ in range(n_sweeps):
        for i in range(n):
            for off in offsets:
                builder.record_read(1, i + shift + off)
            builder.commit_instance(0, 0, i, False)
    return builder.freeze()


@st.composite
def cyclic_traces(
    draw,
    *,
    timed_safe: bool = False,
    max_blocks: int = 3,
    max_body: int = 4,
    max_trips: int = 10,
    max_reads_per_stmt: int = 3,
) -> Trace:
    """A trace with genuine cyclic structure for the super-op wall.

    Interleaves irregular "noise" instances with up to ``max_blocks``
    cyclic blocks: a body of affine statements (write and read
    addresses advancing by a per-stream stride every trip, strides 0
    and negative included) repeated 2..``max_trips`` times, optionally
    with an *imperfect tail* (a partial final trip) and *nested*
    bodies (an inner pattern repeated inside each trip, so the
    smallest period is a proper divisor of the block).  Bodies may
    fold into reduction accumulators (stride-0 exempt writes).  The
    detector must collapse whatever it can prove and leave the rest in
    the residual; the fidelity suites only require that replaying the
    compacted view is bit-identical, never that detection succeeds.

    ``timed_safe=True`` mirrors :func:`traces`: single-assignment
    writes (each block's write run comes from a bump allocator, so
    runs never collide) and reads that touch only pure-input arrays or
    cells some earlier instance completed.
    """
    n_written = draw(st.integers(min_value=1, max_value=2))
    n_inputs = draw(st.integers(min_value=1, max_value=2))
    n_arrays = n_written + n_inputs
    sizes = [
        draw(st.integers(min_value=64, max_value=192))
        for _ in range(n_arrays)
    ]
    names = tuple(f"A{i}" for i in range(n_arrays))
    builder = TraceBuilder(names, sizes)
    written_ids = tuple(range(n_written))
    input_ids = tuple(range(n_written, n_arrays))

    # Bump allocator per written array: timed_safe write runs reserve
    # fresh cells so single assignment holds by construction.
    next_free = [0] * n_arrays
    accumulators: list[tuple[int, int]] = []
    for _ in range(draw(st.integers(min_value=0, max_value=2))):
        arr = draw(st.sampled_from(written_ids))
        if next_free[arr] < sizes[arr]:
            accumulators.append((arr, next_free[arr]))
            next_free[arr] += 1
    completed: list[tuple[int, int]] = []

    def emit_noise() -> None:
        for _ in range(draw(st.integers(min_value=0, max_value=3))):
            is_reduction = bool(accumulators) and draw(st.booleans())
            if is_reduction:
                w_arr, w_flat = draw(st.sampled_from(accumulators))
            else:
                w_arr = draw(st.sampled_from(written_ids))
                if timed_safe:
                    if next_free[w_arr] >= sizes[w_arr]:
                        continue
                    w_flat = next_free[w_arr]
                    next_free[w_arr] += 1
                else:
                    w_flat = draw(st.integers(0, sizes[w_arr] - 1))
            for _ in range(draw(st.integers(0, max_reads_per_stmt))):
                if timed_safe:
                    if completed and draw(st.booleans()):
                        r_arr, r_flat = draw(st.sampled_from(completed))
                    else:
                        r_arr = draw(st.sampled_from(input_ids))
                        r_flat = draw(st.integers(0, sizes[r_arr] - 1))
                else:
                    r_arr = draw(st.integers(0, n_arrays - 1))
                    r_flat = draw(st.integers(0, sizes[r_arr] - 1))
                builder.record_read(r_arr, r_flat)
            builder.commit_instance(
                draw(st.integers(0, 3)), w_arr, w_flat, is_reduction
            )
            if not is_reduction:
                completed.append((w_arr, w_flat))

    def affine_read(trips: int) -> tuple[int, int, int]:
        """(arr, base, stride) staying in bounds for ``trips`` trips."""
        if timed_safe:
            if completed and draw(st.booleans()):
                arr, flat = draw(st.sampled_from(completed))
                return arr, flat, 0  # stride-0 re-read of a done cell
            arr = draw(st.sampled_from(input_ids))
        else:
            arr = draw(st.integers(0, n_arrays - 1))
        stride = draw(st.sampled_from((-2, -1, 0, 1, 2)))
        span = abs(stride) * (trips - 1)
        if span >= sizes[arr]:
            stride, span = 0, 0
        base = draw(st.integers(0, sizes[arr] - 1 - span))
        if stride < 0:
            base += span
        return arr, base, stride

    emit_noise()
    for _ in range(draw(st.integers(min_value=1, max_value=max_blocks))):
        trips = draw(st.integers(min_value=2, max_value=max_trips))
        inner_len = draw(st.integers(min_value=1, max_value=max_body))
        # Nested cycles: each trip may repeat the inner body, so the
        # block's smallest provable period divides its full length.
        inner_reps = draw(st.sampled_from((1, 1, 2, 3)))
        body = []  # (stmt, is_reduction, w_arr, w_base, w_stride, reads)
        aborted = False
        for _ in range(inner_len):
            stmt = draw(st.integers(0, 3))
            is_reduction = bool(accumulators) and (
                draw(st.integers(0, 3)) == 0
            )
            n_slots = (trips + 1) * inner_reps  # +1 trip of tail headroom
            if is_reduction:
                w_arr, w_base = draw(st.sampled_from(accumulators))
                w_stride = 0
            elif timed_safe:
                w_arr = draw(st.sampled_from(written_ids))
                if next_free[w_arr] + n_slots > sizes[w_arr]:
                    aborted = True
                    break
                w_base = next_free[w_arr]
                next_free[w_arr] += n_slots
                w_stride = 1
            else:
                w_arr = draw(st.sampled_from(written_ids))
                w_stride = draw(st.sampled_from((-2, -1, 0, 1, 2)))
                span = abs(w_stride) * (n_slots - 1)
                if span >= sizes[w_arr]:
                    w_stride, span = 0, 0
                w_base = draw(st.integers(0, sizes[w_arr] - 1 - span))
                if w_stride < 0:
                    w_base += span
            reads = tuple(
                affine_read(n_slots)
                for _ in range(draw(st.integers(0, max_reads_per_stmt)))
            )
            body.append((stmt, is_reduction, w_arr, w_base, w_stride, reads))
        if aborted or not body:
            continue
        # The body cycles; a timed_safe statement's streams advance on
        # every emission of that statement (single assignment), while
        # an unconstrained body advances once per *outer* trip — its
        # inner repetitions replay the same addresses verbatim, which
        # is exactly the nested-cycle shape (smallest provable period
        # = the inner body, a proper divisor of the block).
        tail = draw(st.integers(0, len(body) * inner_reps - 1))
        total = trips * len(body) * inner_reps + tail
        slot_counts = [0] * len(body)
        for emitted in range(total):
            step = emitted // (len(body) * inner_reps)
            pos = emitted % len(body)
            stmt, is_red, w_arr, w_base, w_stride, reads = body[pos]
            offset = (
                slot_counts[pos] if (timed_safe and not is_red) else step
            )
            for r_arr, r_base, r_stride in reads:
                builder.record_read(r_arr, r_base + r_stride * offset)
            w_flat = w_base + w_stride * offset
            builder.commit_instance(stmt, w_arr, w_flat, is_red)
            slot_counts[pos] += 1
            if not is_red:
                completed.append((w_arr, w_flat))
        emit_noise()
    return builder.freeze()
