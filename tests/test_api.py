"""Public API surface: exports, docstrings, version."""

from __future__ import annotations

import importlib

import pytest

import repro

PACKAGES = [
    "repro",
    "repro.ir",
    "repro.memory",
    "repro.core",
    "repro.cache",
    "repro.machine",
    "repro.hostproto",
    "repro.kernels",
    "repro.bench",
]


@pytest.mark.parametrize("name", PACKAGES)
def test_all_exports_resolve(name):
    module = importlib.import_module(name)
    assert module.__doc__, f"{name} lacks a module docstring"
    for symbol in getattr(module, "__all__", []):
        assert hasattr(module, symbol), f"{name}.__all__ lists missing {symbol}"


@pytest.mark.parametrize("name", PACKAGES)
def test_public_classes_documented(name):
    module = importlib.import_module(name)
    for symbol in getattr(module, "__all__", []):
        obj = getattr(module, symbol)
        if isinstance(obj, type):
            assert obj.__doc__, f"{name}.{symbol} lacks a docstring"


def test_version():
    assert repro.__version__ == "1.0.0"


def test_top_level_quickstart_names():
    # The names used in the README quickstart must exist at top level.
    for symbol in (
        "MachineConfig",
        "simulate",
        "simulate_program",
        "classify",
        "run_program",
        "ProgramBuilder",
        "SingleAssignmentArray",
    ):
        assert hasattr(repro, symbol)


def test_no_accidental_numpy_export():
    assert "np" not in repro.__all__
    assert "numpy" not in repro.__all__
