"""Vectorised trace generation must be bit-identical to the interpreter."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ir import ProgramBuilder, Ref, run_program
from repro.ir.vectorize import _assert_equal, fast_trace, try_vectorize_trace
from repro.kernels import get_kernel

AFFINE_SIZES = {
    "hydro_fragment": 257,    # odd sizes exercise partial pages
    "iccg": 128,
    "inner_product": 200,
    "tri_diagonal": 201,
    "linear_recurrence": 48,
    "equation_of_state": 200,
    "adi": 50,
    "integrate_predictors": 211,
    "diff_predictors": 97,
    "first_sum": 200,
    "first_diff": 200,
    "pic_1d_fragment": 200,
    "hydro_2d": 37,
    "matmul": 9,
    "planckian": 150,
}
INDIRECT = {"pic_1d", "pic_2d"}


@pytest.mark.parametrize("name", sorted(AFFINE_SIZES))
def test_bit_identical_to_interpreter(name):
    kernel = get_kernel(name)
    program, inputs = kernel.build(n=AFFINE_SIZES[name])
    vectorised = try_vectorize_trace(program)
    assert vectorised is not None, f"{name} unexpectedly fell back"
    reference = run_program(program, inputs).trace
    _assert_equal(vectorised, reference)


@pytest.mark.parametrize("name", sorted(INDIRECT))
def test_indirect_kernels_fall_back(name):
    kernel = get_kernel(name)
    program, inputs = kernel.build(n=100)
    assert try_vectorize_trace(program) is None
    # fast_trace silently falls back to the interpreter.
    trace = fast_trace(program, inputs)
    reference = run_program(program, inputs).trace
    _assert_equal(trace, reference)


def test_fast_trace_validate_mode():
    program, inputs = get_kernel("first_diff").build(n=100)
    fast_trace(program, inputs, validate=True)  # must not raise


class TestStructuralCases:
    def test_statements_interleaved_in_shared_body(self):
        """A, B inside the same loop alternate per iteration."""
        b = ProgramBuilder("interleave")
        X = b.output("X", (8,))
        Y = b.output("Y", (8,))
        A = b.input("A", (8,))
        k = b.index("k")
        with b.loop(k, 0, 7):
            b.assign(X[k], Ref("A", [k]))
            b.assign(Y[k], Ref("A", [k]) * 2)
        program = b.build()
        vec = try_vectorize_trace(program)
        ref = run_program(program, {"A": np.zeros(8)}).trace
        _assert_equal(vec, ref)
        assert list(vec.stmt_ids[:4]) == [0, 1, 0, 1]

    def test_statement_before_and_after_inner_loop(self):
        """prologue; inner loop; epilogue — the GLRE shape."""
        b = ProgramBuilder("sandwich")
        X = b.output("X", (6, 6))
        i, k = b.index("i"), b.index("k")
        with b.loop(i, 1, 5):
            b.assign(X[i, 0], 1.0)
            with b.loop(k, 1, i - 1):
                b.assign(X[i, k], Ref("X", [i, k - 1]) + 1)
            b.assign(X[i, 5], Ref("X", [i, 0]))
        program = b.build()
        vec = try_vectorize_trace(program)
        ref = run_program(program, {}).trace
        _assert_equal(vec, ref)

    def test_negative_step_loop(self):
        b = ProgramBuilder("reverse")
        X = b.output("X", (10,))
        Y = b.input("Y", (10,))
        k = b.index("k")
        with b.loop(k, 9, 0, step=-1):
            b.assign(X[k], Ref("Y", [k]))
        program = b.build()
        vec = try_vectorize_trace(program)
        ref = run_program(program, {"Y": np.zeros(10)}).trace
        _assert_equal(vec, ref)
        assert vec.w_flat[0] == 9  # order preserved, descending

    def test_step_two_loop(self):
        b = ProgramBuilder("stride2")
        X = b.output("X", (16,))
        Y = b.input("Y", (17,))
        k = b.index("k")
        with b.loop(k, 0, 14, step=2):
            b.assign(X[k], Ref("Y", [k + 1]))
        program = b.build()
        vec = try_vectorize_trace(program)
        ref = run_program(program, {"Y": np.zeros(17)}).trace
        _assert_equal(vec, ref)

    def test_empty_iteration_space(self):
        b = ProgramBuilder("empty")
        X = b.output("X", (4,))
        k = b.index("k")
        with b.loop(k, 3, 1):
            b.assign(X[k], 1.0)
        vec = try_vectorize_trace(b.build())
        assert vec is not None
        assert vec.n_instances == 0

    def test_out_of_bounds_raises(self):
        b = ProgramBuilder("oob")
        X = b.output("X", (4,))
        Y = b.input("Y", (4,))
        k = b.index("k")
        with b.loop(k, 0, 3):
            b.assign(X[k], Ref("Y", [k + 1]))
        with pytest.raises(IndexError, match="out of bounds"):
            try_vectorize_trace(b.build())

    def test_reduction_mask_preserved(self):
        program, _ = get_kernel("inner_product").build(n=50)
        vec = try_vectorize_trace(program)
        assert vec.reduction_mask.all()

    def test_rational_coefficient_subscript(self):
        """The ICCG form (k - c)/2 has coefficient 1/2."""
        b = ProgramBuilder("half")
        from repro.ir import Var

        X = b.output("X", (8,))
        Y = b.input("Y", (16,))
        k = b.index("k")
        with b.loop(k, 0, 14, step=2):
            b.assign(X[Var("k") / 2], Ref("Y", [k]))
        program = b.build()
        vec = try_vectorize_trace(program)
        ref = run_program(program, {"Y": np.zeros(16)}).trace
        _assert_equal(vec, ref)


class TestSimulationEquivalence:
    def test_sweep_results_identical_between_paths(self):
        """The harness may use either path; counters must agree."""
        from repro.core import MachineConfig, simulate

        program, inputs = get_kernel("hydro_2d").build(n=40)
        vec = try_vectorize_trace(program)
        ref = run_program(program, inputs).trace
        for pes in (4, 16):
            cfg = MachineConfig(n_pes=pes, page_size=32, cache_elems=256)
            a = simulate(vec, cfg)
            b = simulate(ref, cfg)
            assert np.array_equal(a.stats.counts, b.stats.counts)


class TestPackingProperties:
    """Generative packing properties.

    `_affine_programs` draws random members of the affine fragment —
    one- or two-level nests, forward/strided/reversed outer loops,
    sibling statements sharing a body, recurrences and reductions —
    all with subscripts sized to stay in bounds.  Two properties hold
    for every draw: the packed trace round-trips bit-identically
    through the interpreter, and packed groups never reorder dependent
    ops (every read of a written cell sees its writer at an earlier
    instance; the generated programs are single-assignment and only
    read cells their source order has already written).
    """

    @staticmethod
    def _draw_program(draw):
        ni = draw(st.integers(min_value=2, max_value=6))
        nk = draw(st.integers(min_value=1, max_value=4))
        b = ProgramBuilder("generated")
        X = b.output("X", (ni,))
        Y = b.output("Y", (ni * nk,))
        Z = b.output("Z", (ni,))
        S = b.output("S", (1,))
        A = b.input("A", (2 * ni,))
        B = b.input("B", (nk,))
        i, k = b.index("i"), b.index("k")

        prologue = draw(st.booleans())
        inner = draw(st.booleans())
        recurrence = inner and draw(st.booleans())
        reduce_ = draw(st.booleans())
        epilogue = draw(st.booleans()) or not (prologue or inner or reduce_)
        stride = draw(st.sampled_from((1, 2)))
        offset = draw(st.integers(min_value=0, max_value=1))
        reversed_outer = draw(st.booleans())
        outer_step = draw(st.sampled_from((1, 2)))

        if reversed_outer:
            outer = b.loop(i, ni - 1, 0, step=-1)
        else:
            outer = b.loop(i, 0, ni - 1, step=outer_step)
        with outer:
            if prologue:
                b.assign(X[i], Ref("A", [stride * i + offset]))
            if recurrence:
                b.assign(Y[i * nk], Ref("A", [i]))  # seed the recurrence
            if inner:
                with b.loop(k, 1 if recurrence else 0, nk - 1):
                    rhs = Ref("B", [k])
                    if recurrence:
                        rhs = rhs + Ref("Y", [i * nk + k - 1])
                    elif prologue and draw(st.booleans()):
                        rhs = rhs + Ref("X", [i])  # same-iteration read
                    b.assign(Y[i * nk + k], rhs)
            if reduce_:
                b.reduce(S[0], Ref("A", [i]))
            if epilogue:
                src = Ref("X", [i]) if prologue else Ref("A", [i])
                b.assign(Z[i], src)
        program = b.build()
        inputs = {"A": np.zeros(2 * ni), "B": np.zeros(nk)}
        return program, inputs

    @staticmethod
    def _assert_no_dependent_reorder(trace):
        """Every read of a written cell comes after its (sole) writer."""
        writer: dict[tuple[int, int], int] = {}
        for j in range(trace.n_instances):
            if not trace.reduction_mask[j]:
                cell = (int(trace.w_arr[j]), int(trace.w_flat[j]))
                assert cell not in writer, "single assignment violated"
                writer[cell] = j
        for j in range(trace.n_instances):
            for r in range(int(trace.r_ptr[j]), int(trace.r_ptr[j + 1])):
                cell = (int(trace.r_arr[r]), int(trace.r_flat[r]))
                if cell in writer:
                    assert writer[cell] < j, (
                        f"instance {j} reads {cell} before its writer "
                        f"{writer[cell]}"
                    )

    @settings(max_examples=100)
    @given(data=st.data())
    def test_roundtrip_bit_identical(self, data):
        program, inputs = self._draw_program(data.draw)
        vec = try_vectorize_trace(program)
        assert vec is not None, "generated program left the affine fragment"
        _assert_equal(vec, run_program(program, inputs).trace)

    @settings(max_examples=100)
    @given(data=st.data())
    def test_packed_groups_never_reorder_dependent_ops(self, data):
        program, _ = self._draw_program(data.draw)
        vec = try_vectorize_trace(program)
        self._assert_no_dependent_reorder(vec)
        # The interpreter's trace passes the same check: packing
        # preserved, not merely coincidentally consistent.
        ref = run_program(
            program, {n: np.zeros(s.size) for n, s in program.arrays.items()
                      if n in {"A", "B"}}
        ).trace
        self._assert_no_dependent_reorder(ref)
