"""Page caches: policy behaviour, capacity, statistics (§4)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.cache import (
    DirectMappedCache,
    FIFOCache,
    LRUCache,
    RandomCache,
    make_cache,
    POLICIES,
)

ALL_POLICIES = sorted(POLICIES)


class TestFactory:
    def test_make_cache(self):
        for policy in ALL_POLICIES:
            cache = make_cache(policy, 4)
            assert cache.policy == policy
            assert cache.capacity_pages == 4

    def test_unknown_policy(self):
        with pytest.raises(KeyError, match="unknown cache policy"):
            make_cache("plru", 4)

    def test_negative_capacity(self):
        with pytest.raises(ValueError):
            LRUCache(-1)


class TestCommonBehaviour:
    @pytest.mark.parametrize("policy", ALL_POLICIES)
    def test_miss_then_hit(self, policy):
        cache = make_cache(policy, 4)
        assert not cache.access((0, 1))  # cold miss
        assert cache.access((0, 1))      # now resident

    @pytest.mark.parametrize("policy", ALL_POLICIES)
    def test_zero_capacity_never_hits(self, policy):
        cache = make_cache(policy, 0)
        for _ in range(3):
            assert not cache.access((0, 1))
        assert len(cache) == 0
        assert not cache.contains((0, 1))

    @pytest.mark.parametrize("policy", ALL_POLICIES)
    def test_capacity_never_exceeded(self, policy):
        cache = make_cache(policy, 3)
        for page in range(10):
            cache.access((0, page))
            assert len(cache) <= 3

    @pytest.mark.parametrize("policy", ALL_POLICIES)
    def test_stats_accumulate(self, policy):
        cache = make_cache(policy, 2)
        cache.access((0, 0))
        cache.access((0, 0))
        cache.access((0, 1))
        assert cache.stats.hits == 1
        assert cache.stats.misses == 2
        assert cache.stats.accesses == 3
        assert 0 < cache.stats.hit_rate < 1

    @pytest.mark.parametrize("policy", ALL_POLICIES)
    def test_clear(self, policy):
        cache = make_cache(policy, 2)
        cache.access((0, 0))
        cache.clear()
        assert len(cache) == 0
        assert not cache.contains((0, 0))

    @pytest.mark.parametrize("policy", ALL_POLICIES)
    def test_invalidate(self, policy):
        cache = make_cache(policy, 4)
        cache.access((0, 0))
        assert cache.invalidate((0, 0))
        assert not cache.contains((0, 0))
        assert not cache.invalidate((0, 0))  # already gone

    @pytest.mark.parametrize("policy", ALL_POLICIES)
    def test_distinct_arrays_distinct_keys(self, policy):
        cache = make_cache(policy, 4)
        cache.access((0, 5))
        assert not cache.access((1, 5))  # same page number, other array


class TestLRU:
    def test_evicts_least_recent(self):
        cache = LRUCache(2)
        cache.access((0, 0))
        cache.access((0, 1))
        cache.access((0, 0))  # refresh page 0
        cache.access((0, 2))  # evicts page 1
        assert cache.contains((0, 0))
        assert not cache.contains((0, 1))

    def test_eviction_count(self):
        cache = LRUCache(1)
        cache.access((0, 0))
        cache.access((0, 1))
        assert cache.stats.evictions == 1


class TestFIFO:
    def test_hits_do_not_refresh(self):
        cache = FIFOCache(2)
        cache.access((0, 0))
        cache.access((0, 1))
        cache.access((0, 0))  # hit, but insertion order unchanged
        cache.access((0, 2))  # evicts page 0 (oldest insertion)
        assert not cache.contains((0, 0))
        assert cache.contains((0, 1))


class TestRandom:
    def test_deterministic_given_seed(self):
        def run():
            cache = RandomCache(2, seed=42)
            outcomes = []
            for page in [0, 1, 2, 0, 1, 2, 0]:
                outcomes.append(cache.access((0, page)))
            return outcomes

        assert run() == run()

    def test_invalidate_keeps_slots_consistent(self):
        cache = RandomCache(3)
        for page in range(3):
            cache.access((0, page))
        cache.invalidate((0, 1))
        assert len(cache) == 2
        assert cache.contains((0, 0)) and cache.contains((0, 2))


class TestDirectMapped:
    def test_conflict_eviction(self):
        cache = DirectMappedCache(4)
        cache.access((0, 0))
        cache.access((0, 4))  # same slot (page % 4)
        assert not cache.contains((0, 0))
        assert cache.contains((0, 4))

    def test_non_conflicting_coexist(self):
        cache = DirectMappedCache(4)
        cache.access((0, 0))
        cache.access((0, 1))
        assert cache.contains((0, 0)) and cache.contains((0, 1))


class LRUModel:
    """Reference model: Python list, most recent last."""

    def __init__(self, capacity):
        self.capacity = capacity
        self.items = []

    def access(self, key):
        if key in self.items:
            self.items.remove(key)
            self.items.append(key)
            return True
        if self.capacity:
            if len(self.items) >= self.capacity:
                self.items.pop(0)
            self.items.append(key)
        return False


@settings(max_examples=60)
@given(
    capacity=st.integers(1, 6),
    keys=st.lists(st.tuples(st.integers(0, 2), st.integers(0, 9)), max_size=80),
)
def test_lru_matches_reference_model(capacity, keys):
    cache = LRUCache(capacity)
    model = LRUModel(capacity)
    for key in keys:
        assert cache.access(key) == model.access(key)
        assert sorted(cache.resident_keys()) == sorted(model.items)


@settings(max_examples=40)
@given(
    capacity=st.integers(0, 6),
    keys=st.lists(st.tuples(st.integers(0, 2), st.integers(0, 9)), max_size=60),
    policy=st.sampled_from(ALL_POLICIES),
)
def test_contains_consistent_with_access(capacity, keys, policy):
    """After any access sequence: contains(k) iff a re-access would hit."""
    cache = make_cache(policy, capacity)
    for key in keys:
        cache.access(key)
    for key in set(keys):
        resident = cache.contains(key)
        assert resident == (key in cache.resident_keys())
