"""Remaining behaviours: convenience wrappers, summaries, interactions."""

from __future__ import annotations

import numpy as np

from repro import MachineConfig, simulate_program
from repro.bench import kernel_trace
from repro.core import (
    AccessClass,
    BlockPartition,
    advise,
    simulate,
)
from repro.kernels import build_strided, get_kernel
from repro.machine import EmulatedMachine


class TestSimulateProgram:
    def test_wrapper_matches_two_step_path(self, hydro_small):
        program, inputs = hydro_small
        cfg = MachineConfig(n_pes=8, page_size=32, cache_elems=256)
        direct = simulate_program(program, inputs, cfg)
        trace = kernel_trace(program, inputs)
        staged = simulate(trace, cfg)
        assert np.array_equal(direct.stats.counts, staged.stats.counts)


class TestSimResultSummary:
    def test_summary_fields(self, hydro_trace):
        cfg = MachineConfig(n_pes=8, page_size=32, cache_elems=256)
        summary = simulate(hydro_trace, cfg).summary()
        assert summary["writes"] == hydro_trace.n_instances
        assert summary["page_fetches"] >= 0
        assert "remote_read_pct" in summary

    def test_repr_mentions_config(self, hydro_trace):
        cfg = MachineConfig(n_pes=8, page_size=32)
        text = repr(simulate(hydro_trace, cfg))
        assert "pes=8" in text and "ps=32" in text

    def test_distinct_pages_bounded_by_fetches(self, hydro_trace):
        cfg = MachineConfig(n_pes=8, page_size=32, cache_elems=256)
        result = simulate(hydro_trace, cfg)
        assert (result.distinct_pages_fetched <= result.page_fetches).all()

    def test_distinct_pages_counted_without_cache(self, hydro_trace):
        cfg = MachineConfig(n_pes=8, page_size=32, cache_elems=0)
        result = simulate(hydro_trace, cfg)
        assert (
            result.distinct_pages_fetched.sum()
            <= result.stats.remote_reads
        )
        assert result.distinct_pages_fetched.sum() > 0


class TestEmulatorWithBlockPartition:
    def test_values_scheme_independent(self):
        program, inputs = get_kernel("first_sum").build(n=120)
        modulo = EmulatedMachine(
            program, inputs, n_pes=4, page_size=16
        ).run()
        block = EmulatedMachine(
            program, inputs, n_pes=4, page_size=16, scheme=BlockPartition()
        ).run()
        mask = modulo.defined["X"]
        np.testing.assert_array_equal(block.defined["X"], mask)
        np.testing.assert_allclose(
            block.values["X"][mask], modulo.values["X"][mask]
        )

    def test_block_partition_changes_communication_not_work(self):
        program, inputs = get_kernel("hydro_fragment").build(n=256)
        modulo = EmulatedMachine(
            program, inputs, n_pes=4, page_size=16
        ).run()
        block = EmulatedMachine(
            program, inputs, n_pes=4, page_size=16, scheme=BlockPartition()
        ).run()
        assert modulo.total_instances == block.total_instances
        # The division scheme localises the skew traffic (§9).
        assert block.remote_reads.sum() < modulo.remote_reads.sum()


class TestAdvisorOnSynthetics:
    def test_strided_loop_gets_nonmodulo_or_bigger_pages(self):
        program, inputs = build_strided(n=256, stride=8)
        advice = advise(program, inputs)
        baseline = advice.improvement_over("modulo", 32)
        assert baseline >= 0.0
        assert advice.access_class is AccessClass.CYCLIC


class TestConfigEdgeCases:
    def test_more_pes_than_pages(self, hydro_trace):
        # 1000 elements / ps 256 = 4 pages on 64 PEs: most PEs idle.
        result = simulate(
            hydro_trace, MachineConfig(n_pes=64, page_size=256, cache_elems=0)
        )
        busy = (result.stats.per_pe(1) + result.stats.counts[:, 0]) > 0
        assert busy.sum() <= 8
        assert result.stats.total_reads == hydro_trace.n_reads

    def test_page_size_one(self, matched_program):
        program, inputs = matched_program
        result = simulate_program(
            program, inputs, MachineConfig(n_pes=4, page_size=1, cache_elems=0)
        )
        # Pages coincide with elements; matched stays fully local.
        assert result.stats.remote_reads == 0

    def test_huge_cache_eliminates_repeat_fetches(self):
        program, inputs = get_kernel("linear_recurrence").build(n=96)
        trace = kernel_trace(program, inputs)
        huge = simulate(
            trace,
            MachineConfig(n_pes=8, page_size=32, cache_elems=1 << 20),
        )
        # With an unbounded cache every remote read is a cold miss.
        assert huge.stats.remote_reads == huge.distinct_pages_fetched.sum()
