"""I-structure memory semantics (§3): write-once, deferred reads."""

from __future__ import annotations

import numpy as np
import pytest

from repro.memory import CellState, DoubleWriteError, IStructureMemory


class TestWriteOnce:
    def test_write_then_read(self):
        bank = IStructureMemory(4)
        bank.write(0, 1.5)
        seen = []
        assert bank.read(0, seen.append)
        assert seen == [1.5]

    def test_double_write_raises(self):
        bank = IStructureMemory(4, name="A")
        bank.write(1, 1.0)
        with pytest.raises(DoubleWriteError, match="written twice"):
            bank.write(1, 2.0)

    def test_states(self):
        bank = IStructureMemory(2)
        assert bank.state(0) == CellState.UNDEFINED
        bank.write(0, 0.0)
        assert bank.state(0) == CellState.DEFINED
        assert bank.is_defined(0) and not bank.is_defined(1)

    def test_bounds(self):
        bank = IStructureMemory(2)
        with pytest.raises(IndexError):
            bank.write(2, 0.0)
        with pytest.raises(IndexError):
            bank.read(-1, lambda v: None)

    def test_needs_cells(self):
        with pytest.raises(ValueError):
            IStructureMemory(0)


class TestDeferredReads:
    def test_read_before_write_defers(self):
        bank = IStructureMemory(4)
        seen = []
        assert not bank.read(2, seen.append)
        assert seen == []
        assert bank.pending_reads(2) == 1
        released = bank.write(2, 7.0)
        assert released == 1
        assert seen == [7.0]
        assert bank.pending_reads(2) == 0

    def test_multiple_waiters_released_in_order(self):
        bank = IStructureMemory(4)
        seen = []
        bank.read(0, lambda v: seen.append(("a", v)))
        bank.read(0, lambda v: seen.append(("b", v)))
        bank.write(0, 3.0)
        assert seen == [("a", 3.0), ("b", 3.0)]

    def test_waiters_fire_exactly_once(self):
        bank = IStructureMemory(4)
        count = [0]
        bank.read(0, lambda v: count.__setitem__(0, count[0] + 1))
        bank.write(0, 1.0)
        assert count[0] == 1
        # A later read is immediate, not a replay of the waiter.
        bank.read(0, lambda v: None)
        assert count[0] == 1

    def test_try_read(self):
        bank = IStructureMemory(4)
        assert bank.try_read(0) is None
        bank.write(0, 2.0)
        assert bank.try_read(0) == 2.0

    def test_stats(self):
        bank = IStructureMemory(4)
        bank.read(0, lambda v: None)   # deferred
        bank.write(0, 1.0)
        bank.read(0, lambda v: None)   # immediate
        assert bank.stats.deferred_reads == 1
        assert bank.stats.resumed_reads == 1
        assert bank.stats.immediate_reads == 1
        assert bank.stats.total_reads == 2


class TestInitialisation:
    def test_bulk_initialize(self):
        bank = IStructureMemory(4)
        bank.initialize(np.arange(4.0))
        assert bank.defined_count() == 4
        assert bank.try_read(3) == 3.0

    def test_masked_initialize(self):
        bank = IStructureMemory(4)
        mask = np.array([True, False, True, False])
        bank.initialize(np.arange(4.0), mask)
        assert bank.defined_count() == 2
        assert bank.try_read(1) is None

    def test_initialize_overlap_rejected(self):
        bank = IStructureMemory(4)
        bank.write(0, 1.0)
        with pytest.raises(DoubleWriteError, match="overlaps"):
            bank.initialize(np.zeros(4))

    def test_initialize_length_checked(self):
        bank = IStructureMemory(4)
        with pytest.raises(ValueError):
            bank.initialize(np.zeros(3))

    def test_initialize_with_pending_reads_rejected(self):
        bank = IStructureMemory(4)
        bank.read(0, lambda v: None)
        with pytest.raises(RuntimeError, match="pending"):
            bank.initialize(np.zeros(4))

    def test_reset_clears_everything(self):
        bank = IStructureMemory(4)
        bank.initialize(np.ones(4))
        bank.reset()
        assert bank.defined_count() == 0
        bank.write(0, 2.0)  # write-once applies to the new generation

    def test_reset_with_pending_reads_rejected(self):
        bank = IStructureMemory(4)
        bank.read(0, lambda v: None)
        with pytest.raises(RuntimeError, match="pending"):
            bank.reset()

    def test_values_and_mask_views_are_copies(self):
        bank = IStructureMemory(4)
        bank.write(0, 5.0)
        values = bank.values()
        values[0] = -1
        assert bank.try_read(0) == 5.0
