"""Event queue and the timed machine simulator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench import kernel_trace
from repro.core import MachineConfig, simulate
from repro.machine import CostModel, EventQueue, TimedMachine, serial_time
from repro.kernels import get_kernel


class TestEventQueue:
    def test_fires_in_time_order(self):
        q = EventQueue()
        seen = []
        q.schedule(3.0, lambda: seen.append("c"))
        q.schedule(1.0, lambda: seen.append("a"))
        q.schedule(2.0, lambda: seen.append("b"))
        assert q.run() == 3.0
        assert seen == ["a", "b", "c"]

    def test_ties_break_by_scheduling_order(self):
        q = EventQueue()
        seen = []
        q.schedule(1.0, lambda: seen.append("first"))
        q.schedule(1.0, lambda: seen.append("second"))
        q.run()
        assert seen == ["first", "second"]

    def test_schedule_during_run(self):
        q = EventQueue()
        seen = []

        def cascade():
            seen.append("outer")
            q.schedule_after(1.0, lambda: seen.append("inner"))

        q.schedule(1.0, cascade)
        assert q.run() == 2.0
        assert seen == ["outer", "inner"]

    def test_past_scheduling_rejected(self):
        q = EventQueue()
        q.schedule(5.0, lambda: q.schedule(1.0, lambda: None))
        with pytest.raises(ValueError, match="past"):
            q.run()

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            EventQueue().schedule_after(-1.0, lambda: None)

    def test_event_budget(self):
        q = EventQueue()

        def forever():
            q.schedule_after(1.0, forever)

        q.schedule(0.0, forever)
        with pytest.raises(RuntimeError, match="budget"):
            q.run(max_events=10)


@pytest.fixture(scope="module")
def hydro():
    program, inputs = get_kernel("hydro_fragment").build(n=400)
    return kernel_trace(program, inputs)


@pytest.fixture(scope="module")
def iccg():
    program, inputs = get_kernel("iccg").build(n=256)
    return kernel_trace(program, inputs)


class TestBlockingMode:
    def test_counters_match_untimed_simulator(self, hydro):
        """In blocking mode the per-PE access order equals the untimed
        simulator's, so all four counters must agree exactly."""
        for pes in (1, 4, 8):
            for cache in (0, 256):
                cfg = MachineConfig(n_pes=pes, page_size=32, cache_elems=cache)
                timed = TimedMachine(hydro, cfg, mode="blocking").run()
                untimed = simulate(hydro, cfg)
                assert np.array_equal(timed.stats.counts, untimed.stats.counts)

    def test_iccg_deferred_free_in_trace_order(self, iccg):
        """ICCG consumers always follow their producers in trace order,
        and blocking execution preserves enough of it that the run
        completes (no deadlock) with bounded deferred reads."""
        cfg = MachineConfig(n_pes=8, page_size=32, cache_elems=256)
        result = TimedMachine(iccg, cfg, mode="blocking").run()
        assert result.finish_time > 0

    def test_single_pe_equals_serial_time(self, hydro):
        cfg = MachineConfig(n_pes=1, page_size=32, cache_elems=0)
        result = TimedMachine(hydro, cfg).run()
        assert result.finish_time == pytest.approx(serial_time(hydro))

    def test_speedup_bounded_by_pe_count(self, hydro):
        for pes in (2, 4, 8, 16):
            cfg = MachineConfig(n_pes=pes, page_size=32, cache_elems=256)
            result = TimedMachine(hydro, cfg).run()
            s = result.speedup(serial_time(hydro))
            assert 0 < s <= pes + 1e-9

    def test_deterministic(self, hydro):
        cfg = MachineConfig(n_pes=8, page_size=32, cache_elems=256)
        a = TimedMachine(hydro, cfg).run()
        b = TimedMachine(hydro, cfg).run()
        assert a.finish_time == b.finish_time
        assert a.messages == b.messages


class TestMultithreadedMode:
    def test_latency_hiding_speeds_things_up(self, hydro):
        """'During this remote read the requesting PE can perform other
        useful work' (§4): with expensive fetches, parking the waiting
        iteration must not be slower than stalling."""
        costs = CostModel(request_overhead=200.0, reply_overhead=200.0)
        cfg = MachineConfig(n_pes=8, page_size=32, cache_elems=0)
        blocking = TimedMachine(hydro, cfg, costs=costs, mode="blocking").run()
        threaded = TimedMachine(
            hydro, cfg, costs=costs, mode="multithreaded", max_outstanding=8
        ).run()
        assert threaded.finish_time < blocking.finish_time

    def test_read_conservation(self, hydro):
        cfg = MachineConfig(n_pes=8, page_size=32, cache_elems=256)
        result = TimedMachine(hydro, cfg, mode="multithreaded").run()
        assert result.stats.total_reads == hydro.n_reads

    def test_invalid_mode(self, hydro):
        with pytest.raises(ValueError, match="unknown mode"):
            TimedMachine(
                hydro, MachineConfig(n_pes=2, page_size=32), mode="simd"
            )


class TestNetworkEffects:
    def test_more_hops_cost_more_time(self, hydro):
        cfg = MachineConfig(n_pes=16, page_size=32, cache_elems=0)
        crossbar = TimedMachine(hydro, cfg, topology="crossbar").run()
        ring = TimedMachine(hydro, cfg, topology="ring").run()
        mesh = TimedMachine(hydro, cfg, topology="mesh2d").run()
        # Modulo partitioning maps neighbouring pages to neighbouring
        # PEs, so the skewed loop's traffic is nearest-neighbour: a ring
        # serves it as well as a full crossbar...
        assert ring.total_hops == crossbar.total_hops
        assert ring.finish_time == crossbar.finish_time
        # ...while a 2-D mesh folds the ring and pays extra hops.
        assert mesh.total_hops > crossbar.total_hops
        assert mesh.finish_time > crossbar.finish_time

    def test_messages_counted_both_directions(self, hydro):
        cfg = MachineConfig(n_pes=4, page_size=32, cache_elems=256)
        result = TimedMachine(hydro, cfg).run()
        # request + reply per remote read
        assert result.messages == 2 * result.stats.remote_reads

    def test_topology_size_mismatch(self, hydro):
        from repro.machine import Ring

        with pytest.raises(ValueError, match="disagrees"):
            TimedMachine(
                hydro, MachineConfig(n_pes=4, page_size=32), topology=Ring(8)
            )

    def test_contention_reported(self, hydro):
        cfg = MachineConfig(n_pes=8, page_size=32, cache_elems=0)
        result = TimedMachine(hydro, cfg, topology="mesh2d").run()
        assert result.contention["messages_per_link_max"] >= 1.0


class TestCostModel:
    def test_latencies(self):
        costs = CostModel(
            request_overhead=10, per_hop=2, reply_overhead=20, per_element=0.5
        )
        assert costs.request_latency(3) == 16
        assert costs.reply_latency(3, 32) == 20 + 6 + 16

    def test_stall_time_accumulates_in_blocking_mode(self, hydro):
        cfg = MachineConfig(n_pes=8, page_size=32, cache_elems=0)
        result = TimedMachine(hydro, cfg, mode="blocking").run()
        assert result.stall_time.sum() > 0
