"""Synthetic workloads: closed-form validation of the simulator.

The skewed generator's remote fractions have exact closed forms
(§7.1.2's boundary arithmetic); checking the simulator against them is
the strongest correctness statement available for the core counters.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.bench import kernel_trace
from repro.core import AccessClass, MachineConfig, classify, simulate
from repro.kernels import (
    build_matched,
    build_permutation,
    build_skewed,
    build_strided,
    expected_skew_remote_fraction,
)
from repro.ir import run_program


class TestValues:
    def test_matched_values(self):
        program, inputs = build_matched(n=128)
        res = run_program(program, inputs)
        np.testing.assert_allclose(
            res.values["X"], inputs["A"] + inputs["B"]
        )

    def test_skewed_values(self):
        program, inputs = build_skewed(n=128, skew=5)
        res = run_program(program, inputs)
        np.testing.assert_allclose(res.values["X"], 2.0 * inputs["Y"][5:133])

    def test_strided_values(self):
        program, inputs = build_strided(n=32, stride=4, offset=1)
        res = run_program(program, inputs)
        expected = inputs["Y"][0:31, :] + 1.0
        np.testing.assert_allclose(res.values["X"][1:32, :], expected)

    def test_permutation_values(self):
        program, inputs = build_permutation(n=128)
        res = run_program(program, inputs)
        perm = inputs["P"].astype(int)
        np.testing.assert_allclose(res.values["X"], inputs["Y"][perm])

    def test_skew_must_be_nonnegative(self):
        with pytest.raises(ValueError):
            build_skewed(skew=-1)

    def test_stride_must_exceed_one(self):
        with pytest.raises(ValueError):
            build_strided(stride=1)


class TestClosedFormSkew:
    """Simulator counters == exact boundary arithmetic."""

    @pytest.mark.parametrize("skew", [0, 1, 2, 5, 11, 31, 32, 33, 100])
    @pytest.mark.parametrize("cached", [False, True])
    def test_exact_remote_fraction(self, skew, cached):
        n, ps = 1024, 32
        program, inputs = build_skewed(n=n, skew=skew)
        trace = kernel_trace(program, inputs)
        cfg = MachineConfig(
            n_pes=16, page_size=ps, cache_elems=256 if cached else 0
        )
        result = simulate(trace, cfg)
        expected = expected_skew_remote_fraction(n, skew, ps, cached)
        measured = result.stats.remote_reads / trace.n_reads
        assert measured == pytest.approx(expected), (skew, cached)

    def test_paper_skew_one_cache_no_effect(self):
        """§7.1.2: 'For a skew of one, the cache has no effect'."""
        n, ps = 1024, 32
        program, inputs = build_skewed(n=n, skew=1)
        trace = kernel_trace(program, inputs)
        cfg = MachineConfig(n_pes=16, page_size=ps, cache_elems=256)
        cached = simulate(trace, cfg).stats.remote_reads
        plain = simulate(trace, cfg.without_cache()).stats.remote_reads
        assert cached == plain

    def test_paper_skew_two_cache_saves_one(self):
        """'for a skew of two, the cache saves one remote access'
        (per crossed page)."""
        n, ps = 1024, 32
        program, inputs = build_skewed(n=n, skew=2)
        trace = kernel_trace(program, inputs)
        cfg = MachineConfig(n_pes=16, page_size=ps, cache_elems=256)
        cached = simulate(trace, cfg).stats.remote_reads
        plain = simulate(trace, cfg.without_cache()).stats.remote_reads
        crossed_pages = plain // 2  # 2 boundary reads per crossed page
        assert plain - cached == crossed_pages

    @settings(max_examples=25, deadline=None)
    @given(skew=st.integers(0, 96), cached=st.booleans())
    def test_closed_form_property(self, skew, cached):
        n, ps = 512, 32
        program, inputs = build_skewed(n=n, skew=skew)
        trace = kernel_trace(program, inputs)
        cfg = MachineConfig(
            n_pes=8, page_size=ps, cache_elems=256 if cached else 0
        )
        # Guard: the closed form assumes remote pages don't wrap back
        # onto the reader (skew < (n_pes - 1) * ps).
        if skew >= (cfg.n_pes - 1) * ps:
            return
        result = simulate(trace, cfg)
        expected = expected_skew_remote_fraction(n, skew, ps, cached)
        assert result.stats.remote_reads / trace.n_reads == pytest.approx(
            expected
        )


class TestClassifierOnSynthetics:
    def test_matched(self):
        program, inputs = build_matched(n=512)
        assert classify(program, inputs).final is AccessClass.MATCHED

    def test_skewed(self):
        program, inputs = build_skewed(n=512, skew=7)
        assert classify(program, inputs).final is AccessClass.SKEWED

    def test_strided_is_cyclic(self):
        program, inputs = build_strided(n=400, stride=8)
        assert classify(program, inputs).final is AccessClass.CYCLIC

    def test_permutation_is_random(self):
        program, inputs = build_permutation(n=2048)
        result = classify(program, inputs)
        assert result.static.hint is AccessClass.RANDOM
        assert result.final is AccessClass.RANDOM
