"""Automatic SA conversion by array expansion (§5 translator)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ir import (
    ProgramBuilder,
    Ref,
    TranslationError,
    auto_convert,
    check_program,
    expand_array,
    expansion_cost,
    run_program,
)


def accumulator_program(n=8):
    """DO k = 1..n: S(j) = S(j) + Y(k)  for j in 0..2  (violates SA)."""
    b = ProgramBuilder("acc")
    S = b.inout("S", (3,))
    Y = b.input("Y", (n + 1,))
    j, k = b.index("j"), b.index("k")
    with b.loop(j, 0, 2):
        with b.loop(k, 1, n):
            b.assign(S[j], Ref("S", [j]) + Ref("Y", [k]))
    return b.build()


def consumer_program(n=8):
    """An accumulation whose final value feeds a later loop."""
    b = ProgramBuilder("acc_consume")
    S = b.inout("S", (1,))
    Y = b.input("Y", (n + 1,))
    Z = b.output("Z", (4,))
    k = b.index("k")
    with b.loop(k, 1, n):
        b.assign(S[0], Ref("S", [0]) + Ref("Y", [k]))
    with b.loop(k, 0, 3):
        b.assign(Z[k], Ref("S", [0]) * 2)
    return b.build()


class TestExpansionCost:
    def test_cost_is_tripcount_times_size(self):
        plan = expansion_cost(accumulator_program(), "S", "k")
        assert plan.trip_count == 8
        assert plan.extra_elements == 8 * 3
        assert plan.new_name == "S__sa"


class TestExpandArray:
    def test_expansion_restores_single_assignment(self):
        converted = expand_array(accumulator_program(), "S", "k")
        assert not check_program(converted).violations()

    def test_expanded_values_match_unchecked_original(self):
        n = 8
        original = accumulator_program(n)
        converted = expand_array(original, "S", "k")
        rng = np.random.default_rng(3)
        y = rng.random(n + 1)
        seeds = np.zeros(3)
        plain = run_program(original, {"S": seeds, "Y": y}, check_sa=False)
        expanded_seed = np.full((n + 1, 3), np.nan)
        expanded_seed[0] = seeds
        conv = run_program(converted, {"S__sa": expanded_seed, "Y": y})
        assert np.allclose(conv.values["S__sa"][n], plain.values["S"])

    def test_final_version_feeds_consumers(self):
        n = 8
        converted = expand_array(consumer_program(n), "S", "k")
        rng = np.random.default_rng(4)
        y = rng.random(n + 1)
        seed = np.full((n + 1, 1), np.nan)
        seed[0, 0] = 0.0
        res = run_program(converted, {"S__sa": seed, "Y": y})
        expected = 2 * y[1 : n + 1].sum()
        assert np.allclose(res.values["Z"], expected)

    def test_rejects_differing_read_subscripts(self):
        b = ProgramBuilder("bad")
        S = b.inout("S", (4,))
        k = b.index("k")
        with b.loop(k, 1, 3):
            b.assign(S[0], Ref("S", [1]) + 1)  # reads a different cell
        with pytest.raises(TranslationError, match="different subscripts"):
            expand_array(b.build(), "S", "k")

    def test_rejects_nonunit_step(self):
        b = ProgramBuilder("bad")
        S = b.inout("S", (1,))
        k = b.index("k")
        with b.loop(k, 0, 8, step=2):
            b.assign(S[0], Ref("S", [0]) + 1)
        with pytest.raises(TranslationError, match="unit step"):
            expand_array(b.build(), "S", "k")

    def test_rejects_target_already_varying(self):
        b = ProgramBuilder("vary")
        S = b.inout("S", (10,))
        k = b.index("k")
        with b.loop(k, 1, 8):
            b.assign(S[k], Ref("S", [k]) + 1)
        with pytest.raises(TranslationError, match="nothing to expand"):
            expand_array(b.build(), "S", "k")

    def test_unknown_loop_var(self):
        with pytest.raises(KeyError):
            expand_array(accumulator_program(), "S", "zz")

    def test_unknown_array(self):
        with pytest.raises(KeyError):
            expand_array(accumulator_program(), "Q", "k")


class TestAutoConvert:
    def test_converges_on_accumulator(self):
        converted = auto_convert(accumulator_program())
        assert not check_program(converted).violations()
        assert "S__sa" in converted.arrays

    def test_already_clean_program_unchanged(self, matched_program):
        program, _ = matched_program
        assert auto_convert(program) is program

    def test_memory_growth_reported(self):
        original = accumulator_program()
        converted = auto_convert(original)
        grown = converted.total_elements()
        assert grown > original.total_elements()
