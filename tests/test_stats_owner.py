"""Access statistics, load-balance metrics, and index screening."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    AccessKind,
    AccessStats,
    DataLayout,
    LoadBalance,
    screen_iterations,
)


class TestAccessStats:
    def test_add_and_totals(self):
        stats = AccessStats(2)
        stats.add(0, AccessKind.WRITE, 3)
        stats.add(0, AccessKind.LOCAL_READ, 5)
        stats.add(1, AccessKind.REMOTE_READ, 2)
        stats.add(1, AccessKind.CACHED_READ, 1)
        assert stats.writes == 3
        assert stats.total_reads == 8
        assert stats.remote_read_pct == pytest.approx(25.0)
        assert stats.cached_read_pct == pytest.approx(12.5)

    def test_no_reads_pct_zero(self):
        stats = AccessStats(2)
        assert stats.remote_read_pct == 0.0

    def test_add_vector_shape_check(self):
        stats = AccessStats(2)
        with pytest.raises(ValueError):
            stats.add_vector(AccessKind.WRITE, np.zeros(3, dtype=np.int64))

    def test_merge(self):
        a = AccessStats(2)
        b = AccessStats(2)
        a.add(0, AccessKind.WRITE, 1)
        b.add(1, AccessKind.WRITE, 2)
        a.merge(b)
        assert a.writes == 3

    def test_merge_mismatched_pes(self):
        with pytest.raises(ValueError):
            AccessStats(2).merge(AccessStats(3))

    def test_per_array_breakdown(self):
        stats = AccessStats(2, ("X", "Y"))
        stats.add(0, AccessKind.REMOTE_READ, 4, array_id=1)
        assert stats.by_array[1, AccessKind.REMOTE_READ] == 4

    def test_summary_keys(self):
        summary = AccessStats(1).summary()
        assert set(summary) >= {"writes", "remote_read_pct", "cached_read_pct"}

    def test_needs_pes(self):
        with pytest.raises(ValueError):
            AccessStats(0)


class TestLoadBalance:
    def test_perfectly_balanced(self):
        lb = LoadBalance.from_series(np.full(8, 100))
        assert lb.cv == 0.0
        assert lb.jain_index == pytest.approx(1.0)
        assert lb.spread == 0

    def test_imbalanced(self):
        lb = LoadBalance.from_series(np.array([100, 0, 0, 0]))
        assert lb.jain_index == pytest.approx(0.25)
        assert lb.spread == 100

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            LoadBalance.from_series(np.array([]))

    def test_zero_series(self):
        lb = LoadBalance.from_series(np.zeros(4, dtype=int))
        assert lb.cv == 0.0
        assert lb.jain_index == 1.0


class TestDataLayout:
    def test_owner_queries_consistent(self):
        layout = DataLayout({"A": (100,)}, page_size=32, n_pes=4)
        for flat in (0, 31, 32, 99):
            assert layout.owner_of_flat("A", flat) == (flat // 32) % 4
        assert layout.owner_of("A", (33,)) == 1

    def test_vectorised_owners(self):
        layout = DataLayout({"A": (100,)}, page_size=32, n_pes=4)
        flats = np.array([0, 32, 64, 96])
        assert layout.owners_of_flats("A", flats).tolist() == [0, 1, 2, 3]

    def test_multi_dim_layout(self):
        layout = DataLayout({"Z": (10, 8)}, page_size=16, n_pes=2)
        # element (1, 0) -> flat 8 -> page 0 -> PE 0
        assert layout.owner_of("Z", (1, 0)) == 0
        # element (2, 0) -> flat 16 -> page 1 -> PE 1
        assert layout.owner_of("Z", (2, 0)) == 1

    def test_memory_per_pe_totals(self):
        layout = DataLayout(
            {"A": (100,), "B": (50,)}, page_size=32, n_pes=4
        )
        assert layout.memory_per_pe().sum() == 150

    def test_elements_owned(self):
        layout = DataLayout({"A": (100,)}, page_size=32, n_pes=4)
        assert [layout.elements_owned("A", pe) for pe in range(4)] == [
            32, 32, 32, 4,
        ]


class TestScreening:
    def test_screening_partitions_iteration_space(self):
        """Every iteration is executed by exactly one PE (§3)."""
        layout = DataLayout({"X": (128,)}, page_size=16, n_pes=4)
        iterations = np.arange(128)
        assigned = [
            screen_iterations(layout, "X", lambda k: (k,), iterations, pe)
            for pe in range(4)
        ]
        union = np.sort(np.concatenate(assigned))
        assert np.array_equal(union, iterations)

    def test_screening_respects_target_map(self):
        # Writes X(127 - k): ownership follows the *written* element.
        layout = DataLayout({"X": (128,)}, page_size=16, n_pes=4)
        iterations = np.arange(128)
        mine = screen_iterations(
            layout, "X", lambda k: (127 - k,), iterations, 0
        )
        owners = layout.owners_of_flats("X", 127 - mine)
        assert (owners == 0).all()

    def test_order_preserved(self):
        layout = DataLayout({"X": (64,)}, page_size=8, n_pes=2)
        mine = screen_iterations(layout, "X", lambda k: (k,), np.arange(64), 1)
        assert np.array_equal(mine, np.sort(mine))
