"""Table generators (T1-T3) and the report renderer."""

from __future__ import annotations

import pytest

from repro.bench import (
    bar_strip,
    class_table,
    conclusions_table,
    render_class_table,
    render_survey_table,
    render_table,
    skew_reduction,
)
from repro.core import AccessClass

SMALL = ["hydro_fragment", "pic_1d_fragment", "first_diff"]


class TestClassTable:
    @pytest.fixture(scope="class")
    def rows(self):
        return class_table(SMALL)

    def test_rows_cover_requested_kernels(self, rows):
        assert [r.kernel for r in rows] == SMALL

    def test_agreement_flags(self, rows):
        by_name = {r.kernel: r for r in rows}
        assert by_name["hydro_fragment"].agrees is True
        assert by_name["pic_1d_fragment"].final is AccessClass.MATCHED

    def test_render(self, rows):
        text = render_class_table(rows)
        assert "T1" in text and "hydro_fragment" in text and "yes" in text


class TestConclusionsTable:
    @pytest.fixture(scope="class")
    def rows(self):
        return conclusions_table(names=SMALL)

    def test_skewed_loops_under_ten_percent_with_cache(self, rows):
        """§8: 'For most access distributions, the percentages of remote
        accesses are less than 10% when using a cache of 256 elements.'"""
        for row in rows:
            if row.access_class in (AccessClass.MATCHED, AccessClass.SKEWED):
                assert row.remote_pct_cache < 10.0, row

    def test_matched_is_exactly_zero(self, rows):
        by_name = {r.kernel: r for r in rows}
        frag = by_name["pic_1d_fragment"]
        assert frag.remote_pct_cache == 0.0
        assert frag.remote_pct_nocache == 0.0

    def test_reduction_factor(self, rows):
        by_name = {r.kernel: r for r in rows}
        assert by_name["hydro_fragment"].reduction_factor > 10.0

    def test_render(self, rows):
        text = render_survey_table(rows)
        assert "remote% (cache)" in text


class TestSkewReduction:
    def test_paper_t3_claim(self):
        """§8: 'a reduction from 22% remote reads to 1% remote reads.'"""
        no_cache, with_cache = skew_reduction()
        assert no_cache == pytest.approx(22.0, abs=1.5)
        assert with_cache == pytest.approx(1.0, abs=0.5)


class TestReportPrimitives:
    def test_render_table_alignment(self):
        text = render_table(["a", "bbbb"], [[1, 2.5], [30, 4]], title="t")
        lines = text.splitlines()
        assert lines[0] == "t"
        widths = {len(line) for line in lines[1:]}
        assert len(widths) == 1  # all rows equally wide

    def test_bar_strip_scales(self):
        bars = bar_strip([0.0, 5.0, 10.0], width=10)
        assert bars[0] == ""
        assert len(bars[2]) == 10
        assert 0 < len(bars[1]) <= 6

    def test_bar_strip_all_zero(self):
        assert bar_strip([0.0, 0.0]) == ["", ""]
