"""ProgramBuilder DSL and loop/program structure."""

from __future__ import annotations

import pytest

from repro.ir import ArrayDecl, Loop, ProgramBuilder, Var


def tiny_program(n=10):
    b = ProgramBuilder("tiny")
    X = b.output("X", (n,))
    Y = b.input("Y", (n,))
    k = b.index("k")
    with b.loop(k, 0, n - 1):
        b.assign(X[k], Y[k] * 2)
    return b.build()


class TestArrayDecl:
    def test_size(self):
        assert ArrayDecl("A", (3, 4)).size == 12

    def test_bad_role(self):
        with pytest.raises(ValueError):
            ArrayDecl("A", (3,), "scratch")

    def test_bad_shape(self):
        with pytest.raises(ValueError):
            ArrayDecl("A", (0,))
        with pytest.raises(ValueError):
            ArrayDecl("A", ())


class TestBuilder:
    def test_duplicate_array_rejected(self):
        b = ProgramBuilder("p")
        b.input("A", (4,))
        with pytest.raises(ValueError, match="declared twice"):
            b.output("A", (4,))

    def test_scalar_array_name_clash(self):
        b = ProgramBuilder("p")
        b.input("A", (4,))
        with pytest.raises(ValueError):
            b.scalar(A=1.0)
        b.scalar(Q=1.0)
        with pytest.raises(ValueError):
            b.input("Q", (4,))

    def test_scalar_returns_single_var(self):
        b = ProgramBuilder("p")
        q = b.scalar(Q=0.5)
        assert isinstance(q, Var) and q.name == "Q"

    def test_scalar_returns_tuple_in_order(self):
        b = ProgramBuilder("p")
        q, r = b.scalar(Q=0.5, R=1.5)
        assert (q.name, r.name) == ("Q", "R")

    def test_subscript_rank_checked(self):
        b = ProgramBuilder("p")
        A = b.input("A", (4, 4))
        with pytest.raises(IndexError, match="rank"):
            A[Var("i")]

    def test_undeclared_array_in_statement_rejected_at_build(self):
        from repro.ir import Ref

        b = ProgramBuilder("p")
        X = b.output("X", (4,))
        k = b.index("k")
        with b.loop(k, 0, 3):
            b.assign(X[k], Ref("GHOST", [k]))
        with pytest.raises(KeyError, match="GHOST"):
            b.build()

    def test_statement_ids_are_stable_and_sequential(self):
        prog = tiny_program()
        ids = [s.stmt_id for s in prog.statements()]
        assert ids == list(range(len(ids)))

    def test_outputs_recorded(self):
        prog = tiny_program()
        assert prog.outputs == ("X",)

    def test_nested_loops(self):
        b = ProgramBuilder("nest")
        X = b.output("X", (4, 4))
        i, j = b.index("i"), b.index("j")
        with b.loop(i, 0, 3):
            with b.loop(j, 0, 3):
                b.assign(X[i, j], 1.0)
        prog = b.build()
        loops = list(prog.loops())
        assert [lp.var for lp in loops] == ["i", "j"]
        assert prog.loop_var_names() == {"i", "j"}


class TestLoop:
    def test_inclusive_bounds(self):
        loop = Loop("k", 2, 5)
        assert list(loop.iter_values({})) == [2, 3, 4, 5]

    def test_step_two(self):
        loop = Loop("k", 2, 8, step=2)
        assert list(loop.iter_values({})) == [2, 4, 6, 8]

    def test_negative_step(self):
        loop = Loop("k", 5, 1, step=-2)
        assert list(loop.iter_values({})) == [5, 3, 1]

    def test_zero_step_rejected(self):
        with pytest.raises(ValueError):
            Loop("k", 0, 1, step=0)

    def test_empty_range(self):
        loop = Loop("k", 5, 2)
        assert list(loop.iter_values({})) == []

    def test_bounds_reference_outer_vars(self):
        loop = Loop("k", 1, Var("i") - 1)
        assert list(loop.iter_values({"i": 4})) == [1, 2, 3]

    def test_bound_reading_array_rejected(self):
        from repro.ir import Ref

        loop = Loop("k", 0, Ref("N", [0]))
        with pytest.raises(ValueError, match="bounds must be scalar"):
            loop.bounds({})


class TestProgram:
    def test_arrays_read_written(self):
        prog = tiny_program()
        assert prog.arrays_written() == {"X"}
        assert prog.arrays_read() == {"Y"}

    def test_total_elements(self):
        prog = tiny_program(10)
        assert prog.total_elements() == 20

    def test_repr_mentions_name(self):
        assert "tiny" in repr(tiny_program())

    def test_unbalanced_loop_context_detected(self):
        b = ProgramBuilder("p")
        X = b.output("X", (4,))
        cm = b.loop(b.index("k"), 0, 3)
        cm.__enter__()
        with pytest.raises(RuntimeError, match="unbalanced"):
            b.build()
