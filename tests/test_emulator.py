"""Value-level emulation: parallel execution equals sequential values.

The central determinism claim of the paper — single assignment plus
owner-computes needs no synchronisation primitives — is checked by
running every kernel under a round-robin parallel schedule and
comparing the produced values against the sequential interpreter.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.ir import ProgramBuilder, Ref, run_program
from repro.kernels import get_kernel
from repro.machine import DeadlockError, EmulatedMachine

SIZES = {
    "hydro_fragment": 150,
    "iccg": 64,
    "inner_product": 120,
    "tri_diagonal": 150,
    "linear_recurrence": 32,
    "equation_of_state": 150,
    "adi": 40,
    "integrate_predictors": 150,
    "diff_predictors": 60,
    "first_sum": 150,
    "first_diff": 150,
    "pic_2d": 120,
    "pic_1d_fragment": 150,
    "pic_1d": 120,
    "hydro_2d": 24,
    "matmul": 8,
    "planckian": 150,
}


@pytest.mark.parametrize("name", sorted(SIZES))
def test_parallel_values_equal_sequential(name):
    kernel = get_kernel(name)
    n = SIZES[name]
    program, inputs = kernel.build(n=n)
    sequential = run_program(program, inputs)
    machine = EmulatedMachine(program, inputs, n_pes=4, page_size=16)
    parallel = machine.run()
    for array in program.arrays:
        mask = sequential.defined[array]
        np.testing.assert_array_equal(
            parallel.defined[array], mask,
            err_msg=f"{name}: definedness of {array} differs",
        )
        np.testing.assert_allclose(
            parallel.values[array][mask],
            sequential.values[array][mask],
            rtol=1e-12,
            err_msg=f"{name}: values of {array} differ",
        )


@pytest.mark.parametrize("n_pes", [1, 2, 3, 7, 16])
def test_pe_count_never_changes_values(n_pes):
    program, inputs = get_kernel("tri_diagonal").build(n=100)
    result = EmulatedMachine(
        program, inputs, n_pes=n_pes, page_size=16
    ).run()
    reference = run_program(program, inputs)
    mask = reference.defined["X"]
    np.testing.assert_allclose(
        result.values["X"][mask], reference.values["X"][mask]
    )


class TestScheduling:
    def test_every_instance_executed_exactly_once(self):
        program, inputs = get_kernel("hydro_fragment").build(n=100)
        machine = EmulatedMachine(program, inputs, n_pes=4, page_size=16)
        result = machine.run()
        assert result.total_instances == len(machine.instances)

    def test_work_spread_over_pes(self):
        program, inputs = get_kernel("hydro_fragment").build(n=128)
        result = EmulatedMachine(
            program, inputs, n_pes=4, page_size=16
        ).run()
        assert (result.instances_per_pe > 0).all()

    def test_recurrence_causes_blocked_retries(self):
        """tri_diagonal's chain crosses PE boundaries: downstream PEs
        must wait for upstream values (deferred reads in action)."""
        program, inputs = get_kernel("tri_diagonal").build(n=200)
        machine = EmulatedMachine(program, inputs, n_pes=4, page_size=16)
        result = machine.run()
        assert result.blocked_retries > 0

    def test_matched_loop_never_blocks_or_goes_remote(self):
        program, inputs = get_kernel("pic_1d_fragment").build(n=128)
        result = EmulatedMachine(
            program, inputs, n_pes=4, page_size=16
        ).run()
        assert result.blocked_retries == 0
        assert result.remote_reads.sum() == 0

    def test_skewed_loop_reads_remotely(self):
        program, inputs = get_kernel("hydro_fragment").build(n=256)
        result = EmulatedMachine(
            program, inputs, n_pes=4, page_size=16
        ).run()
        assert result.remote_reads.sum() > 0

    def test_deadlock_detected_for_backward_dependence(self):
        """X(k) = X(k+1) + 1 with X(n) produced *last* is executable
        sequentially in reverse only; the forward program order makes
        every PE wait forever -> DeadlockError, not a hang."""
        b = ProgramBuilder("backward")
        X = b.inout("X", (8,))
        k = b.index("k")
        with b.loop(k, 0, 6):
            b.assign(X[k], Ref("X", [k + 1]) + 1.0)
        seeds = np.full(8, np.nan)
        # no seed for X[7]: the chain can never start
        program = b.build()
        machine = EmulatedMachine(
            program, {"X": seeds}, n_pes=2, page_size=4
        )
        with pytest.raises(DeadlockError):
            machine.run()

    def test_missing_input_rejected(self):
        program, inputs = get_kernel("hydro_fragment").build(n=32)
        inputs.pop("Y")
        with pytest.raises(KeyError, match="missing initial data"):
            EmulatedMachine(program, inputs, n_pes=2, page_size=16)


class TestReductions:
    def test_reduction_result_published_at_completion(self):
        program, inputs = get_kernel("inner_product").build(n=64)
        result = EmulatedMachine(
            program, inputs, n_pes=4, page_size=16
        ).run()
        expected = float(
            np.dot(inputs["Z"][1:65], inputs["X"][1:65])
        )
        assert result.values["QS"][0] == pytest.approx(expected)

    def test_indirect_scatter_reduction(self):
        program, inputs = get_kernel("pic_1d").build(n=100)
        sequential = run_program(program, inputs)
        result = EmulatedMachine(
            program, inputs, n_pes=4, page_size=16
        ).run()
        mask = sequential.defined["RHO"]
        np.testing.assert_allclose(
            result.values["RHO"][mask], sequential.values["RHO"][mask]
        )
