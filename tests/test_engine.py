"""Campaign specs, the parallel executor, and result aggregation."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.bench import Sweep
from repro.core import MachineConfig
from repro.engine import (
    CampaignSpec,
    KernelSpec,
    TraceStore,
    interpretation_count,
    kernel_trace_cached,
    run_campaign,
    run_grid,
)


def acceptance_spec() -> CampaignSpec:
    """2 kernels × 24 machine configurations (3 PEs × 2 ps × 2 caches ×
    2 partitions), the ISSUE's acceptance grid."""
    return CampaignSpec(
        name="acceptance",
        kernels=(
            KernelSpec("hydro_fragment", n=120),
            KernelSpec("first_diff", n=96),
        ),
        pes=(1, 2, 4),
        page_sizes=(16, 32),
        cache_elems=(0, 64),
        partitions=("modulo", "block"),
    )


class TestKernelSpec:
    def test_labels_unique_and_stable(self):
        assert KernelSpec("iccg").label == "iccg"
        assert KernelSpec("iccg", n=64).label == "iccg[n=64]"
        assert KernelSpec("iccg", n=64, seed=3).label == "iccg[n=64,seed=3]"

    def test_coerce_forms(self):
        assert KernelSpec.coerce("iccg") == KernelSpec("iccg")
        assert KernelSpec.coerce({"name": "iccg", "n": 8}) == KernelSpec(
            "iccg", n=8
        )
        with pytest.raises(ValueError, match="unknown kernel spec"):
            KernelSpec.coerce({"name": "iccg", "size": 8})


class TestCampaignSpec:
    def test_point_counts(self):
        spec = acceptance_spec()
        assert spec.n_configs == 24
        assert spec.n_points == 48
        assert len(list(spec.points())) == 48
        assert len(spec.configs()) == 24

    def test_validation(self):
        with pytest.raises(ValueError, match="at least one kernel"):
            CampaignSpec(name="x", kernels=())
        with pytest.raises(ValueError, match="axis 'pes' is empty"):
            CampaignSpec(name="x", kernels=("iccg",), pes=())
        with pytest.raises(KeyError, match="unknown partition"):
            CampaignSpec(name="x", kernels=("iccg",), partitions=("zigzag",))
        with pytest.raises(ValueError, match="duplicate kernel"):
            CampaignSpec(name="x", kernels=("iccg", "iccg"))

    def test_json_round_trip(self):
        spec = acceptance_spec()
        assert CampaignSpec.from_json(spec.to_json()) == spec

    def test_json_is_plain_data(self):
        data = json.loads(acceptance_spec().to_json())
        assert data["kernels"][0] == {"name": "hydro_fragment", "n": 120}
        assert data["partitions"] == ["modulo", "block"]

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ValueError, match="unknown campaign spec keys"):
            CampaignSpec.from_dict({"name": "x", "kernels": ["iccg"], "cpus": [1]})

    def test_file_round_trip(self, tmp_path):
        spec = acceptance_spec()
        path = spec.save(tmp_path / "spec.json")
        assert CampaignSpec.load(path) == spec

    def test_subset(self):
        spec = acceptance_spec()
        sub = spec.subset(["first_diff"])
        assert [k.name for k in sub.kernels] == ["first_diff"]
        with pytest.raises(KeyError):
            spec.subset(["nonexistent"])


class TestRunGrid:
    def test_preserves_input_order(self, hydro_trace):
        configs = [
            MachineConfig(n_pes=p, page_size=ps, cache_elems=c)
            for p in (4, 1, 2)
            for ps in (32, 16)
            for c in (64, 0)
        ]
        results = run_grid(hydro_trace, configs)
        assert [r.config for r in results] == configs
        assert all(r.backend == "untimed-vec" for r in results)

    def test_parallel_matches_serial(self, hydro_trace):
        configs = [
            MachineConfig(n_pes=p, page_size=32, cache_elems=c)
            for p in (1, 2, 4, 8)
            for c in (0, 64, 256)
        ]
        serial = run_grid(hydro_trace, configs)
        parallel = run_grid(hydro_trace, configs, parallel=True, workers=2)
        for a, b in zip(serial, parallel):
            assert a.identical(b)
            assert np.array_equal(a.stats.counts, b.stats.counts)
            assert np.array_equal(
                a.per_pe["page_fetches"], b.per_pe["page_fetches"]
            )


class TestRunCampaign:
    def test_parallel_bit_identical_to_serial(self, tmp_path):
        """Acceptance: ≥2 kernels × ≥24 configurations, parallel ==
        serial counter for counter (caching disabled so both runs
        genuinely execute)."""
        spec = acceptance_spec()
        store = TraceStore(tmp_path / "store")
        serial = run_campaign(spec, store=store, parallel=False, use_cache=False)
        parallel = run_campaign(
            spec, store=store, parallel=True, workers=2, use_cache=False
        )
        assert serial.executor == "serial"
        assert parallel.executor.startswith("parallel[")
        assert len(serial) == len(parallel) == 48
        assert serial.identical(parallel)
        for a, b in zip(serial.records, parallel.records):
            assert a.kernel == b.kernel
            assert a.scenario == b.scenario
            assert np.array_equal(
                a.outcome.stats.counts, b.outcome.stats.counts
            )
            assert np.array_equal(
                a.outcome.stats.by_array, b.outcome.stats.by_array
            )
            assert np.array_equal(
                a.outcome.per_pe["page_fetches"],
                b.outcome.per_pe["page_fetches"],
            )
            assert np.array_equal(
                a.outcome.per_pe["distinct_pages_fetched"],
                b.outcome.per_pe["distinct_pages_fetched"],
            )

    def test_warm_store_runs_zero_interpretations(self, tmp_path):
        """Acceptance: a warm trace-store campaign never interprets."""
        spec = acceptance_spec()
        root = tmp_path / "store"
        run_campaign(spec, store=TraceStore(root), parallel=False)
        warm = TraceStore(root)  # cold memory, warm disk
        before = interpretation_count()
        result = run_campaign(spec, store=warm, parallel=False, use_cache=False)
        assert interpretation_count() == before
        assert warm.counters.disk_hits == len(spec.kernels)
        assert warm.counters.misses == 0
        assert len(result) == spec.n_points

    def test_records_follow_spec_order(self, tmp_path):
        spec = acceptance_spec()
        result = run_campaign(
            spec, store=TraceStore(tmp_path), parallel=False
        )
        expected = list(spec.points())
        for index, (record, (kernel, scenario)) in enumerate(
            zip(result.records, expected)
        ):
            assert record.kernel == kernel
            assert record.scenario == scenario
            assert record.index == index

    def test_trace_meta_recorded(self, tmp_path):
        result = run_campaign(
            acceptance_spec(), store=TraceStore(tmp_path), parallel=False
        )
        meta = result.trace_meta["hydro_fragment[n=120]"]
        assert meta["n_instances"] > 0
        assert meta["n_reads"] > 0

    def test_matches_sweep(self, tmp_path):
        """The engine agrees with the historical Sweep path exactly."""
        store = TraceStore(tmp_path)
        spec = CampaignSpec(
            name="vs-sweep",
            kernels=(KernelSpec("first_diff", n=96),),
            pes=(1, 2, 4),
            page_sizes=(16, 32),
            cache_elems=(64, 0),
        )
        result = run_campaign(spec, store=store, parallel=False)
        trace = kernel_trace_cached("first_diff", n=96, store=store)
        sweep = Sweep.run(
            "first_diff",
            trace,
            pes=(1, 2, 4),
            page_sizes=(16, 32),
            caches=(64, 0),
        )
        engine_sweep = Sweep.from_campaign(result, "first_diff")
        assert engine_sweep.series() == sweep.series()


class TestCampaignResult:
    @pytest.fixture(scope="class")
    def result(self, tmp_path_factory):
        store = TraceStore(tmp_path_factory.mktemp("result-store"))
        return run_campaign(acceptance_spec(), store=store, parallel=False)

    def test_select_and_find(self, result):
        subset = result.select(kernel="first_diff", page_size=16)
        assert len(subset) == 12
        record = result.find(
            kernel="hydro_fragment",
            n_pes=4,
            page_size=32,
            cache_elems=64,
            partition="block",
        )
        assert record.config.n_pes == 4
        with pytest.raises(KeyError):
            result.find(kernel="first_diff")  # ambiguous

    def test_kernels_listing(self, result):
        assert result.kernels() == ["hydro_fragment[n=120]", "first_diff[n=96]"]

    def test_json_export(self, result, tmp_path):
        data = json.loads(result.to_json())
        assert data["campaign"]["name"] == "acceptance"
        assert data["backend"] == "untimed-vec"
        assert len(data["results"]) == 48
        row = data["results"][0]
        for column in (
            "kernel",
            "backend",
            "n_pes",
            "page_size",
            "cache_elems",
            "partition",
            "remote_read_pct",
            "writes",
            "page_fetches",
        ):
            assert column in row
        assert row["backend"] == "untimed-vec"
        path = result.save_json(tmp_path / "out.json")
        assert json.loads(path.read_text()) == data

    def test_identical_rejects_differences(self, result, tmp_path):
        other = run_campaign(
            acceptance_spec(),
            store=TraceStore(tmp_path / "fresh"),
            parallel=False,
        )
        assert result.identical(other)
        truncated = type(other)(spec=other.spec, records=other.records[:-1])
        assert not result.identical(truncated)

    def test_rows_rendering_shape(self, result):
        headers, rows = result.rows("first_diff")
        assert headers[0] == "kernel"
        assert len(rows) == 24


class TestCLICampaign:
    def test_sweep_cli_still_works_single_kernel(self, capsys):
        from repro.cli import main

        assert (
            main(
                [
                    "sweep", "first_diff", "--n", "96",
                    "--pes", "1", "2", "--page-sizes", "16",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "No Cache, ps 16" in out

    def test_sweep_cli_campaign_file_json_out(self, capsys, tmp_path):
        from repro.cli import main

        spec = CampaignSpec(
            name="cli-campaign",
            kernels=(KernelSpec("first_diff", n=96),),
            pes=(1, 2),
            page_sizes=(16,),
            cache_elems=(64, 0),
            partitions=("modulo", "block"),
        )
        spec_path = spec.save(tmp_path / "spec.json")
        out_path = tmp_path / "out.json"
        assert (
            main(
                [
                    "sweep",
                    "--campaign", str(spec_path),
                    "--json", str(out_path),
                    "--parallel", "--workers", "2",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "campaign records" in out  # multi-partition → record table
        data = json.loads(out_path.read_text())
        assert data["campaign"]["name"] == "cli-campaign"
        assert len(data["results"]) == spec.n_points

    def test_sweep_cli_needs_kernel_or_campaign(self, capsys):
        from repro.cli import main

        assert main(["sweep"]) == 2
        assert "error" in capsys.readouterr().err

    def test_sweep_cli_missing_campaign_file(self, capsys, tmp_path):
        from repro.cli import main

        assert main(["sweep", "--campaign", str(tmp_path / "nope.json")]) == 2
        assert "error" in capsys.readouterr().err
