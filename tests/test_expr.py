"""Expression construction, evaluation, and affine analysis."""

from __future__ import annotations

from fractions import Fraction

import pytest

from repro.ir import BinOp, Call, Const, EvalContext, Max, Min, Ref, Var, as_expr
from repro.ir.expr import AffineForm


def ctx(scalars=None, arrays=None):
    arrays = arrays or {}

    def read(name, idx):
        return arrays[name][idx]

    return EvalContext(dict(scalars or {}), read)


class TestConstruction:
    def test_operator_overloading_builds_binops(self):
        e = Var("k") + 10
        assert isinstance(e, BinOp)
        assert e.op == "+"

    def test_reverse_operators(self):
        e = 10 - Var("k")
        assert isinstance(e, BinOp)
        assert isinstance(e.lhs, Const) and e.lhs.value == 10

    def test_as_expr_passthrough(self):
        v = Var("x")
        assert as_expr(v) is v

    def test_as_expr_coerces_numbers(self):
        assert isinstance(as_expr(3), Const)
        assert isinstance(as_expr(2.5), Const)

    def test_as_expr_rejects_strings(self):
        with pytest.raises(TypeError):
            as_expr("k")

    def test_bad_operator_rejected(self):
        with pytest.raises(ValueError):
            BinOp("**", Const(1), Const(2))

    def test_unknown_function_rejected(self):
        with pytest.raises(ValueError):
            Call("sinh", Const(1))

    def test_ref_requires_subscripts(self):
        with pytest.raises(ValueError):
            Ref("A", [])


class TestEvaluation:
    def test_arithmetic(self):
        e = (Var("k") + 3) * 2 - 1
        assert e.evaluate(ctx({"k": 5})) == 15

    def test_division(self):
        assert (Var("a") / 4).evaluate(ctx({"a": 10})) == 2.5

    def test_floor_div_and_mod(self):
        assert (Var("a") // 4).evaluate(ctx({"a": 10})) == 2
        assert (Var("a") % 4).evaluate(ctx({"a": 10})) == 2

    def test_negation(self):
        assert (-Var("k")).evaluate(ctx({"k": 3})) == -3

    def test_unbound_variable_raises_name_error(self):
        with pytest.raises(NameError, match="unbound"):
            Var("missing").evaluate(ctx())

    def test_call_sqrt(self):
        assert Call("sqrt", Const(16)).evaluate(ctx()) == 4.0

    def test_call_trunc_floor(self):
        assert Call("trunc", Const(3.7)).evaluate(ctx()) == 3
        assert Call("floor", Const(-1.2)).evaluate(ctx()) == -2

    def test_min_max(self):
        assert Min(Var("a"), 3).evaluate(ctx({"a": 5})) == 3
        assert Max(Var("a"), 3).evaluate(ctx({"a": 5})) == 5

    def test_ref_reads_through_context(self):
        e = Ref("A", [Var("k") + 1])
        assert e.evaluate(ctx({"k": 1}, {"A": {(2,): 42.0}})) == 42.0

    def test_nested_indirect_ref(self):
        e = Ref("A", [Ref("P", [Var("k")])])
        arrays = {"P": {(0,): 3.0}, "A": {(3,): 9.0}}
        assert e.evaluate(ctx({"k": 0}, arrays)) == 9.0


class TestAffine:
    def test_var_plus_const(self):
        form = (Var("k") + 10).affine()
        assert form.const == 10
        assert form.coeff("k") == 1

    def test_linear_combination(self):
        form = (2 * Var("i") - 3 * Var("j") + 5).affine()
        assert form.coeff("i") == 2
        assert form.coeff("j") == -3
        assert form.const == 5

    def test_subtraction_cancels(self):
        form = (Var("k") - Var("k")).affine()
        assert form.is_constant and form.const == 0

    def test_division_by_constant(self):
        form = ((Var("k") - 2) / 2).affine()
        assert form.coeff("k") == Fraction(1, 2)
        assert form.const == -1

    def test_product_of_vars_not_affine(self):
        assert (Var("i") * Var("j")).affine() is None

    def test_division_by_var_not_affine(self):
        assert (Const(1) / Var("k")).affine() is None

    def test_call_not_affine(self):
        assert Call("sqrt", Var("k")).affine() is None

    def test_ref_not_affine(self):
        assert Ref("A", [Var("k")]).affine() is None

    def test_mod_not_affine(self):
        assert (Var("k") % 4).affine() is None

    def test_sub_affine_of_indirect_ref_is_none(self):
        ref = Ref("A", [Ref("P", [Var("k")])])
        assert ref.sub_affine() is None
        assert ref.is_indirect

    def test_sub_affine_of_affine_ref(self):
        ref = Ref("A", [Var("i") + 1, 2 * Var("j")])
        forms = ref.sub_affine()
        assert forms[0].const == 1
        assert forms[1].coeff("j") == 2
        assert not ref.is_indirect


class TestAffineForm:
    def test_scale_zero_clears(self):
        form = AffineForm.variable("k").scale(Fraction(0))
        assert form.is_constant and form.const == 0

    def test_substitute(self):
        form = AffineForm.variable("k").scale(Fraction(2))
        sub = form.substitute({"k": AffineForm.constant(3)})
        assert sub.is_constant and sub.const == 6

    def test_substitute_keeps_unbound(self):
        form = AffineForm.variable("k") + AffineForm.variable("j")
        sub = form.substitute({"k": AffineForm.constant(1)})
        assert sub.coeff("j") == 1 and sub.const == 1


class TestTraversal:
    def test_walk_counts_nodes(self):
        e = Var("a") + Var("b") * 2
        kinds = [type(n).__name__ for n in e.walk()]
        assert kinds.count("Var") == 2
        assert kinds.count("Const") == 1

    def test_refs_finds_nested(self):
        e = Ref("A", [Var("k")]) + Ref("B", [Ref("C", [Var("j")])])
        names = sorted(r.array for r in e.refs())
        assert names == ["A", "B", "C"]

    def test_free_vars(self):
        e = Ref("A", [Var("k")]) * Var("q") + 1
        assert e.free_vars() == {"k", "q"}
