"""Trace-driven simulator: access categorisation under §2's rules.

Several tests pin the simulator against *closed-form* expectations:
for Hydro Fragment (skew 11/12, page size 32) the per-page boundary
arithmetic predicts exactly which reads are remote.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench import kernel_trace
from repro.core import (
    AccessKind,
    BlockPartition,
    MachineConfig,
    ModuloPartition,
    simulate,
    simulate_program,
)
from repro.kernels import get_kernel


class TestMachineConfig:
    def test_cache_pages_derived(self):
        cfg = MachineConfig(n_pes=4, page_size=32, cache_elems=256)
        assert cfg.cache_pages == 8
        assert cfg.has_cache

    def test_cache_smaller_than_page_disables(self):
        cfg = MachineConfig(n_pes=4, page_size=512, cache_elems=256)
        assert cfg.cache_pages == 0
        assert not cfg.has_cache

    def test_without_cache(self):
        cfg = MachineConfig(n_pes=4, page_size=32).without_cache()
        assert not cfg.has_cache

    def test_validation(self):
        with pytest.raises(ValueError):
            MachineConfig(n_pes=0, page_size=32)
        with pytest.raises(ValueError):
            MachineConfig(n_pes=1, page_size=0)
        with pytest.raises(ValueError):
            MachineConfig(n_pes=1, page_size=32, cache_elems=-1)

    def test_label(self):
        assert "pes=4" in MachineConfig(n_pes=4, page_size=32).label()


class TestBasicInvariants:
    def test_single_pe_all_local(self, hydro_trace):
        result = simulate(hydro_trace, MachineConfig(n_pes=1, page_size=32))
        assert result.stats.remote_reads == 0
        assert result.stats.cached_reads == 0
        assert result.stats.local_reads == hydro_trace.n_reads

    def test_read_total_conserved(self, hydro_trace):
        for pes in (1, 3, 4, 7, 16):
            for cache in (0, 256):
                result = simulate(
                    hydro_trace,
                    MachineConfig(n_pes=pes, page_size=32, cache_elems=cache),
                )
                assert result.stats.total_reads == hydro_trace.n_reads
                assert result.stats.writes == hydro_trace.n_instances

    def test_no_cache_means_no_cached_reads(self, hydro_trace):
        result = simulate(
            hydro_trace, MachineConfig(n_pes=4, page_size=32, cache_elems=0)
        )
        assert result.stats.cached_reads == 0

    def test_cache_only_converts_remote_to_cached(self, hydro_trace):
        cfg = MachineConfig(n_pes=4, page_size=32, cache_elems=256)
        with_cache = simulate(hydro_trace, cfg)
        without = simulate(hydro_trace, cfg.without_cache())
        # Local reads are identical; cached + remote equals old remote.
        assert with_cache.stats.local_reads == without.stats.local_reads
        assert (
            with_cache.stats.cached_reads + with_cache.stats.remote_reads
            == without.stats.remote_reads
        )

    def test_writes_always_local(self, hydro_trace):
        result = simulate(hydro_trace, MachineConfig(n_pes=8, page_size=32))
        # By owner-computes, writes-per-PE equals instances owned; the
        # simulator has no "remote write" category at all.
        assert result.stats.writes == hydro_trace.n_instances

    def test_page_fetch_count_equals_remote_reads(self, hydro_trace):
        cfg = MachineConfig(n_pes=4, page_size=32, cache_elems=256)
        result = simulate(hydro_trace, cfg)
        assert result.page_fetches.sum() == result.stats.remote_reads

    def test_empty_trace(self):
        from repro.ir import TraceBuilder

        trace = TraceBuilder(["X"], [16]).freeze()
        result = simulate(trace, MachineConfig(n_pes=4, page_size=8))
        assert result.stats.total_reads == 0
        assert result.remote_read_pct == 0.0


class TestHydroClosedForm:
    """Hand-derived expectations for Hydro Fragment, n=1000, ps=32.

    Writes X(k); reads Y(k) (matched, local), ZX(k+10), ZX(k+11).
    Within the page [32p, 32p+31], ZX(k+10) leaves the page for the
    last 10 k values and ZX(k+11) for the last 11: 21 boundary reads
    per full page, out of 96 reads.
    """

    def test_no_cache_remote_fraction(self):
        program, inputs = get_kernel("hydro_fragment").build(n=960)  # 30 full pages
        trace = kernel_trace(program, inputs)
        result = simulate(
            trace, MachineConfig(n_pes=4, page_size=32, cache_elems=0)
        )
        # k = 1..960 covers pages 0..30 of X; page 0 covers k=1..31 (31
        # values, 20 boundary reads: 10 for +10 where k+10>=32 i.e. k>=22,
        # 10... compute exactly instead:
        remote = 0
        for k in range(1, 961):
            page = k // 32
            for skew in (10, 11):
                if (k + skew) // 32 != page:
                    remote += 1
        assert result.stats.remote_reads == remote

    def test_cache_reduces_to_one_fetch_per_boundary_page(self):
        program, inputs = get_kernel("hydro_fragment").build(n=960)
        trace = kernel_trace(program, inputs)
        result = simulate(
            trace, MachineConfig(n_pes=4, page_size=32, cache_elems=256)
        )
        # Each X page's boundary reads touch exactly one remote ZX page;
        # with the cache, that page is fetched once per (executing page,
        # remote page) pair.
        fetched = {
            (k // 32, (k + skew) // 32)
            for k in range(1, 961)
            for skew in (10, 11)
            if (k + skew) // 32 != k // 32
        }
        assert result.stats.remote_reads == len(fetched)

    def test_paper_headline_numbers(self):
        """§8: 'a reduction from 22% remote reads to 1% remote reads'."""
        program, inputs = get_kernel("hydro_fragment").build(n=1000)
        trace = kernel_trace(program, inputs)
        cfg = MachineConfig(n_pes=16, page_size=32, cache_elems=256)
        without = simulate(trace, cfg.without_cache()).remote_read_pct
        with_cache = simulate(trace, cfg).remote_read_pct
        assert 20.0 < without < 23.0
        assert 0.8 < with_cache < 1.5


class TestMatchedLoop:
    def test_matched_is_all_local(self, matched_program):
        program, inputs = matched_program
        for pes in (2, 4, 8):
            result = simulate_program(
                program, inputs, MachineConfig(n_pes=pes, page_size=8, cache_elems=0)
            )
            assert result.stats.remote_reads == 0


class TestPartitionInteraction:
    def test_block_partition_localises_skews(self):
        """Under the division scheme, a skewed loop's neighbour pages
        mostly share an owner, so remote reads drop (§9's observation
        that modulo is worse than division for some loops)."""
        program, inputs = get_kernel("hydro_fragment").build(n=1000)
        trace = kernel_trace(program, inputs)
        modulo = simulate(
            trace,
            MachineConfig(
                n_pes=8, page_size=32, cache_elems=0, partition=ModuloPartition()
            ),
        )
        block = simulate(
            trace,
            MachineConfig(
                n_pes=8, page_size=32, cache_elems=0, partition=BlockPartition()
            ),
        )
        assert block.stats.remote_reads < modulo.stats.remote_reads

    def test_reduction_instances_run_on_accumulator_owner(self):
        program, inputs = get_kernel("inner_product").build(n=100)
        trace = kernel_trace(program, inputs)
        result = simulate(trace, MachineConfig(n_pes=4, page_size=32))
        # All writes (folds) land on the PE owning QS[0] = page 0 = PE 0.
        writes_per_pe = result.stats.per_pe(AccessKind.WRITE)
        assert writes_per_pe[0] == trace.n_instances
        assert writes_per_pe[1:].sum() == 0


class TestDeterminism:
    def test_same_config_same_counters(self, hydro_trace):
        cfg = MachineConfig(n_pes=8, page_size=32, cache_elems=256)
        a = simulate(hydro_trace, cfg)
        b = simulate(hydro_trace, cfg)
        assert np.array_equal(a.stats.counts, b.stats.counts)

    def test_random_policy_deterministic(self, hydro_trace):
        cfg = MachineConfig(
            n_pes=8, page_size=32, cache_elems=256, cache_policy="random"
        )
        a = simulate(hydro_trace, cfg)
        b = simulate(hydro_trace, cfg)
        assert np.array_equal(a.stats.counts, b.stats.counts)
