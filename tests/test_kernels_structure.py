"""Structural properties of the kernel builders themselves."""

from __future__ import annotations

import numpy as np
import pytest

from repro.kernels import all_kernels, get_kernel
from repro.kernels.cyclic import KDIM, iccg_stages


class TestIccgStaging:
    def test_power_of_two_required(self):
        for bad in (3, 6, 100, 0):
            with pytest.raises(ValueError):
                iccg_stages(bad)

    def test_stage_regions_are_adjacent(self):
        stages = iccg_stages(256)
        for (_, prev_end), (start, _) in zip(stages, stages[1:]):
            assert start == prev_end

    def test_stage_sizes_halve(self):
        stages = iccg_stages(256)
        sizes = [end - start for start, end in stages]
        assert sizes[0] == 256
        for a, b in zip(sizes, sizes[1:]):
            assert b == a // 2

    def test_final_stage_has_more_than_one_iteration(self):
        """The degenerate i == k+1 stage is excluded (see module doc)."""
        stages = iccg_stages(64)
        ipnt, ipntp = stages[-1]
        iterations = len(range(ipnt + 2, ipntp + 1, 2))
        assert iterations >= 2

    def test_writes_disjoint_from_seeds(self):
        """Stage writes land strictly above the seeded prefix."""
        n = 64
        program, inputs = get_kernel("iccg").build(n=n)
        seeded = ~np.isnan(inputs["X"])
        from repro.ir import run_program

        result = run_program(program, inputs)
        written = result.defined["X"] & ~seeded
        assert written.any()
        assert not (written & seeded).any()


class TestHydro2D:
    def test_kdim_covers_subscripts(self):
        # k runs 2..6, subscripts reach k+1 = 7 -> KDIM must be >= 8.
        assert KDIM >= 8

    def test_boundary_cells_seeded(self):
        program, inputs = get_kernel("hydro_2d").build(n=20)
        za = inputs["ZA"]
        assert not np.isnan(za[1, :]).any()     # row 1 seeded
        assert not np.isnan(za[:, 7]).any()     # column 7 seeded
        assert np.isnan(za[2:21, 2:7]).all()    # produced region


class TestBuilders:
    @pytest.mark.parametrize(
        "name", [k.name for k in all_kernels()]
    )
    def test_seed_changes_inputs(self, name):
        kernel = get_kernel(name)
        n = 64 if name == "iccg" else 50
        _, a = kernel.build(n=n, seed=1)
        _, b = kernel.build(n=n, seed=2)
        changed = any(
            not np.array_equal(
                np.nan_to_num(a[key]), np.nan_to_num(b[key])
            )
            for key in a
        )
        assert changed, f"{name}: seed had no effect on inputs"

    @pytest.mark.parametrize(
        "name", [k.name for k in all_kernels()]
    )
    def test_inputs_cover_declared_arrays(self, name):
        kernel = get_kernel(name)
        n = 64 if name == "iccg" else 50
        program, inputs = kernel.build(n=n)
        for decl in program.arrays.values():
            if decl.role in ("input", "inout"):
                assert decl.name in inputs
                assert inputs[decl.name].shape == decl.shape or (
                    inputs[decl.name].size == decl.size
                )
            else:
                assert decl.name not in inputs

    def test_pic_grid_defaults_to_particle_count(self):
        program, _ = get_kernel("pic_1d").build(n=300)
        assert program.arrays["EX"].shape == (302,)

    def test_matmul_uses_m_parameter(self):
        program, _ = get_kernel("matmul").build(n=8)
        assert program.arrays["PX"].shape == (9, 9)
