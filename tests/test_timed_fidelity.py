"""Differential untimed-vs-timed fidelity: reductions and bandwidth.

The timed machine replays the same partitioning/ownership physics as
the untimed simulator, so wherever timing cannot change a counter the
two backends must agree **bit for bit**:

* with the cache off, every access classifies identically — for every
  reduction strategy on every topology (the subrange placement and
  combine grouping are literally shared code,
  :func:`repro.core.simulator.subrange_placement` /
  :func:`~repro.core.simulator.subrange_groups`);
* with a cache, the cached/remote split may diverge (the timed model's
  partial-page refetches are timing-dependent) but writes, local reads
  and read totals are structural;
* the bandwidth model is strictly additive: at ``link_bandwidth=inf``
  the per-link contention machinery charges exactly ``0.0`` cycles, so
  pre-bandwidth latencies reproduce bit for bit (property-tested
  across random cost models) and existing artifacts stay comparable.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.backends import (
    COST_MODEL_PRESETS,
    Scenario,
    cost_model,
    cost_model_names,
    evaluate_scenario,
)
from repro.bench import kernel_trace
from repro.core import AccessKind, MachineConfig, simulate
from repro.ir import TraceBuilder
from repro.kernels import get_kernel
from repro.machine import CostModel, TimedMachine, make_topology
from strategies import machine_configs, traces

STRATEGIES = ("host", "subrange")
TOPOLOGIES = ("crossbar", "bus", "ring", "mesh2d", "torus2d", "hypercube")
MODES = ("blocking", "multithreaded")


@pytest.fixture(scope="module")
def ip_trace():
    program, inputs = get_kernel("inner_product").build(n=400)
    return kernel_trace(program, inputs)


@pytest.fixture(scope="module")
def matmul_trace():
    program, inputs = get_kernel("matmul").build(n=10)
    return kernel_trace(program, inputs)


def config(strategy, **kw):
    defaults = dict(n_pes=16, page_size=32, cache_elems=0)
    defaults.update(kw)
    return MachineConfig(reduction_strategy=strategy, **defaults)


class TestDifferentialCounters:
    """Untimed and timed must agree on reduction *results*; only
    timing may differ."""

    @pytest.mark.parametrize("topology", TOPOLOGIES)
    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_no_cache_counters_bit_identical(
        self, ip_trace, strategy, topology
    ):
        cfg = config(strategy)
        untimed = simulate(ip_trace, cfg)
        timed = TimedMachine(ip_trace, cfg, topology=topology).run()
        assert np.array_equal(untimed.stats.counts, timed.stats.counts)

    @pytest.mark.parametrize("mode", MODES)
    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_modes_do_not_change_counters(self, matmul_trace, strategy, mode):
        cfg = config(strategy, n_pes=8)
        untimed = simulate(matmul_trace, cfg)
        timed = TimedMachine(
            matmul_trace, cfg, topology="torus2d", mode=mode
        ).run()
        assert np.array_equal(untimed.stats.counts, timed.stats.counts)

    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_cached_counters_conserve_structural_totals(
        self, ip_trace, strategy
    ):
        cfg = config(strategy, cache_elems=256)
        untimed = simulate(ip_trace, cfg)
        timed = TimedMachine(ip_trace, cfg, topology="mesh2d").run()
        assert untimed.stats.writes == timed.stats.writes
        assert untimed.stats.local_reads == timed.stats.local_reads
        assert untimed.stats.total_reads == timed.stats.total_reads

    def test_subrange_adds_one_write_per_accumulator(self, matmul_trace):
        cfg = config("subrange", n_pes=8)
        timed = TimedMachine(matmul_trace, cfg, topology="mesh2d").run()
        n_cells = len(
            {
                (int(a), int(f))
                for a, f in zip(
                    matmul_trace.w_arr[matmul_trace.reduction_mask],
                    matmul_trace.w_flat[matmul_trace.reduction_mask],
                )
            }
        )
        assert timed.stats.writes == matmul_trace.n_instances + n_cells

    def test_subrange_spreads_folds_and_costs_combine_time(self, ip_trace):
        """Folds leave the host PE, and the gather is not free: the
        subrange run pays visible combine messages."""
        host = TimedMachine(
            ip_trace, config("host"), topology="mesh2d"
        ).run()
        subrange = TimedMachine(
            ip_trace, config("subrange"), topology="mesh2d"
        ).run()
        host_writes = host.stats.per_pe(AccessKind.WRITE)
        sub_writes = subrange.stats.per_pe(AccessKind.WRITE)
        assert (host_writes[1:] == 0).all()  # funnel through PE 0
        # Folds spread to every PE owning an input page (n=400 at page
        # size 32 is 13 pages, so 13 of the 16 PEs hold partials).
        assert (sub_writes > 0).sum() > 1
        # Local folds kill the funnel's fetch traffic; what's left is
        # the combine gather (2 messages per remote partial).
        assert subrange.messages < host.messages
        remote_partials = int((sub_writes > 0).sum()) - 1
        assert subrange.messages == 2 * remote_partials


class TestGenerativeDifferentialCounters:
    """The hand-picked kernel cases above, generalised: both fidelity
    suites now draw from the one generator in ``tests/strategies.py``.
    ``timed_safe`` traces respect single assignment and never read
    ahead of their producers, so the event machine always makes
    progress (an unconstrained trace could park a PE forever)."""

    @settings(max_examples=40, deadline=None)
    @given(
        trace=traces(timed_safe=True),
        config=machine_configs(),
        topology=st.sampled_from(TOPOLOGIES),
    )
    def test_no_cache_counters_bit_identical(self, trace, config, topology):
        # The hypercube is only defined for power-of-two PE counts.
        assume(topology != "hypercube" or config.n_pes & (config.n_pes - 1) == 0)
        cfg = config.without_cache()
        untimed = simulate(trace, cfg)
        timed = TimedMachine(trace, cfg, topology=topology).run()
        assert np.array_equal(untimed.stats.counts, timed.stats.counts)

    @settings(max_examples=40, deadline=None)
    @given(
        trace=traces(timed_safe=True),
        config=machine_configs(),
        mode=st.sampled_from(MODES),
    )
    def test_cached_counters_conserve_structural_totals(
        self, trace, config, mode
    ):
        untimed = simulate(trace, config)
        timed = TimedMachine(trace, config, topology="ring", mode=mode).run()
        assert untimed.stats.writes == timed.stats.writes
        assert untimed.stats.local_reads == timed.stats.local_reads
        assert untimed.stats.total_reads == timed.stats.total_reads


class TestDeferredReadsOnAccumulators:
    def test_consumer_defers_until_combine_completes(self):
        """A reader of a subrange accumulator parks until the host's
        final write, not until the last fold's partial."""
        ps = 4
        tb = TraceBuilder(["S", "X", "Z"], [ps, 4 * ps, 4 * ps])
        # Two folds into S[0] (owned by PE 0), reading X pages owned by
        # PE 0 and PE 1 — so PE 1 holds a partial that must travel.
        for flat in (0, ps):
            tb.record_read(tb.array_id("X"), flat)
            tb.commit_instance(0, tb.array_id("S"), 0, True)
        # PE 1's consumer reads the accumulator afterwards.
        tb.record_read(tb.array_id("S"), 0)
        tb.commit_instance(1, tb.array_id("Z"), ps, False)
        trace = tb.freeze()
        cfg = MachineConfig(
            n_pes=2, page_size=ps, cache_elems=0,
            reduction_strategy="subrange",
        )
        result = TimedMachine(trace, cfg, topology="ring").run()
        assert result.deferred_reads >= 1
        untimed = simulate(trace, cfg)
        assert np.array_equal(untimed.stats.counts, result.stats.counts)

    def test_combine_waits_for_the_slowest_fold(self):
        """The gather must begin when the last fold *completes in
        simulated time*, not when it is merely counted: a PE's burst
        counts its folds while its local clock is far ahead of
        queue.now.  Here the slow contributor is *remote* (the host's
        own clock cannot cover for it): PE 1 counts its fold early in
        event order but finishes it late, while the host's fold parks
        on a remote fetch and triggers the combine at a small clock —
        the reply from PE 1 must still carry a *finished* partial."""
        ps = 4
        filler = 40
        z_size = (3 * filler + 1) * ps
        tb = TraceBuilder(["S", "X", "Z"], [ps, 3 * ps, z_size])
        # Host fold on PE 0 (modulo, 3 PEs): first read local
        # (placement), second read remote, so the fold parks on a
        # fetch and is *counted* around t=50 with a small busy clock —
        # after PE 1's burst already counted the slow fold.
        tb.record_read(tb.array_id("X"), 0)  # page owned by PE 0
        tb.record_read(tb.array_id("X"), ps)  # page owned by PE 1
        tb.commit_instance(1, tb.array_id("S"), 0, True)
        # PE 1: filler then its fold — counted at t=0 in one burst,
        # but the fold only *completes* after the filler, ~200 cycles.
        for i in range(filler):
            tb.commit_instance(0, tb.array_id("Z"), (3 * i + 1) * ps, False)
        tb.record_read(tb.array_id("X"), ps)
        tb.commit_instance(1, tb.array_id("S"), 0, True)
        # An otherwise-idle consumer on PE 2 defers on the accumulator
        # with a *t=0* request, so its resume time is the combine's
        # final-write time, not its own program order.
        tb.record_read(tb.array_id("S"), 0)
        tb.commit_instance(2, tb.array_id("Z"), 2 * ps, False)
        trace = tb.freeze()
        cfg = MachineConfig(
            n_pes=3,
            page_size=ps,
            cache_elems=0,
            reduction_strategy="subrange",
        )
        result = TimedMachine(trace, cfg, topology="ring").run()
        # PE 1's partial cannot exist before its filler completes, and
        # the gather's request/reply round trip can only *start* after
        # that — so the consumer deferred on the accumulator (and with
        # it the finish time) must land beyond filler + one round
        # trip, however early the trigger was counted.
        costs = CostModel()
        slow_fold_done = filler * (
            costs.compute_per_statement + costs.write
        )
        gather_round_trip = costs.request_latency(1) + costs.reply_latency(
            1, 1
        )
        assert result.finish_time > slow_fold_done + gather_round_trip
        untimed = simulate(trace, cfg)
        assert np.array_equal(untimed.stats.counts, result.stats.counts)


class TestBandwidthModel:
    def test_presets_registered(self):
        assert {"contended", "infinite-bw"} <= set(cost_model_names())
        assert cost_model("contended").contended
        assert cost_model("infinite-bw").occupancy(64) == 0.0

    def test_cost_model_validation(self):
        with pytest.raises(ValueError, match="contention model"):
            CostModel(contention_model="per-pe")
        with pytest.raises(ValueError, match="bandwidth"):
            CostModel(link_bandwidth=0.0)
        with pytest.raises(ValueError, match="nonnegative"):
            CostModel(element_bytes=-1.0)

    @pytest.mark.parametrize("topology", TOPOLOGIES)
    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_infinite_bw_reproduces_default_bit_for_bit(
        self, ip_trace, strategy, topology
    ):
        """The control preset: per-link machinery on, bandwidth
        infinite — every latency must equal the historical model's."""
        cfg = config(strategy, cache_elems=256)
        base = TimedMachine(ip_trace, cfg, topology=topology).run()
        inf_bw = TimedMachine(
            ip_trace, cfg, topology=topology,
            costs=cost_model("infinite-bw"),
        ).run()
        assert inf_bw.finish_time == base.finish_time
        assert np.array_equal(inf_bw.per_pe_finish, base.per_pe_finish)
        assert np.array_equal(inf_bw.stall_time, base.stall_time)
        assert inf_bw.contention_delay_cycles == 0.0

    def test_contended_preset_feeds_latency(self, ip_trace):
        cfg = config("subrange", cache_elems=256)
        base = TimedMachine(ip_trace, cfg, topology="mesh2d").run()
        contended = TimedMachine(
            ip_trace, cfg, topology="mesh2d", costs=cost_model("contended")
        ).run()
        assert contended.contention_delay_cycles > 0.0
        assert contended.finish_time > base.finish_time
        # Contention changes when things happen, never what happens.
        assert np.array_equal(contended.stats.counts, base.stats.counts)
        assert contended.messages == base.messages

    def test_link_reservations_are_causal(self):
        """A message departing early must not queue behind one that
        departs *later* in simulated time but was processed first:
        bursts run far ahead of queue.now, so reservations go through
        the event queue in departure order, not event order."""
        ps = 4
        filler = 200
        tb = TraceBuilder(["X", "Z"], [3 * ps, (3 * filler + 3) * ps])
        # PE 1's burst is processed before PE 2's, and only issues its
        # remote fetch after ~1000 cycles of local filler.
        for i in range(filler):
            tb.commit_instance(0, tb.array_id("Z"), (3 * i + 1) * ps, False)
        tb.record_read(tb.array_id("X"), 2 * ps)  # owned by PE 2: remote
        tb.commit_instance(1, tb.array_id("Z"), (3 * filler + 1) * ps, False)
        # PE 2 fetches immediately at t~0 over the same shared bus.
        tb.record_read(tb.array_id("X"), 0)  # owned by PE 0: remote
        tb.commit_instance(2, tb.array_id("Z"), (3 * filler + 2) * ps, False)
        trace = tb.freeze()
        cfg = MachineConfig(n_pes=3, page_size=ps, cache_elems=0)
        base = TimedMachine(trace, cfg, topology="bus").run()
        loaded = TimedMachine(
            trace, cfg, topology="bus", costs=cost_model("contended")
        ).run()
        # PE 2's t~0 fetch shares the bus with nothing at that time:
        # it may pay its own serialization, never PE 1's ~1000-cycle
        # head start in event-processing order.
        own_serialization = cost_model("contended").occupancy(
            0
        ) + cost_model("contended").occupancy(ps)
        assert (
            loaded.per_pe_finish[2]
            <= base.per_pe_finish[2] + own_serialization
        )

    def test_bus_contends_harder_than_crossbar(self, ip_trace):
        """One shared medium vs dedicated pairwise links: the same
        traffic must queue for strictly longer on the bus.  Needs
        multithreaded PEs — a blocking requester serializes its own
        messages, so nothing would ever share a link."""
        cfg = config("host")
        costs = cost_model("contended")
        bus = TimedMachine(
            ip_trace, cfg, topology="bus", costs=costs, mode="multithreaded"
        ).run()
        xbar = TimedMachine(
            ip_trace, cfg, topology="crossbar", costs=costs,
            mode="multithreaded",
        ).run()
        assert bus.contention_delay_cycles > xbar.contention_delay_cycles
        assert bus.finish_time > xbar.finish_time

    def test_backend_tags_records_with_contention_delay(self, ip_trace):
        scenario = Scenario(
            config=config("subrange"),
            backend="timed",
            topology="torus2d",
            cost_model="contended",
        )
        outcome = evaluate_scenario(ip_trace, scenario)
        assert outcome.metrics["contention_delay_cycles"] > 0.0
        quiet = evaluate_scenario(
            ip_trace,
            Scenario(
                config=config("subrange"),
                backend="timed",
                topology="torus2d",
            ),
        )
        assert quiet.metrics["contention_delay_cycles"] == 0.0

    @settings(max_examples=25, deadline=None)
    @given(
        preset=st.sampled_from(sorted(COST_MODEL_PRESETS)),
        n_pes=st.sampled_from([1, 2, 4, 8, 16]),
        topology=st.sampled_from(TOPOLOGIES),
        strategy=st.sampled_from(STRATEGIES),
        bandwidth=st.one_of(
            st.just(float("inf")),
            st.floats(min_value=0.5, max_value=64.0),
        ),
    )
    def test_zero_delay_iff_infinite_bandwidth(
        self, preset, n_pes, topology, strategy, bandwidth
    ):
        """Property: ``contention_delay_cycles == 0`` whenever
        ``link_bandwidth=inf``, whatever else the cost model says."""
        from dataclasses import replace

        program, inputs = get_kernel("inner_product").build(n=64)
        trace = kernel_trace(program, inputs)
        costs = replace(
            COST_MODEL_PRESETS[preset],
            link_bandwidth=bandwidth,
            contention_model="per-link",
        )
        cfg = config(strategy, n_pes=n_pes)
        result = TimedMachine(
            trace, cfg, topology=topology, costs=costs
        ).run()
        if bandwidth == float("inf"):
            assert result.contention_delay_cycles == 0.0
        else:
            assert result.contention_delay_cycles >= 0.0
        summary = result.contention
        assert (
            summary["contention_delay_cycles"]
            == result.contention_delay_cycles
        )


class TestLinkReservation:
    """Unit-level checks of Topology.transmit's queueing discipline."""

    def test_messages_queue_on_a_shared_link(self):
        topo = make_topology("ring", 4)
        hops, d1 = topo.transmit(0, 1, at=0.0, occupancy=3.0)
        assert (hops, d1) == (1, 3.0)  # serialization only
        _, d2 = topo.transmit(0, 1, at=0.0, occupancy=3.0)
        assert d2 == 6.0  # 3 queueing behind the first + 3 draining

    def test_disjoint_links_do_not_interact(self):
        topo = make_topology("crossbar", 4)
        _, d1 = topo.transmit(0, 1, at=0.0, occupancy=5.0)
        _, d2 = topo.transmit(2, 3, at=0.0, occupancy=5.0)
        assert d1 == d2 == 5.0

    def test_zero_occupancy_is_pure_accounting(self):
        topo = make_topology("mesh2d", 9)
        _, delay = topo.transmit(0, 8, at=10.0, occupancy=0.0)
        assert delay == 0.0
        assert topo.link_free == {}
        assert sum(topo.link_traffic.values()) == 4  # 4 hops recorded

    def test_record_still_counts_traffic(self):
        topo = make_topology("ring", 4)
        assert topo.record(0, 2) == 2
        assert sum(topo.link_traffic.values()) == 2
        assert topo.queueing_delay == 0.0
