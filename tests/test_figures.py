"""Figure regeneration: the paper's qualitative claims as assertions.

These tests encode the *shape* requirements of Figures 1-5 — who wins,
by roughly what factor, where the crossovers fall — at reduced problem
sizes so the whole suite stays fast.  The benchmark harness regenerates
the full-size figures.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench import (
    Sweep,
    figure1,
    figure2,
    figure3,
    figure4,
    figure5,
    kernel_trace,
    render,
)
from repro.kernels import get_kernel

PES = (1, 4, 8, 16)


@pytest.fixture(scope="module")
def fig1():
    return figure1(n=1000, pes=PES)


@pytest.fixture(scope="module")
def fig2():
    return figure2(n=512, pes=PES)


@pytest.fixture(scope="module")
def fig3():
    return figure3(n=100, pes=(1, 4, 8, 16, 32, 64))


@pytest.fixture(scope="module")
def fig4():
    return figure4(n=128, pes=PES)


class TestFigure1:
    """Skewed: flat ~20% no-cache (ps 32), ~1% with cache."""

    def test_one_pe_is_all_local(self, fig1):
        for series in fig1.series.values():
            assert series[0] == 0.0

    def test_nocache_plateau_near_paper_value(self, fig1):
        plateau = fig1.series["No Cache, ps 32"][1:]
        assert all(18.0 < v < 24.0 for v in plateau)

    def test_cache_collapses_remote_reads(self, fig1):
        cached = fig1.series["Cache, ps 32"][1:]
        assert all(v < 1.5 for v in cached)

    def test_larger_pages_halve_boundary_fraction(self, fig1):
        ps32 = fig1.series["No Cache, ps 32"][-1]
        ps64 = fig1.series["No Cache, ps 64"][-1]
        assert ps64 == pytest.approx(ps32 / 2, rel=0.15)

    def test_flat_in_pe_count(self, fig1):
        plateau = fig1.series["No Cache, ps 32"][1:]
        assert max(plateau) - min(plateau) < 1.0


class TestFigure2:
    """Cyclic (ICCG): no-cache very high; cache removes almost all."""

    def test_nocache_mostly_remote(self, fig2):
        assert fig2.series["No Cache, ps 32"][-1] > 60.0

    def test_cache_below_ten_percent(self, fig2):
        assert fig2.series["Cache, ps 32"][-1] < 10.0

    def test_reduction_factor_large(self, fig2):
        no_cache = fig2.series["No Cache, ps 32"][-1]
        cache = fig2.series["Cache, ps 32"][-1]
        assert no_cache / max(cache, 1e-9) > 10.0


class TestFigure3:
    """Cyclic+skewed: cache series decreases as PEs grow."""

    def test_cached_series_decreases_with_pes(self, fig3):
        series = fig3.series["Cache, ps 32"]
        # Compare the 4-PE value to the 64-PE value.
        assert series[-1] < 0.5 * series[1]

    def test_nocache_flat_and_low(self, fig3):
        plateau = fig3.series["No Cache, ps 32"][1:]
        assert all(v < 12.0 for v in plateau)
        assert max(plateau) - min(plateau) < 2.0

    def test_cache_always_helps(self, fig3):
        for pes_idx in range(1, len(fig3.x_values)):
            assert (
                fig3.series["Cache, ps 32"][pes_idx]
                <= fig3.series["No Cache, ps 32"][pes_idx]
            )


class TestFigure4:
    """Random: high remote ratio, cache nearly useless."""

    def test_remote_stays_high(self, fig4):
        assert fig4.series["Cache, ps 32"][-1] > 15.0

    def test_cache_barely_helps(self, fig4):
        cache = fig4.series["Cache, ps 32"][-1]
        no_cache = fig4.series["No Cache, ps 32"][-1]
        assert (no_cache - cache) / no_cache < 0.35


class TestFigure5:
    """Load balance: flat per-PE read counts at 64 PEs."""

    @pytest.fixture(scope="class")
    def fig5(self):
        return figure5(n=510, n_pes=64, page_size=32)

    def test_all_four_series_present(self, fig5):
        assert set(fig5.series) == {
            "Remote with Cache",
            "Remote with No Cache",
            "Local with Cache",
            "Local with No Cache",
        }

    def test_local_reads_evenly_balanced(self, fig5):
        lb = fig5.load_balance["Local with No Cache"]
        assert lb.cv < 0.2

    def test_remote_reads_comparably_balanced(self, fig5):
        lb = fig5.load_balance["Remote with No Cache"]
        assert lb.cv < 0.35

    def test_every_pe_participates(self, fig5):
        local = np.asarray(fig5.series["Local with No Cache"])
        assert (local > 0).all()

    def test_local_counts_unaffected_by_cache(self, fig5):
        assert fig5.series["Local with Cache"] == fig5.series["Local with No Cache"]


class TestRendering:
    def test_render_contains_series_and_axis(self, fig1):
        text = render(fig1)
        assert "Figure 1" in text
        assert "Cache, ps 32" in text
        assert "Number of PEs" in text

    def test_render_figure5_includes_balance_summary(self):
        fig = figure5(n=60, n_pes=16)
        text = render(fig)
        assert "load balance summary" in text
        assert "jain" in text


class TestSweepMachinery:
    def test_series_keys_cover_grid(self):
        program, inputs = get_kernel("first_diff").build(n=200)
        sweep = Sweep.run(
            "first_diff",
            kernel_trace(program, inputs),
            pes=(1, 2),
            page_sizes=(16, 32),
            caches=(256, 0),
        )
        assert set(sweep.series()) == {
            "Cache, ps 16",
            "No Cache, ps 16",
            "Cache, ps 32",
            "No Cache, ps 32",
        }
        assert sweep.pe_axis() == [1, 2]

    def test_lookup_missing_point(self):
        program, inputs = get_kernel("first_diff").build(n=100)
        sweep = Sweep.run(
            "first_diff", kernel_trace(program, inputs), pes=(1,),
            page_sizes=(32,), caches=(0,),
        )
        with pytest.raises(KeyError):
            sweep.lookup(2, 32, 0)
