"""Reduction execution strategies: host funnel vs subrange collection."""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench import kernel_trace
from repro.core import AccessKind, LoadBalance, MachineConfig, simulate
from repro.kernels import get_kernel


@pytest.fixture(scope="module")
def ip_trace():
    program, inputs = get_kernel("inner_product").build(n=1000)
    return kernel_trace(program, inputs)


def config(strategy, **kw):
    defaults = dict(n_pes=16, page_size=32, cache_elems=256)
    defaults.update(kw)
    return MachineConfig(reduction_strategy=strategy, **defaults)


class TestHostStrategy:
    def test_all_folds_on_host(self, ip_trace):
        result = simulate(ip_trace, config("host"))
        writes = result.stats.per_pe(AccessKind.WRITE)
        assert writes[0] == ip_trace.n_instances
        assert writes[1:].sum() == 0

    def test_host_reads_mostly_nonlocal(self, ip_trace):
        result = simulate(ip_trace, config("host", cache_elems=0))
        # The host owns only ~1/16 of the input pages.
        assert result.remote_read_pct > 80.0


class TestSubrangeStrategy:
    def test_folds_spread_across_pes(self, ip_trace):
        result = simulate(ip_trace, config("subrange"))
        writes = result.stats.per_pe(AccessKind.WRITE)
        balance = LoadBalance.from_series(writes)
        assert balance.cv < 0.2
        assert (writes > 0).all()

    def test_reads_become_local(self, ip_trace):
        host = simulate(ip_trace, config("host", cache_elems=0))
        subrange = simulate(ip_trace, config("subrange", cache_elems=0))
        assert subrange.remote_read_pct < 0.2 * host.remote_read_pct

    def test_combine_phase_charged_to_host(self, ip_trace):
        result = simulate(ip_trace, config("subrange", cache_elems=0))
        # Z and X are read pairwise per fold; contributions come from
        # all 16 PEs, so the host pulls 15 remote partials + 1 local,
        # plus one final write.
        remote_at_host = result.stats.counts[0, AccessKind.REMOTE_READ]
        assert remote_at_host >= 15

    def test_total_fold_reads_conserved(self, ip_trace):
        """Element reads are identical; only the combine adds reads."""
        host = simulate(ip_trace, config("host"))
        subrange = simulate(ip_trace, config("subrange"))
        extra = subrange.stats.total_reads - host.stats.total_reads
        assert 0 < extra <= 16  # at most one partial per PE

    def test_matmul_subrange_still_correct_counts(self):
        program, inputs = get_kernel("matmul").build(n=12)
        trace = kernel_trace(program, inputs)
        host = simulate(trace, config("host"))
        subrange = simulate(trace, config("subrange"))
        assert host.stats.writes == trace.n_instances
        # Subrange adds one final write per accumulator cell.
        n_cells = len({
            (int(a), int(f))
            for a, f in zip(trace.w_arr[trace.reduction_mask],
                            trace.w_flat[trace.reduction_mask])
        })
        assert subrange.stats.writes == trace.n_instances + n_cells

    def test_invalid_strategy_rejected(self):
        with pytest.raises(ValueError, match="reduction strategy"):
            MachineConfig(
                n_pes=4, page_size=32, reduction_strategy="tree"
            )

    def test_non_reduction_traces_unaffected(self, hydro_trace):
        host = simulate(hydro_trace, config("host"))
        subrange = simulate(hydro_trace, config("subrange"))
        assert np.array_equal(host.stats.counts, subrange.stats.counts)
