"""Trace container invariants and CSR bookkeeping."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ir import TraceBuilder


def build_trace():
    tb = TraceBuilder(["X", "Y"], [10, 20])
    tb.record_read(1, 5)
    tb.record_read(1, 6)
    tb.commit_instance(0, 0, 3, False)
    tb.commit_instance(0, 0, 4, False)  # no reads
    tb.record_read(0, 3)
    tb.commit_instance(1, 1, 19, True)
    return tb.freeze()


class TestBuilder:
    def test_shapes(self):
        trace = build_trace()
        assert trace.n_instances == 3
        assert trace.n_reads == 3
        assert list(trace.r_ptr) == [0, 2, 2, 3]

    def test_reads_of(self):
        trace = build_trace()
        assert trace.reads_of(0) == [(1, 5), (1, 6)]
        assert trace.reads_of(1) == []
        assert trace.reads_of(2) == [(0, 3)]

    def test_instances_iterator(self):
        rows = list(build_trace().instances())
        assert rows[0] == (0, 0, 3, [(1, 5), (1, 6)])
        assert rows[2][0] == 1

    def test_reduction_mask(self):
        trace = build_trace()
        assert list(trace.reduction_mask) == [False, False, True]

    def test_array_id_lookup(self):
        trace = build_trace()
        assert trace.array_id("Y") == 1
        with pytest.raises(ValueError):
            trace.array_id("Z")

    def test_uncommitted_reads_rejected(self):
        tb = TraceBuilder(["X"], [4])
        tb.record_read(0, 1)
        with pytest.raises(RuntimeError, match="uncommitted"):
            tb.freeze()

    def test_abort_instance_discards(self):
        tb = TraceBuilder(["X"], [4])
        tb.record_read(0, 1)
        tb.abort_instance()
        trace = tb.freeze()
        assert trace.n_reads == 0

    def test_names_sizes_mismatch(self):
        with pytest.raises(ValueError):
            TraceBuilder(["X"], [4, 5])


class TestValidate:
    def test_out_of_range_flat_caught(self):
        tb = TraceBuilder(["X"], [4])
        tb.commit_instance(0, 0, 7, False)  # 7 >= size 4
        with pytest.raises(ValueError, match="out of range"):
            tb.freeze()

    def test_empty_trace_is_valid(self):
        trace = TraceBuilder([], []).freeze()
        assert trace.n_instances == 0
        trace.validate()

    def test_validate_rejects_corrupt_rptr(self):
        trace = build_trace()
        bad = type(trace)(
            array_names=trace.array_names,
            array_sizes=trace.array_sizes,
            stmt_ids=trace.stmt_ids,
            w_arr=trace.w_arr,
            w_flat=trace.w_flat,
            r_ptr=np.array([0, 3, 2, 3]),
            r_arr=trace.r_arr,
            r_flat=trace.r_flat,
            reduction_mask=trace.reduction_mask,
        )
        with pytest.raises(ValueError, match="nondecreasing"):
            bad.validate()


class TestContentDigest:
    def test_identical_traces_share_a_digest(self):
        a, b = build_trace(), build_trace()
        assert a is not b
        assert a.content_digest == b.content_digest
        assert len(a.content_digest) == 64  # full sha256 hex

    def test_digest_is_memoised(self):
        trace = build_trace()
        first = trace.content_digest
        assert trace.__dict__["_content_digest"] == first
        assert trace.content_digest is first

    def test_any_column_or_metadata_change_moves_the_digest(self):
        base = build_trace()
        flipped = type(base)(
            array_names=base.array_names,
            array_sizes=base.array_sizes,
            stmt_ids=base.stmt_ids,
            w_arr=base.w_arr,
            w_flat=base.w_flat.copy(),
            r_ptr=base.r_ptr,
            r_arr=base.r_arr,
            r_flat=base.r_flat,
            reduction_mask=base.reduction_mask,
        )
        flipped.w_flat[0] += 1
        renamed = type(base)(
            array_names=("Y",) + base.array_names[1:],
            array_sizes=base.array_sizes,
            stmt_ids=base.stmt_ids,
            w_arr=base.w_arr,
            w_flat=base.w_flat,
            r_ptr=base.r_ptr,
            r_arr=base.r_arr,
            r_flat=base.r_flat,
            reduction_mask=base.reduction_mask,
        )
        digests = {
            base.content_digest,
            flipped.content_digest,
            renamed.content_digest,
        }
        assert len(digests) == 3

    def test_save_load_round_trip_preserves_the_digest(self, tmp_path):
        trace = build_trace()
        path = trace.save(tmp_path / "t.npz")
        from repro.ir.trace import Trace

        assert Trace.load(path).content_digest == trace.content_digest
