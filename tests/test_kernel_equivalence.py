"""Every IR kernel computes what its independent NumPy reference does.

This is the validation backbone: the access traces mean nothing if the
IR renditions don't perform the Fortran kernels' computations.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.ir import Verdict, check_program, run_program
from repro.kernels import all_kernels, get_kernel, kernel_names

# Small problem sizes keep the full-suite interpreter cost low while
# exercising all boundary behaviour (partial pages, stage edges).
SIZES = {
    "hydro_fragment": 200,
    "iccg": 128,
    "inner_product": 200,
    "tri_diagonal": 200,
    "linear_recurrence": 48,
    "equation_of_state": 200,
    "adi": 60,
    "integrate_predictors": 200,
    "diff_predictors": 100,
    "first_sum": 200,
    "first_diff": 200,
    "pic_2d": 200,
    "pic_1d_fragment": 200,
    "pic_1d": 200,
    "hydro_2d": 40,
    "matmul": 10,
    "planckian": 200,
}


@pytest.mark.parametrize("name", sorted(SIZES))
def test_values_match_reference(name):
    kernel = get_kernel(name)
    n = SIZES[name]
    program, inputs = kernel.build(n=n)
    result = run_program(program, inputs)
    expected = kernel.reference(inputs, n)
    assert expected, f"{name}: reference produced nothing"
    for array, ref in expected.items():
        assert array in result.values, f"{name}: missing output {array}"
        mask = result.defined[array]
        assert mask.any(), f"{name}: {array} entirely undefined"
        got = result.values[array][mask]
        want = np.nan_to_num(np.asarray(ref))[mask]
        np.testing.assert_allclose(
            got, want, rtol=1e-10, atol=1e-12,
            err_msg=f"{name}: {array} mismatch",
        )


@pytest.mark.parametrize("name", sorted(SIZES))
def test_single_assignment_holds_dynamically(name):
    """The interpreter's write-once check passes for every kernel, and
    no kernel destructively updates a seed it already exposed."""
    kernel = get_kernel(name)
    program, inputs = kernel.build(n=SIZES[name])
    result = run_program(program, inputs)  # check_sa=True by default
    assert result.seed_hazards == []


@pytest.mark.parametrize("name", sorted(SIZES))
def test_static_checker_never_rejects_registered_kernels(name):
    kernel = get_kernel(name)
    program, _ = kernel.build(n=SIZES[name])
    report = check_program(program)
    assert report.verdict in (Verdict.OK, Verdict.UNKNOWN)


@pytest.mark.parametrize("name", sorted(SIZES))
def test_deterministic_rebuild(name):
    """Same size and seed produce identical inputs and trace lengths."""
    kernel = get_kernel(name)
    p1, i1 = kernel.build(n=SIZES[name])
    p2, i2 = kernel.build(n=SIZES[name])
    for key in i1:
        np.testing.assert_array_equal(
            np.nan_to_num(i1[key]), np.nan_to_num(i2[key])
        )
    r1 = run_program(p1, i1)
    r2 = run_program(p2, i2)
    assert r1.trace.n_instances == r2.trace.n_instances
    assert np.array_equal(r1.trace.r_flat, r2.trace.r_flat)


def test_registry_names_sorted_and_unique():
    names = kernel_names()
    assert names == sorted(set(names))
    assert len(names) == len(SIZES)


def test_registry_lookup_error():
    with pytest.raises(KeyError, match="unknown kernel"):
        get_kernel("fft")


def test_all_kernels_have_metadata():
    for kernel in all_kernels():
        assert kernel.title
        assert kernel.note
        assert kernel.default_n > 0


def test_paper_named_loops_present():
    """Every loop the paper names appears in the registry."""
    names = set(kernel_names())
    for required in (
        "hydro_fragment",     # Figure 1, SD list
        "iccg",               # Figure 2
        "hydro_2d",           # Figure 3 and 5
        "linear_recurrence",  # Figure 4
        "adi",                # RD list
        "tri_diagonal",       # SD list
        "equation_of_state",  # SD list
        "first_sum",          # SD list
        "first_diff",         # SD list
        "pic_1d_fragment",    # Class 1 example
    ):
        assert required in names
