"""Static single-assignment analysis (the §5 data-path analysis)."""

from __future__ import annotations

import pytest

from repro.ir import ProgramBuilder, Ref, Verdict, check_program


def accumulation_program(n=6):
    """DO k: S(0) = S(0) + Y(k) written as repeated Assign — a violation."""
    b = ProgramBuilder("acc")
    S = b.output("S", (1,))
    Y = b.input("Y", (n,))
    k = b.index("k")
    with b.loop(k, 0, n - 1):
        b.assign(S[0], Ref("S", [0]) + Ref("Y", [k]))
    return b.build()


class TestStatementInjectivity:
    def test_clean_map_is_ok(self, matched_program):
        program, _ = matched_program
        report = check_program(program)
        assert report.ok

    def test_missing_loop_var_is_violation_with_witness(self):
        report = check_program(accumulation_program())
        assert report.verdict == Verdict.VIOLATION
        violation = report.violations()[0]
        assert violation.witness is not None
        first, second = violation.witness
        assert first["k"] + 1 == second["k"]

    def test_full_rank_multidim(self):
        b = ProgramBuilder("p")
        X = b.output("X", (8, 8))
        i, j = b.index("i"), b.index("j")
        with b.loop(i, 0, 7):
            with b.loop(j, 0, 7):
                b.assign(X[i, j], 1.0)
        assert check_program(b.build()).ok

    def test_rank_deficient_with_collision_witness(self):
        # X(i+j) over a 2-D nest: (0,1) and (1,0) collide.
        b = ProgramBuilder("p")
        X = b.output("X", (16,))
        i, j = b.index("i"), b.index("j")
        with b.loop(i, 0, 3):
            with b.loop(j, 0, 3):
                b.assign(X[i + j], 1.0)
        report = check_program(b.build())
        assert report.verdict == Verdict.VIOLATION

    def test_rank_deficient_but_separated_is_not_violation(self):
        # X(4i + j) with j in 0..3 is actually injective: the null-space
        # direction (1, -4) steps j out of its bounds.
        b = ProgramBuilder("p")
        X = b.output("X", (16,))
        i, j = b.index("i"), b.index("j")
        with b.loop(i, 0, 3):
            with b.loop(j, 0, 3):
                b.assign(X[4 * i + j], 1.0)
        report = check_program(b.build())
        assert report.verdict != Verdict.VIOLATION

    def test_nonaffine_target_is_unknown(self):
        b = ProgramBuilder("p")
        X = b.output("X", (8,))
        P = b.input("P", (8,))
        k = b.index("k")
        with b.loop(k, 0, 7):
            b.assign(Ref("X", [Ref("P", [k])]), 1.0)
        report = check_program(b.build())
        assert report.verdict == Verdict.UNKNOWN

    def test_single_trip_constant_target_ok(self):
        b = ProgramBuilder("p")
        X = b.output("X", (4,))
        b.assign(X[0], 1.0)
        assert check_program(b.build()).ok

    def test_reduction_is_exempt(self):
        b = ProgramBuilder("p")
        S = b.output("S", (1,))
        Y = b.input("Y", (4,))
        k = b.index("k")
        with b.loop(k, 0, 3):
            b.reduce(S[0], Ref("Y", [k]))
        assert check_program(b.build()).ok


class TestCrossStatement:
    def test_disjoint_regions_ok(self):
        b = ProgramBuilder("p")
        X = b.output("X", (20,))
        k = b.index("k")
        with b.loop(k, 0, 9):
            b.assign(X[k], 1.0)
        with b.loop(k, 10, 19):
            b.assign(X[k], 2.0)
        report = check_program(b.build())
        assert report.ok

    def test_overlapping_regions_unknown(self):
        b = ProgramBuilder("p")
        X = b.output("X", (20,))
        k = b.index("k")
        with b.loop(k, 0, 9):
            b.assign(X[k], 1.0)
        with b.loop(k, 5, 14):
            b.assign(X[k], 2.0)
        report = check_program(b.build())
        assert report.verdict == Verdict.UNKNOWN

    def test_dimension_separation(self):
        # Writes to different rows of a 2-D array.
        b = ProgramBuilder("p")
        X = b.output("X", (4, 8))
        k = b.index("k")
        with b.loop(k, 0, 7):
            b.assign(X[0, k], 1.0)
        with b.loop(k, 0, 7):
            b.assign(X[1, k], 2.0)
        assert check_program(b.build()).ok


class TestOnKernels:
    @pytest.mark.parametrize(
        "name",
        [
            "hydro_fragment",
            "iccg",
            "tri_diagonal",
            "equation_of_state",
            "first_sum",
            "first_diff",
            "hydro_2d",
            "linear_recurrence",
            "diff_predictors",
            "planckian",
            "pic_1d_fragment",
        ],
    )
    def test_registered_kernels_never_flagged(self, name):
        """No Livermore kernel in the suite is a definite violation."""
        from repro.kernels import get_kernel

        kernel = get_kernel(name)
        program, _ = kernel.build(n=64 if name == "iccg" else 50)
        report = check_program(program)
        assert report.verdict in (Verdict.OK, Verdict.UNKNOWN)
        assert not report.violations()

    def test_report_renders(self):
        report = check_program(accumulation_program())
        text = str(report)
        assert "violation" in text
