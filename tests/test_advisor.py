"""Partitioning advisor (§9: compiler-selectable scheme & page size)."""

from __future__ import annotations

import pytest

from repro.bench import kernel_trace
from repro.core import (
    AccessClass,
    BlockPartition,
    ModuloPartition,
    advise,
    advise_trace,
)
from repro.kernels import get_kernel


@pytest.fixture(scope="module")
def hydro_advice():
    program, inputs = get_kernel("hydro_fragment").build(n=1000)
    return advise(program, inputs)


class TestAdvise:
    def test_grid_fully_evaluated(self, hydro_advice):
        # 4 schemes x 4 page sizes by default.
        assert len(hydro_advice.candidates) == 16

    def test_best_minimises_objective(self, hydro_advice):
        best = hydro_advice.best
        assert all(best.objective <= c.objective for c in hydro_advice.candidates)

    def test_class_is_attached(self, hydro_advice):
        assert hydro_advice.access_class is AccessClass.SKEWED

    def test_improvement_over_baseline_nonnegative(self, hydro_advice):
        assert hydro_advice.improvement_over("modulo", 32) >= 0.0

    def test_improvement_unknown_baseline(self, hydro_advice):
        with pytest.raises(KeyError):
            hydro_advice.improvement_over("modulo", 1024)

    def test_table_marks_recommendation(self, hydro_advice):
        text = hydro_advice.table()
        assert "<== recommended" in text
        assert "hydro_fragment" in text

    def test_matched_kernel_any_scheme_is_zero_remote(self):
        program, inputs = get_kernel("pic_1d_fragment").build(n=500)
        advice = advise(program, inputs)
        assert advice.best.remote_pct == 0.0

    def test_custom_grid(self):
        program, inputs = get_kernel("first_diff").build(n=300)
        advice = advise(
            program,
            inputs,
            page_sizes=(32,),
            schemes=(ModuloPartition(), BlockPartition()),
        )
        assert len(advice.candidates) == 2
        assert advice.page_size == 32


class TestAdviseTrace:
    def test_block_wins_for_skewed_no_cache(self):
        """§9's own observation: the division scheme beats modulo for
        certain loops — neighbour pages share owners, so the skew-11
        boundary reads become local."""
        program, inputs = get_kernel("hydro_fragment").build(n=1000)
        trace = kernel_trace(program, inputs)
        advice = advise_trace(
            "hydro_fragment",
            trace,
            AccessClass.SKEWED,
            cache_elems=0,
            page_sizes=(32,),
            schemes=(ModuloPartition(), BlockPartition()),
        )
        assert advice.scheme.name == "block"

    def test_n_pes_respected(self):
        program, inputs = get_kernel("first_diff").build(n=300)
        trace = kernel_trace(program, inputs)
        advice = advise_trace(
            "first_diff", trace, AccessClass.SKEWED, n_pes=4,
            page_sizes=(32,),
        )
        assert advice.candidates  # ran without error at 4 PEs
