"""Timed-machine memory semantics: deferred reads and partial pages.

These tests hand-craft traces with TraceBuilder to force the two §3/§8
mechanisms that natural kernels only exercise incidentally:

* a request for a cell whose producer has not executed yet must park at
  the owner (deferred read) and resume after the write;
* a page fetched while partially filled must be *re-fetched* when a
  later read touches a cell produced after the snapshot ("a single page
  might have to be fetched more than once if that page is only
  partially filled at the time of the first request", §8).
"""

from __future__ import annotations

from repro.core import MachineConfig, simulate
from repro.ir import TraceBuilder
from repro.machine import CostModel, TimedMachine

PS = 4  # page size used throughout


def make_trace(instances, arrays):
    """instances: list of (write (arr, flat), reads [(arr, flat), ...])."""
    tb = TraceBuilder([a for a, _ in arrays], [s for _, s in arrays])
    for (w_arr, w_flat), reads in instances:
        for r_arr, r_flat in reads:
            tb.record_read(tb.array_id(r_arr), r_flat)
        tb.commit_instance(0, tb.array_id(w_arr), w_flat, False)
    return tb.freeze()


def pe0_filler(count):
    """Writes to Z cells in even pages — all owned by PE 0 (modulo, 2 PEs)."""
    cells = [
        page * PS + off
        for page in (0, 2, 4, 6)
        for off in range(PS)
    ]
    return [(("Z", cells[i]), []) for i in range(count)]


class TestDeferredReads:
    def test_consumer_waits_for_producer(self):
        """PE1 reaches its read of X[0] long before PE0 (stuck behind
        filler work) produces it — the request must defer, not fail.

        The consumer follows the producer in *program* order (a valid
        sequential schedule), but PE1 has no earlier work of its own, so
        in machine time the request arrives first.  PE0 additionally
        starts with a remote read of initialisation data, so it yields
        the event loop before producing X[0]."""
        arrays = [("X", 2 * PS), ("Y", 2 * PS), ("Z", 8 * PS)]
        # PE0's opener reads Y[PS+3]: never written (init data, §3) but
        # remote, forcing PE0 to stall across an event boundary.
        opener = [(("Z", 0), [("Y", PS + 3)])]
        filler = pe0_filler(16)[1:]  # Z[0] already used by the opener
        instances = (
            opener + filler + [(("X", 0), [])] + [(("Y", PS), [("X", 0)])]
        )
        trace = make_trace(instances, arrays)
        cfg = MachineConfig(n_pes=2, page_size=PS, cache_elems=0)
        result = TimedMachine(trace, cfg, mode="blocking").run()
        assert result.deferred_reads == 1
        # Two remote reads: PE0's opener plus the deferred consumer read.
        assert result.stats.remote_reads == 2

    def test_deferred_read_resumes_after_write_time(self):
        arrays = [("X", 2 * PS), ("Y", 2 * PS), ("Z", 8 * PS)]
        filler = pe0_filler(16)
        instances = filler + [(("X", 0), [])] + [(("Y", PS), [("X", 0)])]
        trace = make_trace(instances, arrays)
        cfg = MachineConfig(n_pes=2, page_size=PS, cache_elems=0)
        costs = CostModel()
        result = TimedMachine(trace, cfg, costs=costs, mode="blocking").run()
        # PE1 cannot finish before the producer's write completes.
        producer_time = (len(filler) + 1) * (
            costs.compute_per_statement + costs.write
        )
        assert result.per_pe_finish[1] > producer_time


class TestPartialPages:
    def test_stale_snapshot_forces_refetch(self):
        """PE1 caches X page 0 while only X[0] is defined; a later read
        of X[1] (produced afterwards) must re-fetch the page."""
        arrays = [("X", 2 * PS), ("Y", 2 * PS), ("Z", 8 * PS)]
        instances = (
            [(("X", 0), [])]                        # PE0 defines X[0]
            + [(("Y", PS), [("X", 0)])]             # PE1 fetches page 0 (partial)
            + pe0_filler(16)                        # PE0 grinds away
            + [(("X", 1), [])]                      # X[1] defined late
            + [(("Y", PS + 1), [("X", 1)])]         # PE1 reads X[1]: stale page
        )
        trace = make_trace(instances, arrays)
        cfg = MachineConfig(n_pes=2, page_size=PS, cache_elems=8 * PS)
        result = TimedMachine(trace, cfg, mode="blocking").run()
        assert result.refetches >= 1
        # Both reads crossed the network: snapshot + refetch.
        assert result.stats.remote_reads == 2

    def test_complete_page_is_not_refetched(self):
        """If every cell was defined at fetch time, later reads hit."""
        arrays = [("X", 2 * PS), ("Y", 2 * PS)]
        instances = (
            [(("X", i), []) for i in range(PS)]       # PE0 fills page 0
            + [(("Y", PS), [("X", 0)])]               # PE1 fetches page 0
            + [(("Y", PS + 1), [("X", 1)])]           # hits the snapshot
            + [(("Y", PS + 2), [("X", 2)])]
        )
        trace = make_trace(instances, arrays)
        cfg = MachineConfig(n_pes=2, page_size=PS, cache_elems=8 * PS)
        result = TimedMachine(trace, cfg, mode="blocking").run()
        assert result.refetches == 0
        assert result.stats.remote_reads == 1
        assert result.stats.cached_reads == 2

    def test_untimed_simulator_sees_no_refetches(self):
        """The untimed model is order-free: the same trace shows one
        remote read per page, which is exactly the gap the timed model
        was built to expose (§8)."""
        arrays = [("X", 2 * PS), ("Y", 2 * PS), ("Z", 8 * PS)]
        instances = (
            [(("X", 0), [])]
            + [(("Y", PS), [("X", 0)])]
            + pe0_filler(16)
            + [(("X", 1), [])]
            + [(("Y", PS + 1), [("X", 1)])]
        )
        trace = make_trace(instances, arrays)
        cfg = MachineConfig(n_pes=2, page_size=PS, cache_elems=8 * PS)
        untimed = simulate(trace, cfg)
        timed = TimedMachine(trace, cfg, mode="blocking").run()
        assert untimed.stats.remote_reads == 1
        assert timed.stats.remote_reads == 2  # refetch visible only timed


class TestInitializationData:
    def test_never_written_cells_are_available_from_time_zero(self):
        """Cells absent from the write set are §3 initialisation data."""
        arrays = [("X", 2 * PS), ("Y", 2 * PS)]
        instances = [(("Y", PS), [("X", 3)])]  # X[3] never written
        trace = make_trace(instances, arrays)
        cfg = MachineConfig(n_pes=2, page_size=PS, cache_elems=0)
        result = TimedMachine(trace, cfg).run()
        assert result.deferred_reads == 0
        assert result.stats.remote_reads == 1
