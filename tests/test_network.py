"""Network topologies: closed-form distances validated against networkx."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.machine import (
    Bus,
    Crossbar,
    Hypercube,
    Mesh2D,
    Ring,
    Torus2D,
    canonical_topology,
    make_topology,
    topology_names,
)


class TestFactory:
    def test_names(self):
        for name in ("bus", "crossbar", "ring", "mesh2d", "torus2d", "hypercube"):
            n = 8
            topo = make_topology(name, n)
            assert topo.n_pes == n
            assert topo.name == name
            assert name in topology_names()

    def test_aliases(self):
        assert canonical_topology("mesh") == "mesh2d"
        assert canonical_topology("torus") == "torus2d"
        assert make_topology("mesh", 8).name == "mesh2d"
        assert make_topology("torus", 8).name == "torus2d"

    def test_unknown(self):
        with pytest.raises(KeyError):
            make_topology("zigzag", 8)
        with pytest.raises(KeyError):
            canonical_topology("zigzag")

    def test_hypercube_needs_power_of_two(self):
        with pytest.raises(ValueError):
            Hypercube(12)

    def test_needs_pes(self):
        with pytest.raises(ValueError):
            Ring(0)

    def test_torus_default_grid_is_full(self):
        assert (Torus2D(8).rows, Torus2D(8).cols) == (4, 2)
        assert (Torus2D(16).rows, Torus2D(16).cols) == (4, 4)
        assert (Torus2D(5).rows, Torus2D(5).cols) == (5, 1)  # prime: a ring

    def test_torus_rejects_partial_grid(self):
        with pytest.raises(ValueError):
            Torus2D(10, cols=4)


@pytest.mark.parametrize(
    "topo",
    [
        Ring(9),
        Ring(2),
        Mesh2D(12, cols=4),
        Mesh2D(16),
        Hypercube(16),
        Crossbar(6),
        Torus2D(12, cols=4),
        Torus2D(16),
        Torus2D(8),
        Torus2D(5),
    ],
    ids=lambda t: f"{t.name}-{t.n_pes}",
)
class TestClosedFormsAgainstNetworkx:
    def test_hops_match_shortest_paths(self, topo):
        graph = topo.graph()
        lengths = dict(nx.all_pairs_shortest_path_length(graph))
        for src in range(topo.n_pes):
            for dst in range(topo.n_pes):
                assert topo.hops(src, dst) == lengths[src][dst], (
                    f"{topo.name}: hops({src},{dst})"
                )

    def test_routes_have_hop_length_and_connect(self, topo):
        for src in range(topo.n_pes):
            for dst in range(topo.n_pes):
                route = topo.route(src, dst)
                assert len(route) == topo.hops(src, dst)
                if route:
                    assert route[0][0] == src
                    assert route[-1][1] == dst
                    for (a, b), (c, d) in zip(route, route[1:]):
                        assert b == c

    def test_route_links_are_edges(self, topo):
        edges = {tuple(sorted(e)) for e in topo.edges()}
        for src in range(topo.n_pes):
            for dst in range(topo.n_pes):
                for link in topo.route(src, dst):
                    assert tuple(sorted(link)) in edges


class TestBus:
    def test_single_hop_everywhere(self):
        bus = Bus(8)
        assert bus.hops(0, 7) == 1
        assert bus.hops(3, 3) == 0

    def test_all_traffic_shares_the_medium(self):
        bus = Bus(4)
        bus.record(0, 1)
        bus.record(2, 3)
        assert list(bus.link_traffic.values()) == [2]


class TestTraffic:
    def test_record_accumulates_per_link(self):
        ring = Ring(4)
        ring.record(0, 2)  # route 0-1-2 (or 0-3-2): 2 links
        summary = ring.contention_summary()
        assert summary["messages_per_link_max"] == 1.0
        assert sum(ring.link_traffic.values()) == 2

    def test_self_message_is_free(self):
        ring = Ring(4)
        assert ring.record(1, 1) == 0
        assert not ring.link_traffic

    def test_empty_summary(self):
        assert Ring(4).contention_summary()["messages_per_link_max"] == 0.0

    def test_bounds(self):
        with pytest.raises(IndexError):
            Ring(4).record(0, 4)


class TestMesh:
    def test_dimension_order_routing_x_first(self):
        mesh = Mesh2D(16, cols=4)
        route = mesh.route(0, 5)  # (0,0) -> (1,1)
        assert route[0] == (0, 1)  # X step first
        assert route[1] == (1, 5)  # then Y

    def test_default_cols_square(self):
        mesh = Mesh2D(16)
        assert mesh.cols == 4 and mesh.rows == 4


class TestHypercube:
    def test_dimension_count(self):
        assert Hypercube(16).dimensions == 4

    def test_hops_is_popcount(self):
        cube = Hypercube(8)
        assert cube.hops(0b000, 0b111) == 3
        assert cube.hops(0b101, 0b100) == 1
