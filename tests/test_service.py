"""The shared evaluation service: one resident pool, many campaigns.

The tentpole contracts of ``backend="service"``:

* the service is a *facade* — scenario axes, result schema and
  reduction support are the delegate's, and outcomes are bit-identical
  to evaluating on the delegate directly;
* N concurrent campaigns share **one** worker pool (``pool_launches_total``
  stays at 1) with exactly-once evaluation, asserted through the
  process evaluation counter and the store's entry counts;
* the admission queue is bounded — a grid larger than the queue still
  completes, it just trickles in;
* errors raised inside resident workers (including
  :class:`UnsupportedScenarioError`) survive the trip back with their
  structured fields intact.
"""

from __future__ import annotations

import asyncio
import threading
import warnings

import numpy as np
import pytest

from repro.backends import (
    Scenario,
    UnsupportedScenarioError,
    backend_names,
    configure_service,
    evaluate_scenario,
    evaluation_count,
    get_backend,
    get_service,
    shutdown_service,
)
from repro.backends.service import ServiceSaturatedError, _FairQueue
from repro.core import MachineConfig
from repro.engine import (
    CampaignSpec,
    KernelSpec,
    ResultKey,
    TraceStore,
    kernel_trace_key,
    run_campaign,
)


@pytest.fixture(autouse=True)
def fresh_service():
    """Each test starts (and leaves) the service unconfigured."""
    shutdown_service()
    yield
    shutdown_service()
    configure_service()  # restore the defaults for later test modules


def small_spec(name: str = "svc", pes=(1, 2)) -> CampaignSpec:
    return CampaignSpec(
        name=name,
        backend="service",
        kernels=(KernelSpec("first_diff", n=96),),
        pes=pes,
        page_sizes=(16,),
        cache_elems=(0, 64),
    )


def unique_points(*specs: CampaignSpec) -> set[ResultKey]:
    keys = set()
    for spec in specs:
        for kernel, scenario in spec.points():
            keys.add(
                ResultKey(
                    trace_digest=kernel_trace_key(
                        kernel.name, n=kernel.n, seed=kernel.seed
                    ).digest,
                    scenario_digest=scenario.digest,
                    backend=scenario.backend,
                )
            )
    return keys


class TestFacade:
    def test_registered(self):
        assert "service" in backend_names()
        assert get_backend("service").name == "service"

    def test_axes_and_schema_follow_the_delegate(self):
        service = get_backend("service")
        untimed = get_backend("untimed")
        assert service.scenario_axes == untimed.scenario_axes
        assert service.result_schema == untimed.result_schema
        assert service.supported_reductions is None

        configure_service(delegate="timed")
        timed = get_backend("timed")
        assert service.scenario_axes == timed.scenario_axes
        assert service.result_schema == timed.result_schema
        assert service.supported_reductions == timed.supported_reductions

    def test_spec_validation_uses_the_delegates_axes(self):
        # The untimed delegate consumes no topology axis: sweeping it
        # through the service is rejected exactly as on untimed.
        with pytest.raises(ValueError, match="not used by backend"):
            CampaignSpec(
                name="x", kernels=("iccg",), backend="service",
                topologies=("mesh", "torus"),
            )
        configure_service(delegate="timed", workers=0)
        CampaignSpec(
            name="x", kernels=("iccg",), backend="service",
            topologies=("mesh", "torus"),
        )

    def test_delegate_validation(self):
        with pytest.raises(ValueError, match="delegate to itself"):
            configure_service(delegate="service")
        with pytest.raises(KeyError, match="unknown backend"):
            configure_service(delegate="wormhole")
        with pytest.raises(ValueError, match="workers"):
            configure_service(workers=-1)
        with pytest.raises(ValueError, match="queue_size"):
            configure_service(queue_size=0)

    def test_outcomes_identical_to_the_delegate(self, hydro_trace):
        configure_service(workers=0)  # inline: physics, not scheduling
        config = MachineConfig(n_pes=4, page_size=32, cache_elems=64)
        via_service = evaluate_scenario(
            hydro_trace, Scenario(config=config, backend="service")
        )
        direct = evaluate_scenario(
            hydro_trace, Scenario(config=config, backend="untimed")
        )
        assert via_service.backend == "service"
        assert np.array_equal(via_service.stats.counts, direct.stats.counts)
        assert via_service.metrics == direct.metrics
        for name in direct.per_pe:
            assert np.array_equal(
                via_service.per_pe[name], direct.per_pe[name]
            )

    def test_unsupported_scenario_error_crosses_the_service(
        self, hydro_trace
    ):
        """A strategy no backend has heard of (smuggled past the
        config validator — every valid one is modelled now) hits the
        delegate's backstop inside a pool worker and must come back
        with its structured fields intact."""
        configure_service(delegate="timed", workers=1)
        config = MachineConfig(n_pes=2, page_size=32)
        object.__setattr__(config, "reduction_strategy", "tree")
        scenario = Scenario(config=config, backend="service")
        with pytest.raises(UnsupportedScenarioError) as excinfo:
            get_backend("service").evaluate(hydro_trace, scenario)
        # The structured fields survived the worker → parent pickle.
        assert excinfo.value.backend == "timed"
        assert excinfo.value.knob == "reduction_strategy"
        assert excinfo.value.value == "tree"
        assert excinfo.value.supported == ("host", "subrange")


class TestSharedPool:
    def test_two_concurrent_campaigns_share_one_pool_exactly_once(
        self, tmp_path
    ):
        """The acceptance criterion: two campaigns, one resident pool,
        every unique point evaluated exactly once (store counters)."""
        configure_service(workers=1)
        store = TraceStore(tmp_path / "store")
        specs = {
            "a": small_spec("svc-a", pes=(1, 2, 4)),
            "b": small_spec("svc-b", pes=(2, 4, 8)),
        }
        expected = unique_points(*specs.values())
        before = evaluation_count()
        results: dict[str, object] = {}
        errors: list[BaseException] = []

        def drive(name: str) -> None:
            try:
                results[name] = run_campaign(
                    specs[name], store=store, parallel=True
                )
            except BaseException as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)

        threads = [
            threading.Thread(target=drive, args=(name,)) for name in specs
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=300)
        assert not errors
        assert sorted(results) == ["a", "b"]

        # Exactly-once: the evaluation counter (parent + merged worker
        # counts) covers every unique point once, the store holds one
        # entry per point, and the pool was launched exactly once.
        assert evaluation_count() - before == len(expected)
        assert store.n_results() == len(expected)
        stats = get_service().stats()
        assert stats["pool_launches_total"] <= 1  # 0 when forced inline
        assert stats["completed_total"] == stats["submitted_total"]
        for result in results.values():
            assert result.executor.startswith("service[")

        # Both campaigns match isolated serial baselines bit for bit.
        for name, spec in specs.items():
            baseline = run_campaign(
                spec,
                store=TraceStore(tmp_path / f"base-{name}"),
                parallel=False,
            )
            assert results[name].identical(baseline)

    def test_bounded_queue_still_completes_large_grids(self, tmp_path):
        configure_service(workers=0, queue_size=2)
        spec = small_spec("svc-q", pes=(1, 2, 4, 8))
        result = run_campaign(
            spec, store=TraceStore(tmp_path / "store"), parallel=True
        )
        assert len(result) == spec.n_points
        stats = get_service().stats()
        assert stats["completed_total"] == spec.n_points
        assert stats["queue_high_water"] <= 2

    def test_second_run_replays_from_cache(self, tmp_path):
        configure_service(workers=0)
        spec = small_spec("svc-cache")
        store = TraceStore(tmp_path / "store")
        first = run_campaign(spec, store=store, parallel=True)
        before = evaluation_count()
        again = run_campaign(spec, store=store, parallel=True)
        assert evaluation_count() == before
        assert f"cache[{spec.n_points}/{spec.n_points}]" in again.executor
        assert again.identical(first)

    def test_cached_results_do_not_survive_a_delegate_switch(
        self, tmp_path
    ):
        """Service results are cached under ``service:<delegate>``:
        switching delegates must re-evaluate with the new physics,
        never replay the old delegate's outcomes."""
        configure_service(workers=0, delegate="untimed")
        spec = CampaignSpec(
            name="svc-delegate",
            backend="service",
            kernels=(KernelSpec("first_diff", n=96),),
            pes=(1, 2),
            page_sizes=(16,),
            cache_elems=(64,),
        )
        store = TraceStore(tmp_path / "store")
        untimed_run = run_campaign(spec, store=store, parallel=False)
        assert "page_fetches" in untimed_run.records[0].metrics

        configure_service(workers=0, delegate="timed")
        before = evaluation_count()
        timed_run = run_campaign(spec, store=store, parallel=False)
        # Every point re-evaluated (no stale cache hits), and the
        # metrics are the timed machine's, not the untimed ones.
        assert evaluation_count() - before == spec.n_points
        assert "finish_time" in timed_run.records[0].metrics
        assert "page_fetches" not in timed_run.records[0].metrics

        # Switching back replays the original delegate's cache.
        configure_service(workers=0, delegate="untimed")
        before = evaluation_count()
        replay = run_campaign(spec, store=store, parallel=False)
        assert evaluation_count() == before
        assert replay.identical(untimed_run)

    def test_delegate_switch_mid_campaign_skips_caching(self, tmp_path):
        """Reconfiguring the delegate between planning and iteration
        must not file the new delegate's physics under the planned
        cache namespace — the stream warns and caches nothing."""
        configure_service(workers=0, delegate="untimed")
        spec = small_spec("svc-drift")
        store = TraceStore(tmp_path / "store")
        stream = run_campaign(spec, store=store, parallel=True, stream=True)
        configure_service(workers=0, delegate="timed")
        with pytest.warns(RuntimeWarning, match="cache identity"):
            result = stream.result()
        assert len(result) == spec.n_points
        # Honest records (the timed delegate really evaluated them)...
        assert "finish_time" in result.records[0].metrics
        # ...but nothing cached under the stale 'service:untimed' keys.
        assert store.n_results() == 0
        assert store.active_leases() == 0

    def test_serial_path_round_trips_through_the_service(self, tmp_path):
        configure_service(workers=0)
        spec = small_spec("svc-serial")
        result = run_campaign(
            spec, store=TraceStore(tmp_path / "store"), parallel=False
        )
        assert result.executor == "serial"
        assert len(result) == spec.n_points
        assert get_service().stats()["completed_total"] == spec.n_points

    def test_parallel_grid_rejects_mixed_dispatching_backends(
        self, hydro_trace
    ):
        """One parallel grid, one set of physics: mixing the service
        with a direct backend is refused loudly — never evaluated
        under the wrong delegate or inside nested pools."""
        from repro.engine import run_grid

        scenarios = [
            Scenario(config=MachineConfig(n_pes=2, page_size=32),
                     backend="service"),
            Scenario(config=MachineConfig(n_pes=2, page_size=32),
                     backend="untimed"),
        ]
        with pytest.raises(ValueError, match="mix dispatching"):
            run_grid(hydro_trace, scenarios, parallel=True)
        # Serial mixed grids dispatch per scenario and stay correct.
        configure_service(workers=0)
        outcomes = run_grid(hydro_trace, scenarios, parallel=False)
        assert [o.backend for o in outcomes] == ["service", "untimed"]
        assert outcomes[0].metrics == outcomes[1].metrics

    def test_in_flight_deduplication_shares_one_future(self, hydro_trace):
        configure_service(workers=0)
        service = get_service()
        scenario = Scenario(
            config=MachineConfig(n_pes=4, page_size=32), backend="service"
        )
        futures = [
            service.submit(hydro_trace, scenario) for _ in range(4)
        ]
        outcomes = {id(f.result()) for f in futures}
        stats = service.stats()
        # All four submissions resolved; later ones shared the first's
        # future whenever it was still in flight.
        assert stats["completed_total"] + stats["shared_total"] == 4
        assert len(outcomes) <= stats["completed_total"]

    def test_service_repr_and_stats_shape(self):
        configure_service(workers=0, queue_size=7, delegate="untimed")
        service = get_service()
        assert "EvalService" in repr(service)
        stats = service.stats()
        for field in (
            "submitted_total", "completed_total", "failed_total",
            "shared_total", "pool_launches_total", "queue_high_water",
            "in_flight", "workers", "queue_size", "delegate", "mode",
        ):
            assert field in stats
        assert stats["mode"] == "inline"
        assert stats["queue_size"] == 7

    def test_close_with_inflight_backlog_terminates_promptly(
        self, hydro_trace
    ):
        """Shutdown with queued work must not hang the join, leak the
        loop thread, relaunch a pool, or leave futures unresolved."""
        import time

        configure_service(workers=1, queue_size=256)
        service = get_service()
        futures = [
            service.submit(
                hydro_trace,
                Scenario(
                    config=MachineConfig(n_pes=pes, page_size=page),
                    backend="service",
                ),
            )
            for pes in (1, 2, 4, 8)
            for page in (16, 32, 64, 128)
        ]
        launches_before = service.stats()["pool_launches_total"]
        started = time.monotonic()
        service.close()
        assert time.monotonic() - started < 8.0  # no join-timeout hang
        assert not service._thread.is_alive()
        # The backlog was failed, not evaluated by a resurrected pool.
        assert service.stats()["pool_launches_total"] == launches_before
        for future in futures:
            assert future.done()

    def test_closed_service_rejects_submissions(self, hydro_trace):
        configure_service(workers=0)
        service = get_service()
        service.close()
        with pytest.raises(RuntimeError, match="closed"):
            service.submit(
                hydro_trace,
                Scenario(
                    config=MachineConfig(n_pes=2, page_size=32),
                    backend="service",
                ),
            )

    def test_pool_worker_death_degrades_inline_and_recovers(
        self, hydro_trace
    ):
        """Kill the resident pool's worker under a queued batch: every
        future still resolves (inline fallback), the queue never
        wedges, and later submissions keep completing."""
        configure_service(workers=1)
        service = get_service()

        def scenario(pes: int) -> Scenario:
            return Scenario(
                config=MachineConfig(n_pes=pes, page_size=32),
                backend="service",
            )

        # First job launches the pool; its worker pids become visible.
        service.submit(hydro_trace, scenario(1)).result(timeout=120)
        workers = list(service._pool._processes.values())
        assert workers
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            futures = [
                service.submit(hydro_trace, scenario(pes))
                for pes in (2, 4, 8)
            ]
            for proc in workers:
                proc.kill()
            outcomes = [f.result(timeout=120) for f in futures]
            # The queue is not wedged: post-mortem submissions work.
            late = service.submit(hydro_trace, scenario(16)).result(
                timeout=120
            )
        assert all(o.backend == "service" for o in outcomes)
        assert late.backend == "service"
        assert service.mode == "inline"
        assert any("pool broke" in str(w.message) for w in caught)
        # No silent losses: everything submitted either completed or
        # was shared; nothing is left in flight.
        stats = service.stats()
        assert stats["in_flight"] == 0
        assert stats["completed_total"] + stats["shared_total"] >= 5


class TestFairQueue:
    def test_round_robin_across_campaigns(self):
        """A big backlog cannot starve a later arrival: buckets are
        served alternately, FIFO within each campaign."""

        async def scenario():
            queue = _FairQueue(16)
            for i in range(4):
                await queue.put("big", f"big{i}")
            for i in range(2):
                await queue.put("late", f"late{i}")
            return [await queue.get() for _ in range(6)]

        order = asyncio.run(scenario())
        assert order == ["big0", "late0", "big1", "late1", "big2", "big3"]

    def test_global_bound_blocks_and_frees(self):
        async def scenario():
            queue = _FairQueue(2)
            await queue.put("a", 1)
            await queue.put("b", 2)
            blocked = asyncio.ensure_future(queue.put("a", 3))
            await asyncio.sleep(0.01)
            assert not blocked.done()  # full: the third put waits
            assert await queue.get() == 1
            await asyncio.wait_for(blocked, timeout=5)
            assert queue.qsize() == 2

        asyncio.run(scenario())

    def test_max_campaigns_admission_control(self):
        async def scenario():
            queue = _FairQueue(8, max_campaigns=1)
            await queue.put("a", 1)
            with pytest.raises(ServiceSaturatedError, match="admission"):
                await queue.put("b", 2)
            await queue.put("a", 3)  # the admitted campaign still queues
            assert queue.campaigns() == 1
            # Draining a's bucket frees the slot for b.
            assert await queue.get() == 1
            assert await queue.get() == 3
            await queue.put("b", 4)
            assert await queue.get() == 4

        asyncio.run(scenario())

    def test_max_campaigns_config_plumbs_through(self):
        configure_service(workers=0, max_campaigns=3)
        assert get_service().max_campaigns == 3
        with pytest.raises(ValueError, match="max_campaigns"):
            configure_service(max_campaigns=0)


class TestStoreCoordination:
    """Bare ``evaluate_scenario`` calls coordinate through the store.

    ``ServiceBackend.evaluate`` addresses each point by the trace's
    content digest and takes the result-claim lease service-side, so
    one-off evaluations share the campaign machinery: repeats are
    cache hits, failures release their claim.
    """

    @pytest.fixture()
    def own_store(self, tmp_path):
        from repro.engine import set_default_store

        store = TraceStore(tmp_path / "svc-store")
        set_default_store(store)
        yield store
        set_default_store(None)  # conftest's session store resumes

    def test_repeat_evaluation_is_a_store_hit(self, hydro_trace, own_store):
        configure_service(workers=0)
        scenario = Scenario(
            config=MachineConfig(n_pes=4, page_size=32), backend="service"
        )
        first = evaluate_scenario(hydro_trace, scenario)
        assert own_store.n_results() == 1
        assert own_store.active_leases() == 0  # published ⇒ released
        service = get_service()
        completed = service.stats()["completed_total"]
        again = evaluate_scenario(hydro_trace, scenario)
        stats = service.stats()
        assert stats["store_hits_total"] == 1
        assert stats["completed_total"] == completed  # nothing re-ran
        assert again.metrics == first.metrics
        assert np.array_equal(again.stats.counts, first.stats.counts)

    def test_result_is_addressed_by_content_digest(
        self, hydro_trace, own_store
    ):
        configure_service(workers=0)
        scenario = Scenario(
            config=MachineConfig(n_pes=2, page_size=16), backend="service"
        )
        evaluate_scenario(hydro_trace, scenario)
        key = ResultKey(
            trace_digest=hydro_trace.content_digest,
            scenario_digest=scenario.digest,
            backend="service:untimed",
        )
        cached = own_store.lookup_result(key, count=False)
        assert cached is not None
        assert cached.backend == "service"

    def test_failed_evaluation_releases_its_claim(
        self, hydro_trace, own_store
    ):
        """A job that raises must abandon the claim lease — a wedged
        lease would make every retry defer to a corpse."""
        configure_service(workers=0, delegate="timed")
        config = MachineConfig(n_pes=2, page_size=32)
        object.__setattr__(config, "reduction_strategy", "tree")
        with pytest.raises(UnsupportedScenarioError):
            get_backend("service").evaluate(
                hydro_trace, Scenario(config=config, backend="service")
            )
        assert own_store.active_leases() == 0
        assert own_store.n_results() == 0  # nothing published
        # The point is computable again once the knob is fixed.
        ok = get_backend("service").evaluate(
            hydro_trace,
            Scenario(
                config=MachineConfig(n_pes=2, page_size=32),
                backend="service",
            ),
        )
        assert ok.backend == "service"
