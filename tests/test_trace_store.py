"""Trace serialization and the persistent trace store."""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine import (
    TraceKey,
    TraceStore,
    build_trace,
    default_store,
    interpretation_count,
    kernel_trace_cached,
    set_default_store,
)
from repro.ir import TraceBuilder
from repro.ir.trace import TRACE_FORMAT_VERSION, Trace


def multi_array_trace() -> Trace:
    """Three arrays, an empty-reads instance, and a reduction."""
    tb = TraceBuilder(["X", "Y", "Z"], [10, 20, 7])
    tb.record_read(1, 5)
    tb.record_read(2, 6)
    tb.commit_instance(0, 0, 3, False)
    tb.commit_instance(0, 0, 4, False)  # no reads
    tb.record_read(0, 3)
    tb.commit_instance(1, 1, 19, True)
    return tb.freeze()


class TestRoundTrip:
    def test_exact_round_trip(self, tmp_path):
        trace = multi_array_trace()
        path = trace.save(tmp_path / "t.npz")
        loaded = Trace.load(path)
        assert loaded.array_names == trace.array_names
        assert loaded.array_sizes == trace.array_sizes
        for column in (
            "stmt_ids",
            "w_arr",
            "w_flat",
            "r_ptr",
            "r_arr",
            "r_flat",
            "reduction_mask",
        ):
            mine = getattr(trace, column)
            theirs = getattr(loaded, column)
            assert mine.dtype == theirs.dtype, column
            assert np.array_equal(mine, theirs), column
        assert trace.identical(loaded)
        assert loaded.identical(trace)

    def test_kernel_trace_round_trip(self, hydro_trace, tmp_path):
        path = hydro_trace.save(tmp_path / "hydro.npz")
        assert hydro_trace.identical(Trace.load(path))

    def test_empty_trace_round_trip(self, tmp_path):
        trace = TraceBuilder([], []).freeze()
        loaded = Trace.load(trace.save(tmp_path / "empty.npz"))
        assert loaded.n_instances == 0
        assert loaded.n_reads == 0
        assert trace.identical(loaded)

    def test_save_creates_parent_dirs(self, tmp_path):
        path = multi_array_trace().save(tmp_path / "a" / "b" / "t.npz")
        assert path.is_file()

    def test_identical_detects_differences(self, tmp_path):
        trace = multi_array_trace()
        other = Trace.load(trace.save(tmp_path / "t.npz"))
        tampered = type(other)(
            array_names=other.array_names,
            array_sizes=other.array_sizes,
            stmt_ids=other.stmt_ids,
            w_arr=other.w_arr,
            w_flat=other.w_flat + 1,
            r_ptr=other.r_ptr,
            r_arr=other.r_arr,
            r_flat=other.r_flat,
            reduction_mask=other.reduction_mask,
        )
        assert not trace.identical(tampered)

    def test_version_mismatch_rejected(self, tmp_path, monkeypatch):
        trace = multi_array_trace()
        path = trace.save(tmp_path / "t.npz")
        monkeypatch.setattr(
            "repro.ir.trace.TRACE_FORMAT_VERSION", TRACE_FORMAT_VERSION + 1
        )
        with pytest.raises(ValueError, match="format version"):
            Trace.load(path)

    def test_garbage_file_rejected(self, tmp_path):
        path = tmp_path / "bad.npz"
        path.write_bytes(b"not a zip archive")
        with pytest.raises(Exception):
            Trace.load(path)


class TestTraceKey:
    def test_params_change_the_digest(self):
        a = TraceKey.make("hydro_fragment", n=100)
        b = TraceKey.make("hydro_fragment", n=200)
        assert a.digest != b.digest
        assert a.filename != b.filename

    def test_param_order_is_canonical(self):
        a = TraceKey.make("k", n=5, seed=1)
        b = TraceKey.make("k", seed=1, n=5)
        assert a == b
        assert a.digest == b.digest

    def test_filename_is_safe(self):
        key = TraceKey.make("weird/kernel name!", n=1)
        assert "/" not in key.filename
        assert key.filename.endswith(".npz")


class TestStore:
    def test_miss_builds_then_hits(self, tmp_path):
        store = TraceStore(tmp_path)
        key = TraceKey.make("synthetic", n=3)
        calls = []

        def builder():
            calls.append(1)
            return multi_array_trace()

        first = store.get(key, builder)
        second = store.get(key, builder)
        assert len(calls) == 1
        assert first is second  # memory layer
        assert store.counters.misses == 1
        assert store.counters.memory_hits == 1
        assert key in store
        assert len(store) == 1

    def test_disk_hit_across_instances(self, tmp_path):
        key = TraceKey.make("synthetic", n=3)
        TraceStore(tmp_path).get(key, multi_array_trace)
        fresh = TraceStore(tmp_path)

        def explode():
            raise AssertionError("warm store must not rebuild")

        loaded = fresh.get(key, explode)
        assert fresh.counters.disk_hits == 1
        assert loaded.identical(multi_array_trace())

    def test_corrupt_entry_is_rebuilt(self, tmp_path):
        store = TraceStore(tmp_path)
        key = TraceKey.make("synthetic", n=3)
        store.path_for(key).parent.mkdir(parents=True, exist_ok=True)
        store.path_for(key).write_bytes(b"garbage")
        trace = store.get(key, multi_array_trace)
        assert store.counters.misses == 1
        assert trace.identical(Trace.load(store.path_for(key)))

    def test_clear(self, tmp_path):
        store = TraceStore(tmp_path)
        store.get(TraceKey.make("a"), multi_array_trace)
        store.clear()
        assert len(store) == 0
        assert TraceKey.make("a") not in store


class TestAcquisitionPath:
    def test_kernel_trace_cached_interprets_once(self, tmp_path):
        store = TraceStore(tmp_path)
        before = interpretation_count()
        first = kernel_trace_cached("first_diff", n=64, store=store)
        assert interpretation_count() == before + 1
        again = kernel_trace_cached("first_diff", n=64, store=store)
        assert interpretation_count() == before + 1
        assert first is again
        # A cold process over the same root replays the file: zero
        # interpreter executions on a warm store.
        warm = TraceStore(tmp_path)
        replayed = kernel_trace_cached("first_diff", n=64, store=warm)
        assert interpretation_count() == before + 1
        assert replayed.identical(first)

    def test_default_n_and_explicit_default_share_an_entry(self, tmp_path):
        from repro.kernels import get_kernel

        store = TraceStore(tmp_path)
        kernel_trace_cached("first_diff", store=store)
        kernel_trace_cached(
            "first_diff", n=get_kernel("first_diff").default_n, store=store
        )
        assert store.counters.misses == 1
        assert store.counters.memory_hits == 1

    def test_build_trace_counts_interpretations(self, matched_program):
        program, inputs = matched_program
        before = interpretation_count()
        build_trace(program, inputs)
        assert interpretation_count() == before + 1

    def test_default_store_override(self, tmp_path):
        store = TraceStore(tmp_path)
        previous = default_store()
        set_default_store(store)
        try:
            assert default_store() is store
        finally:
            set_default_store(previous)

    def test_default_store_env(self, tmp_path, monkeypatch):
        previous = default_store()  # session isolation store
        set_default_store(None)
        try:
            monkeypatch.setenv("REPRO_TRACE_STORE", str(tmp_path / "env"))
            assert default_store().root == tmp_path / "env"
        finally:
            set_default_store(previous)

    def test_store_files_live_under_root_only(self, tmp_path):
        store = TraceStore(tmp_path / "root")
        kernel_trace_cached("first_diff", n=32, store=store)
        files = [p for p in (tmp_path / "root").iterdir()]
        assert len(files) == 1
        assert files[0].suffix == ".npz"
