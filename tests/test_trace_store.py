"""Trace serialization and the persistent (sharded) trace store."""

from __future__ import annotations

import json

import numpy as np
import pytest
from hypothesis import given, settings

from repro.engine import (
    TraceKey,
    TraceStore,
    build_trace,
    default_store,
    interpretation_count,
    kernel_trace_cached,
    kernel_trace_key,
    set_default_store,
    shard_of,
)
from repro.ir import TraceBuilder
from repro.ir.trace import TRACE_FORMAT_VERSION, Trace
from strategies import traces

_STORE_EXAMPLES = max(200, settings.default.max_examples)


def multi_array_trace() -> Trace:
    """Three arrays, an empty-reads instance, and a reduction."""
    tb = TraceBuilder(["X", "Y", "Z"], [10, 20, 7])
    tb.record_read(1, 5)
    tb.record_read(2, 6)
    tb.commit_instance(0, 0, 3, False)
    tb.commit_instance(0, 0, 4, False)  # no reads
    tb.record_read(0, 3)
    tb.commit_instance(1, 1, 19, True)
    return tb.freeze()


class TestRoundTrip:
    def test_exact_round_trip(self, tmp_path):
        trace = multi_array_trace()
        path = trace.save(tmp_path / "t.npz")
        loaded = Trace.load(path)
        assert loaded.array_names == trace.array_names
        assert loaded.array_sizes == trace.array_sizes
        for column in (
            "stmt_ids",
            "w_arr",
            "w_flat",
            "r_ptr",
            "r_arr",
            "r_flat",
            "reduction_mask",
        ):
            mine = getattr(trace, column)
            theirs = getattr(loaded, column)
            assert mine.dtype == theirs.dtype, column
            assert np.array_equal(mine, theirs), column
        assert trace.identical(loaded)
        assert loaded.identical(trace)

    def test_kernel_trace_round_trip(self, hydro_trace, tmp_path):
        path = hydro_trace.save(tmp_path / "hydro.npz")
        assert hydro_trace.identical(Trace.load(path))

    def test_empty_trace_round_trip(self, tmp_path):
        trace = TraceBuilder([], []).freeze()
        loaded = Trace.load(trace.save(tmp_path / "empty.npz"))
        assert loaded.n_instances == 0
        assert loaded.n_reads == 0
        assert trace.identical(loaded)

    def test_save_creates_parent_dirs(self, tmp_path):
        path = multi_array_trace().save(tmp_path / "a" / "b" / "t.npz")
        assert path.is_file()

    def test_identical_detects_differences(self, tmp_path):
        trace = multi_array_trace()
        other = Trace.load(trace.save(tmp_path / "t.npz"))
        tampered = type(other)(
            array_names=other.array_names,
            array_sizes=other.array_sizes,
            stmt_ids=other.stmt_ids,
            w_arr=other.w_arr,
            w_flat=other.w_flat + 1,
            r_ptr=other.r_ptr,
            r_arr=other.r_arr,
            r_flat=other.r_flat,
            reduction_mask=other.reduction_mask,
        )
        assert not trace.identical(tampered)

    def test_version_mismatch_rejected(self, tmp_path, monkeypatch):
        trace = multi_array_trace()
        path = trace.save(tmp_path / "t.npz")
        monkeypatch.setattr(
            "repro.ir.trace.TRACE_FORMAT_VERSION", TRACE_FORMAT_VERSION + 1
        )
        with pytest.raises(ValueError, match="format version"):
            Trace.load(path)

    def test_garbage_file_rejected(self, tmp_path):
        path = tmp_path / "bad.npz"
        path.write_bytes(b"not a zip archive")
        with pytest.raises(Exception):
            Trace.load(path)


class TestTraceKey:
    def test_params_change_the_digest(self):
        a = TraceKey.make("hydro_fragment", n=100)
        b = TraceKey.make("hydro_fragment", n=200)
        assert a.digest != b.digest
        assert a.filename != b.filename

    def test_param_order_is_canonical(self):
        a = TraceKey.make("k", n=5, seed=1)
        b = TraceKey.make("k", seed=1, n=5)
        assert a == b
        assert a.digest == b.digest

    def test_filename_is_safe(self):
        key = TraceKey.make("weird/kernel name!", n=1)
        assert "/" not in key.filename
        assert key.filename.endswith(".npz")


class TestStore:
    def test_miss_builds_then_hits(self, tmp_path):
        store = TraceStore(tmp_path)
        key = TraceKey.make("synthetic", n=3)
        calls = []

        def builder():
            calls.append(1)
            return multi_array_trace()

        first = store.get(key, builder)
        second = store.get(key, builder)
        assert len(calls) == 1
        assert first is second  # memory layer
        assert store.counters.misses == 1
        assert store.counters.memory_hits == 1
        assert key in store
        assert len(store) == 1

    def test_disk_hit_across_instances(self, tmp_path):
        key = TraceKey.make("synthetic", n=3)
        TraceStore(tmp_path).get(key, multi_array_trace)
        fresh = TraceStore(tmp_path)

        def explode():
            raise AssertionError("warm store must not rebuild")

        loaded = fresh.get(key, explode)
        assert fresh.counters.disk_hits == 1
        assert loaded.identical(multi_array_trace())

    def test_corrupt_entry_is_rebuilt(self, tmp_path):
        store = TraceStore(tmp_path)
        key = TraceKey.make("synthetic", n=3)
        store.path_for(key).parent.mkdir(parents=True, exist_ok=True)
        store.path_for(key).write_bytes(b"garbage")
        trace = store.get(key, multi_array_trace)
        assert store.counters.misses == 1
        assert trace.identical(Trace.load(store.path_for(key)))

    def test_clear(self, tmp_path):
        store = TraceStore(tmp_path)
        store.get(TraceKey.make("a"), multi_array_trace)
        store.clear()
        assert len(store) == 0
        assert TraceKey.make("a") not in store


class TestAcquisitionPath:
    def test_kernel_trace_cached_interprets_once(self, tmp_path):
        store = TraceStore(tmp_path)
        before = interpretation_count()
        first = kernel_trace_cached("first_diff", n=64, store=store)
        assert interpretation_count() == before + 1
        again = kernel_trace_cached("first_diff", n=64, store=store)
        assert interpretation_count() == before + 1
        assert first is again
        # A cold process over the same root replays the file: zero
        # interpreter executions on a warm store.
        warm = TraceStore(tmp_path)
        replayed = kernel_trace_cached("first_diff", n=64, store=warm)
        assert interpretation_count() == before + 1
        assert replayed.identical(first)

    def test_default_n_and_explicit_default_share_an_entry(self, tmp_path):
        from repro.kernels import get_kernel

        store = TraceStore(tmp_path)
        kernel_trace_cached("first_diff", store=store)
        kernel_trace_cached(
            "first_diff", n=get_kernel("first_diff").default_n, store=store
        )
        assert store.counters.misses == 1
        assert store.counters.memory_hits == 1

    def test_build_trace_counts_interpretations(self, matched_program):
        program, inputs = matched_program
        before = interpretation_count()
        build_trace(program, inputs)
        assert interpretation_count() == before + 1

    def test_default_store_override(self, tmp_path):
        store = TraceStore(tmp_path)
        previous = default_store()
        set_default_store(store)
        try:
            assert default_store() is store
        finally:
            set_default_store(previous)

    def test_default_store_env(self, tmp_path, monkeypatch):
        previous = default_store()  # session isolation store
        set_default_store(None)
        try:
            monkeypatch.setenv("REPRO_TRACE_STORE", str(tmp_path / "env"))
            assert default_store().root == tmp_path / "env"
        finally:
            set_default_store(previous)

    def test_default_store_budget_env(self, tmp_path, monkeypatch):
        previous = default_store()  # session isolation store
        set_default_store(None)
        try:
            monkeypatch.setenv("REPRO_TRACE_STORE", str(tmp_path / "env"))
            monkeypatch.setenv("REPRO_STORE_MAX_BYTES", "12345")
            assert default_store().max_bytes == 12345
            # Budget changes reach the memoised instance too.
            monkeypatch.setenv("REPRO_STORE_MAX_BYTES", "54321")
            assert default_store().max_bytes == 54321
            # Garbage budgets are ignored with a warning, never fatal.
            monkeypatch.setenv("REPRO_STORE_MAX_BYTES", "lots")
            with pytest.warns(RuntimeWarning, match="ignoring invalid"):
                assert default_store().max_bytes is None
        finally:
            set_default_store(previous)

    def test_store_files_live_under_sharded_root(self, tmp_path):
        root = tmp_path / "root"
        store = TraceStore(root)
        kernel_trace_cached("first_diff", n=32, store=store)
        key = kernel_trace_key("first_diff", n=32)
        # Sharded layout: the artifact sits in its two-hex-char prefix
        # directory under traces/, next to the index — nothing else.
        path = store.path_for(key)
        assert path.is_file()
        assert path.parent.name == shard_of(key.digest)
        assert path.parent.parent == root / "traces"
        assert (root / "index.json").is_file()
        assert not list(root.glob("*.npz"))  # no flat-layout artifacts


class TestShardedIndex:
    def test_index_is_versioned_json_with_entry_metadata(self, tmp_path):
        store = TraceStore(tmp_path)
        kernel_trace_cached("first_diff", n=32, store=store)
        data = json.loads((tmp_path / "index.json").read_text())
        assert data["index_format"] == 1
        key = kernel_trace_key("first_diff", n=32)
        entry = data["entries"][key.ref]
        assert entry["kind"] == "trace"
        assert entry["path"].startswith(f"traces/{shard_of(key.digest)}/")
        assert entry["bytes"] == store.path_for(key).stat().st_size
        assert entry["atime"] > 0
        assert entry["ctime"] > 0

    def test_corrupted_index_is_rebuilt_from_shards(self, tmp_path):
        store = TraceStore(tmp_path)
        trace = kernel_trace_cached("first_diff", n=32, store=store)
        (tmp_path / "index.json").write_text("{ not json at all")
        fresh = TraceStore(tmp_path)
        assert len(fresh) == 1  # recovered by scanning the shards

        def explode():
            raise AssertionError("recovered store must not rebuild")

        key = kernel_trace_key("first_diff", n=32)
        assert fresh.get(key, explode).identical(trace)
        # And the rebuilt index is valid JSON again.
        data = json.loads((tmp_path / "index.json").read_text())
        assert key.ref in data["entries"]

    def test_unindexed_file_at_canonical_path_is_adopted(self, tmp_path):
        """Crash between artifact write and index flush: the file is
        addressable and gets re-indexed on first lookup."""
        store = TraceStore(tmp_path)
        trace = kernel_trace_cached("first_diff", n=32, store=store)
        key = kernel_trace_key("first_diff", n=32)
        data = json.loads((tmp_path / "index.json").read_text())
        del data["entries"][key.ref]
        (tmp_path / "index.json").write_text(json.dumps(data))
        fresh = TraceStore(tmp_path)
        assert fresh.load(key) is not None
        assert len(fresh) == 1  # adopted back into the index

    def test_stale_entry_for_vanished_file_is_dropped(self, tmp_path):
        store = TraceStore(tmp_path)
        kernel_trace_cached("first_diff", n=32, store=store)
        key = kernel_trace_key("first_diff", n=32)
        store.path_for(key).unlink()
        fresh = TraceStore(tmp_path)
        assert len(fresh) == 0
        assert fresh.load(key) is None


def _save_as_v1(trace: Trace, path) -> None:
    """Write a faithful legacy (format-v1, flat-layout) shard."""
    import repro.ir.trace as trace_mod

    saved = trace_mod.TRACE_FORMAT_VERSION
    trace_mod.TRACE_FORMAT_VERSION = 1
    try:
        trace.save(path, compact=False)
    finally:
        trace_mod.TRACE_FORMAT_VERSION = saved


def _stencil_trace(n: int = 100) -> Trace:
    tb = TraceBuilder(["a", "b"], [n + 2, n + 2])
    for i in range(n):
        tb.record_read(0, i)
        tb.record_read(0, i + 2)
        tb.commit_instance(0, 1, i + 1, False)
    return tb.freeze()


def _shard_meta(path) -> dict:
    with np.load(path, allow_pickle=False) as data:
        return json.loads(str(data["meta"]))


class TestStoreFormatV2:
    """Format-v2 (super-op layout) interop with legacy v1 shards."""

    @settings(max_examples=_STORE_EXAMPLES, deadline=None)
    @given(trace=traces())
    def test_v1_shards_load_bit_identically(self, trace):
        """Every v1 trace reads back bit-identically (columns, dtypes
        and digest) under the v2 reader — no migration step."""
        import tempfile
        from pathlib import Path

        with tempfile.TemporaryDirectory() as tmp:
            path = Path(tmp) / "t.npz"
            _save_as_v1(trace, path)
            assert _shard_meta(path)["format_version"] == 1
            loaded = Trace.load(path)
        assert trace.identical(loaded)
        assert trace.content_digest == loaded.content_digest

    def test_index_rebuild_adopts_mixed_shards(self, tmp_path):
        """A wiped index.json is rebuilt from a shard tree holding
        both legacy v1 and compacted v2 files."""
        store = TraceStore(tmp_path)
        legacy_key = TraceKey.make("legacy", n=3)
        legacy = multi_array_trace()
        store.put(legacy_key, legacy)
        _save_as_v1(legacy, store.path_for(legacy_key))

        v2_key = TraceKey.make("stencil", n=100)
        stencil = _stencil_trace()
        store.put(v2_key, stencil)
        store.compact_traces(refs=[v2_key.ref])

        assert _shard_meta(store.path_for(legacy_key))["format_version"] == 1
        v2_meta = _shard_meta(store.path_for(v2_key))
        assert v2_meta["format_version"] == TRACE_FORMAT_VERSION
        assert v2_meta["layout"] == "superops"

        (tmp_path / "index.json").unlink()
        fresh = TraceStore(tmp_path)
        assert len(fresh) == 2

        def explode():
            raise AssertionError("rebuilt store must not re-interpret")

        assert fresh.get(legacy_key, explode).identical(legacy)
        recovered = fresh.get(v2_key, explode)
        assert recovered.identical(stencil)
        assert recovered.attached_superops() is not None
        data = json.loads((tmp_path / "index.json").read_text())
        assert {legacy_key.ref, v2_key.ref} <= set(data["entries"])

    def test_compact_traces_reports_and_shrinks(self, tmp_path):
        store = TraceStore(tmp_path)
        key = TraceKey.make("stencil", n=1000)
        trace = _stencil_trace(n=1000)
        store.put(key, trace)
        _save_as_v1(trace, store.path_for(key))  # pin the flat layout
        bytes_flat = store.path_for(key).stat().st_size

        (report,) = store.compact_traces()
        assert report["ref"] == key.ref
        assert report["bytes_before"] == bytes_flat
        assert report["bytes_after"] < bytes_flat
        assert report["n_ops"] == 1
        assert report["coverage"] == 1.0
        # The index tracks the rewritten byte size.
        data = json.loads((tmp_path / "index.json").read_text())
        assert data["entries"][key.ref]["bytes"] == report["bytes_after"]


class TestMigration:
    def test_flat_store_migrates_losslessly_on_first_open(self, tmp_path):
        trace = multi_array_trace()
        key = TraceKey.make("legacy_kernel", n=3)
        trace.save(tmp_path / key.filename)  # pre-sharding layout
        store = TraceStore(tmp_path)

        def explode():
            raise AssertionError("migrated store must not rebuild")

        assert store.get(key, explode).identical(trace)
        assert not list(tmp_path.glob("*.npz"))  # moved into its shard
        assert store.path_for(key).is_file()
        assert store.counters.disk_hits == 1


class TestEvictionGC:
    def test_gc_without_budget_is_a_noop_report(self, tmp_path):
        store = TraceStore(tmp_path)
        kernel_trace_cached("first_diff", n=32, store=store)
        report = store.gc()
        assert report.evicted == []
        assert report.total_bytes == store.total_bytes() > 0

    def test_auto_gc_enforces_construction_budget(self, tmp_path):
        store = TraceStore(tmp_path, max_bytes=1)
        kernel_trace_cached("first_diff", n=32, store=store)
        kernel_trace_cached("first_diff", n=64, store=store)
        # Each put ran GC: at most one entry (the newest, which alone
        # exceeds 1 byte but was written after the pass freed the rest)
        # can remain on disk.
        assert len(store) <= 1
        assert store.counters.evictions >= 1

    def test_gc_stops_at_the_budget_never_below(self, tmp_path):
        store = TraceStore(tmp_path)
        for n in (32, 48, 64, 96):
            kernel_trace_cached("first_diff", n=n, store=store)
        total = store.total_bytes()
        budget = total - 1  # forces exactly one eviction
        report = store.gc(max_bytes=budget)
        assert len(report.evicted) == 1
        assert report.total_bytes <= budget
        # Un-evicting the victim would break the budget: GC did not
        # over-evict below max_bytes.
        _kind, _ref, nbytes = report.evicted[0]
        assert report.total_bytes + nbytes > budget

    def test_lru_order_and_policy_validation(self, tmp_path):
        with pytest.raises(ValueError, match="eviction policy"):
            TraceStore(tmp_path, policy="belady")
        store = TraceStore(tmp_path)
        old = kernel_trace_key("first_diff", n=32)
        new = kernel_trace_key("first_diff", n=64)
        kernel_trace_cached("first_diff", n=32, store=store)
        kernel_trace_cached("first_diff", n=64, store=store)
        # Touch the older entry so the *other* one becomes LRU.
        store.get(old, lambda: (_ for _ in ()).throw(AssertionError()))
        report = store.gc(max_bytes=store.total_bytes() - 1)
        assert [ref for _k, ref, _b in report.evicted] == [new.ref]
        assert old in store


class TestStoreStatsCLI:
    def test_store_stats_reports_shards_and_counters(self, tmp_path, capsys):
        from repro.cli import main

        store = TraceStore(tmp_path)
        kernel_trace_cached("first_diff", n=32, store=store)
        assert main(["store", "stats", "--root", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "trace store stats" in out
        assert "1 entries" in out
        assert "memory_hits" in out
        assert "evictions" in out

    def test_store_stats_json(self, tmp_path, capsys):
        from repro.cli import main

        store = TraceStore(tmp_path)
        kernel_trace_cached("first_diff", n=32, store=store)
        assert main(["store", "stats", "--root", str(tmp_path), "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["trace_entries"] == 1
        assert data["result_entries"] == 0
        assert data["index_format"] == 1
        assert data["total_bytes"] > 0
        # Legacy nested keys are gone from the JSON document entirely.
        assert "traces" not in data

    def test_store_gc_cli_enforces_budget(self, tmp_path, capsys):
        from repro.cli import main

        store = TraceStore(tmp_path)
        kernel_trace_cached("first_diff", n=32, store=store)
        kernel_trace_cached("first_diff", n=64, store=store)
        assert main(
            ["store", "gc", "--root", str(tmp_path), "--max-bytes", "1"]
        ) == 0
        out = capsys.readouterr().out
        assert "evicted" in out
        assert TraceStore(tmp_path).total_bytes() == 0

    def test_store_gc_cli_without_budget_explains(self, tmp_path, capsys):
        from repro.cli import main

        TraceStore(tmp_path)
        assert main(["store", "gc", "--root", str(tmp_path)]) == 0
        assert "no disk budget" in capsys.readouterr().out
