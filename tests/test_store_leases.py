"""Cross-process claim leases: lock files, stealing, crash recovery.

The PR-3 claim machinery made concurrent *streams* (threads) build
every store entry exactly once; these tests pin down its cross-process
extension: lock-file leases under ``<root>/leases/`` with holder pid +
expiry, heartbeat renewal, stealing on expiry (or immediately from a
provably-dead same-host holder), and the flagship two-
``multiprocessing.Process`` races — build-once for results *and*
traces, plus crash-mid-lease recovery.

CI runs this module in the tmpfs-backed stress step alongside the
sharding/stress suites.
"""

from __future__ import annotations

import json
import multiprocessing as mp
import os
import time
from pathlib import Path

import pytest

from repro import obs
from repro.engine import (
    CampaignSpec,
    KernelSpec,
    ResultKey,
    TraceStore,
    kernel_trace_key,
    run_campaign,
)


def ctx() -> mp.context.BaseContext:
    methods = mp.get_all_start_methods()
    return mp.get_context("fork" if "fork" in methods else None)


def write_lease(
    store: TraceStore,
    ref: str,
    *,
    kind: str = "result",
    pid: int | None = None,
    host: str | None = None,
    expires_in: float = 60.0,
) -> Path:
    """Plant a lease file by hand (simulating a foreign holder)."""
    store.lease_dir.mkdir(parents=True, exist_ok=True)
    path = store.lease_dir / f"{kind[0]}-{ref}.json"
    now = time.time()
    path.write_text(
        json.dumps(
            {
                "pid": os.getpid() if pid is None else pid,
                "host": "elsewhere" if host is None else host,
                "acquired": now,
                "expires": now + expires_in,
            }
        )
    )
    return path


def result_key(spec: CampaignSpec) -> ResultKey:
    kernel, scenario = next(spec.points())
    return ResultKey(
        trace_digest=kernel_trace_key(
            kernel.name, n=kernel.n, seed=kernel.seed
        ).digest,
        scenario_digest=scenario.digest,
        backend=scenario.backend,
    )


def spec_a() -> CampaignSpec:
    return CampaignSpec(
        name="lease-a",
        kernels=(KernelSpec("first_diff", n=96),),
        pes=(1, 2, 4),
        page_sizes=(16, 32),
        cache_elems=(0, 64),
    )


def spec_b() -> CampaignSpec:
    # Overlaps spec_a on its full grid and adds the 8-PE column.
    return CampaignSpec(
        name="lease-b",
        kernels=(KernelSpec("first_diff", n=96),),
        pes=(1, 2, 4, 8),
        page_sizes=(16, 32),
        cache_elems=(0, 64),
    )


def unique_points(*specs: CampaignSpec) -> set[ResultKey]:
    keys = set()
    for spec in specs:
        for kernel, scenario in spec.points():
            keys.add(
                ResultKey(
                    trace_digest=kernel_trace_key(
                        kernel.name, n=kernel.n, seed=kernel.seed
                    ).digest,
                    scenario_digest=scenario.digest,
                    backend=scenario.backend,
                )
            )
    return keys


class TestLeaseFiles:
    def test_acquire_release_roundtrip(self, tmp_path):
        store = TraceStore(tmp_path)
        assert store.acquire_lease("ab" * 10)
        info = store.lease_holder("ab" * 10)
        assert info is not None
        assert info["pid"] == os.getpid()
        assert info["expires"] > time.time()
        assert store.active_leases() == 1
        store.release_lease("ab" * 10)
        assert store.lease_holder("ab" * 10) is None
        assert store.active_leases() == 0

    def test_live_foreign_lease_blocks_acquisition(self, tmp_path):
        store = TraceStore(tmp_path)
        # A live pid on a *different host*: the dead-pid shortcut must
        # not apply, so only expiry frees the lease.
        write_lease(store, "cd" * 10, host="elsewhere", expires_in=60.0)
        assert not store.acquire_lease("cd" * 10)

    def test_expired_lease_is_stolen(self, tmp_path):
        store = TraceStore(tmp_path)
        write_lease(store, "ef" * 10, host="elsewhere", expires_in=0.15)
        assert not store.acquire_lease("ef" * 10)
        time.sleep(0.2)
        assert store.acquire_lease("ef" * 10)
        assert store.lease_holder("ef" * 10)["pid"] == os.getpid()

    def test_dead_same_host_holder_is_stolen_immediately(self, tmp_path):
        store = TraceStore(tmp_path)
        child = ctx().Process(target=lambda: None)
        child.start()
        child.join(timeout=30)
        dead_pid = child.pid
        write_lease(
            store, "0a" * 10, pid=dead_pid,
            host=__import__("socket").gethostname() or "localhost",
            expires_in=600.0,
        )
        # Unexpired, but the holder is provably dead on this host.
        assert store.acquire_lease("0a" * 10)

    def test_corrupt_lease_is_treated_as_stale(self, tmp_path):
        store = TraceStore(tmp_path)
        store.lease_dir.mkdir(parents=True, exist_ok=True)
        (store.lease_dir / "r-junk.json").write_text("{not json")
        assert store.lease_holder("junk") is None
        assert store.acquire_lease("junk")

    def test_release_never_drops_a_foreign_lease(self, tmp_path):
        store = TraceStore(tmp_path)
        path = write_lease(store, "1b" * 10, host="elsewhere")
        store.release_lease("1b" * 10)
        assert path.is_file()  # not ours: left in place

    def test_heartbeat_renews_held_leases(self, tmp_path):
        store = TraceStore(tmp_path, lease_ttl_s=0.3)
        assert store.acquire_lease("2c" * 10)
        first = store.lease_holder("2c" * 10)["expires"]
        time.sleep(0.6)  # two renewal intervals past the original TTL
        info = store.lease_holder("2c" * 10)
        assert info is not None, "lease expired despite the heartbeat"
        assert info["expires"] > first
        store.release_lease("2c" * 10)

    def test_trace_and_result_leases_do_not_collide(self, tmp_path):
        store = TraceStore(tmp_path)
        assert store.acquire_lease("3d" * 8, kind="trace")
        assert store.acquire_lease("3d" * 8, kind="result")
        store.release_lease("3d" * 8, kind="trace")
        assert store.lease_holder("3d" * 8, kind="trace") is None
        assert store.lease_holder("3d" * 8, kind="result") is not None
        store.release_lease("3d" * 8)

    def test_rival_stealers_yield_exactly_one_holder(self, tmp_path):
        """Two stores racing to steal one stale lease: the rename-aside
        protocol lets exactly one win; the loser observes the winner's
        fresh lease and backs off."""
        import threading

        stores = [TraceStore(tmp_path), TraceStore(tmp_path)]
        write_lease(stores[0], "6a" * 10, host="elsewhere", expires_in=-1.0)
        barrier = threading.Barrier(2)
        outcomes: list[bool] = [False, False]

        def steal(slot: int) -> None:
            barrier.wait()
            outcomes[slot] = stores[slot].acquire_lease("6a" * 10)

        threads = [
            threading.Thread(target=steal, args=(slot,)) for slot in (0, 1)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert sum(outcomes) == 1
        assert stores[0].lease_holder("6a" * 10)["pid"] == os.getpid()
        # No stale-rename droppings left behind.
        assert not list(stores[0].lease_dir.glob("*.stale-*"))

    def test_release_requires_membership_not_just_pid(self, tmp_path):
        """A store (or thread) that never acquired a lease must not be
        able to unlink a same-process peer's live lease."""
        holder = TraceStore(tmp_path)
        bystander = TraceStore(tmp_path)
        assert holder.acquire_lease("7b" * 10)
        bystander.release_lease("7b" * 10)  # same pid, not the acquirer
        assert holder.lease_holder("7b" * 10) is not None
        holder.release_lease("7b" * 10)
        assert holder.lease_holder("7b" * 10) is None

    def test_trace_get_gives_up_on_a_wedged_foreign_builder(
        self, tmp_path, monkeypatch
    ):
        """A live-but-stuck foreign trace builder delays `get` by at
        most the in-flight timeout; then the trace is built locally."""
        import repro.engine.store as store_module
        from repro.engine import kernel_trace_cached, kernel_trace_key

        monkeypatch.setattr(store_module, "_INFLIGHT_TIMEOUT_S", 1.0)
        store = TraceStore(tmp_path)
        key = kernel_trace_key("first_diff", n=96)
        write_lease(
            store, key.ref, kind="trace", host="elsewhere",
            expires_in=600.0,  # holder stays "alive" for the whole test
        )
        started = time.time()
        trace = kernel_trace_cached("first_diff", n=96, store=store)
        assert trace.n_instances > 0
        assert time.time() - started < 30  # gave up, built locally

    def test_gc_sweeps_stale_lease_files(self, tmp_path):
        """A crashed campaign's expired lease files are retired by the
        next GC pass; live leases are never touched."""
        store = TraceStore(tmp_path)
        write_lease(store, "8c" * 10, host="elsewhere", expires_in=-1.0)
        assert store.acquire_lease("9d" * 10)  # live: ours, renewed
        assert store.sweep_stale_leases() == 1
        assert not (store.lease_dir / f"r-{'8c' * 10}.json").exists()
        assert store.lease_holder("9d" * 10) is not None
        store.release_lease("9d" * 10)
        # gc() runs the sweep as part of every pass.
        write_lease(store, "8c" * 10, host="elsewhere", expires_in=-1.0)
        store.gc()
        assert not (store.lease_dir / f"r-{'8c' * 10}.json").exists()

    def test_stats_count_active_leases(self, tmp_path):
        store = TraceStore(tmp_path)
        assert store.stats()["active_leases"] == 0
        store.acquire_lease("4e" * 10)
        write_lease(store, "5f" * 10, host="elsewhere", expires_in=-1.0)
        assert store.stats()["active_leases"] == 1  # expired one ignored
        store.release_lease("4e" * 10)


def merged_events(stem: Path) -> list[dict]:
    merged = obs.merge(stem)
    assert merged is not None
    return list(obs.read_events(merged))


def count_events(events: list[dict], name: str, **match: object) -> int:
    return sum(
        1
        for event in events
        if event.get("event") == name
        and all(event.get(key) == value for key, value in match.items())
    )


class TestLeaseEventLog:
    """Every lease transition shows up in the merged event log exactly
    once — the telemetry is trustworthy enough to audit the exactly-
    once build protocol from the outside."""

    @pytest.fixture
    def obs_stem(self, tmp_path, monkeypatch):
        stem = tmp_path / "telemetry" / "events"
        monkeypatch.setenv("REPRO_OBS", f"jsonl:{stem}")
        yield stem
        # Drop the sink handle and re-arm env auto-detection so later
        # tests see the (restored) environment, not this test's stem.
        obs.configure(None)

    def test_acquire_and_release_logged_exactly_once(
        self, tmp_path, obs_stem
    ):
        store = TraceStore(tmp_path / "store")
        ref = "ab" * 10
        assert store.acquire_lease(ref)
        store.release_lease(ref)
        events = merged_events(obs_stem)
        assert count_events(events, "lease.acquire", ref=ref) == 1
        assert count_events(events, "lease.release", ref=ref) == 1
        assert count_events(events, "lease.steal") == 0
        assert count_events(events, "lease.expire") == 0

    def test_heartbeat_renewal_logged_exactly_once(
        self, tmp_path, obs_stem
    ):
        # ttl=3.0 → heartbeat ticks every 1.0s and every tick finds
        # remaining < 2/3·ttl, so holding for ~1.5s spans exactly one
        # renewal window.  The renewal is the per-process manifest —
        # ONE event (and one file replace) regardless of how many
        # leases the process holds.
        store = TraceStore(tmp_path / "store", lease_ttl_s=3.0)
        refs = ["2c" * 10, "2d" * 10, "2e" * 10]
        for ref in refs:
            assert store.acquire_lease(ref)
        time.sleep(1.5)
        for ref in refs:
            store.release_lease(ref)
        events = merged_events(obs_stem)
        assert count_events(events, "lease.renew") == 1
        renewal = next(e for e in events if e["event"] == "lease.renew")
        assert renewal["held"] == len(refs)
        assert count_events(events, "lease.expire") == 0

    def test_expired_steal_logged_exactly_once(self, tmp_path, obs_stem):
        store = TraceStore(tmp_path / "store")
        ref = "ef" * 10
        write_lease(store, ref, host="elsewhere", expires_in=-1.0)
        assert store.acquire_lease(ref)
        events = merged_events(obs_stem)
        assert (
            count_events(events, "lease.steal", ref=ref, reason="expired")
            == 1
        )
        assert count_events(events, "lease.acquire", ref=ref) == 1

    def test_crash_recovery_steal_logged_exactly_once(
        self, tmp_path, obs_stem
    ):
        """Two processes: the child acquires and dies mid-build; the
        parent's steal is logged as a single dead-holder event, and
        the merged log stitches both processes' files together."""
        root = str(tmp_path / "store")
        key = result_key(spec_a())
        context = ctx()
        acquired = context.Event()
        child = context.Process(
            target=_crash_holding_lease,
            args=(
                root,
                {
                    "trace_digest": key.trace_digest,
                    "scenario_digest": key.scenario_digest,
                    "backend": key.backend,
                },
                acquired,
            ),
        )
        child.start()
        assert acquired.wait(timeout=60)
        child.kill()
        child.join(timeout=60)

        store = TraceStore(root, lease_ttl_s=60.0)
        deadline = time.time() + 30
        claim = store.claim_result(key)
        while claim is not None and time.time() < deadline:
            claim.wait(timeout=1.0)
            claim = store.claim_result(key)
        assert claim is None
        store.abandon_result_claim(key)

        events = merged_events(obs_stem)
        # The child's acquire (its own per-pid file) plus the parent's
        # post-steal acquire; one dead-holder steal; one release.
        assert count_events(events, "lease.acquire", ref=key.ref) == 2
        assert (
            count_events(
                events, "lease.steal", ref=key.ref, reason="dead-holder"
            )
            == 1
        )
        assert count_events(events, "lease.steal", reason="expired") == 0
        assert count_events(events, "lease.release", ref=key.ref) == 1
        pids = {event["pid"] for event in events}
        assert len(pids) == 2  # both processes contributed


class TestClaimIntegration:
    def test_claim_defers_to_a_foreign_lease(self, tmp_path):
        store = TraceStore(tmp_path)
        key = result_key(spec_a())
        write_lease(store, key.ref, host="elsewhere", expires_in=60.0)
        waiter = store.claim_result(key)
        assert waiter is not None
        assert not waiter.wait(timeout=0.2)  # holder alive, no result
        (store.lease_dir / f"r-{key.ref}.json").unlink()
        assert waiter.wait(timeout=5.0)  # lease gone: caller re-checks
        # Now the claim is winnable.
        assert store.claim_result(key) is None
        store.abandon_result_claim(key)

    def test_owned_claim_creates_and_releases_a_lease(self, tmp_path):
        store = TraceStore(tmp_path)
        key = result_key(spec_a())
        assert store.claim_result(key) is None
        assert store.lease_holder(key.ref) is not None
        store.abandon_result_claim(key)
        assert store.lease_holder(key.ref) is None


def _drive_campaign(root, barrier, queue, which):
    """Child-process body: run one campaign against the shared root."""
    from repro.backends import evaluation_count
    from repro.engine import TraceStore as Store
    from repro.engine import interpretation_count
    from repro.engine import run_campaign as run

    spec = spec_a() if which == "a" else spec_b()
    store = Store(root, lease_ttl_s=10.0)
    barrier.wait(timeout=60)
    ev0, in0 = evaluation_count(), interpretation_count()
    result = run(spec, store=store, parallel=False)
    queue.put(
        {
            "which": which,
            "evaluations": evaluation_count() - ev0,
            "interpretations": interpretation_count() - in0,
            "executor": result.executor,
            "points": len(result),
        }
    )


def _crash_holding_lease(root, key_dict, acquired_event):
    """Child-process body: claim a point, signal, die mid-build."""
    from repro.engine import TraceStore as Store

    store = Store(root, lease_ttl_s=60.0)
    key = ResultKey(**key_dict)
    assert store.claim_result(key) is None
    acquired_event.set()
    time.sleep(60)  # parent kills us first; belt against hangs
    os._exit(0)


class TestTwoProcessRaces:
    def test_two_processes_build_every_entry_exactly_once(
        self, tmp_path, monkeypatch
    ):
        """The flagship: two independent processes, one store root —
        every unique result built once, the trace interpreted once.
        The merged event log tells the same story from the outside."""
        stem = tmp_path / "telemetry" / "events"
        monkeypatch.setenv("REPRO_OBS", f"jsonl:{stem}")
        root = str(tmp_path / "store")
        context = ctx()
        barrier = context.Barrier(2)
        queue = context.Queue()
        processes = [
            context.Process(
                target=_drive_campaign, args=(root, barrier, queue, which)
            )
            for which in ("a", "b")
        ]
        for process in processes:
            process.start()
        reports = [queue.get(timeout=240) for _ in processes]
        for process in processes:
            process.join(timeout=60)
            assert process.exitcode == 0

        expected = unique_points(spec_a(), spec_b())
        total_evals = sum(r["evaluations"] for r in reports)
        total_interps = sum(r["interpretations"] for r in reports)
        assert total_evals == len(expected)
        assert total_interps == 1  # one kernel, interpreted once, ever

        store = TraceStore(root)
        assert store.n_results() == len(expected)
        assert len(store) == 1
        # The loser deferred its overlapping points to the winner.
        assert any(
            "shared[" in r["executor"] or "cache[" in r["executor"]
            for r in reports
        )
        # No leases survive two clean completions.
        assert store.active_leases() == 0
        # The index is parseable and every artifact is where it says.
        data = json.loads(store.index_path.read_text())
        for entry in data["entries"].values():
            assert (store.root / entry["path"]).is_file()

        # Telemetry audit: the merged log shows one trace build ever,
        # both campaigns completing, and no lease left unexplained.
        events = merged_events(stem)
        obs.configure(None)
        assert count_events(events, "trace.build.start") == 1
        assert count_events(events, "trace.build.done") == 1
        assert count_events(events, "campaign.done") == 2
        acquires = count_events(events, "lease.acquire")
        releases = count_events(events, "lease.release")
        expires = count_events(events, "lease.expire")
        assert acquires == releases + expires
        assert {event["pid"] for event in events if
                event["event"] == "campaign.done"} == {
            process.pid for process in processes
        }

    def test_crash_mid_lease_is_recovered(self, tmp_path):
        """A holder that dies mid-build delays rivals, never blocks
        them: its pid is seen dead and the lease is stolen."""
        root = str(tmp_path / "store")
        spec = spec_a()
        key = result_key(spec)
        context = ctx()
        acquired = context.Event()
        child = context.Process(
            target=_crash_holding_lease,
            args=(
                root,
                {
                    "trace_digest": key.trace_digest,
                    "scenario_digest": key.scenario_digest,
                    "backend": key.backend,
                },
                acquired,
            ),
        )
        child.start()
        assert acquired.wait(timeout=60)
        child.kill()  # crash mid-build, lease file left behind
        child.join(timeout=60)

        store = TraceStore(root, lease_ttl_s=60.0)
        assert (store.lease_dir / f"r-{key.ref}.json").is_file()
        # The TTL has 60s to run — but the holder is dead on this
        # host, so the claim is stolen immediately.
        deadline = time.time() + 30
        claim = store.claim_result(key)
        while claim is not None and time.time() < deadline:
            claim.wait(timeout=1.0)
            claim = store.claim_result(key)
        assert claim is None, "dead holder's lease was never stolen"
        store.abandon_result_claim(key)

        # And a full campaign over the same root completes normally.
        result = run_campaign(spec, store=store, parallel=False)
        assert len(result) == spec.n_points
        assert store.active_leases() == 0
