"""Command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_known_commands(self):
        parser = build_parser()
        for argv in (
            ["list"],
            ["figure", "1"],
            ["tables"],
            ["classify", "hydro_fragment"],
            ["sweep", "iccg", "--pes", "4", "8"],
            ["advise", "hydro_2d"],
            ["serve", "--campaign", "spec.json"],
            ["store", "stats"],
        ):
            assert parser.parse_args(argv).fn is not None

    def test_serve_requires_a_campaign_or_listen(self, capsys):
        # The parser accepts a bare `serve` (listen mode has no
        # --campaign), but running it without either flag is a usage
        # error at dispatch time.
        assert build_parser().parse_args(["serve"]).fn is not None
        assert main(["serve"]) == 2
        assert "--campaign" in capsys.readouterr().err


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "hydro_fragment" in out
        assert "LFK#" in out

    def test_classify(self, capsys):
        assert main(["classify", "pic_1d_fragment", "--n", "200"]) == 0
        out = capsys.readouterr().out
        assert "Matched" in out
        assert "agrees" in out

    def test_classify_verbose(self, capsys):
        assert main(["classify", "first_diff", "--n", "200", "-v"]) == 0
        assert "stmt 0" in capsys.readouterr().out

    def test_classify_unknown_kernel(self, capsys):
        assert main(["classify", "fft"]) == 2
        assert "error" in capsys.readouterr().err

    def test_figure_bad_number(self, capsys):
        assert main(["figure", "9"]) == 2

    def test_figure1(self, capsys):
        assert main(["figure", "1"]) == 0
        out = capsys.readouterr().out
        assert "Figure 1" in out
        assert "Cache, ps 32" in out

    def test_sweep(self, capsys):
        assert (
            main(
                [
                    "sweep",
                    "first_diff",
                    "--n", "300",
                    "--pes", "1", "4",
                    "--page-sizes", "32",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "first_diff" in out
        assert "No Cache, ps 32" in out

    def test_sweep_no_cache(self, capsys):
        assert (
            main(
                [
                    "sweep", "first_diff", "--n", "200",
                    "--pes", "4", "--page-sizes", "32", "--cache", "0",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "Cache" in out  # the no-cache series

    def test_sweep_timed_backend_parallel_json(self, capsys, tmp_path):
        """The acceptance command shape: a timed mesh sweep, parallel,
        with backend-tagged JSON records."""
        out_path = tmp_path / "out.json"
        assert (
            main(
                [
                    "sweep", "iccg", "--n", "64",
                    "--backend", "timed", "--topology", "mesh",
                    "--pes", "2", "4", "--page-sizes", "32",
                    "--parallel", "--json", str(out_path),
                ]
            )
            == 0
        )
        captured = capsys.readouterr()
        assert "topology" in captured.out  # record table, timed columns
        assert "[4/4]" in captured.err  # streamed progress line
        data = json.loads(out_path.read_text())
        assert data["backend"] == "timed"
        assert len(data["results"]) == 4
        for row in data["results"]:
            assert row["backend"] == "timed"
            assert row["topology"] == "mesh2d"
            assert "finish_time" in row and "speedup" in row

    def test_sweep_multi_topology_modes(self, capsys):
        assert (
            main(
                [
                    "sweep", "first_diff", "--n", "96",
                    "--backend", "timed",
                    "--topology", "mesh", "torus",
                    "--mode", "blocking", "multithreaded",
                    "--pes", "2", "--page-sizes", "32", "--cache", "0",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "torus2d" in out
        assert "multithreaded" in out

    def test_sweep_untimed_vec_backend(self, capsys):
        """The columnar engine, end to end through the CLI.  It is the
        default backend now, and series-friendly: a plain sweep keeps
        the paper's figure-style table."""
        assert (
            main(
                [
                    "sweep", "first_diff", "--n", "300",
                    "--backend", "untimed-vec",
                    "--pes", "1", "4", "--page-sizes", "32",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "first_diff" in out
        assert "% of reads remote" in out

    def test_sweep_untimed_vec_record_table(self, capsys, tmp_path):
        """A multi-policy grid is not series-friendly — the columnar
        backend's extra metric column lands in the record table."""
        spec = {
            "name": "vec-records",
            "backend": "untimed-vec",
            "kernels": [{"name": "first_diff", "n": 300}],
            "pes": [4],
            "page_sizes": [32],
            "cache_elems": [64],
            "cache_policies": ["lru", "fifo"],
        }
        path = tmp_path / "vec.json"
        path.write_text(json.dumps(spec))
        assert main(["sweep", "--campaign", str(path)]) == 0
        out = capsys.readouterr().out
        assert "first_diff" in out
        assert "page_fetches" in out  # the record table, not the series view
        assert "fifo" in out and "lru" in out

    def test_sweep_unknown_backend(self, capsys):
        assert main(["sweep", "iccg", "--backend", "quantum"]) == 2
        assert "unknown backend" in capsys.readouterr().err

    def test_sweep_service_backend(self, capsys):
        from repro.backends import configure_service, shutdown_service

        shutdown_service()
        configure_service(workers=0)  # inline: no pool in the CLI test
        try:
            assert (
                main(
                    [
                        "sweep", "first_diff", "--n", "200",
                        "--backend", "service",
                        "--pes", "1", "2", "--page-sizes", "32",
                        "--parallel",
                    ]
                )
                == 0
            )
            assert "first_diff" in capsys.readouterr().out
        finally:
            shutdown_service()
            configure_service()

    def _write_spec(self, path, name, pes):
        path.write_text(
            json.dumps(
                {
                    "name": name,
                    "kernels": [{"name": "first_diff", "n": 96}],
                    "pes": pes,
                    "page_sizes": [16],
                    "cache_elems": [0, 64],
                }
            )
        )

    def test_serve_runs_campaigns_over_one_service(self, capsys, tmp_path):
        from repro.backends import configure_service, shutdown_service

        shutdown_service()
        try:
            spec_a, spec_b = tmp_path / "a.json", tmp_path / "b.json"
            self._write_spec(spec_a, "serve-a", [1, 2])
            self._write_spec(spec_b, "serve-b", [2, 4])
            out_path = tmp_path / "serve.json"
            assert (
                main(
                    [
                        "serve",
                        "--campaign", str(spec_a),
                        "--campaign", str(spec_b),
                        "--workers", "0",
                        "--json", str(out_path),
                    ]
                )
                == 0
            )
            out = capsys.readouterr().out
            assert "campaigns over one evaluation service" in out
            assert "service stats" in out
            document = json.loads(out_path.read_text())
            assert len(document["campaigns"]) == 2
            assert document["service"]["completed_total"] >= 1
            for campaign in document["campaigns"]:
                assert campaign["backend"] == "service"
        finally:
            shutdown_service()
            configure_service()

    def test_serve_refuses_to_switch_a_specs_physics(self, capsys, tmp_path):
        """A spec that names a concrete backend is only served when
        the delegate matches — never silently re-evaluated elsewhere."""
        from repro.backends import configure_service, shutdown_service

        spec = tmp_path / "timed.json"
        spec.write_text(
            json.dumps(
                {
                    "name": "serve-timed",
                    "backend": "timed",
                    "kernels": [{"name": "first_diff", "n": 96}],
                    "pes": [2],
                    "page_sizes": [32],
                    "cache_elems": [64],
                }
            )
        )
        try:
            # Default delegate is 'untimed': refusing beats silently
            # evaluating a timed spec on the untimed simulator.
            assert main(["serve", "--campaign", str(spec)]) == 2
            err = capsys.readouterr().err
            assert "timed" in err and "--delegate" in err
            # With the matching delegate the same spec is served.
            assert (
                main(
                    [
                        "serve", "--campaign", str(spec),
                        "--delegate", "timed", "--workers", "0",
                    ]
                )
                == 0
            )
        finally:
            shutdown_service()
            configure_service()

    def test_serve_rejects_a_bad_delegate(self, capsys, tmp_path):
        from repro.backends import configure_service, shutdown_service

        spec = tmp_path / "a.json"
        self._write_spec(spec, "serve-x", [1])
        assert (
            main(
                ["serve", "--campaign", str(spec), "--delegate", "quantum"]
            )
            == 2
        )
        assert "unknown backend" in capsys.readouterr().err
        shutdown_service()
        configure_service()

    def test_advise(self, capsys):
        assert main(["advise", "first_diff", "--n", "300"]) == 0
        assert "recommended" in capsys.readouterr().out

    def test_show(self, capsys):
        assert main(["show", "hydro_fragment", "--n", "10"]) == 0
        out = capsys.readouterr().out
        assert "DO k = 1, 10" in out
        assert "PROGRAM hydro_fragment" in out

    def test_report_parses(self):
        # The full report is exercised end-to-end by the benchmark
        # harness; here we only check the subcommand is wired up.
        args = build_parser().parse_args(["report"])
        assert args.fn is not None
