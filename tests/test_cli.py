"""Command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_known_commands(self):
        parser = build_parser()
        for argv in (
            ["list"],
            ["figure", "1"],
            ["tables"],
            ["classify", "hydro_fragment"],
            ["sweep", "iccg", "--pes", "4", "8"],
            ["advise", "hydro_2d"],
        ):
            assert parser.parse_args(argv).fn is not None


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "hydro_fragment" in out
        assert "LFK#" in out

    def test_classify(self, capsys):
        assert main(["classify", "pic_1d_fragment", "--n", "200"]) == 0
        out = capsys.readouterr().out
        assert "Matched" in out
        assert "agrees" in out

    def test_classify_verbose(self, capsys):
        assert main(["classify", "first_diff", "--n", "200", "-v"]) == 0
        assert "stmt 0" in capsys.readouterr().out

    def test_classify_unknown_kernel(self, capsys):
        assert main(["classify", "fft"]) == 2
        assert "error" in capsys.readouterr().err

    def test_figure_bad_number(self, capsys):
        assert main(["figure", "9"]) == 2

    def test_figure1(self, capsys):
        assert main(["figure", "1"]) == 0
        out = capsys.readouterr().out
        assert "Figure 1" in out
        assert "Cache, ps 32" in out

    def test_sweep(self, capsys):
        assert (
            main(
                [
                    "sweep",
                    "first_diff",
                    "--n", "300",
                    "--pes", "1", "4",
                    "--page-sizes", "32",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "first_diff" in out
        assert "No Cache, ps 32" in out

    def test_sweep_no_cache(self, capsys):
        assert (
            main(
                [
                    "sweep", "first_diff", "--n", "200",
                    "--pes", "4", "--page-sizes", "32", "--cache", "0",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "Cache" in out  # the no-cache series

    def test_sweep_timed_backend_parallel_json(self, capsys, tmp_path):
        """The acceptance command shape: a timed mesh sweep, parallel,
        with backend-tagged JSON records."""
        out_path = tmp_path / "out.json"
        assert (
            main(
                [
                    "sweep", "iccg", "--n", "64",
                    "--backend", "timed", "--topology", "mesh",
                    "--pes", "2", "4", "--page-sizes", "32",
                    "--parallel", "--json", str(out_path),
                ]
            )
            == 0
        )
        captured = capsys.readouterr()
        assert "topology" in captured.out  # record table, timed columns
        assert "[4/4]" in captured.err  # streamed progress line
        data = json.loads(out_path.read_text())
        assert data["backend"] == "timed"
        assert len(data["results"]) == 4
        for row in data["results"]:
            assert row["backend"] == "timed"
            assert row["topology"] == "mesh2d"
            assert "finish_time" in row and "speedup" in row

    def test_sweep_multi_topology_modes(self, capsys):
        assert (
            main(
                [
                    "sweep", "first_diff", "--n", "96",
                    "--backend", "timed",
                    "--topology", "mesh", "torus",
                    "--mode", "blocking", "multithreaded",
                    "--pes", "2", "--page-sizes", "32", "--cache", "0",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "torus2d" in out
        assert "multithreaded" in out

    def test_sweep_unknown_backend(self, capsys):
        assert main(["sweep", "iccg", "--backend", "quantum"]) == 2
        assert "unknown backend" in capsys.readouterr().err

    def test_advise(self, capsys):
        assert main(["advise", "first_diff", "--n", "300"]) == 0
        assert "recommended" in capsys.readouterr().out

    def test_show(self, capsys):
        assert main(["show", "hydro_fragment", "--n", "10"]) == 0
        out = capsys.readouterr().out
        assert "DO k = 1, 10" in out
        assert "PROGRAM hydro_fragment" in out

    def test_report_parses(self):
        # The full report is exercised end-to-end by the benchmark
        # harness; here we only check the subcommand is wired up.
        args = build_parser().parse_args(["report"])
        assert args.fn is not None
