"""Reference interpreter: values, traces, single-assignment enforcement."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ir import (
    ProgramBuilder,
    Ref,
    SingleAssignmentError,
    UndefinedReadError,
    run_program,
)


def build_simple(n=8):
    b = ProgramBuilder("simple")
    X = b.output("X", (n,))
    Y = b.input("Y", (n,))
    k = b.index("k")
    with b.loop(k, 0, n - 1):
        b.assign(X[k], Y[k] + 1)
    return b.build()


class TestValues:
    def test_simple_map(self):
        prog = build_simple()
        y = np.arange(8, dtype=float)
        res = run_program(prog, {"Y": y})
        assert np.array_equal(res.values["X"], y + 1)
        assert res.defined["X"].all()

    def test_counts(self):
        res = run_program(build_simple(), {"Y": np.zeros(8)})
        assert res.writes == 8
        assert res.reads == 8

    def test_scalars_fold_in(self):
        b = ProgramBuilder("scaled")
        X = b.output("X", (4,))
        Y = b.input("Y", (4,))
        Q = b.scalar(Q=2.5)
        k = b.index("k")
        with b.loop(k, 0, 3):
            b.assign(X[k], Q * Y[k])
        res = run_program(b.build(), {"Y": np.ones(4)})
        assert np.allclose(res.values["X"], 2.5)

    def test_triangular_nest(self):
        b = ProgramBuilder("tri")
        X = b.output("X", (5, 5))
        i, j = b.index("i"), b.index("j")
        with b.loop(i, 0, 4):
            with b.loop(j, 0, i):
                b.assign(X[i, j], 1.0)
        res = run_program(b.build(), {})
        assert res.writes == 15  # 1+2+3+4+5
        assert np.array_equal(res.defined["X"], np.tril(np.ones((5, 5))) > 0)


class TestSingleAssignment:
    def test_double_write_raises(self):
        b = ProgramBuilder("dw")
        X = b.output("X", (4,))
        k = b.index("k")
        with b.loop(k, 0, 3):
            b.assign(X[0], k)  # same cell each iteration
        with pytest.raises(SingleAssignmentError, match="second write"):
            run_program(b.build(), {})

    def test_double_write_allowed_when_unchecked(self):
        b = ProgramBuilder("dw")
        X = b.output("X", (4,))
        k = b.index("k")
        with b.loop(k, 0, 3):
            b.assign(X[0], k)
        res = run_program(b.build(), {}, check_sa=False)
        assert res.values["X"][0] == 3  # last write wins

    def test_undefined_read_raises(self):
        b = ProgramBuilder("ur")
        X = b.output("X", (4,))
        b.assign(X[0], Ref("X", [1]))  # X[1] never written
        with pytest.raises(UndefinedReadError, match="undefined cell"):
            run_program(b.build(), {})

    def test_reduction_exempt_from_write_once(self):
        b = ProgramBuilder("red")
        S = b.output("S", (1,))
        Y = b.input("Y", (5,))
        k = b.index("k")
        with b.loop(k, 0, 4):
            b.reduce(S[0], Ref("Y", [k]))
        res = run_program(b.build(), {"Y": np.arange(5.0)})
        assert res.values["S"][0] == 10.0

    def test_reduction_ops(self):
        for op, expected in (("+", 10.0), ("*", 0.0), ("max", 4.0), ("min", 0.0)):
            b = ProgramBuilder("red")
            S = b.output("S", (1,))
            Y = b.input("Y", (5,))
            k = b.index("k")
            with b.loop(k, 0, 4):
                b.reduce(S[0], Ref("Y", [k]), op=op)
            res = run_program(b.build(), {"Y": np.arange(5.0)})
            assert res.values["S"][0] == expected

    def test_seed_hazard_detection(self):
        # Read a seeded cell, then overwrite it: destructive update.
        b = ProgramBuilder("hazard")
        X = b.inout("X", (4,))
        b.assign(X[1], Ref("X", [0]) + 1)
        b.assign(X[0], 5.0)  # overwrites the seed that X[1] consumed
        seeds = np.array([1.0, np.nan, np.nan, np.nan])
        res = run_program(b.build(), {"X": seeds}, check_sa=False)
        assert ("X", 0) in res.seed_hazards

    def test_recurrence_has_no_seed_hazard(self):
        from repro.kernels import get_kernel

        program, inputs = get_kernel("first_sum").build(n=50)
        res = run_program(program, inputs)
        assert res.seed_hazards == []


class TestInputs:
    def test_missing_input_rejected(self):
        with pytest.raises(KeyError, match="missing initial data"):
            run_program(build_simple(), {})

    def test_output_initialisation_rejected(self):
        with pytest.raises(ValueError, match="not allowed"):
            run_program(
                build_simple(), {"Y": np.zeros(8), "X": np.zeros(8)}
            )

    def test_nan_marks_undefined_in_inout(self):
        b = ProgramBuilder("seeded")
        X = b.inout("X", (3,))
        b.assign(X[1], Ref("X", [0]) * 2)
        seeds = np.array([21.0, np.nan, np.nan])
        res = run_program(b.build(), {"X": seeds})
        assert res.values["X"][1] == 42.0
        assert not res.defined["X"][2]

    def test_out_of_bounds_subscript_raises(self):
        b = ProgramBuilder("oob")
        X = b.output("X", (4,))
        Y = b.input("Y", (4,))
        k = b.index("k")
        with b.loop(k, 0, 3):
            b.assign(X[k], Ref("Y", [k + 1]))  # k=3 -> Y[4] out of range
        with pytest.raises(IndexError):
            run_program(b.build(), {"Y": np.zeros(4)})


class TestTraceCollection:
    def test_trace_matches_execution(self):
        prog = build_simple()
        res = run_program(prog, {"Y": np.zeros(8)})
        trace = res.trace
        assert trace.n_instances == 8
        assert trace.n_reads == 8
        x_id = trace.array_id("X")
        assert np.array_equal(
            trace.w_flat[trace.w_arr == x_id], np.arange(8)
        )

    def test_trace_disabled(self):
        res = run_program(build_simple(), {"Y": np.zeros(8)}, collect_trace=False)
        assert res.trace.n_instances == 0
        assert res.writes == 8  # counters still accumulate

    def test_reduction_mask(self):
        b = ProgramBuilder("mix")
        S = b.output("S", (1,))
        X = b.output("X", (3,))
        Y = b.input("Y", (3,))
        k = b.index("k")
        with b.loop(k, 0, 2):
            b.assign(X[k], Ref("Y", [k]))
            b.reduce(S[0], Ref("Y", [k]))
        res = run_program(b.build(), {"Y": np.zeros(3)})
        mask = res.trace.reduction_mask
        assert mask.sum() == 3
        assert not mask[0] and mask[1]
