"""Shared fixtures: small kernels, their traces, and store isolation."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, settings

from repro.bench import kernel_trace
from repro.engine import TraceStore, set_default_store
from repro.ir import ProgramBuilder

# Hypothesis example budgets.  "default" (loaded unless pytest is given
# --hypothesis-profile) keeps the standard budget but drops the
# per-example deadline: the fidelity properties replay whole traces per
# example, and wall time on CI runners is not a correctness signal.
# "ci-deep" is the nightly vec-fuzz budget — an order of magnitude more
# examples, with print_blob so a failing run's reproduction recipe
# lands in the job log next to the uploaded example database.
settings.register_profile("default", deadline=None)
settings.register_profile(
    "ci-deep",
    deadline=None,
    max_examples=1500,
    print_blob=True,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("default")


@pytest.fixture(autouse=True, scope="session")
def _isolated_trace_store(tmp_path_factory):
    """Point the default trace store at a session tmpdir.

    Tests exercise the store-backed figure/table/CLI paths freely
    without ever touching the user's per-machine cache or the working
    directory; within the session, traces are still shared (warm).
    """
    store = TraceStore(tmp_path_factory.mktemp("trace-store"))
    set_default_store(store)
    yield store
    set_default_store(None)


@pytest.fixture
def hydro_small():
    """Hydro Fragment at n=200: (program, inputs)."""
    from repro.kernels import get_kernel

    return get_kernel("hydro_fragment").build(n=200)


@pytest.fixture
def hydro_trace(hydro_small):
    program, inputs = hydro_small
    return kernel_trace(program, inputs)


@pytest.fixture
def matched_program():
    """A tiny matched-class program: X(k) = A(k) + B(k), k = 0..63."""
    b = ProgramBuilder("matched_tiny")
    X = b.output("X", (64,))
    A = b.input("A", (64,))
    B = b.input("B", (64,))
    k = b.index("k")
    with b.loop(k, 0, 63):
        b.assign(X[k], A[k] + B[k])
    rng = np.random.default_rng(7)
    return b.build(), {"A": rng.random(64), "B": rng.random(64)}
