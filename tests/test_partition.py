"""Partition schemes: correctness, balance, and invariants (§2, §9)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.core import (
    BlockCyclicPartition,
    BlockPartition,
    ModuloPartition,
    named_scheme,
)

SCHEMES = [ModuloPartition(), BlockPartition(), BlockCyclicPartition(block=3)]


class TestModulo:
    def test_paper_rule(self):
        # "A page p is allocated to the local memory of PE P if p = P mod N."
        scheme = ModuloPartition()
        for page in range(20):
            assert scheme.owner_of(page, 20, 4) == page % 4

    def test_paper_four_pe_example(self):
        # 100-element arrays, page size 32 -> pages 0..3 on PEs 0..3.
        scheme = ModuloPartition()
        owners = scheme.owners_of(np.arange(4), 4, 4)
        assert owners.tolist() == [0, 1, 2, 3]


class TestBlock:
    def test_contiguous_ranges(self):
        scheme = BlockPartition()
        owners = scheme.owners_of(np.arange(8), 8, 4).tolist()
        assert owners == [0, 0, 1, 1, 2, 2, 3, 3]

    def test_uneven_split_spreads_remainder(self):
        scheme = BlockPartition()
        owners = scheme.owners_of(np.arange(10), 10, 4).tolist()
        # 10 pages over 4 PEs: 3,3,2,2
        assert owners == [0, 0, 0, 1, 1, 1, 2, 2, 3, 3]

    def test_fewer_pages_than_pes(self):
        scheme = BlockPartition()
        owners = scheme.owners_of(np.arange(3), 3, 8).tolist()
        assert owners == [0, 1, 2]

    def test_owner_of_matches_vectorised(self):
        scheme = BlockPartition()
        for page in range(10):
            assert scheme.owner_of(page, 10, 4) == scheme.owners_of(
                np.array([page]), 10, 4
            )[0]


class TestBlockCyclic:
    def test_block_one_is_modulo(self):
        bc = BlockCyclicPartition(block=1)
        mod = ModuloPartition()
        pages = np.arange(40)
        assert np.array_equal(
            bc.owners_of(pages, 40, 8), mod.owners_of(pages, 40, 8)
        )

    def test_block_pattern(self):
        bc = BlockCyclicPartition(block=2)
        assert bc.owners_of(np.arange(8), 8, 2).tolist() == [0, 0, 1, 1, 0, 0, 1, 1]

    def test_invalid_block(self):
        with pytest.raises(ValueError):
            BlockCyclicPartition(block=0)


class TestCommon:
    @pytest.mark.parametrize("scheme", SCHEMES, ids=lambda s: s.name)
    def test_bounds_checked(self, scheme):
        with pytest.raises(IndexError):
            scheme.owner_of(10, 10, 4)
        with pytest.raises(ValueError):
            scheme.owner_of(0, 10, 0)

    @pytest.mark.parametrize("scheme", SCHEMES, ids=lambda s: s.name)
    @given(n_pages=st.integers(1, 300), n_pes=st.integers(1, 64))
    def test_total_and_balanced(self, scheme, n_pages, n_pes):
        """Every page has exactly one owner in range, and page counts
        differ by at most the scheme's natural imbalance."""
        pages = np.arange(n_pages)
        owners = scheme.owners_of(pages, n_pages, n_pes)
        assert owners.min() >= 0 and owners.max() < n_pes
        counts = np.bincount(owners, minlength=n_pes)
        active = counts[counts > 0]
        # modulo/block: imbalance <= 1 page; block-cyclic(b): <= b pages.
        slack = getattr(scheme, "block", 1)
        assert counts.max() - counts[: max(1, min(n_pes, n_pages))].min() <= slack

    @pytest.mark.parametrize("scheme", SCHEMES, ids=lambda s: s.name)
    def test_pages_owned_inverse(self, scheme):
        n_pages, n_pes = 50, 8
        seen = []
        for pe in range(n_pes):
            owned = scheme.pages_owned(pe, n_pages, n_pes)
            assert all(
                scheme.owner_of(int(page), n_pages, n_pes) == pe for page in owned
            )
            seen.extend(owned.tolist())
        assert sorted(seen) == list(range(n_pages))

    @pytest.mark.parametrize("scheme", SCHEMES, ids=lambda s: s.name)
    def test_single_pe_owns_everything(self, scheme):
        owners = scheme.owners_of(np.arange(17), 17, 1)
        assert (owners == 0).all()


class TestNamedScheme:
    def test_lookup(self):
        assert named_scheme("modulo").name == "modulo"
        assert named_scheme("block").name == "block"
        assert named_scheme("block-cyclic:4").block == 4
        assert named_scheme("block-cyclic").block == 2

    def test_unknown(self):
        with pytest.raises(KeyError):
            named_scheme("hilbert")
