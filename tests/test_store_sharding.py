"""Property tests for the sharded store: shard mapping, migration, GC.

Randomized (seeded, Hypothesis-style) rather than example-based: each
property is asserted over a generated population of keys/artifacts so
the invariants hold for the *scheme*, not for one lucky digest.  The
three contracts under test are load-bearing for fleet-scale campaign
traffic:

* the digest → shard mapping is pure and stable (changing it would
  orphan every artifact ever stored);
* opening a legacy flat-layout store migrates every artifact into the
  sharded layout losslessly;
* ``gc()`` enforces the byte budget without over-evicting and never
  evicts an entry while a reader holds it pinned.
"""

from __future__ import annotations

import json
import random
import string

import pytest

from repro.backends import Scenario, evaluate_scenario
from repro.core import MachineConfig
from repro.engine import (
    ResultKey,
    TraceKey,
    TraceStore,
    kernel_trace_cached,
    kernel_trace_key,
    shard_of,
)
from repro.engine.store import _save_outcome
from repro.ir import TraceBuilder
from repro.ir.trace import Trace


def random_key(rng: random.Random) -> TraceKey:
    name = "".join(
        rng.choice(string.ascii_lowercase + "_/ !") for _ in range(rng.randint(1, 12))
    )
    params = {}
    for _ in range(rng.randint(0, 3)):
        pname = rng.choice(["n", "seed", "depth", "width"])
        params[pname] = rng.choice([None, rng.randint(0, 10**6), "x" * rng.randint(1, 5)])
    return TraceKey.make(name, **params)


def random_trace(rng: random.Random) -> Trace:
    n_arrays = rng.randint(1, 3)
    sizes = [rng.randint(4, 32) for _ in range(n_arrays)]
    tb = TraceBuilder([f"A{i}" for i in range(n_arrays)], sizes)
    for _ in range(rng.randint(1, 16)):
        for _ in range(rng.randint(0, 4)):
            arr = rng.randrange(n_arrays)
            tb.record_read(arr, rng.randrange(sizes[arr]))
        arr = rng.randrange(n_arrays)
        tb.commit_instance(
            rng.randrange(4),
            arr,
            rng.randrange(sizes[arr]),
            rng.random() < 0.2,
        )
    return tb.freeze()


class TestShardMappingProperties:
    def test_shard_scheme_is_frozen(self):
        """Regression pin: the mapping is digest[:2], forever —
        changing it would orphan every existing store entry."""
        assert shard_of("abcdef0123456789") == "ab"
        assert shard_of("00ff" * 16) == "00"

    @pytest.mark.parametrize("seed", [7, 19, 23])
    def test_mapping_is_stable_and_two_hex_chars(self, seed, tmp_path):
        rng = random.Random(seed)
        store = TraceStore(tmp_path)
        for _ in range(50):
            key = random_key(rng)
            path_a, path_b = store.path_for(key), store.path_for(key)
            assert path_a == path_b  # pure in the key
            shard = path_a.parent.name
            assert shard == shard_of(key.digest) == key.digest[:2]
            assert len(shard) == 2
            assert all(c in "0123456789abcdef" for c in shard)
            assert path_a.parent.parent.name == "traces"
            # The ref embedded in the filename agrees with the shard.
            assert key.ref.startswith(shard)

    @pytest.mark.parametrize("seed", [3, 11])
    def test_result_keys_shard_the_same_way(self, seed, tmp_path):
        rng = random.Random(seed)
        store = TraceStore(tmp_path)
        for _ in range(30):
            key = ResultKey(
                trace_digest=f"{rng.getrandbits(256):064x}",
                scenario_digest=f"{rng.getrandbits(256):064x}",
                backend=rng.choice(["untimed", "timed", "svc"]),
            )
            path = store.result_path_for(key)
            assert path.parent.name == shard_of(key.digest)
            assert path.parent.parent.name == "results"

    def test_distinct_keys_spread_across_shards(self, tmp_path):
        """Sanity that the fan-out actually fans out: 200 random keys
        land in well more than a handful of the 256 prefixes."""
        rng = random.Random(42)
        store = TraceStore(tmp_path)
        shards = {store.path_for(random_key(rng)).parent.name for _ in range(200)}
        assert len(shards) > 64


class TestMigrationProperties:
    @pytest.mark.parametrize("seed", [5, 17])
    def test_flat_store_migration_is_lossless(self, seed, tmp_path):
        """Every artifact of a randomized legacy store — traces at the
        root, results flat under results/ — survives first-open
        migration byte-exactly and nothing is left behind."""
        rng = random.Random(seed)
        traces = {random_key(rng): random_trace(rng) for _ in range(8)}
        for key, trace in traces.items():
            trace.save(tmp_path / key.filename)  # legacy flat layout

        base = kernel_trace_cached(
            "first_diff", n=64, store=TraceStore(tmp_path / "scratch")
        )
        tkey = kernel_trace_key("first_diff", n=64)
        outcomes = {}
        for _ in range(4):
            scenario = Scenario(
                config=MachineConfig(
                    n_pes=rng.choice([1, 2, 4]),
                    page_size=rng.choice([16, 32]),
                    cache_elems=rng.choice([0, 64]),
                )
            )
            rkey = ResultKey.make(tkey, scenario)
            outcome = evaluate_scenario(base, scenario)
            _save_outcome(tmp_path / "results" / rkey.filename, outcome)
            outcomes[rkey] = outcome

        store = TraceStore(tmp_path)  # first open migrates

        def explode():
            raise AssertionError("migration must be lossless")

        for key, trace in traces.items():
            assert store.get(key, explode).identical(trace)
            assert store.path_for(key).is_file()
        for rkey, outcome in outcomes.items():
            loaded = store.lookup_result(rkey)
            assert loaded is not None and loaded.identical(outcome)
        # Nothing flat remains; every artifact is sharded and indexed.
        assert not list(tmp_path.glob("*.npz"))
        assert not [
            p for p in (tmp_path / "results").iterdir() if p.is_file()
        ]
        assert len(store) == len(traces)
        assert store.n_results() == len(outcomes)
        data = json.loads((tmp_path / "index.json").read_text())
        assert len(data["entries"]) == len(traces) + len(outcomes)

    def test_migration_is_idempotent(self, tmp_path):
        trace = random_trace(random.Random(1))
        key = TraceKey.make("idem", n=1)
        trace.save(tmp_path / key.filename)
        TraceStore(tmp_path)  # migrates
        again = TraceStore(tmp_path)  # re-open: nothing more to move
        assert again.load(key) is not None
        assert len(again) == 1


class TestGCPinProperties:
    def _populated(self, tmp_path) -> tuple[TraceStore, list[TraceKey]]:
        store = TraceStore(tmp_path)
        keys = []
        for n in (32, 48, 64):
            kernel_trace_cached("first_diff", n=n, store=store)
            keys.append(kernel_trace_key("first_diff", n=n))
        return store, keys

    def test_gc_never_evicts_a_pinned_entry(self, tmp_path):
        """A reader's pin outranks the budget: gc leaves the entry on
        disk even when that keeps the store over max_bytes."""
        store, keys = self._populated(tmp_path)
        pinned = keys[0]
        with store.reading(pinned.ref):
            report = store.gc(max_bytes=0)
            assert report.pinned_skipped == 1
            assert store.path_for(pinned).is_file()
            assert report.total_bytes > 0  # still over budget: allowed
            for other in keys[1:]:
                assert not store.path_for(other).is_file()
        # Pin released: the entry is now fair game.
        report = store.gc(max_bytes=0)
        assert [ref for _k, ref, _b in report.evicted] == [pinned.ref]
        assert report.total_bytes == 0

    def test_reads_in_flight_survive_concurrent_gc(self, tmp_path):
        """Interleaved load/gc: a load that began before gc fired must
        return intact data, never a half-unlinked file."""
        import threading

        store, keys = self._populated(tmp_path)
        results: list[Trace | None] = []
        barrier = threading.Barrier(2)

        class SlowReading:
            """Hold the pin briefly so gc provably overlaps the read."""

            def __init__(self, key):
                self.key = key

            def run(self):
                with store.reading(self.key.ref):
                    barrier.wait()
                    trace = store.load(self.key)
                    results.append(trace)

        reader = threading.Thread(target=SlowReading(keys[0]).run)
        reader.start()
        barrier.wait()
        store.gc(max_bytes=0)
        reader.join()
        assert results[0] is not None  # the read completed intact
        # After the reader finished, gc can finally reclaim it.
        store.gc(max_bytes=0)
        assert store.total_bytes() == 0

    @pytest.mark.parametrize("seed", [2, 29])
    def test_gc_budget_is_tight_not_overshot(self, seed, tmp_path):
        """For random budgets: post-gc size ≤ budget, and restoring the
        last victim would break the budget (no over-eviction)."""
        rng = random.Random(seed)
        store, _keys = self._populated(tmp_path)
        total = store.total_bytes()
        for _ in range(5):
            budget = rng.randrange(0, total + 1)
            report = store.gc(max_bytes=budget)
            assert store.total_bytes() <= budget
            if report.evicted:
                _kind, _ref, last_bytes = report.evicted[-1]
                assert report.total_bytes + last_bytes > budget
            # Refill for the next round.
            store.clear()
            store, _keys = self._populated(tmp_path)
            total = store.total_bytes()
