"""The observability layer: events, spans, metrics, profiling, progress.

Unit coverage for :mod:`repro.obs` plus the integration the subsystem
exists for — a campaign run with ``REPRO_OBS`` set produces a merged
JSONL whose span tree covers build -> cache -> evaluate -> reduce for
every grid point, with ~zero instrumentation cost when the sink is
off.
"""

from __future__ import annotations

import io
import json
import os

import pytest

from repro import obs
from repro.obs import events as events_mod
from repro.obs.spans import _NULL_SPAN


@pytest.fixture(autouse=True)
def _reset_obs(monkeypatch):
    """Every test starts and ends with a disabled, unpinned sink —
    even when the surrounding run (e.g. CI's stress step) exported
    ``REPRO_OBS`` globally."""
    monkeypatch.delenv("REPRO_OBS", raising=False)
    obs.configure(None)
    yield
    obs.configure(None)


@pytest.fixture
def stem(tmp_path):
    stem = tmp_path / "events"
    obs.configure(f"jsonl:{stem}")
    return stem


class TestEventSink:
    def test_inactive_by_default(self):
        assert not obs.active()
        assert obs.event_path() is None
        obs.emit("noop")  # must not raise or create files

    def test_bad_spec_is_rejected(self):
        with pytest.raises(ValueError, match="jsonl"):
            obs.configure("statsd:localhost")
        with pytest.raises(ValueError, match="jsonl"):
            obs.configure("jsonl:")

    def test_configure_pins_over_environment(self, tmp_path, monkeypatch):
        pinned = tmp_path / "pinned"
        obs.configure(f"jsonl:{pinned}")
        monkeypatch.setenv("REPRO_OBS", f"jsonl:{tmp_path / 'env'}")
        assert obs.event_path() == pinned.parent / (
            f"pinned-{obs.HOSTNAME}-{os.getpid()}.jsonl"
        )
        obs.configure(None)  # unpin: the env takes over again
        assert obs.event_path() is not None
        assert "env" in obs.event_path().name

    def test_env_changes_are_adopted_lazily(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_OBS", f"jsonl:{tmp_path / 'one'}")
        assert obs.active()
        monkeypatch.setenv("REPRO_OBS", f"jsonl:{tmp_path / 'two'}")
        assert "two" in obs.event_path().name
        monkeypatch.delenv("REPRO_OBS")
        assert not obs.active()

    def test_trailing_jsonl_suffix_is_shed(self, tmp_path):
        obs.configure(f"jsonl:{tmp_path / 'log.jsonl'}")
        assert obs.event_path().name == (
            f"log-{obs.HOSTNAME}-{os.getpid()}.jsonl"
        )

    def test_emit_writes_one_json_line_per_event(self, stem):
        obs.emit("alpha", n=1)
        obs.emit("beta", label="x")
        records = list(obs.read_events(obs.event_path()))
        assert [r["event"] for r in records] == ["alpha", "beta"]
        assert records[0]["n"] == 1
        assert records[0]["pid"] == os.getpid()
        assert records[0]["host"] == obs.HOSTNAME
        assert records[0]["ts"] > 0

    def test_subscriber_without_sink_activates_emission(self):
        seen: list[dict] = []
        obs.subscribe(seen.append)
        try:
            assert obs.active()
            obs.emit("ping", k=2)
        finally:
            obs.unsubscribe(seen.append)
        assert not obs.active()
        assert seen[0]["event"] == "ping" and seen[0]["k"] == 2

    def test_subscriber_exceptions_are_swallowed(self, stem):
        def boom(event):
            raise RuntimeError("subscriber bug")

        obs.subscribe(boom)
        try:
            obs.emit("survives")
        finally:
            obs.unsubscribe(boom)
        assert [r["event"] for r in obs.read_events(obs.event_path())] == [
            "survives"
        ]

    def test_read_events_skips_torn_lines(self, tmp_path):
        path = tmp_path / "torn.jsonl"
        path.write_text(
            '{"event": "good", "ts": 1}\n'
            '{"event": "torn", "ts":\n'
            "\n"
            "[1, 2, 3]\n"
            '{"event": "also-good", "ts": 2}\n'
        )
        assert [r["event"] for r in obs.read_events(path)] == [
            "good",
            "also-good",
        ]

    def test_read_events_missing_file(self, tmp_path):
        assert list(obs.read_events(tmp_path / "absent.jsonl")) == []

    def test_merge_orders_across_processes_without_deleting(
        self, tmp_path
    ):
        # Simulate three processes' files with interleaved timestamps.
        for pid, ts in ((101, 3.0), (202, 1.0), (303, 2.0)):
            (tmp_path / f"ev-{pid}.jsonl").write_text(
                json.dumps({"ts": ts, "pid": pid, "event": "e"}) + "\n"
            )
        merged = obs.merge(tmp_path / "ev")
        assert merged == tmp_path / "ev.jsonl"
        assert [r["pid"] for r in obs.read_events(merged)] == [202, 303, 101]
        # Non-destructive and idempotent.
        assert len(list(tmp_path.glob("ev-*.jsonl"))) == 3
        assert obs.merge(tmp_path / "ev.jsonl") == merged
        assert len(list(obs.read_events(merged))) == 3

    def test_merge_is_idempotent_over_an_already_merged_stem(
        self, tmp_path
    ):
        # A merged file produced for a *narrower* stem (events-hostA)
        # matches the broader stem's part glob (events-*): its records
        # must not be counted twice — once from the raw per-process
        # files and once from the earlier merge product.
        for host, pid, ts in (("hostA", 7, 1.0), ("hostB", 7, 2.0)):
            (tmp_path / f"ev-{host}-{pid}.jsonl").write_text(
                json.dumps(
                    {"ts": ts, "host": host, "pid": pid, "event": "e"}
                )
                + "\n"
            )
        merged = obs.merge(tmp_path / "ev")
        assert len(list(obs.read_events(merged))) == 2
        # Simulate the earlier narrow merge landing in the glob.
        narrow = tmp_path / "ev-hostA.jsonl"
        narrow.write_text((tmp_path / "ev-hostA-7.jsonl").read_text())
        assert obs.merge(tmp_path / "ev") == merged
        assert len(list(obs.read_events(merged))) == 2
        # Re-running over the unchanged layout changes nothing either.
        assert obs.merge(tmp_path / "ev") == merged
        assert len(list(obs.read_events(merged))) == 2

    def test_merge_without_configuration_returns_none(self):
        assert obs.merge() is None

    def test_merge_uses_the_active_sink_by_default(self, stem):
        obs.emit("only")
        merged = obs.merge()
        assert merged == stem.parent / "events.jsonl"
        assert [r["event"] for r in obs.read_events(merged)] == ["only"]


class TestSpans:
    def test_null_span_when_inactive(self):
        assert obs.span("anything") is _NULL_SPAN
        with obs.span("anything") as nothing:
            assert obs.current_span_id() is None
            assert nothing is _NULL_SPAN

    def test_span_event_carries_ids_and_duration(self, stem):
        with obs.span("outer", ref="r1"):
            outer_id = obs.current_span_id()
            with obs.span("inner"):
                assert obs.current_span_id() != outer_id
        assert obs.current_span_id() is None
        spans = {r["name"]: r for r in obs.read_events(obs.event_path())}
        assert spans["inner"]["parent_id"] == spans["outer"]["span_id"]
        assert spans["outer"]["parent_id"] is None
        assert spans["outer"]["ref"] == "r1"
        assert spans["outer"]["dur_s"] >= spans["inner"]["dur_s"] >= 0
        assert spans["outer"]["ok"] and spans["inner"]["ok"]

    def test_span_ids_embed_the_host_and_pid(self, stem):
        with obs.span("tagged"):
            span_id = obs.current_span_id()
        assert span_id.startswith(f"{obs.HOSTNAME}-{os.getpid():x}-")

    def test_exception_marks_span_not_ok_and_unwinds(self, stem):
        with pytest.raises(RuntimeError):
            with obs.span("failing"):
                raise RuntimeError("inside")
        (record,) = obs.read_events(obs.event_path())
        assert record["ok"] is False
        assert obs.current_span_id() is None


class TestMetrics:
    def test_counter_is_monotonic(self):
        counter = obs.Counter("jobs")
        counter.inc()
        counter.inc(4)
        assert counter.snapshot() == {"jobs_total": 5}
        with pytest.raises(ValueError, match="only go up"):
            counter.inc(-1)

    def test_gauge_moves_both_ways(self):
        gauge = obs.Gauge("depth")
        gauge.set(7)
        gauge.inc(2)
        gauge.dec()
        assert gauge.snapshot() == {"depth": 8}

    def test_histogram_summarises(self):
        histogram = obs.Histogram("wall_s")
        for value in (0.5, 0.1, 0.9):
            histogram.observe(value)
        snap = histogram.snapshot()
        assert snap["wall_s_count"] == 3
        assert snap["wall_s_sum"] == pytest.approx(1.5)
        assert snap["wall_s_min"] == 0.1 and snap["wall_s_max"] == 0.9

    def test_registry_get_or_create_and_kind_clash(self):
        registry = obs.MetricsRegistry()
        assert registry.counter("hits") is registry.counter("hits")
        with pytest.raises(TypeError, match="already registered"):
            registry.gauge("hits")

    def test_snapshot_and_prometheus_export(self):
        registry = obs.MetricsRegistry()
        registry.label("policy", "lru")
        registry.counter("hits", "cache hits").inc(3)
        registry.gauge("entries").set(11)
        registry.histogram("wall_s").observe(0.25)
        snap = registry.snapshot()
        assert snap["policy"] == "lru"
        assert snap["hits_total"] == 3
        assert snap["entries"] == 11
        assert snap["wall_s_count"] == 1
        text = registry.to_prometheus()
        assert "# policy: lru" in text
        assert "# HELP hits cache hits" in text
        assert "# TYPE hits counter" in text
        assert "hits_total 3" in text
        assert "entries 11" in text
        # Histogram min/max are None-free in the export only when set;
        # empty histograms skip those lines entirely.
        empty = obs.MetricsRegistry()
        empty.histogram("idle")
        assert "idle_min" not in empty.to_prometheus()

    def test_legacy_snapshot_warns_once_per_lookup(self):
        snapshot = obs.LegacySnapshot(
            {"trace_entries": 4, "total_bytes": 99},
            {
                "traces": lambda s: {"entries": s["trace_entries"]},
                "old_total": "total_bytes",
            },
        )
        # Canonical access: silent.
        assert snapshot["trace_entries"] == 4
        with pytest.warns(DeprecationWarning, match="deprecated"):
            assert snapshot["traces"] == {"entries": 4}
        with pytest.warns(DeprecationWarning):
            assert snapshot["old_total"] == 99
        with pytest.warns(DeprecationWarning):
            assert snapshot.get("old_total") == 99
        assert snapshot.get("never-was", "fallback") == "fallback"
        assert "traces" in snapshot
        # Iteration/JSON see the canonical schema only.
        assert set(snapshot) == {"trace_entries", "total_bytes"}
        assert "traces" not in json.loads(json.dumps(snapshot))
        with pytest.raises(KeyError):
            snapshot["never-was"]


class TestProfile:
    def test_enabled_tracks_environment(self, monkeypatch):
        monkeypatch.delenv("REPRO_PROFILE", raising=False)
        assert not obs.enabled()
        monkeypatch.setenv("REPRO_PROFILE", "0")
        assert not obs.enabled()
        monkeypatch.setenv("REPRO_PROFILE", "1")
        assert obs.enabled()

    def test_phase_is_null_when_nothing_listens(self):
        assert obs.phase("classify") is _NULL_SPAN

    def test_collect_accumulates_repeated_phases(self):
        with obs.collect() as phases:
            with obs.phase("classify"):
                pass
            with obs.phase("classify"):
                pass
            with obs.phase("reduction"):
                pass
        assert set(phases) == {"classify", "reduction"}
        assert phases["classify"] >= 0.0
        # The collector closes over the block: afterwards phases are
        # null again.
        assert obs.phase("classify") is _NULL_SPAN

    def test_collectors_nest_and_restore(self):
        with obs.collect() as outer:
            with obs.phase("a"):
                pass
            with obs.collect() as inner:
                with obs.phase("b"):
                    pass
            with obs.phase("c"):
                pass
        assert set(outer) == {"a", "c"} and set(inner) == {"b"}

    def test_phase_emits_a_span_when_tracing(self, stem):
        with obs.phase("cache_sim"):
            pass
        (record,) = obs.read_events(obs.event_path())
        assert record["event"] == "span"
        assert record["name"] == "phase.cache_sim"


class TestProgressLine:
    @staticmethod
    def point(done, total, cached=False):
        return {
            "event": "campaign.point",
            "done": done,
            "total": total,
            "kernel": "k[n=8]",
            "scenario": "untimed pes=2",
            "cache_hit": cached,
        }

    def test_renders_points_and_guarantees_final_newline(self):
        stream = io.StringIO()
        with obs.ProgressLine(stream) as line:
            line(self.point(1, 2))
            line({"event": "lease.acquire"})  # ignored
            line(self.point(2, 2, cached=True))
        text = stream.getvalue()
        assert "[1/2] k[n=8] untimed pes=2" in text
        assert "(cached)" in text
        assert text.endswith("\n")

    def test_subscribes_to_the_event_stream(self):
        stream = io.StringIO()
        with obs.ProgressLine(stream):
            obs.emit(
                "campaign.point",
                done=1,
                total=4,
                kernel="hydro",
                scenario="pes=1",
            )
        assert "[1/4] hydro pes=1" in stream.getvalue()
        assert not obs.active()  # unsubscribed on close

    def test_clear_blanks_the_line(self):
        stream = io.StringIO()
        line = obs.ProgressLine(stream)
        line.update("  [1/9] something")
        line.clear()
        assert stream.getvalue().endswith(" \r")
        line.clear()  # second clear is a no-op
        line.close()
        # Cleared before close: no trailing newline was owed.
        assert not stream.getvalue().endswith("\n")

    def test_no_newline_when_nothing_was_drawn(self):
        stream = io.StringIO()
        with obs.ProgressLine(stream):
            pass
        assert stream.getvalue() == ""

    def test_closed_line_ignores_updates(self):
        stream = io.StringIO()
        line = obs.ProgressLine(stream)
        line.close()
        line.close()  # idempotent
        line.update("late")
        assert "late" not in stream.getvalue()

    def test_broken_stream_does_not_raise(self):
        stream = io.StringIO()
        line = obs.ProgressLine(stream)
        line.update("  [1/2] x")
        stream.close()
        line.update("  [2/2] y")
        line.clear()
        line.close()


class TestObsCli:
    def run_cli(self, *argv):
        from repro.cli import main

        return main(list(argv))

    def seed_events(self, tmp_path):
        stem = tmp_path / "cli-events"
        obs.configure(f"jsonl:{stem}")
        obs.emit("cache.miss", ref="aa")
        with obs.span("engine.evaluate"):
            pass
        with obs.span("engine.evaluate"):
            pass
        obs.configure(None)
        return stem

    def test_obs_without_configuration_fails_cleanly(self, capsys):
        assert self.run_cli("obs", "summary") == 2
        assert "REPRO_OBS" in capsys.readouterr().err

    def test_obs_merge_tail_summary(self, tmp_path, capsys):
        stem = self.seed_events(tmp_path)
        assert self.run_cli("obs", "merge", "--stem", str(stem)) == 0
        assert "merged 3 events" in capsys.readouterr().out

        assert (
            self.run_cli("obs", "tail", "--stem", str(stem), "-n", "2") == 0
        )
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 2
        assert all(json.loads(line)["event"] == "span" for line in lines)

        assert self.run_cli("obs", "summary", "--stem", str(stem)) == 0
        out = capsys.readouterr().out
        assert "cache.miss" in out and "span" in out
        assert "engine.evaluate" in out  # span rollup table

    def test_obs_reads_stem_from_environment(
        self, tmp_path, monkeypatch, capsys
    ):
        stem = self.seed_events(tmp_path)
        monkeypatch.setenv("REPRO_OBS", f"jsonl:{stem}")
        assert self.run_cli("obs", "summary") == 0
        assert "3 events" in capsys.readouterr().out


class TestCampaignIntegration:
    def small_spec(self, name):
        from repro.engine import CampaignSpec, KernelSpec

        return CampaignSpec(
            name=name,
            kernels=(KernelSpec("first_diff", n=64),),
            pes=(1, 2),
            page_sizes=(16,),
            cache_elems=(64,),
        )

    def test_records_carry_wall_time_and_cache_hit(self, tmp_path):
        from repro.engine import TraceStore, run_campaign

        store = TraceStore(tmp_path / "store")
        spec = self.small_spec("obs-wall")
        first = run_campaign(spec, store=store, parallel=False)
        assert all(r.cache_hit is False for r in first.records)
        assert all(
            r.eval_wall_s is not None and r.eval_wall_s >= 0
            for r in first.records
        )
        again = run_campaign(spec, store=store, parallel=False)
        assert all(r.cache_hit is True for r in again.records)
        # Replayed outcomes are still bit-identical: wall/hit columns
        # are provenance, not physics.
        assert again.identical(first)
        document = json.loads(first.to_json())
        row = document["results"][0]
        assert "eval_wall_s" in row and "cache_hit" in row
        headers, rows = first.rows(first.kernels()[0])
        assert "eval_s" in headers and "hit" in headers

    def test_span_tree_covers_every_grid_point(self, tmp_path):
        """Acceptance: one service-backend campaign with the sink on
        yields a merged JSONL whose span tree covers build -> cache ->
        evaluate for every grid point."""
        from dataclasses import replace

        from repro.backends import configure_service, get_service
        from repro.engine import TraceStore, run_campaign

        configure_service(workers=0, delegate="untimed")
        try:
            stem = tmp_path / "svc-events"
            obs.configure(f"jsonl:{stem}")
            spec = replace(self.small_spec("obs-svc"), backend="service")
            store = TraceStore(tmp_path / "store")
            result = run_campaign(spec, store=store, parallel=True)
            merged = obs.merge()
            obs.configure(None)

            events = list(obs.read_events(merged))
            kinds = [e["event"] for e in events]
            assert kinds.count("trace.build.start") == 1
            assert kinds.count("trace.build.done") == 1
            assert kinds.count("cache.miss") == spec.n_points
            assert kinds.count("campaign.point") == spec.n_points
            assert kinds.count("campaign.start") == 1
            assert kinds.count("campaign.done") == 1
            spans = [e for e in events if e["event"] == "span"]
            names = [s["name"] for s in spans]
            assert names.count("store.build_trace") == 1
            assert names.count("engine.evaluate") == spec.n_points
            # Each evaluation span wraps the simulator's phase spans.
            evaluate_ids = {
                s["span_id"] for s in spans if s["name"] == "engine.evaluate"
            }
            reduction_parents = {
                s["parent_id"]
                for s in spans
                if s["name"] == "phase.reduction"
            }
            assert reduction_parents <= evaluate_ids
            assert len(reduction_parents) == spec.n_points
            assert len(result) == spec.n_points
            service_stats = get_service().stats()
            assert service_stats["completed_total"] == spec.n_points
        finally:
            obs.configure(None)


class TestEmitResilience:
    def test_write_failures_never_raise(self, tmp_path, monkeypatch):
        obs.configure(f"jsonl:{tmp_path / 'ev'}")
        obs.emit("first")  # opens the handle
        events_mod._fh.close()  # swap in a broken handle below

        class Exploding:
            def write(self, *_):
                raise OSError("disk full")

            def flush(self):
                raise OSError("disk full")

            def close(self):
                raise OSError("already broken")

        monkeypatch.setattr(events_mod, "_fh", Exploding())
        obs.emit("second")  # swallowed
        obs.configure(None)  # close of the broken handle is swallowed too
