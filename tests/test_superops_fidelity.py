"""The generative cyclic-trace fidelity wall for super-op replay.

``repro.ir.superops`` collapses repeated affine access-pattern bodies
into parameterized super-ops; three engines then execute a super-op in
one step instead of ``trip_count``: the scalar/columnar untimed
engines via :func:`repro.core.superop_replay.replay_superops` (misses
decided once per steady-state window, with an explicit scalar trip
loop for bodies that reach no cache fixed point) and the timed machine
via :func:`repro.machine.msim.run_compacted` (N iterations of
steady-state latency charged analytically).  None of that is allowed
to be *visible*: every counter, latency and message count must equal
the flat replay bit for bit.

This suite holds the whole stack to that contract generatively —
``tests/strategies.py`` draws traces with reductions, future reads,
imperfect tails and nested cycles (``cyclic_traces``) — plus
deterministic detector unit tests, the store-format-v2 round trip and
the backend-dispatch envelope.  The nightly ``vec-fuzz`` CI job
re-runs it at the ``ci-deep`` hypothesis profile.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.backends import Scenario, evaluate_scenario
from repro.bench import kernel_trace
from repro.core import MachineConfig, simulate, simulate_vec
from repro.core.superop_replay import replay_superops
from repro.ir import TraceBuilder
from repro.ir.superops import SuperOpTrace, compact
from repro.kernels import get_kernel
from repro.machine import CostModel, TimedMachine
from repro.machine.msim import run_compacted
from strategies import cyclic_traces, machine_configs, sweep_traces

# Local floor of 200 generated examples; the nightly ci-deep profile
# raises settings.default.max_examples past it.
_EXAMPLES = max(200, settings.default.max_examples)


def assert_sim_identical(flat, compacted) -> None:
    """Bit-exact equality of everything a SimResult reports."""
    assert np.array_equal(flat.stats.counts, compacted.stats.counts)
    assert np.array_equal(flat.stats.by_array, compacted.stats.by_array)
    assert np.array_equal(flat.page_fetches, compacted.page_fetches)
    assert np.array_equal(
        flat.distinct_pages_fetched, compacted.distinct_pages_fetched
    )


def assert_timed_identical(flat, compacted) -> None:
    """Bit-exact equality of everything a TimedResult reports."""
    assert flat.finish_time == compacted.finish_time
    assert np.array_equal(flat.per_pe_finish, compacted.per_pe_finish)
    assert np.array_equal(flat.stall_time, compacted.stall_time)
    assert np.array_equal(flat.stats.counts, compacted.stats.counts)
    assert np.array_equal(flat.stats.by_array, compacted.stats.by_array)
    assert flat.messages == compacted.messages
    assert flat.total_hops == compacted.total_hops
    assert flat.refetches == compacted.refetches
    assert flat.deferred_reads == compacted.deferred_reads
    assert flat.contention == compacted.contention


class TestCompactExpand:
    """compact() is lossless: expand() rebuilds the flat trace."""

    @settings(max_examples=_EXAMPLES, deadline=None)
    @given(trace=cyclic_traces())
    def test_roundtrip_bit_identical(self, trace):
        sot = compact(trace, min_trips=2, max_period=8)
        assert trace.identical(sot.expand())
        assert sot.n_stored_rows <= trace.n_instances

    @settings(max_examples=_EXAMPLES, deadline=None)
    @given(trace=cyclic_traces(timed_safe=True))
    def test_roundtrip_timed_safe(self, trace):
        sot = compact(trace, min_trips=2, max_period=8)
        assert trace.identical(sot.expand())


class TestUntimedFidelity:
    """The wall: compacted replay == flat replay, bit for bit, on the
    scalar and columnar untimed engines."""

    @settings(max_examples=_EXAMPLES, deadline=None)
    @given(trace=cyclic_traces(), config=machine_configs())
    def test_scalar_counters_bit_identical(self, trace, config):
        sot = compact(trace, min_trips=2, max_period=8)
        assert_sim_identical(
            simulate(trace, config), replay_superops(sot, config)
        )

    @settings(max_examples=_EXAMPLES, deadline=None)
    @given(trace=cyclic_traces(), config=machine_configs())
    def test_vec_counters_bit_identical(self, trace, config):
        """The columnar engine and the super-op engine answer to the
        same scalar reference, so this transitively pins all three."""
        sot = compact(trace, min_trips=2, max_period=8)
        assert_sim_identical(
            simulate_vec(trace, config), replay_superops(sot, config)
        )


class TestClosedFormCoverage:
    """The FIFO and warm-LRU closed forms actually *run* — telemetry
    proves the decisions took the columnar path, not the per-piece
    fallback — and the one honest wall left (warm FIFO, whose
    admission epochs are not reconstructible from the resident set)
    really does fall back.  Bit-identity rides along on every case."""

    @settings(max_examples=_EXAMPLES, deadline=None)
    @given(trace=sweep_traces())
    def test_warm_lru_back_to_back_ops_stay_closed(self, trace):
        """Every sweep after the first enters with a warm cache; the
        seeded reuse-distance profile must keep all of them on the
        closed form (`superop_piece_pes == 0`)."""
        sot = compact(trace, min_trips=4, max_period=8)
        assert len(sot.ops) >= 2
        config = MachineConfig(
            n_pes=2, page_size=16, cache_elems=128, cache_policy="lru"
        )
        telemetry: dict[str, int] = {}
        assert_sim_identical(
            simulate(trace, config),
            replay_superops(sot, config, telemetry=telemetry),
        )
        assert telemetry["mode"] == "superop"
        assert telemetry["superop_piece_pes"] == 0
        assert telemetry["fallback_pes"] == 0
        assert telemetry["superop_closed_pes"] > 0

    @settings(max_examples=_EXAMPLES, deadline=None)
    @given(trace=sweep_traces(min_sweeps=1, max_sweeps=1))
    def test_fifo_over_capacity_stays_closed(self, trace):
        """A cold over-capacity FIFO sweep must solve through the
        eviction-epoch fixed point, not the per-piece walk."""
        sot = compact(trace, min_trips=4, max_period=8)
        config = MachineConfig(
            n_pes=2, page_size=16, cache_elems=32, cache_policy="fifo"
        )
        assert config.cache_pages == 2  # far under the sweep's pages
        telemetry: dict[str, int] = {}
        assert_sim_identical(
            simulate(trace, config),
            replay_superops(sot, config, telemetry=telemetry),
        )
        assert telemetry["superop_piece_pes"] == 0
        assert telemetry["fallback_pes"] == 0
        assert telemetry["superop_closed_pes"] > 0

    @settings(max_examples=60, deadline=None)
    @given(trace=sweep_traces())
    def test_warm_fifo_falls_back_per_piece(self, trace):
        """The honest wall: sweeps after the first enter warm, and a
        FIFO queue's epochs cannot be seeded — those PEs must take
        the per-piece walk, bit-identically."""
        sot = compact(trace, min_trips=4, max_period=8)
        config = MachineConfig(
            n_pes=2, page_size=16, cache_elems=32, cache_policy="fifo"
        )
        telemetry: dict[str, int] = {}
        assert_sim_identical(
            simulate(trace, config),
            replay_superops(sot, config, telemetry=telemetry),
        )
        assert telemetry["superop_piece_pes"] > 0


class TestTimedFidelity:
    """run_compacted == TimedMachine on timed-valid cyclic traces,
    through both the analytic fast path and the event-loop fallback."""

    @settings(max_examples=_EXAMPLES, deadline=None)
    @given(
        trace=cyclic_traces(timed_safe=True),
        config=machine_configs(max_pes=8),
        topology=st.sampled_from(("crossbar", "ring", "bus")),
    )
    def test_timed_bit_identical(self, trace, config, topology):
        sot = compact(trace, min_trips=2, max_period=8)
        flat = TimedMachine(trace, config, topology=topology).run()
        assert_timed_identical(
            flat, run_compacted(trace, sot, config, topology=topology)
        )

    @settings(max_examples=60, deadline=None)
    @given(
        trace=cyclic_traces(timed_safe=True),
        config=machine_configs(max_pes=8),
    )
    def test_non_dyadic_costs_fall_back(self, trace, config):
        """Costs outside the exact-float guard take the event loop —
        trivially identical, but the dispatch must stay lossless."""
        costs = CostModel(per_element=0.3)
        sot = compact(trace, min_trips=2, max_period=8)
        flat = TimedMachine(trace, config, costs=costs).run()
        assert_timed_identical(
            flat, run_compacted(trace, sot, config, costs=costs)
        )


class TestStoreFormatV2:
    """Super-op shards round-trip losslessly and keep their digests."""

    @settings(max_examples=_EXAMPLES, deadline=None)
    @given(trace=cyclic_traces())
    def test_save_load_roundtrip(self, trace):
        import tempfile
        from pathlib import Path

        sot = compact(trace, min_trips=2, max_period=8)
        trace.attach_superops(sot)
        with tempfile.TemporaryDirectory() as tmp:
            path = Path(tmp) / "t.npz"
            trace.save(path, compact=True)
            loaded = type(trace).load(path)
        assert trace.identical(loaded)
        assert trace.content_digest == loaded.content_digest
        if sot.ops and sot.n_stored_rows <= trace.n_instances // 2:
            # Profitable views persist in the v2 layout and come back.
            reloaded = loaded.attached_superops()
            assert reloaded is not None
            assert len(reloaded.ops) == len(sot.ops)

    @settings(max_examples=60, deadline=None)
    @given(trace=cyclic_traces())
    def test_payload_roundtrip(self, trace):
        sot = compact(trace, min_trips=2, max_period=8)
        payload = sot.to_payload()
        back = SuperOpTrace.from_payload(
            sot.array_names,
            sot.array_sizes,
            sot.n_instances,
            {k: np.asarray(v) for k, v in payload.items()},
        )
        assert sot.expand().identical(back.expand())


def _stencil_trace(n: int = 64, prologue: int = 3) -> "TraceBuilder":
    builder = TraceBuilder(["a", "b"], [n + 2, n + 2])
    for i in range(prologue):  # irregular warm-up the body must skip
        builder.record_read(0, 0)
        builder.commit_instance(1, 1, n + 1 - i, False)
    for i in range(n):
        builder.record_read(0, i)
        builder.record_read(0, i + 2)
        builder.commit_instance(0, 1, i + 1, False)
    return builder.freeze()


class TestDetector:
    """Deterministic shape checks on what compact() proves."""

    def test_stencil_sweep_collapses(self):
        trace = _stencil_trace()
        sot = compact(trace, min_trips=4, max_period=8)
        assert len(sot.ops) == 1
        (op,) = sot.ops
        assert op.body_len == 1
        assert op.trips == 64
        assert sot.n_residual == 3
        assert np.array_equal(op.r_stride, [1, 1])
        assert np.array_equal(op.w_stride, [1])

    def test_min_trips_respected(self):
        trace = _stencil_trace(n=6)
        assert compact(trace, min_trips=8, max_period=8).ops == ()
        # At 3, both the 3-instance prologue (itself affine, stride
        # -1) and the 6-trip sweep clear the bar.
        sot = compact(trace, min_trips=3, max_period=8)
        assert [op.trips for op in sot.ops] == [3, 6]

    def test_min_trips_validates(self):
        with pytest.raises(ValueError, match="min_trips"):
            compact(_stencil_trace(n=8), min_trips=1)

    def test_nested_cycle_finds_smallest_period(self):
        # body = [stmt0, stmt0, stmt1] x 12.  At min_trips=2 the
        # greedy smallest-p scan rightly collapses each stmt0 pair as
        # its own 2-trip p=1 op; at 4 those pairs no longer qualify
        # and the provable period is the full 3-statement body.
        builder = TraceBuilder(["x", "y"], [128, 128])
        for k in range(12):
            builder.record_read(1, 2 * k)
            builder.commit_instance(0, 0, 3 * k, False)
            builder.record_read(1, 2 * k + 1)
            builder.commit_instance(0, 0, 3 * k + 1, False)
            builder.commit_instance(1, 0, 3 * k + 2, False)
        trace = builder.freeze()
        sot = compact(trace, min_trips=4, max_period=8)
        assert len(sot.ops) == 1
        assert sot.ops[0].body_len == 3
        assert sot.ops[0].trips == 12
        assert sot.coverage == 1.0

        shallow = compact(trace, min_trips=2, max_period=8)
        assert all(op.body_len == 1 for op in shallow.ops)
        assert trace.identical(shallow.expand())

    def test_imperfect_tail_stays_residual(self):
        builder = TraceBuilder(["x", "y"], [64, 64])
        for k in range(10):
            builder.record_read(1, k)
            builder.commit_instance(0, 0, k, False)
        builder.record_read(1, 10)  # tail: read pattern continues...
        builder.commit_instance(0, 0, 63, False)  # ...write breaks it
        sot = compact(builder.freeze(), min_trips=2, max_period=4)
        assert len(sot.ops) == 1
        assert sot.ops[0].trips == 10
        assert sot.n_residual == 1

    def test_kernel_grid_compacts(self):
        """The paper's stencil-sweep kernels collapse nearly whole."""
        for name, n, floor in (
            ("hydro_fragment", 200, 0.99),
            ("first_diff", 200, 0.99),
            ("tri_diagonal", 200, 0.99),
            ("linear_recurrence", 100, 0.90),
        ):
            program, inputs = get_kernel(name).build(n=n)
            trace = kernel_trace(program, inputs)
            sot = compact(trace)
            assert sot.coverage >= floor, (name, sot.coverage)
            assert trace.identical(sot.expand())


class TestBackendDispatch:
    """Attached super-ops reroute all three backends, invisibly."""

    @pytest.fixture(scope="class")
    def stencil(self):
        program, inputs = get_kernel("hydro_fragment").build(n=300)
        return kernel_trace(program, inputs)

    @pytest.mark.parametrize("backend", ["untimed", "untimed-vec", "timed"])
    def test_outcomes_bit_identical(self, stencil, backend):
        config = MachineConfig(n_pes=8, page_size=16, cache_elems=64)
        scenario = Scenario(config=config, backend=backend)
        flat = evaluate_scenario(stencil, scenario)

        sot = compact(stencil)
        assert sot.ops, "stencil sweep must compact"
        stencil.attach_superops(sot)
        try:
            via_ops = evaluate_scenario(stencil, scenario)
        finally:
            stencil.attach_superops(None)
        assert np.array_equal(flat.stats.counts, via_ops.stats.counts)
        assert np.array_equal(flat.stats.by_array, via_ops.stats.by_array)
        for name, values in flat.per_pe.items():
            assert np.array_equal(values, via_ops.per_pe[name])
        for name, value in flat.metrics.items():
            if name == "vec_fallback_pes":
                continue  # engines count their fallbacks differently
            assert via_ops.metrics[name] == value, name
