"""The evaluation API: scenarios, the registry, and the two backends."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.backends import (
    EvalOutcome,
    Scenario,
    UnsupportedScenarioError,
    backend_names,
    cost_model,
    cost_model_names,
    evaluate_scenario,
    get_backend,
    register_backend,
)
from repro.backends.base import _REGISTRY
from repro.core import MachineConfig, simulate
from repro.engine import CampaignSpec, KernelSpec, TraceStore, run_campaign


def config(**kwargs) -> MachineConfig:
    base = dict(n_pes=4, page_size=32, cache_elems=64)
    base.update(kwargs)
    return MachineConfig(**base)


class _KnobError(UnsupportedScenarioError):
    """Module-level subclass: pickled by reference in the test below."""


def _smuggled_reduction_scenario(
    strategy: str, backend: str = "timed"
) -> Scenario:
    """A scenario carrying a reduction strategy the config validator
    would reject — the only way left to reach a backend's
    ``UnsupportedScenarioError`` backstop now that every *valid*
    strategy is modelled everywhere.  (Frozen dataclasses pickle by
    state, so the smuggled value survives a pool-worker round trip.)"""
    cfg = config()
    object.__setattr__(cfg, "reduction_strategy", strategy)
    return Scenario(config=cfg, backend=backend)


class TestRegistry:
    def test_builtins_registered(self):
        assert backend_names() == (
            "service",
            "timed",
            "untimed",
            "untimed-vec",
        )
        assert get_backend("untimed").name == "untimed"
        assert get_backend("untimed-vec").name == "untimed-vec"
        assert get_backend("service").name == "service"
        assert get_backend("timed").scenario_axes == (
            "topologies",
            "modes",
            "cost_models",
        )

    def test_unknown_backend(self):
        with pytest.raises(KeyError, match="unknown backend"):
            get_backend("quantum")

    def test_register_rejects_duplicates(self):
        with pytest.raises(ValueError, match="already registered"):
            register_backend(get_backend("untimed"))

    def test_register_custom_backend(self, hydro_trace):
        class Doubler:
            name = "doubler"
            # A custom axis name outside the built-in map must not
            # break record rendering/export.
            scenario_axes: tuple[str, ...] = ("fanouts",)
            result_schema = ("doubled",)
            table_metrics = ("doubled",)

            def evaluate(self, trace, scenario):
                inner = get_backend("untimed").evaluate(trace, scenario)
                return EvalOutcome(
                    backend=self.name,
                    scenario=scenario,
                    stats=inner.stats,
                    metrics={"doubled": 2 * inner.metrics["page_fetches"]},
                )

        register_backend(Doubler())
        try:
            scenario = Scenario(config=config(), backend="doubler")
            outcome = evaluate_scenario(hydro_trace, scenario)
            untimed = evaluate_scenario(
                hydro_trace, Scenario(config=config())
            )
            assert outcome.metrics["doubled"] == (
                2 * untimed.metrics["page_fetches"]
            )
            from repro.engine import EvalRecord

            record = EvalRecord(
                kernel=KernelSpec("hydro_fragment", n=200),
                outcome=outcome,
                index=0,
            )
            row = record.to_dict()
            assert row["backend"] == "doubler"
            assert row["doubled"] == outcome.metrics["doubled"]
        finally:
            del _REGISTRY["doubler"]


class TestCostModels:
    def test_presets(self):
        assert "default" in cost_model_names()
        assert cost_model("fast-network").per_hop < cost_model("default").per_hop
        assert cost_model("slow-network").per_hop > cost_model("default").per_hop

    def test_unknown(self):
        with pytest.raises(KeyError, match="unknown cost model"):
            cost_model("wormhole")


class TestScenario:
    def test_defaults_are_untimed_vec(self):
        s = Scenario(config=config())
        assert s.backend == "untimed-vec"
        assert s.topology == "crossbar"
        assert s.label().startswith("untimed-vec ")

    def test_topology_alias_canonicalised(self):
        a = Scenario(config=config(), backend="timed", topology="mesh")
        b = Scenario(config=config(), backend="timed", topology="mesh2d")
        assert a == b
        assert a.digest == b.digest

    def test_validation(self):
        with pytest.raises(KeyError, match="unknown topology"):
            Scenario(config=config(), topology="zigzag")
        with pytest.raises(ValueError, match="unknown mode"):
            Scenario(config=config(), mode="speculative")
        with pytest.raises(KeyError, match="unknown cost model"):
            Scenario(config=config(), cost_model="wormhole")
        with pytest.raises(ValueError, match="max_outstanding"):
            Scenario(config=config(), max_outstanding=0)

    @pytest.mark.parametrize(
        "scenario",
        [
            Scenario(config=config()),
            Scenario(
                config=config(cache_policy="fifo"),
                backend="timed",
                topology="torus",
                mode="multithreaded",
                cost_model="slow-network",
                max_outstanding=8,
            ),
        ],
    )
    def test_json_round_trip(self, scenario):
        again = Scenario.from_json(scenario.to_json())
        assert again == scenario
        assert again.digest == scenario.digest

    def test_round_trip_preserves_partition_scheme(self):
        from repro.core import BlockCyclicPartition

        s = Scenario(
            config=config(partition=BlockCyclicPartition(block=4)),
            backend="timed",
        )
        again = Scenario.from_json(s.to_json())
        assert again == s
        assert again.config.partition.label == "block-cyclic:4"

    def test_digest_distinguishes_knobs(self):
        base = Scenario(config=config(), backend="timed")
        assert base.digest != Scenario(
            config=config(), backend="timed", topology="ring"
        ).digest
        assert base.digest != Scenario(
            config=config(), backend="timed", cost_model="fast-network"
        ).digest

    def test_rejects_unknown_keys(self):
        with pytest.raises(ValueError, match="unknown scenario keys"):
            Scenario.from_dict({"config": config().to_dict(), "speed": 3})


class TestMachineConfigLabel:
    def test_default_label_is_stable(self):
        assert config(cache_elems=256).label() == "pes=4 ps=32 cache=256 modulo"
        assert config(cache_elems=0).label() == "pes=4 ps=32 no-cache modulo"

    def test_policy_and_reduction_disambiguate(self):
        fifo = config(cache_policy="fifo")
        lru = config(cache_policy="lru")
        assert fifo.label() != lru.label()
        assert "policy=fifo" in fifo.label()
        sub = config(reduction_strategy="subrange")
        assert sub.label() != config().label()
        assert "red=subrange" in sub.label()

    def test_block_cyclic_parameter_in_label(self):
        from repro.core import BlockCyclicPartition

        two = config(partition=BlockCyclicPartition(block=2))
        four = config(partition=BlockCyclicPartition(block=4))
        assert two.label() != four.label()

    def test_config_dict_round_trip(self):
        from repro.core import BlockCyclicPartition

        cfg = config(
            cache_policy="fifo",
            partition=BlockCyclicPartition(block=3),
            reduction_strategy="subrange",
        )
        assert MachineConfig.from_dict(cfg.to_dict()) == cfg


class TestUntimedBackend:
    def test_matches_simulate_exactly(self, hydro_trace):
        cfg = config(cache_elems=256)
        direct = simulate(hydro_trace, cfg)
        outcome = evaluate_scenario(hydro_trace, Scenario(config=cfg))
        assert np.array_equal(outcome.stats.counts, direct.stats.counts)
        assert np.array_equal(
            outcome.per_pe["page_fetches"], direct.page_fetches
        )
        assert outcome.metrics["page_fetches"] == float(
            direct.page_fetches.sum()
        )


class TestTimedBackend:
    def test_metrics_schema(self, hydro_trace):
        scenario = Scenario(config=config(), backend="timed")
        outcome = evaluate_scenario(hydro_trace, scenario)
        assert set(get_backend("timed").result_schema) == set(outcome.metrics)
        assert outcome.metrics["finish_time"] > 0
        assert outcome.metrics["speedup"] > 0

    def test_models_subrange_reductions(self, hydro_trace):
        """Since the fidelity PR the timed machine replays every
        strategy the untimed simulator accepts — subrange included."""
        scenario = Scenario(
            config=config(reduction_strategy="subrange"), backend="timed"
        )
        outcome = evaluate_scenario(hydro_trace, scenario)
        assert outcome.metrics["finish_time"] > 0
        assert "subrange" in get_backend("timed").supported_reductions

    def test_unsupported_scenario_error_names_backend_and_knob(
        self, hydro_trace
    ):
        """The structured, picklable error stays as the backstop for a
        hand-built scenario smuggling a strategy no backend has ever
        heard of past the config validator."""
        import pickle

        from repro.backends import UnsupportedScenarioError

        scenario = _smuggled_reduction_scenario("tree")
        with pytest.raises(UnsupportedScenarioError) as excinfo:
            evaluate_scenario(hydro_trace, scenario)
        error = excinfo.value
        assert error.backend == "timed"
        assert error.knob == "reduction_strategy"
        assert error.value == "tree"
        assert error.supported == ("host", "subrange")
        assert "timed" in str(error) and "tree" in str(error)
        # Must survive the pool-worker pickle round trip intact —
        # fields *and* the rendered message.
        clone = pickle.loads(pickle.dumps(error))
        assert isinstance(clone, UnsupportedScenarioError)
        assert (clone.backend, clone.knob, clone.value, clone.supported) == (
            "timed", "reduction_strategy", "tree", ("host", "subrange")
        )
        assert str(clone) == str(error)
        # Subclasses keep their identity across the round trip too.
        sub = pickle.loads(pickle.dumps(_KnobError("b", "k", "v")))
        assert type(sub) is _KnobError

    def test_unsupported_values_are_sorted_deterministically(self):
        """However a backend declares its support tuple, the error (and
        therefore its message) lists the values sorted."""
        from repro.backends import UnsupportedScenarioError

        error = UnsupportedScenarioError(
            "b", "k", "v", supported=("zeta", "alpha", "mid")
        )
        assert error.supported == ("alpha", "mid", "zeta")
        assert "('alpha', 'mid', 'zeta')" in str(error)
        import pickle

        assert str(pickle.loads(pickle.dumps(error))) == str(error)

    @pytest.mark.parametrize("mode", ["blocking", "multithreaded"])
    def test_counters_bit_identical_to_untimed_without_cache(
        self, hydro_trace, mode
    ):
        """Same partitioning rules, same counters: with the cache off,
        every non-local read is remote in both models, so the timed
        backend's AccessStats must equal the untimed backend's bit for
        bit (with a cache the timed model's partial-page refetches are
        timing-dependent and the counters legitimately diverge)."""
        cfg = config(cache_elems=0)
        untimed = evaluate_scenario(hydro_trace, Scenario(config=cfg))
        timed = evaluate_scenario(
            hydro_trace, Scenario(config=cfg, backend="timed", mode=mode)
        )
        # counts is the per-PE x per-kind matrix — the paper's counters.
        # (by_array is a diagnostic only the timed model's scalar path
        # fills in; the untimed simulator's vectorised adds skip it.)
        assert np.array_equal(untimed.stats.counts, timed.stats.counts)

    def test_cached_counters_conserve_read_totals(self, hydro_trace):
        """With a cache the split cached/remote may differ, but writes,
        local reads and the total read count are structural."""
        cfg = config(cache_elems=256)
        untimed = evaluate_scenario(hydro_trace, Scenario(config=cfg))
        timed = evaluate_scenario(
            hydro_trace,
            Scenario(config=cfg, backend="timed", mode="multithreaded"),
        )
        assert untimed.stats.writes == timed.stats.writes
        assert untimed.stats.local_reads == timed.stats.local_reads
        assert untimed.stats.total_reads == timed.stats.total_reads


def timed_spec() -> CampaignSpec:
    return CampaignSpec(
        name="timed-acceptance",
        backend="timed",
        kernels=(KernelSpec("hydro_fragment", n=120),),
        pes=(2, 4),
        page_sizes=(32,),
        cache_elems=(64, 0),
        topologies=("mesh", "torus"),
        modes=("blocking", "multithreaded"),
    )


class TestCampaignBackendAxes:
    def test_spec_round_trip_with_backend_axes(self):
        spec = timed_spec()
        again = CampaignSpec.from_json(spec.to_json())
        assert again == spec
        data = json.loads(spec.to_json())
        assert data["backend"] == "timed"
        assert data["topologies"] == ["mesh2d", "torus2d"]  # canonicalised
        assert data["modes"] == ["blocking", "multithreaded"]

    def test_axis_counts_include_backend_axes(self):
        spec = timed_spec()
        assert spec.n_configs == 2 * 1 * 2 * 2 * 2  # pes*ps*cache*topo*mode
        assert spec.n_points == spec.n_configs
        scenarios = spec.scenarios()
        assert len(scenarios) == spec.n_configs
        assert all(s.backend == "timed" for s in scenarios)

    def test_unknown_backend_rejected(self):
        with pytest.raises(KeyError, match="unknown backend"):
            CampaignSpec(name="x", kernels=("iccg",), backend="quantum")

    def test_untimed_rejects_backend_axis_sweep(self):
        with pytest.raises(ValueError, match="not used by backend"):
            CampaignSpec(
                name="x",
                kernels=("iccg",),
                topologies=("mesh2d", "ring"),
            )

    def test_untimed_rejects_nondefault_backend_knob(self):
        """A single non-default value on an unconsumed axis is also an
        error — it would taint labels and result-cache keys with a
        knob that never reaches the evaluator."""
        with pytest.raises(ValueError, match="not used by backend"):
            CampaignSpec(name="x", kernels=("iccg",), topologies=("mesh",))
        with pytest.raises(ValueError, match="not used by backend"):
            CampaignSpec(
                name="x", kernels=("iccg",), cost_models=("slow-network",)
            )
        with pytest.raises(ValueError, match="max_outstanding"):
            CampaignSpec(name="x", kernels=("iccg",), max_outstanding=9)

    def test_scenario_label_spells_out_max_outstanding(self):
        four = Scenario(config=config(), backend="timed", mode="multithreaded")
        eight = Scenario(
            config=config(), backend="timed", mode="multithreaded",
            max_outstanding=8,
        )
        assert four.label() != eight.label()
        assert "out=8" in eight.label()

    def test_find_by_max_outstanding(self, tmp_path):
        spec = CampaignSpec(
            name="outstanding",
            backend="timed",
            kernels=(KernelSpec("hydro_fragment", n=120),),
            pes=(2,),
            page_sizes=(32,),
            cache_elems=(64,),
            modes=("multithreaded",),
            max_outstanding=8,
        )
        result = run_campaign(spec, store=TraceStore(tmp_path), parallel=False)
        record = result.find(max_outstanding=8)
        assert record.scenario.max_outstanding == 8
        assert result.select(max_outstanding=4) == []

    def test_timed_accepts_subrange_reductions(self):
        """Both built-in evaluators model both strategies, so the full
        reduction axis sweeps on the timed backend too; the up-front
        spec rejection stays for strategies nobody declares."""
        spec = CampaignSpec(
            name="x", kernels=("iccg",), backend="timed",
            reduction_strategies=("host", "subrange"),
        )
        assert spec.n_configs == 2 * len(spec.pes) * 4
        CampaignSpec(
            name="x", kernels=("iccg",),
            reduction_strategies=("host", "subrange"),
        )
        with pytest.raises(ValueError, match="does not model"):
            CampaignSpec(
                name="x", kernels=("iccg",), backend="timed",
                reduction_strategies=("host", "tree"),
            )

    def test_bad_axis_values_rejected(self):
        with pytest.raises(ValueError, match="unknown mode"):
            CampaignSpec(
                name="x", kernels=("iccg",), backend="timed",
                modes=("speculative",),
            )
        with pytest.raises(KeyError, match="unknown cost model"):
            CampaignSpec(
                name="x", kernels=("iccg",), backend="timed",
                cost_models=("wormhole",),
            )

    def test_timed_campaign_parallel_bit_identical_to_serial(self, tmp_path):
        """Acceptance: the serial run of a timed campaign is
        bit-identical record for record to the parallel run."""
        spec = timed_spec()
        store = TraceStore(tmp_path / "store")
        serial = run_campaign(spec, store=store, parallel=False, use_cache=False)
        parallel = run_campaign(
            spec, store=store, parallel=True, workers=2, use_cache=False
        )
        assert len(serial) == len(parallel) == spec.n_points
        assert serial.identical(parallel)
        for a, b in zip(serial.records, parallel.records):
            assert a.backend == "timed"
            assert a.metrics == b.metrics
            assert np.array_equal(
                a.outcome.per_pe["finish"], b.outcome.per_pe["finish"]
            )

    def test_timed_records_are_backend_tagged(self, tmp_path):
        spec = timed_spec()
        result = run_campaign(
            spec, store=TraceStore(tmp_path), parallel=False
        )
        row = result.records[0].to_dict()
        assert row["backend"] == "timed"
        assert {"topology", "mode", "cost_model", "finish_time", "speedup"} <= set(row)
        assert result.select(topology="mesh2d", mode="blocking")
        headers, rows = result.rows()
        assert "topology" in headers and "speedup" in headers
