"""Program pretty-printer and stack-distance reuse analysis."""

from __future__ import annotations

import pytest

from repro.bench import kernel_trace
from repro.core import MachineConfig, hit_rate_curve, simulate, stack_distances
from repro.core.reuse import COLD
from repro.ir import Call, Const, Ref, Var, format_expr, format_program
from repro.kernels import build_skewed, get_kernel


class TestFormatExpr:
    def test_constants_and_vars(self):
        assert format_expr(Const(3.0)) == "3"
        assert format_expr(Const(2.5)) == "2.5"
        assert format_expr(Var("k")) == "k"

    def test_precedence_parens(self):
        e = (Var("a") + Var("b")) * Var("c")
        assert format_expr(e) == "(a + b) * c"
        e2 = Var("a") + Var("b") * Var("c")
        assert format_expr(e2) == "a + b * c"

    def test_subtraction_right_assoc_parens(self):
        e = Var("a") - (Var("b") - Var("c"))
        assert format_expr(e) == "a - (b - c)"

    def test_negation_compact(self):
        assert format_expr(-Var("x")) == "-x"

    def test_ref_and_call(self):
        e = Call("sqrt", Ref("A", [Var("k") + 1]))
        assert format_expr(e) == "SQRT(A(k + 1))"

    def test_roundtrip_like_paper_listing(self):
        program, _ = get_kernel("hydro_fragment").build(n=10)
        text = format_program(program)
        assert "DO k = 1, 10" in text
        assert "X(k) = Q + Y(k) * (R * ZX(k + 10) + T * ZX(k + 11))" in text
        assert "END DO" in text

    def test_declarations_listed(self):
        program, _ = get_kernel("hydro_fragment").build(n=10)
        text = format_program(program)
        assert "REAL X(11)  ! output" in text
        assert "PARAMETER Q" in text

    def test_reduction_renders_as_accumulation(self):
        program, _ = get_kernel("inner_product").build(n=5)
        text = format_program(program, declarations=False)
        assert "QS(0) = QS(0) + Z(k) * X(k)" in text

    def test_step_rendered(self):
        program, _ = get_kernel("iccg").build(n=8)
        text = format_program(program, declarations=False)
        assert ", 2" in text  # the k loops step by 2


class TestStackDistances:
    def test_matched_loop_has_no_nonlocal_traffic(self, matched_program):
        program, inputs = matched_program
        trace = kernel_trace(program, inputs)
        profile = stack_distances(
            trace, MachineConfig(n_pes=4, page_size=8)
        )
        assert profile.nonlocal_reads == 0
        assert profile.remote_pct_at(8) == 0.0

    def test_cold_misses_counted(self):
        program, inputs = build_skewed(n=256, skew=4)
        trace = kernel_trace(program, inputs)
        profile = stack_distances(
            trace, MachineConfig(n_pes=4, page_size=32)
        )
        assert profile.histogram.get(COLD, 0) > 0

    def test_zero_capacity_equals_all_nonlocal(self):
        program, inputs = build_skewed(n=256, skew=4)
        trace = kernel_trace(program, inputs)
        profile = stack_distances(
            trace, MachineConfig(n_pes=4, page_size=32)
        )
        assert profile.remote_reads_at(0) == profile.nonlocal_reads

    @pytest.mark.parametrize(
        "kernel_name,n",
        [
            ("hydro_fragment", 500),
            ("iccg", 256),
            ("hydro_2d", 60),
            ("linear_recurrence", 64),
            ("equation_of_state", 400),
        ],
    )
    @pytest.mark.parametrize("capacity", [1, 2, 8, 32])
    def test_curve_matches_direct_lru_simulation(self, kernel_name, n, capacity):
        """Mattson inclusion: one pass predicts every LRU capacity."""
        program, inputs = get_kernel(kernel_name).build(n=n)
        trace = kernel_trace(program, inputs)
        ps = 32
        cfg = MachineConfig(n_pes=8, page_size=ps)
        profile = stack_distances(trace, cfg)
        direct = simulate(
            trace,
            MachineConfig(n_pes=8, page_size=ps, cache_elems=capacity * ps),
        )
        assert profile.remote_reads_at(capacity) == direct.stats.remote_reads

    def test_hit_rate_curve_monotone(self):
        program, inputs = get_kernel("linear_recurrence").build(n=96)
        trace = kernel_trace(program, inputs)
        cfg = MachineConfig(n_pes=8, page_size=32)
        curve = hit_rate_curve(trace, cfg, [0, 1, 2, 4, 8, 16, 64, 256])
        values = list(curve.values())
        assert all(a >= b - 1e-12 for a, b in zip(values, values[1:]))

    def test_empty_trace(self):
        from repro.ir import TraceBuilder

        trace = TraceBuilder(["X"], [8]).freeze()
        profile = stack_distances(trace, MachineConfig(n_pes=2, page_size=4))
        assert profile.remote_pct_at(4) == 0.0
