"""Concurrency stress: many campaigns, one sharded store.

Two in-flight *streamed* campaigns — driven from separate threads,
each fanning its jobs out through the multiprocessing executor — hit
one store at once.  The store's contracts under that load:

* the on-disk index stays parseable (atomic rename, single writer per
  process, workers confined to write-ahead touch files);
* no cache entry is ever double-built — overlapping points are claimed
  by whichever campaign gets there first and *replayed* by the other;
* the 8-way-parallel → ``gc()`` → identical-re-run acceptance cycle:
  entries surviving a budgeted GC still serve cache hits.

CI runs this module (plus the sharding property suite) as a dedicated
job step with ``-p no:cacheprovider`` on a tmpfs-backed store root —
set ``REPRO_STRESS_STORE`` to relocate the stores these tests create
(each test still gets a private subdirectory).
"""

from __future__ import annotations

import json
import os
import shutil
import threading
import uuid
from pathlib import Path

import pytest

from repro.backends import evaluation_count
from repro.engine import (
    CampaignSpec,
    KernelSpec,
    ResultKey,
    TraceStore,
    kernel_trace_key,
    run_campaign,
)


@pytest.fixture
def stress_dir(tmp_path):
    """Work directory for stress runs: a private subdirectory of
    ``$REPRO_STRESS_STORE`` (the CI tmpfs mount) when set, the test
    tmpdir otherwise.  Tests put their store(s) underneath it."""
    base = os.environ.get("REPRO_STRESS_STORE")
    if not base:
        yield tmp_path
        return
    root = Path(base) / uuid.uuid4().hex
    root.mkdir(parents=True, exist_ok=True)
    yield root
    shutil.rmtree(root, ignore_errors=True)


@pytest.fixture
def stress_root(stress_dir):
    """The shared store root inside :func:`stress_dir`."""
    return stress_dir / "store"


def spec_a() -> CampaignSpec:
    return CampaignSpec(
        name="stress-a",
        kernels=(KernelSpec("first_diff", n=96),),
        pes=(1, 2, 4),
        page_sizes=(16, 32),
        cache_elems=(0, 64),
    )


def spec_b() -> CampaignSpec:
    # Deliberately overlaps spec_a on the (16, 32) page sizes at
    # cache 0/64 and adds its own axis points.
    return CampaignSpec(
        name="stress-b",
        kernels=(KernelSpec("first_diff", n=96),),
        pes=(1, 2, 4),
        page_sizes=(16, 32, 64),
        cache_elems=(0, 64),
    )


def unique_points(*specs: CampaignSpec) -> set[ResultKey]:
    keys = set()
    for spec in specs:
        for kernel, scenario in spec.points():
            keys.add(
                ResultKey(
                    trace_digest=kernel_trace_key(
                        kernel.name, n=kernel.n, seed=kernel.seed
                    ).digest,
                    scenario_digest=scenario.digest,
                    backend=scenario.backend,
                )
            )
    return keys


class TestConcurrentCampaigns:
    def test_two_streamed_parallel_campaigns_share_one_store(
        self, stress_root, stress_dir
    ):
        """The satellite contract: threads + the multiprocessing
        executor against one store — the index stays parseable and no
        cache entry is double-built."""
        store = TraceStore(stress_root)
        specs = {"a": spec_a(), "b": spec_b()}
        expected = unique_points(*specs.values())
        before = evaluation_count()
        results: dict[str, object] = {}
        errors: list[BaseException] = []

        def drive(name: str) -> None:
            try:
                stream = run_campaign(
                    specs[name],
                    store=store,
                    parallel=True,
                    workers=2,
                    stream=True,
                )
                for _record in stream:  # consume as records complete
                    pass
                results[name] = stream.result()
            except BaseException as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)

        threads = [
            threading.Thread(target=drive, args=(name,)) for name in specs
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=300)
        assert not errors
        assert sorted(results) == ["a", "b"]

        # No double builds: evaluations (parent + merged worker counts)
        # cover every unique point exactly once, and the store holds
        # exactly one entry per unique point.
        assert evaluation_count() - before == len(expected)
        assert store.n_results() == len(expected)

        # The index survived two concurrent campaigns: parseable, and
        # every entry's artifact exists where the index says it does.
        index_path = store.index_path
        data = json.loads(index_path.read_text())
        assert data["index_format"] == 1
        for entry in data["entries"].values():
            assert (store.root / entry["path"]).is_file()

        # Both campaigns match their isolated serial baselines.
        for name, spec in specs.items():
            baseline = run_campaign(
                spec,
                store=TraceStore(stress_dir / f"base-{name}"),
                parallel=False,
            )
            assert results[name].identical(baseline)

    def test_concurrent_identical_campaigns_build_each_point_once(
        self, stress_root
    ):
        """The worst case: the *same* spec twice, concurrently."""
        store = TraceStore(stress_root)
        spec = spec_a()
        before = evaluation_count()
        results: dict[int, object] = {}

        def drive(slot: int) -> None:
            results[slot] = run_campaign(
                spec, store=store, parallel=False
            )

        threads = [
            threading.Thread(target=drive, args=(slot,)) for slot in (0, 1)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=300)
        assert sorted(results) == [0, 1]
        assert evaluation_count() - before == spec.n_points
        assert results[0].identical(results[1])
        # One of the two deferred to the other for every shared point.
        executors = sorted(r.executor for r in results.values())
        assert any("shared[" in e or "cache[" in e for e in executors)


class TestParallelGCAcceptance:
    def test_eight_way_campaign_survives_gc_and_still_hits(
        self, stress_root
    ):
        """Acceptance: populate through an 8-way parallel campaign, GC
        under a byte budget, then re-run — every surviving entry is a
        cache hit, every evicted one is rebuilt, bit-identically."""
        store = TraceStore(stress_root)
        spec = spec_b()
        first = run_campaign(spec, store=store, parallel=True, workers=8)
        assert first.executor.startswith("parallel[")
        assert store.n_results() == spec.n_points

        stats = store.stats()
        budget = stats["trace_bytes"] + stats["result_bytes"] // 2
        report = store.gc(max_bytes=budget)
        assert report.evicted_results >= 1
        assert report.evicted_traces == 0  # results always go first
        assert store.total_bytes() <= budget
        survivors = store.n_results()
        assert 0 < survivors < spec.n_points

        fresh = TraceStore(stress_root)
        again = run_campaign(spec, store=fresh, parallel=True, workers=8)
        assert again.identical(first)
        assert fresh.result_counters.disk_hits == survivors
        assert fresh.result_counters.misses == spec.n_points - survivors

        # Third pass: everything is a hit again, zero evaluations.
        final = TraceStore(stress_root)
        before = evaluation_count()
        third = run_campaign(spec, store=final, parallel=True, workers=8)
        assert evaluation_count() == before
        assert third.identical(first)
        assert f"cache[{spec.n_points}/{spec.n_points}]" in third.executor
