"""Row-major linearisation and page arithmetic."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.memory import (
    PageTable,
    delinearize,
    linearize,
    linearize_many,
    row_major_strides,
)

shapes = st.lists(st.integers(1, 9), min_size=1, max_size=4).map(tuple)


class TestLinearize:
    def test_1d_identity(self):
        assert linearize((5,), (10,)) == 5

    def test_row_major_order(self):
        # Last index varies fastest.
        assert linearize((0, 0), (3, 4)) == 0
        assert linearize((0, 1), (3, 4)) == 1
        assert linearize((1, 0), (3, 4)) == 4
        assert linearize((2, 3), (3, 4)) == 11

    def test_matches_numpy_ravel(self):
        shape = (3, 5, 2)
        arr = np.arange(np.prod(shape)).reshape(shape)
        for idx in np.ndindex(shape):
            assert linearize(idx, shape) == arr[idx]

    def test_bounds_checked(self):
        with pytest.raises(IndexError):
            linearize((3,), (3,))
        with pytest.raises(IndexError):
            linearize((-1,), (3,))

    def test_rank_checked(self):
        with pytest.raises(IndexError):
            linearize((1, 2), (6,))

    def test_strides(self):
        assert row_major_strides((3, 4, 5)) == (20, 5, 1)
        assert row_major_strides((7,)) == (1,)

    def test_strides_empty_shape_rejected(self):
        with pytest.raises(ValueError):
            row_major_strides(())

    @given(shapes, st.data())
    def test_roundtrip(self, shape, data):
        size = int(np.prod(shape))
        flat = data.draw(st.integers(0, size - 1))
        assert linearize(delinearize(flat, shape), shape) == flat

    def test_delinearize_bounds(self):
        with pytest.raises(IndexError):
            delinearize(12, (3, 4))

    def test_vectorised_agrees_with_scalar(self):
        shape = (4, 6)
        ii, jj = np.meshgrid(np.arange(4), np.arange(6), indexing="ij")
        flats = linearize_many([ii.ravel(), jj.ravel()], shape)
        expected = [linearize((i, j), shape) for i, j in zip(ii.ravel(), jj.ravel())]
        assert np.array_equal(flats, expected)

    def test_vectorised_bounds_checked(self):
        with pytest.raises(IndexError):
            linearize_many([np.array([4])], (4,))


class TestPageTable:
    def test_exact_division(self):
        table = PageTable(96, 32)
        assert table.n_pages == 3
        assert table.last_page_elements == 32

    def test_partial_last_page_paper_example(self):
        # The paper's example: arrays of 100 elements, page size 32 ->
        # 4 pages, the last holding only 4 elements.
        table = PageTable(100, 32)
        assert table.n_pages == 4
        assert table.last_page_elements == 4
        assert table.page_range(3) == (96, 100)
        assert table.elements_in_page(3) == 4

    def test_page_of(self):
        table = PageTable(100, 32)
        assert table.page_of(0) == 0
        assert table.page_of(31) == 0
        assert table.page_of(32) == 1
        assert table.page_of(99) == 3

    def test_page_of_bounds(self):
        table = PageTable(100, 32)
        with pytest.raises(IndexError):
            table.page_of(100)

    def test_pages_of_vectorised(self):
        table = PageTable(100, 32)
        flats = np.array([0, 31, 32, 99])
        assert np.array_equal(table.pages_of(flats), [0, 0, 1, 3])

    def test_offset_in_page(self):
        table = PageTable(100, 32)
        assert table.offset_in_page(33) == 1

    def test_page_range_bounds(self):
        with pytest.raises(IndexError):
            PageTable(100, 32).page_range(4)

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            PageTable(0, 32)
        with pytest.raises(ValueError):
            PageTable(10, 0)

    @given(st.integers(1, 500), st.integers(1, 64))
    def test_ranges_tile_array(self, n, ps):
        """Page ranges partition [0, n) exactly."""
        table = PageTable(n, ps)
        covered = 0
        for page in range(table.n_pages):
            start, stop = table.page_range(page)
            assert start == covered
            covered = stop
        assert covered == n
