"""Host-processor re-initialisation protocol (§5)."""

from __future__ import annotations

import pytest

from repro.hostproto import ArrayPhase, ProtocolError, ReinitCoordinator


@pytest.fixture
def coord():
    return ReinitCoordinator(["A", "B", "C", "D", "E"], n_pes=4)


class TestHostAssignment:
    def test_round_robin(self, coord):
        assert [coord.host_of(a) for a in "ABCDE"] == [0, 1, 2, 3, 0]

    def test_load_balanced_within_one(self, coord):
        load = coord.host_load()
        assert max(load.values()) - min(load.values()) <= 1

    def test_unknown_array(self, coord):
        with pytest.raises(KeyError):
            coord.host_of("Z")


class TestHandshake:
    def test_grant_requires_all_pes(self, coord):
        for pe in range(3):
            assert not coord.request_reinit("A", pe)
            assert coord.phase("A") == ArrayPhase.COLLECTING
        assert coord.request_reinit("A", 3)  # last request grants
        assert coord.phase("A") == ArrayPhase.ACTIVE
        assert coord.generation("A") == 1

    def test_generation_increments_per_round(self, coord):
        for _ in range(3):
            for pe in range(4):
                coord.request_reinit("B", pe)
        assert coord.generation("B") == 3
        assert coord.stats.rounds == 3

    def test_double_request_rejected(self, coord):
        coord.request_reinit("A", 0)
        with pytest.raises(ProtocolError, match="twice"):
            coord.request_reinit("A", 0)

    def test_pe_bounds(self, coord):
        with pytest.raises(IndexError):
            coord.request_reinit("A", 4)

    def test_independent_arrays(self, coord):
        coord.request_reinit("A", 0)
        assert coord.phase("B") == ArrayPhase.ACTIVE
        assert coord.pending_requests("A") == 1
        assert coord.pending_requests("B") == 0


class TestWriteGuard:
    def test_write_after_request_before_grant_rejected(self, coord):
        coord.request_reinit("A", 0)
        with pytest.raises(ProtocolError, match="out-of-date"):
            coord.check_write_allowed("A", 0)

    def test_other_pes_may_still_write_old_generation(self, coord):
        coord.request_reinit("A", 0)
        coord.check_write_allowed("A", 1)  # no exception

    def test_write_allowed_after_grant(self, coord):
        for pe in range(4):
            coord.request_reinit("A", pe)
        coord.check_write_allowed("A", 0)


class TestMessageCounting:
    def test_messages_per_round(self, coord):
        for pe in range(4):
            coord.request_reinit("A", pe)
        # N requests + (N-1) grant messages.
        assert coord.stats.requests == 4
        assert coord.stats.broadcasts == 3
        assert coord.stats.messages == 7


class TestGrantHooks:
    def test_hooks_fire_once_per_round(self, coord):
        events = []
        coord.on_grant(lambda array, gen: events.append((array, gen)))
        for pe in range(4):
            coord.request_reinit("C", pe)
        assert events == [("C", 1)]

    def test_hook_integration_with_memory_and_caches(self):
        """Grant clears the array's bank and invalidates cached pages —
        the full §5 reuse path."""
        import numpy as np

        from repro.cache import LRUCache
        from repro.core import DataLayout
        from repro.memory import DistributedHeap

        layout = DataLayout({"A": (64,)}, page_size=16, n_pes=2)
        heap = DistributedHeap(layout)
        caches = [LRUCache(4) for _ in range(2)]
        coord = ReinitCoordinator(["A"], n_pes=2)

        def on_grant(array, gen):
            heap.reinitialize(array)
            n_pages = layout.tables[array].n_pages
            for cache in caches:
                for page in range(n_pages):
                    cache.invalidate((0, page))

        coord.on_grant(on_grant)
        heap.write(0, "A", 0, 1.0)       # generation 0 value
        caches[1].access((0, 0))         # PE 1 caches page 0 remotely
        for pe in range(2):
            coord.request_reinit("A", pe)
        assert heap.try_read("A", 0) is None      # bank cleared
        assert not caches[1].contains((0, 0))     # stale page dropped
        heap.write(0, "A", 0, 2.0)                # generation 1 write OK
