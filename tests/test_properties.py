"""Cross-cutting property-based tests over randomly generated kernels.

A random affine loop-nest generator produces small but structurally
diverse programs (1-2 loop levels, 1-3 statements, random skews and
strides).  Against these we check system-level invariants that no
hand-picked example can cover as broadly:

* the vectorised trace generator is bit-identical to the interpreter;
* the untimed simulator conserves reads and writes in every
  configuration, and caching only ever converts remote reads into
  cached reads;
* the blocking timed machine reproduces the untimed counters exactly;
* the round-robin emulator reproduces the interpreter's values.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core import MachineConfig, simulate
from repro.ir import ProgramBuilder, Ref, run_program
from repro.ir.vectorize import _assert_equal, try_vectorize_trace
from repro.machine import EmulatedMachine, TimedMachine

ARRAY = 64  # all arrays 64 elements; subscripts built to stay in bounds


@st.composite
def affine_programs(draw):
    """A random single-assignment program over 1-D arrays.

    Writes ``OUTs[s][k + s_off]`` reading up to three inputs at random
    skews; optionally a second (outer) loop level feeding a 2-D output.
    Bounds are chosen so that every subscript stays within [0, ARRAY).
    """
    n_stmts = draw(st.integers(1, 3))
    b = ProgramBuilder("random_affine")
    n_inputs = draw(st.integers(1, 3))
    for i in range(n_inputs):
        b.input(f"IN{i}", (ARRAY,))
    k = b.index("k")
    lo = draw(st.integers(0, 8))
    hi = draw(st.integers(lo, 47))
    step = draw(st.sampled_from([1, 2, -1]))
    rng_inputs = {
        f"IN{i}": np.linspace(0, 1, ARRAY) * (i + 1) for i in range(n_inputs)
    }
    outs = []
    for s in range(n_stmts):
        out = b.output(f"OUT{s}", (ARRAY,))
        outs.append(out)
    loop_lo, loop_hi = (lo, hi) if step > 0 else (hi, lo)
    with b.loop(k, loop_lo, loop_hi, step=step):
        for s, out in enumerate(outs):
            terms = []
            for _ in range(draw(st.integers(1, 3))):
                src = draw(st.integers(0, n_inputs - 1))
                skew = draw(st.integers(0, 16))
                terms.append(Ref(f"IN{src}", [k + skew]))
            expr = terms[0]
            for t in terms[1:]:
                expr = expr + t
            b.assign(out[k + s], expr * 0.5)
    return b.build(), rng_inputs


CONFIGS = [
    MachineConfig(n_pes=1, page_size=8, cache_elems=0),
    MachineConfig(n_pes=3, page_size=8, cache_elems=32),
    MachineConfig(n_pes=4, page_size=16, cache_elems=0),
    MachineConfig(n_pes=7, page_size=8, cache_elems=64),
]


@settings(max_examples=40, deadline=None)
@given(affine_programs())
def test_vectorized_trace_matches_interpreter(case):
    program, inputs = case
    vectorised = try_vectorize_trace(program)
    assert vectorised is not None
    reference = run_program(program, inputs).trace
    _assert_equal(vectorised, reference)


@settings(max_examples=30, deadline=None)
@given(affine_programs())
def test_simulator_conservation_laws(case):
    program, inputs = case
    trace = run_program(program, inputs).trace
    for cfg in CONFIGS:
        result = simulate(trace, cfg)
        stats = result.stats
        # Reads and writes are conserved across categories.
        assert stats.total_reads == trace.n_reads
        assert stats.writes == trace.n_instances
        # At one PE everything is local.
        if cfg.n_pes == 1:
            assert stats.remote_reads == 0 and stats.cached_reads == 0
        # The cache never increases remote+cached beyond no-cache remote.
        base = simulate(trace, cfg.without_cache()).stats
        assert stats.local_reads == base.local_reads
        assert stats.cached_reads + stats.remote_reads == base.remote_reads
        assert stats.remote_reads <= base.remote_reads


@settings(max_examples=15, deadline=None)
@given(affine_programs())
def test_blocking_timed_machine_matches_untimed(case):
    program, inputs = case
    trace = run_program(program, inputs).trace
    cfg = MachineConfig(n_pes=4, page_size=8, cache_elems=32)
    timed = TimedMachine(trace, cfg, mode="blocking").run()
    untimed = simulate(trace, cfg)
    assert np.array_equal(timed.stats.counts, untimed.stats.counts)
    assert timed.finish_time > 0


@settings(max_examples=15, deadline=None)
@given(affine_programs())
def test_emulator_values_match_interpreter(case):
    program, inputs = case
    sequential = run_program(program, inputs)
    parallel = EmulatedMachine(program, inputs, n_pes=3, page_size=8).run()
    for array in program.arrays:
        mask = sequential.defined[array]
        np.testing.assert_array_equal(parallel.defined[array], mask)
        np.testing.assert_allclose(
            parallel.values[array][mask], sequential.values[array][mask]
        )


@settings(max_examples=20, deadline=None)
@given(affine_programs(), st.integers(2, 64))
def test_remote_pct_bounded(case, n_pes):
    program, inputs = case
    trace = run_program(program, inputs).trace
    result = simulate(trace, MachineConfig(n_pes=n_pes, page_size=8))
    assert 0.0 <= result.remote_read_pct <= 100.0
    assert 0.0 <= result.cached_read_pct <= 100.0
