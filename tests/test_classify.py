"""Access-distribution classifier: static structure and dynamic arbiter."""

from __future__ import annotations

import pytest

from repro.core import AccessClass, classify
from repro.core.classify import classify_dynamic, classify_static
from repro.bench import kernel_trace
from repro.ir import ProgramBuilder
from repro.kernels import get_kernel


class TestStatic:
    def test_matched(self, matched_program):
        program, _ = matched_program
        evidence = classify_static(program)
        assert evidence.hint is AccessClass.MATCHED
        assert all(p.kind is AccessClass.MATCHED for p in evidence.patterns)

    def test_skew_value_extracted(self):
        program, _ = get_kernel("hydro_fragment").build(n=100)
        evidence = classify_static(program)
        skews = sorted(
            p.skew for p in evidence.patterns if p.kind is AccessClass.SKEWED
        )
        # ZX is 11 elements longer than X, so k+10/k+11 are skews 10, 11.
        assert skews == [10, 11]
        assert evidence.hint is AccessClass.SKEWED

    def test_velocity_mismatch_is_cyclic(self):
        program, _ = get_kernel("iccg").build(n=64)
        evidence = classify_static(program)
        assert evidence.hint is AccessClass.CYCLIC
        cyclic = [p for p in evidence.patterns if p.kind is AccessClass.CYCLIC]
        assert cyclic  # write stride 1/2 vs read stride 1

    def test_multidim_constant_skew_is_cyclic(self):
        program, _ = get_kernel("hydro_2d").build(n=20)
        evidence = classify_static(program)
        assert evidence.hint is AccessClass.CYCLIC

    def test_indirect_is_random(self):
        program, _ = get_kernel("pic_2d").build(n=50)
        evidence = classify_static(program)
        assert evidence.hint is AccessClass.RANDOM

    def test_reductions_noted_not_classified(self):
        program, _ = get_kernel("inner_product").build(n=50)
        evidence = classify_static(program)
        assert evidence.notes  # the reduction is recorded
        assert evidence.hint is AccessClass.MATCHED  # nothing else to rank

    def test_negative_direction_skew(self):
        # X(k) = Y(101-k): linear parts differ in sign -> not a constant
        # offset -> structurally cyclic (pages revisited in reverse).
        b = ProgramBuilder("reverse")
        n = 100
        X = b.output("X", (n + 1,))
        Y = b.input("Y", (n + 1,))
        k = b.index("k")
        with b.loop(k, 1, n):
            b.assign(X[k], Y[101 - k])
        evidence = classify_static(b.build())
        assert evidence.hint is AccessClass.CYCLIC


class TestDynamic:
    def test_matched_detected(self, matched_program):
        program, inputs = matched_program
        trace = kernel_trace(program, inputs)
        label, evidence = classify_dynamic(trace)
        assert label is AccessClass.MATCHED
        assert max(evidence.remote_pct_nocache) == 0.0

    def test_evidence_table_renders(self, matched_program):
        program, inputs = matched_program
        _, evidence = classify_dynamic(kernel_trace(program, inputs))
        text = evidence.table()
        assert "PEs" in text and "remote%" in text

    def test_skewed_detected(self):
        program, inputs = get_kernel("hydro_fragment").build(n=500)
        label, _ = classify_dynamic(
            kernel_trace(program, inputs), static_hint=AccessClass.SKEWED
        )
        assert label is AccessClass.SKEWED

    def test_random_detected(self):
        program, inputs = get_kernel("linear_recurrence").build(n=128)
        label, _ = classify_dynamic(
            kernel_trace(program, inputs), static_hint=AccessClass.CYCLIC
        )
        assert label is AccessClass.RANDOM


class TestAgainstPaper:
    """The classifier must agree with every class label in §7.1."""

    @pytest.mark.parametrize(
        "name",
        [k.name for k in __import__("repro.kernels", fromlist=["paper_kernels"]).paper_kernels()],
    )
    def test_agrees_with_paper(self, name):
        kernel = get_kernel(name)
        program, inputs = kernel.build()
        result = classify(program, inputs)
        assert result.final == kernel.paper_class, (
            f"{name}: classified {result.final}, paper says "
            f"{kernel.paper_class}\n{result.dynamic.table()}"
        )

    def test_classification_str(self):
        program, inputs = get_kernel("pic_1d_fragment").build(n=100)
        result = classify(program, inputs)
        assert "Matched" in str(result)
        assert result.static.patterns[0].describe().endswith("matched")
