"""The evaluation fleet: one store root, many machines.

Three layers, matching the package:

* protocol/schema units — framing survives round trips and refuses
  garbage before allocation; the campaign schema accepts the documented
  format and names each violation;
* coordinator units — round-robin fairness, worker-loss requeue,
  attempt caps, idempotent admission;
* end-to-end — a real ``repro serve --listen`` process and a real
  ``repro worker`` process over one shared store root, with the
  exactly-once guarantee audited from the merged obs event log, and a
  worker SIGKILLed mid-claim whose campaign still completes through
  the lease-steal recovery path.
"""

from __future__ import annotations

import asyncio
import io
import json
import os
import signal
import socket
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

import repro
from repro.engine import CampaignSpec, TraceStore, run_campaign
from repro.fleet import (
    CAMPAIGN_SCHEMA,
    CAMPAIGN_SCHEMA_VERSION,
    FleetClient,
    FleetCoordinator,
    FleetError,
    FleetProtocolError,
    PROTOCOL_VERSION,
    parse_address,
    read_frame,
    validate_campaign,
    write_frame,
)
from repro.fleet.coordinator import SaturatedError
from repro.fleet.server import FleetServer
from repro.fleet.worker import evaluate_point, run_spool_worker, spool_dir

SMALL_SPEC = {
    "name": "fleet-small",
    "backend": "untimed",
    "kernels": [{"name": "first_diff", "n": 64}],
    "pes": [1, 2],
    "page_sizes": [16],
    "cache_elems": [0],
}


def small_spec(**overrides) -> CampaignSpec:
    return CampaignSpec.from_dict({**SMALL_SPEC, **overrides})


# ---------------------------------------------------------------------------
# protocol
# ---------------------------------------------------------------------------


class TestProtocol:
    def test_frame_round_trip(self):
        buffer = io.BytesIO()
        message = {"op": "hello", "proto": PROTOCOL_VERSION, "text": "π\n{}"}
        write_frame(buffer, message)
        buffer.seek(0)
        assert read_frame(buffer) == message
        assert read_frame(buffer) is None  # clean EOF

    def test_frame_is_length_delimited_not_content_sniffed(self):
        buffer = io.BytesIO()
        write_frame(buffer, {"op": "x", "body": "12\nfake\nframe"})
        write_frame(buffer, {"op": "y"})
        buffer.seek(0)
        assert read_frame(buffer)["body"] == "12\nfake\nframe"
        assert read_frame(buffer) == {"op": "y"}

    @pytest.mark.parametrize(
        "wire",
        [
            b"nope\n{}",  # non-numeric header
            b"-3\nxxx\n",  # negative length
            b"99999999999\n",  # over the frame bound
            b"10\nshort\n",  # truncated body
            b"2\n{}",  # missing trailing newline
            b'6\n"text"\n',  # JSON but not an object
            b'2\n{}\n',  # object without an op
        ],
    )
    def test_garbage_is_refused(self, wire):
        with pytest.raises(FleetProtocolError):
            read_frame(io.BytesIO(wire))

    def test_parse_address(self):
        assert parse_address("127.0.0.1:7341") == ("127.0.0.1", 7341)
        assert parse_address("[::1]:80") == ("::1", 80)
        for bad in ("nohost", "host:", ":123", "host:abc"):
            with pytest.raises(ValueError):
                parse_address(bad)


# ---------------------------------------------------------------------------
# schema
# ---------------------------------------------------------------------------


class TestSchema:
    def test_schema_is_versioned(self):
        assert CAMPAIGN_SCHEMA["$id"].endswith(
            f"v{CAMPAIGN_SCHEMA_VERSION}"
        )
        assert CAMPAIGN_SCHEMA_VERSION == 1

    def test_minimal_and_full_documents_conform(self):
        assert validate_campaign({"kernels": ["iccg"]}) == []
        assert validate_campaign(SMALL_SPEC) == []
        # Everything CampaignSpec serialises must round-trip the gate.
        assert validate_campaign(small_spec().to_dict()) == []

    @pytest.mark.parametrize(
        "document, needle",
        [
            ({}, "missing required key 'kernels'"),
            ({"kernels": []}, "at least 1"),
            ({"kernels": ["iccg"], "bogus": 1}, "unknown key 'bogus'"),
            ({"kernels": [{"n": 5}]}, "none of"),
            ({"kernels": ["iccg"], "pes": [0]}, "below the minimum"),
            ({"kernels": ["iccg"], "pes": [True]}, "expected integer"),
            ({"kernels": ["iccg"], "modes": ["warp"]}, "not one of"),
            ({"kernels": ["iccg"], "name": ""}, "must not be empty"),
            ({"kernels": "iccg"}, "expected array"),
        ],
    )
    def test_violations_are_named(self, document, needle):
        violations = validate_campaign(document)
        assert violations, f"expected a violation for {document!r}"
        assert any(needle in v for v in violations), violations

    def test_structural_gate_precedes_semantic_errors(self):
        # Unknown kernel *name* is semantic (registry) — the schema
        # accepts it; CampaignSpec.from_dict rejects it.
        document = {"kernels": ["no_such_kernel"]}
        assert validate_campaign(document) == []
        spec = CampaignSpec.from_dict(document)
        with pytest.raises(KeyError):
            from repro.kernels import get_kernel

            get_kernel(spec.kernels[0].name)


# ---------------------------------------------------------------------------
# coordinator
# ---------------------------------------------------------------------------


class TestCoordinator:
    def test_round_robin_across_campaigns(self):
        fleet = FleetCoordinator()
        first = small_spec(name="first", pes=[1, 2, 4, 8])
        second = small_spec(name="second")
        fleet.submit(first)
        fleet.submit(second)
        handed = [fleet.next_job("w") for _ in range(6)]
        campaigns = [job["campaign"][:8] for job in handed]
        # Alternating service while both have pending work, then the
        # bigger campaign drains alone.
        a, b = first.digest[:8], second.digest[:8]
        assert campaigns == [a, b, a, b, a, a]
        assert fleet.next_job("w") is None  # everything handed out

    def test_submission_is_idempotent_by_digest(self):
        fleet = FleetCoordinator()
        spec = small_spec()
        fresh = fleet.submit(spec)
        again = fleet.submit(CampaignSpec.from_dict(spec.to_dict()))
        assert not fresh["known"] and again["known"]
        assert fresh["campaign"] == again["campaign"]
        assert fleet.stats()["campaigns"] == 1

    def test_admission_control_saturates(self):
        fleet = FleetCoordinator(max_campaigns=1)
        fleet.submit(small_spec(name="one"))
        with pytest.raises(SaturatedError, match="max_campaigns"):
            fleet.submit(small_spec(name="two"))

    def test_completion_drives_campaign_state(self):
        fleet = FleetCoordinator()
        digest = fleet.submit(small_spec())["campaign"]
        jobs = [fleet.next_job("w"), fleet.next_job("w")]
        assert fleet.status(digest)["state"] == "running"
        for job in jobs:
            fleet.complete(job["job_id"], ok=True)
        status = fleet.status(digest)
        assert status["state"] == "done"
        assert status["done"] == status["total"] == 2
        assert fleet.idle

    def test_worker_loss_requeues_without_burning_attempts(self):
        fleet = FleetCoordinator(max_attempts=1)
        fleet.submit(small_spec())
        lost_job = fleet.next_job("doomed")
        assert fleet.worker_lost("doomed") == 1
        # The point is pending again, at the front, and the attempt
        # that died in transit was not charged (max_attempts=1 would
        # otherwise fail it on the next error).
        retry = fleet.next_job("healthy")
        assert retry["index"] == lost_job["index"]
        assert retry["attempt"] == 1
        # A completion racing the loss is acked as unknown, not fatal.
        assert fleet.complete(lost_job["job_id"], ok=True) is None

    def test_attempt_cap_turns_into_structured_failure(self):
        fleet = FleetCoordinator(max_attempts=2)
        digest = fleet.submit(small_spec())["campaign"]
        # A failed point requeues at the *front* and comes back first.
        job = fleet.next_job("w")
        assert (job["index"], job["attempt"]) == (0, 1)
        fleet.complete(job["job_id"], ok=False, error="boom")
        job = fleet.next_job("w")
        assert (job["index"], job["attempt"]) == (0, 2)
        fleet.complete(job["job_id"], ok=False, error="boom")
        # Attempt cap spent: index 0 stops retrying; index 1 still runs.
        job = fleet.next_job("w")
        assert job["index"] == 1
        fleet.complete(job["job_id"], ok=True)
        assert fleet.next_job("w") is None
        status = fleet.status(digest)
        assert status["state"] == "failed"
        assert status["failures"] == {"0": "boom"}
        # forget() frees the admission slot only once finished.
        assert fleet.forget(digest)
        assert fleet.status(digest) is None


# ---------------------------------------------------------------------------
# server + client, in process
# ---------------------------------------------------------------------------


@pytest.fixture()
def live_server():
    """A FleetServer on an ephemeral port, on a background loop."""
    server = FleetServer(FleetCoordinator(max_campaigns=4))
    loop = asyncio.new_event_loop()

    def run() -> None:
        # start_server() begins accepting as soon as it is created, so
        # run_forever() alone keeps the server alive; after stop(),
        # drain connection-handler tasks and close everything so the
        # stress suite's -W error pass sees no leaked sockets.
        asyncio.set_event_loop(loop)
        loop.run_forever()
        pending = asyncio.all_tasks(loop)
        for task in pending:
            task.cancel()
        if pending:
            loop.run_until_complete(
                asyncio.gather(*pending, return_exceptions=True)
            )
        loop.run_until_complete(server.close())
        loop.close()

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    asyncio.run_coroutine_threadsafe(server.start(), loop).result(timeout=10)
    yield server
    loop.call_soon_threadsafe(loop.stop)
    thread.join(timeout=10)


class TestServer:
    def address(self, server: FleetServer) -> tuple[str, int]:
        return ("127.0.0.1", server.port)

    def test_handshake_rejects_protocol_mismatch(self, live_server):
        with socket.create_connection(
            self.address(live_server), timeout=10
        ) as sock:
            stream = sock.makefile("rwb")
            write_frame(
                stream, {"op": "hello", "proto": 999, "role": "client"}
            )
            reply = read_frame(stream)
        assert reply["op"] == "error"
        assert "unsupported protocol" in reply["error"]
        assert str(PROTOCOL_VERSION) in reply["error"]

    def test_ping_submit_status_round_trip(self, live_server):
        with FleetClient(self.address(live_server)) as client:
            assert client.request({"op": "ping"}) == {"op": "pong"}
            accepted = client.request(
                {"op": "submit", "spec": SMALL_SPEC}
            )
            assert accepted["op"] == "accepted"
            assert accepted["points"] == 2
            status = client.request(
                {"op": "status", "campaign": accepted["campaign"]}
            )
            assert status["state"] == "running"
            assert status["pending"] == 2

    def test_invalid_spec_is_refused_with_violations(self, live_server):
        with FleetClient(self.address(live_server)) as client:
            with pytest.raises(FleetError, match="rejected"):
                client.request(
                    {"op": "submit", "spec": {"kernels": [], "pes": [0]}}
                )
            # A dispatching backend cannot be distributed either:
            # "service" normally normalises to the server's concrete
            # delegate, so point the delegate at a facade to prove the
            # server refuses to hand a dispatcher to remote workers.
            live_server.delegate = "service"
            try:
                with pytest.raises(FleetError, match="dispatching facade"):
                    client.request(
                        {
                            "op": "submit",
                            "spec": {**SMALL_SPEC, "backend": "service"},
                        }
                    )
            finally:
                live_server.delegate = "untimed"

    def test_fetch_requires_the_worker_role(self, live_server):
        with FleetClient(self.address(live_server)) as client:
            with pytest.raises(FleetError, match="role=worker"):
                client.request({"op": "fetch"})

    def test_worker_cycle_and_loss_requeue(self, live_server):
        address = self.address(live_server)
        with FleetClient(address) as client:
            digest = client.request(
                {"op": "submit", "spec": SMALL_SPEC}
            )["campaign"]
            doomed = FleetClient(address, role="worker")
            job = doomed.request({"op": "fetch"})
            assert job["op"] == "job"
            assert job["spec"]["kernels"] == SMALL_SPEC["kernels"]
            doomed.close()  # vanish with the job still leased
            with FleetClient(address, role="worker") as worker:
                seen = []
                deadline = time.monotonic() + 10
                while len(seen) < 2 and time.monotonic() < deadline:
                    fetched = worker.request({"op": "fetch"})
                    if fetched["op"] == "idle":
                        time.sleep(0.05)
                        continue
                    seen.append(fetched["index"])
                    worker.request(
                        {"op": "done", "job_id": fetched["job_id"]}
                    )
                # The dropped worker's point came back around.
                assert sorted(seen) == [0, 1]
            status = client.request({"op": "status", "campaign": digest})
            assert status["state"] == "done"
            wait = client.request(
                {"op": "wait", "campaign": digest, "timeout": 1}
            )
            assert wait["state"] == "done"


# ---------------------------------------------------------------------------
# the evaluation path (in process)
# ---------------------------------------------------------------------------


class TestEvaluatePoint:
    def test_exactly_once_against_one_store(self, tmp_path):
        store = TraceStore(tmp_path / "store")
        spec = small_spec()
        first = [
            evaluate_point(spec, i, store=store)
            for i in range(spec.n_points)
        ]
        again = [
            evaluate_point(spec, i, store=store)
            for i in range(spec.n_points)
        ]
        assert [r["computed"] for r in first] == [True, True]
        assert [r["computed"] for r in again] == [False, False]
        assert store.n_results() == spec.n_points
        assert store.active_leases() == 0

    def test_fleet_results_replay_into_a_local_campaign(self, tmp_path):
        """The point of the shared root: a client replays the fleet's
        results as pure cache hits."""
        store = TraceStore(tmp_path / "store")
        spec = small_spec()
        for index in range(spec.n_points):
            evaluate_point(spec, index, store=store)
        result = run_campaign(spec, store=store, parallel=False)
        assert all(record.cache_hit for record in result.records)

    def test_out_of_range_index(self, tmp_path):
        with pytest.raises(IndexError, match="out of range"):
            evaluate_point(
                small_spec(), 99, store=TraceStore(tmp_path / "store")
            )

    def test_spool_worker_drains_the_backlog(self, tmp_path):
        store = TraceStore(tmp_path / "store")
        spec = small_spec()
        spool = spool_dir(store)
        spool.mkdir(parents=True)
        spec.save(spool / "job.json")
        assert run_spool_worker(store=store, once=True) == 0
        assert (spool / "job.done").read_text().strip() == spec.digest
        assert store.n_results() == spec.n_points
        # A second pass sees the marker and does nothing.
        assert run_spool_worker(store=store, once=True) == 0
        assert store.n_results() == spec.n_points


# ---------------------------------------------------------------------------
# end to end: real processes over one store root
# ---------------------------------------------------------------------------


def _repro_env(store_root: Path, obs_stem: Path) -> dict[str, str]:
    env = dict(os.environ)
    src = str(Path(repro.__file__).parents[1])
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    env["REPRO_TRACE_STORE"] = str(store_root)
    env["REPRO_OBS"] = f"jsonl:{obs_stem}"
    return env


def _spawn(args, env, log: Path) -> subprocess.Popen:
    # Popen dups the descriptor, so the parent's handle closes here.
    with open(log, "w") as handle:
        return subprocess.Popen(
            [sys.executable, "-m", "repro", *args],
            env=env,
            stdout=handle,
            stderr=subprocess.STDOUT,
        )


def _await_line(log: Path, needle: str, timeout: float = 30.0) -> str:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if log.exists():
            for line in log.read_text().splitlines():
                if needle in line:
                    return line
        time.sleep(0.05)
    raise AssertionError(
        f"{needle!r} never appeared in {log}:\n"
        + (log.read_text() if log.exists() else "<missing>")
    )


def _terminate(*procs: subprocess.Popen) -> None:
    for proc in procs:
        if proc.poll() is None:
            proc.terminate()
    for proc in procs:
        try:
            proc.wait(timeout=10)
        except subprocess.TimeoutExpired:
            proc.kill()
            proc.wait(timeout=10)


@pytest.mark.parametrize("kill_worker", [False, True], ids=["clean", "kill"])
def test_fleet_end_to_end_over_one_store_root(tmp_path, kill_worker):
    """One ``repro serve --listen`` + worker process(es) on localhost,
    one store root.  Clean mode audits exactly-once from the merged
    obs log; kill mode SIGKILLs the first worker *between claim and
    evaluation* (the REPRO_FLEET_STALL_S window) and asserts a second
    worker completes the campaign through requeue + lease steal."""
    store_root = tmp_path / "store"
    obs_stem = tmp_path / "obs" / "ev"
    obs_stem.parent.mkdir()
    spec_path = tmp_path / "camp.json"
    spec_path.write_text(json.dumps(SMALL_SPEC))
    spec = CampaignSpec.from_dict(SMALL_SPEC)
    env = _repro_env(store_root, obs_stem)

    server_log = tmp_path / "server.log"
    server = _spawn(
        ["serve", "--listen", "127.0.0.1:0"], env, server_log
    )
    workers: list[subprocess.Popen] = []
    try:
        line = _await_line(server_log, "listening on")
        address = line.rsplit(" ", 1)[-1]

        def submit_campaign(*extra: str) -> subprocess.CompletedProcess:
            return subprocess.run(
                [
                    sys.executable,
                    "-m",
                    "repro",
                    "campaign",
                    "submit",
                    "--connect",
                    address,
                    *extra,
                    str(spec_path),
                ],
                env=env,
                capture_output=True,
                text=True,
                timeout=180,
            )

        if kill_worker:
            # Worker A stalls for 60s after *winning each claim*; we
            # kill it inside that window, so its death leaves a lease
            # held by a dead pid plus a half-done campaign.
            doomed = _spawn(
                ["worker", "--connect", address],
                dict(env, REPRO_FLEET_STALL_S="60"),
                tmp_path / "doomed.log",
            )
            workers.append(doomed)
            admit = submit_campaign()
            assert admit.returncode == 0, admit.stdout + admit.stderr
            deadline = time.monotonic() + 60
            while time.monotonic() < deadline:
                if any(
                    '"fleet.stall"' in path.read_text()
                    for path in obs_stem.parent.glob("ev-*.jsonl")
                ):
                    break
                time.sleep(0.05)
            else:
                raise AssertionError("worker never reached its claim stall")
            doomed.send_signal(signal.SIGKILL)
            doomed.wait(timeout=10)

        workers.append(
            _spawn(
                ["worker", "--connect", address, "--idle-exit", "120"],
                env,
                tmp_path / "worker.log",
            )
        )
        # Idempotent resubmission of the same digest; --wait blocks
        # until the campaign settles.
        submit = submit_campaign("--wait")
        assert submit.returncode == 0, submit.stdout + submit.stderr
        assert "done: 2/2 points" in submit.stdout
    finally:
        _terminate(server, *workers)

    # The shared store converged: every point present exactly once,
    # no lease left behind, and a local replay is all cache hits.
    store = TraceStore(store_root)
    assert store.n_results() == spec.n_points
    assert store.active_leases() == 0
    result = run_campaign(spec, store=store, parallel=False)
    assert all(record.cache_hit for record in result.records)

    # The exactly-once audit from the merged fleet event log.
    from repro import obs as obs_module

    merged = obs_module.merge(str(obs_stem))
    events = list(obs_module.read_events(merged))
    evaluated = [e for e in events if e["event"] == "fleet.eval"]
    computed = [e for e in evaluated if e["computed"]]
    refs = {e["ref"] for e in computed}
    assert len(refs) == spec.n_points
    if not kill_worker:
        # Clean run: each point computed exactly once fleet-wide.
        assert len(computed) == spec.n_points
    else:
        # The killed worker's claims were stolen, not duplicated
        # silently: the surviving worker computed every point, and the
        # audit trail shows the requeue happened.
        assert any(e["event"] == "fleet.worker_lost" for e in events)
