"""Execution time on the discrete-event machine (the §9 simulation).

Runs the Hydro Fragment on the *timed evaluation backend* across PE
counts, interconnect topologies and the two PE execution modes,
reporting speedup over one PE, stall time, and network contention —
the questions the paper's future-work section poses.

Everything goes through the engine: one campaign spec per question,
``run_campaign`` fans the scenarios out and caches every outcome, and
the records carry the timed backend's metric columns (finish_time,
speedup, stall_time, messages_per_link_max, ...).

Run:  python examples/timed_speedup.py
"""

from repro.engine import CampaignSpec, KernelSpec, run_campaign

KERNEL = KernelSpec("hydro_fragment", n=1000)


def main() -> None:
    print("speedup vs PEs (mesh2d, blocking vs multithreaded PEs):")
    modes = CampaignSpec(
        name="timed-modes",
        backend="timed",
        kernels=(KERNEL,),
        pes=(2, 4, 8, 16, 32, 64),
        page_sizes=(32,),
        cache_elems=(256,),
        topologies=("mesh2d",),
        modes=("blocking", "multithreaded"),
    )
    result = run_campaign(modes)
    print(f"{'PEs':>4} {'blocking':>10} {'multithreaded':>14} {'stall%':>8}")
    for pes in modes.pes:
        blocking = result.find(n_pes=pes, mode="blocking")
        threaded = result.find(n_pes=pes, mode="multithreaded")
        stall_pct = 100 * blocking.metrics["stall_time"] / (
            blocking.metrics["finish_time"] * pes
        )
        print(
            f"{pes:>4} {blocking.metrics['speedup']:>10.2f} "
            f"{threaded.metrics['speedup']:>14.2f} {stall_pct:>8.1f}"
        )

    print("\ntopology comparison at 16 PEs:")
    topologies = CampaignSpec(
        name="timed-topologies",
        backend="timed",
        kernels=(KERNEL,),
        pes=(16,),
        page_sizes=(32,),
        cache_elems=(256,),
        topologies=("crossbar", "hypercube", "mesh2d", "torus2d", "ring", "bus"),
    )
    result = run_campaign(topologies)
    print(f"{'topology':>10} {'finish':>10} {'speedup':>8} {'hops':>6} "
          f"{'max link load':>14}")
    for topo in topologies.topologies:
        record = result.find(topology=topo)
        print(
            f"{topo:>10} {record.metrics['finish_time']:>10.0f} "
            f"{record.metrics['speedup']:>8.2f} "
            f"{record.metrics['total_hops']:>6.0f} "
            f"{record.metrics['messages_per_link_max']:>14.0f}"
        )

    print(
        "\nBecause modulo partitioning sends this loop's skew traffic to "
        "neighbouring\nPEs, a ring matches the crossbar — topology only "
        "bites when traffic scatters."
    )


if __name__ == "__main__":
    main()
