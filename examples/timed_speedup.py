"""Execution time on the discrete-event machine (the §9 simulation).

Runs the Hydro Fragment on the timed machine model across PE counts,
interconnect topologies and the two PE execution modes, reporting
speedup over one PE, stall time, and network contention — the
questions the paper's future-work section poses.

Run:  python examples/timed_speedup.py
"""

from repro.bench import kernel_trace
from repro.core import MachineConfig
from repro.kernels import get_kernel
from repro.machine import TimedMachine, serial_time


def main() -> None:
    program, inputs = get_kernel("hydro_fragment").build(n=1000)
    trace = kernel_trace(program, inputs)
    base = serial_time(trace)
    print(f"serial execution: {base:.0f} cycles\n")

    print("speedup vs PEs (mesh2d, blocking vs multithreaded PEs):")
    print(f"{'PEs':>4} {'blocking':>10} {'multithreaded':>14} {'stall%':>8}")
    for pes in (2, 4, 8, 16, 32, 64):
        cfg = MachineConfig(n_pes=pes, page_size=32, cache_elems=256)
        blocking = TimedMachine(trace, cfg, topology="mesh2d").run()
        threaded = TimedMachine(
            trace, cfg, topology="mesh2d", mode="multithreaded"
        ).run()
        stall_pct = 100 * blocking.stall_time.sum() / (
            blocking.finish_time * pes
        )
        print(
            f"{pes:>4} {blocking.speedup(base):>10.2f} "
            f"{threaded.speedup(base):>14.2f} {stall_pct:>8.1f}"
        )

    print("\ntopology comparison at 16 PEs:")
    print(f"{'topology':>10} {'finish':>10} {'speedup':>8} {'hops':>6} "
          f"{'max link load':>14}")
    cfg = MachineConfig(n_pes=16, page_size=32, cache_elems=256)
    for topo in ("crossbar", "hypercube", "mesh2d", "ring", "bus"):
        result = TimedMachine(trace, cfg, topology=topo).run()
        print(
            f"{topo:>10} {result.finish_time:>10.0f} "
            f"{result.speedup(base):>8.2f} {result.total_hops:>6} "
            f"{result.contention['messages_per_link_max']:>14.0f}"
        )

    print(
        "\nBecause modulo partitioning sends this loop's skew traffic to "
        "neighbouring\nPEs, a ring matches the crossbar — topology only "
        "bites when traffic scatters."
    )


if __name__ == "__main__":
    main()
