"""Bring your own kernel: a 2-D Jacobi-style stencil under the IR.

Shows the full authoring workflow on a kernel that is *not* in the
Livermore registry:

1. write the loop nest with :class:`ProgramBuilder`,
2. statically verify single assignment (§5 data-path analysis),
3. classify its access distribution,
4. sweep PEs/page sizes and compare partition schemes.

The stencil writes a fresh output grid while reading a 5-point
neighbourhood of the input — the canonical single-assignment version
of an iterative smoother.

Run:  python examples/custom_stencil.py
"""

import numpy as np

from repro import (
    BlockPartition,
    MachineConfig,
    ModuloPartition,
    ProgramBuilder,
    check_program,
    classify,
    simulate,
)
from repro.bench import kernel_trace


def build_stencil(n: int = 96, seed: int = 33):
    b = ProgramBuilder(
        "jacobi_2d", "5-point Jacobi smoothing step, single assignment."
    )
    V = b.output("V", (n, n))
    U = b.input("U", (n, n))
    W = b.scalar(W=0.25)
    i, j = b.index("i"), b.index("j")
    with b.loop(i, 1, n - 2):
        with b.loop(j, 1, n - 2):
            b.assign(
                V[i, j],
                (1.0 - 4.0 * W) * U[i, j]
                + W * (U[i - 1, j] + U[i + 1, j] + U[i, j - 1] + U[i, j + 1]),
            )
    rng = np.random.default_rng(seed)
    return b.build(), {"U": rng.random((n, n))}


def main() -> None:
    program, inputs = build_stencil()
    # 1. static single-assignment verification
    report = check_program(program)
    print(f"single-assignment check: {report.verdict}")
    # 2. access-distribution classification
    verdict = classify(program, inputs)
    print(f"access class: {verdict.final} (static hint: {verdict.static.hint})")
    print(verdict.dynamic.table())
    # 3. machine sweep
    trace = kernel_trace(program, inputs)
    print(f"\n{'PEs':>4} {'ps':>4} {'scheme':>8} {'remote% no-cache':>17} "
          f"{'remote% cache':>14}")
    for scheme in (ModuloPartition(), BlockPartition()):
        for n_pes in (4, 16, 64):
            for page_size in (32, 64):
                cfg = MachineConfig(
                    n_pes=n_pes,
                    page_size=page_size,
                    cache_elems=256,
                    partition=scheme,
                )
                with_cache = simulate(trace, cfg).remote_read_pct
                without = simulate(trace, cfg.without_cache()).remote_read_pct
                print(
                    f"{n_pes:>4} {page_size:>4} {scheme.name:>8} "
                    f"{without:>17.2f} {with_cache:>14.2f}"
                )
    print(
        "\nA row-major 2-D stencil behaves like the paper's 2-D hydro "
        "fragment:\nskewed along rows, cyclic across them — and the "
        "division scheme trades\nboundary traffic differently than modulo."
    )


if __name__ == "__main__":
    main()
