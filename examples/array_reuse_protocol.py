"""Recycling single-assignment arrays with the host-processor protocol.

Single assignment forbids rewriting an array; §5's answer is a special
re-initialisation construct coordinated by a per-array *host
processor*.  This example runs an iterative computation (repeated
smoothing sweeps) where each generation writes a fresh logical version
of the grid, and the §5 handshake recycles the physical storage
between sweeps:

* every PE requests re-initialisation once it finished its subrange,
* the host grants when the last request arrives,
* the grant clears the I-structure bank and invalidates the array's
  pages in every PE cache (stale-generation pages must never hit).

Run:  python examples/array_reuse_protocol.py
"""

import numpy as np

from repro.cache import LRUCache
from repro.core import DataLayout
from repro.hostproto import ReinitCoordinator
from repro.memory import DistributedHeap

N_PES = 8
N = 256
SWEEPS = 5


def main() -> None:
    layout = DataLayout({"GRID": (N,), "NEXT": (N,)}, page_size=32, n_pes=N_PES)
    heap = DistributedHeap(layout)
    caches = [LRUCache(8) for _ in range(N_PES)]
    coord = ReinitCoordinator(["GRID", "NEXT"], n_pes=N_PES)
    print(f"hosts: GRID -> PE {coord.host_of('GRID')}, "
          f"NEXT -> PE {coord.host_of('NEXT')}")

    def on_grant(array: str, generation: int) -> None:
        heap.reinitialize(array)
        array_id = sorted(layout.shapes).index(array)
        for cache in caches:
            for page in range(layout.tables[array].n_pages):
                cache.invalidate((array_id, page))
        print(f"  grant: {array} recycled -> generation {generation}")

    coord.on_grant(on_grant)

    rng = np.random.default_rng(0)
    heap.initialize("GRID", rng.random(N))

    for sweep in range(SWEEPS):
        # Each PE produces its owned cells of NEXT from GRID (owner
        # computes; neighbour reads would be cached remote pages).
        for pe in range(N_PES):
            for start, stop in layout.subranges("NEXT", pe):
                for cell in range(start, stop):
                    left = heap.try_read("GRID", max(cell - 1, 0))
                    here = heap.try_read("GRID", cell)
                    right = heap.try_read("GRID", min(cell + 1, N - 1))
                    heap.write(pe, "NEXT", cell, (left + here + right) / 3.0)
        checksum = sum(
            heap.try_read("NEXT", c) for c in range(N)
        )
        print(f"sweep {sweep}: checksum={checksum:.6f}")

        # Recycle GRID, then move NEXT's values into the fresh GRID
        # generation so the next sweep reads them.
        values = np.array([heap.try_read("NEXT", c) for c in range(N)])
        for pe in range(N_PES):
            coord.request_reinit("GRID", pe)
        heap.initialize("GRID", values)
        for pe in range(N_PES):
            coord.request_reinit("NEXT", pe)

    stats = coord.stats
    print(
        f"\nprotocol cost: {stats.rounds} rounds, {stats.requests} requests, "
        f"{stats.broadcasts} grant messages "
        f"({stats.messages / stats.rounds:.0f} messages/round = 2N-1)"
    )


if __name__ == "__main__":
    main()
