"""Shared evaluation service: N concurrent campaigns, one worker pool.

The ``backend="service"`` workflow end to end:

1. configure the process-wide :class:`~repro.backends.EvalService`
   (pool size, queue bound, delegate backend);
2. launch three campaigns *concurrently* — each would historically
   have forked its own multiprocessing pool; through the service they
   submit into one bounded queue served by one resident pool;
3. read the service's stats: one ``pool_launches_total``, every submission
   completed, the queue's high-water mark;
4. run an overlapping campaign — points another campaign already
   built replay from the store's result cache (claims and, across
   independent processes, lock-file leases guarantee every entry is
   built exactly once — see ``docs/architecture.md``);
5. switch the delegate to the timed machine and sweep its axes
   through the very same service.

Run:  python examples/service_campaigns.py
"""

import tempfile
import threading

from repro.backends import (
    configure_service,
    evaluation_count,
    get_service,
    shutdown_service,
)
from repro.bench import render_table
from repro.engine import CampaignSpec, KernelSpec, TraceStore, run_campaign


def spec(slot: int) -> CampaignSpec:
    return CampaignSpec(
        name=f"svc-demo-{slot}",
        backend="service",
        kernels=(KernelSpec("first_diff", n=200),),
        pes=(1, 2, 4, 8),
        page_sizes=(32,),
        cache_elems=(64 + slot, 0),  # distinct grid per campaign
    )


def main() -> None:
    store = TraceStore(tempfile.mkdtemp(prefix="repro-service-"))

    # 1. One resident pool for the whole process (re-configurable).
    shutdown_service()
    configure_service(workers=2, queue_size=32, delegate="untimed")

    # 2. Three campaigns at once — no per-campaign pool forks.
    results: dict[int, object] = {}

    def drive(slot: int) -> None:
        results[slot] = run_campaign(spec(slot), store=store, parallel=True)

    threads = [
        threading.Thread(target=drive, args=(slot,)) for slot in range(3)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    for slot in sorted(results):
        print(
            f"campaign {slot}: {len(results[slot])} points "
            f"via {results[slot].executor}"
        )

    # 3. What the sharing did.
    stats = get_service().stats()
    print()
    print(
        render_table(
            ["field", "value"],
            [[key, stats[key]] for key in sorted(stats)],
            title="service stats after 3 concurrent campaigns",
        )
    )
    assert stats["pool_launches_total"] <= 1  # ONE pool served everything

    # 4. An overlapping campaign: shared points come from the cache.
    before = evaluation_count()
    overlap = run_campaign(spec(0), store=store, parallel=True)
    print(
        f"\noverlapping re-run: executor {overlap.executor!r}, "
        f"{evaluation_count() - before} new evaluations"
    )

    # 5. The same service, now delegating to the timed machine.
    shutdown_service()
    configure_service(workers=2, delegate="timed")
    timed = CampaignSpec(
        name="svc-demo-timed",
        backend="service",
        kernels=(KernelSpec("first_diff", n=200),),
        pes=(2, 4),
        page_sizes=(32,),
        cache_elems=(64,),
        topologies=("mesh", "torus"),  # the delegate's axes apply
    )
    result = run_campaign(timed, store=store, parallel=True)
    record = result.records[0]
    print(
        f"\ntimed-over-service: {len(result)} points, e.g. "
        f"{record.scenario.label()} -> speedup {record.metrics['speedup']:.2f}"
    )

    shutdown_service()
    configure_service()  # back to the defaults


if __name__ == "__main__":
    main()
