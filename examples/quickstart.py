"""Quickstart: partition a Livermore loop and measure remote accesses.

Reproduces the paper's headline experiment in a dozen lines: build the
Hydro Fragment (Livermore kernel 1), simulate it on a 16-PE machine
with page size 32, and watch the 256-element cache turn ~22% remote
reads into ~1% (§8).

Run:  python examples/quickstart.py
"""

from repro import MachineConfig, simulate
from repro.engine import default_store, kernel_trace_cached
from repro.kernels import get_kernel


def main() -> None:
    kernel = get_kernel("hydro_fragment")
    print(f"kernel: {kernel.title} (Livermore #{kernel.number})")

    # One interpreter run produces the access trace; every machine
    # configuration is then evaluated against the same trace.  The
    # engine's trace store persists it, so this script interprets the
    # kernel at most once per machine — re-runs replay the .npz file.
    trace = kernel_trace_cached("hydro_fragment", n=1000)
    print(f"trace:  {trace.n_instances} statement instances, "
          f"{trace.n_reads} array reads "
          f"(store: {default_store().root})\n")

    print(f"{'PEs':>4} {'remote% (no cache)':>20} {'remote% (cache 256)':>20}")
    for n_pes in (1, 4, 8, 16, 32, 64):
        cfg = MachineConfig(n_pes=n_pes, page_size=32, cache_elems=256)
        with_cache = simulate(trace, cfg).remote_read_pct
        without = simulate(trace, cfg.without_cache()).remote_read_pct
        print(f"{n_pes:>4} {without:>20.2f} {with_cache:>20.2f}")

    print("\nThe paper quotes 22% -> 1% for this loop (a skew-11 SD "
          "pattern);\nsingle assignment makes the cache coherence-free, "
          "so the reduction is pure win.")


if __name__ == "__main__":
    main()
