"""Engine walkthrough: one evaluation API, pluggable backends.

The end-to-end ``repro.engine`` workflow:

1. acquire a trace through the persistent store (`Trace.save`/`load`
   under the hood — the kernel is interpreted at most once per machine);
2. declare a sweep campaign (kernels × machine axes) in Python, show
   its JSON form;
3. execute it with the process-parallel executor (results arrive in
   canonical order, bit-identical to a serial run) and export JSON;
4. run the *same* campaign again — every record replays from the
   store's result cache, zero simulations;
5. switch the backend to the timed discrete-event machine and sweep
   its own axes (topologies × execution modes), streaming records as
   workers complete them;
6. inspect the store's sharded layout and garbage-collect it under a
   disk budget.

Store layout: artifacts are sharded under two-hex-char prefix
directories derived from their digest (``traces/ab/…npz``,
``results/cd/…npz``) with a crash-safe ``index.json`` (atomic rename)
recording each entry's kind, shard path, byte size and last-access
time.  ``TraceStore(max_bytes=…, policy="lru")`` bounds disk use:
``store.gc()`` evicts least-recently-used *result* entries first,
then traces — results are recomputable from a stored trace in
milliseconds, a trace costs an interpreter run — and never evicts an
entry a reader has pinned.  ``repro store stats`` / ``repro store gc``
expose the same machinery on the command line.

Run:  python examples/campaign.py
"""

import json
import tempfile
from pathlib import Path

from repro.backends import evaluation_count
from repro.bench import render_table
from repro.engine import (
    CampaignSpec,
    KernelSpec,
    TraceStore,
    interpretation_count,
    kernel_trace_cached,
    run_campaign,
)


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="repro-campaign-"))
    store = TraceStore(workdir / "traces")

    # -- 1. the trace store ------------------------------------------------
    trace = kernel_trace_cached("hydro_fragment", n=1000, store=store)
    print(f"trace store at {store.root}")
    print(f"  hydro_fragment: {trace.n_instances} instances, "
          f"{trace.n_reads} reads, entries on disk: {len(store)}")
    kernel_trace_cached("hydro_fragment", n=1000, store=store)
    print(f"  second acquisition: {store.counters.as_dict()} "
          "(no new interpretation)\n")

    # -- 2. a declarative campaign ----------------------------------------
    spec = CampaignSpec(
        name="paper-figures-1-2",
        kernels=(
            KernelSpec("hydro_fragment", n=1000),
            KernelSpec("iccg", n=1024),
        ),
        pes=(1, 4, 16, 64),
        page_sizes=(32, 64),
        cache_elems=(256, 0),
    )
    spec_path = spec.save(workdir / "campaign.json")
    print(f"campaign spec ({spec.n_points} points) saved to {spec_path}:")
    print("  " + "\n  ".join(spec.to_json().splitlines()[:6]) + "\n  ...\n")

    # -- 3. parallel execution --------------------------------------------
    before = interpretation_count()
    result = run_campaign(spec, store=store, parallel=True)
    print(f"executed via {result.executor} in {result.elapsed_s:.2f}s; "
          f"interpreter runs: {interpretation_count() - before} "
          "(iccg cold, hydro warm)")
    json_path = result.save_json(workdir / "results.json")
    data = json.loads(json_path.read_text())
    print(f"wrote {len(data['results'])} records to {json_path}\n")

    # -- 4. the result cache ----------------------------------------------
    before_evals = evaluation_count()
    again = run_campaign(spec, store=store, parallel=False)
    print(f"identical re-run: executor={again.executor}, "
          f"evaluations={evaluation_count() - before_evals}, "
          f"bit-identical={again.identical(result)}")
    print(f"  result cache counters: {store.result_counters.as_dict()}\n")

    # -- 5. the timed backend, streamed -----------------------------------
    timed = CampaignSpec(
        name="timed-topologies",
        backend="timed",
        kernels=(KernelSpec("hydro_fragment", n=1000),),
        pes=(4, 16),
        page_sizes=(32,),
        cache_elems=(256,),
        topologies=("mesh", "torus"),          # aliases are canonicalised
        modes=("blocking", "multithreaded"),
    )
    print(f"timed campaign ({timed.n_points} points), streaming:")
    stream = run_campaign(timed, store=store, parallel=True, stream=True)
    for record in stream:
        print(f"  [{record.index:2d}] {record.scenario.label():<55} "
              f"speedup {record.metrics['speedup']:.2f}")
    timed_result = stream.result()

    rows = [
        [
            topology,
            mode,
            timed_result.find(
                n_pes=16, topology=topology, mode=mode
            ).metrics["finish_time"],
            timed_result.find(
                n_pes=16, topology=topology, mode=mode
            ).metrics["speedup"],
        ]
        for topology in ("mesh2d", "torus2d")
        for mode in ("blocking", "multithreaded")
    ]
    print()
    print(render_table(
        ["topology", "mode", "finish (cycles)", "speedup"],
        rows,
        title="Hydro Fragment at 16 PEs — the §9 questions, engine-run",
    ))

    # -- 6. the sharded store: stats and GC under a disk budget ------------
    stats = store.stats()
    print(f"\nstore layout: {stats['trace_entries']} traces + "
          f"{stats['result_entries']} results across "
          f"{stats['shards']} shards, {stats['total_bytes']} bytes "
          f"(index.json format v{stats['index_format']})")
    budget = stats["total_bytes"] // 2
    report = store.gc(max_bytes=budget)
    print(f"gc to {budget} bytes: evicted {report.evicted_results} results "
          f"and {report.evicted_traces} traces "
          f"({report.freed_bytes} bytes freed) — results always go first")
    rerun = run_campaign(spec, store=store, parallel=False)
    print(f"post-gc re-run: executor={rerun.executor} "
          "(survivors hit, evicted points rebuilt)")


if __name__ == "__main__":
    main()
