"""Engine walkthrough: trace store → campaign → parallel run → JSON.

The end-to-end ``repro.engine`` workflow:

1. acquire a trace through the persistent store (`Trace.save`/`load`
   under the hood — the kernel is interpreted at most once per machine);
2. declare a sweep campaign (kernels × machine axes) in Python, show
   its JSON form;
3. execute it with the process-parallel executor (results arrive in
   canonical order, bit-identical to a serial run);
4. export the aggregated results as JSON and query them in memory.

Run:  python examples/campaign.py
"""

import json
import tempfile
from pathlib import Path

from repro.bench import render_table
from repro.engine import (
    CampaignSpec,
    KernelSpec,
    TraceStore,
    interpretation_count,
    kernel_trace_cached,
    run_campaign,
)


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="repro-campaign-"))
    store = TraceStore(workdir / "traces")

    # -- 1. the trace store ------------------------------------------------
    trace = kernel_trace_cached("hydro_fragment", n=1000, store=store)
    print(f"trace store at {store.root}")
    print(f"  hydro_fragment: {trace.n_instances} instances, "
          f"{trace.n_reads} reads, entries on disk: {len(store)}")
    kernel_trace_cached("hydro_fragment", n=1000, store=store)
    print(f"  second acquisition: {store.counters.as_dict()} "
          "(no new interpretation)\n")

    # -- 2. a declarative campaign ----------------------------------------
    spec = CampaignSpec(
        name="paper-figures-1-2",
        kernels=(
            KernelSpec("hydro_fragment", n=1000),
            KernelSpec("iccg", n=1024),
        ),
        pes=(1, 4, 16, 64),
        page_sizes=(32, 64),
        cache_elems=(256, 0),
    )
    spec_path = spec.save(workdir / "campaign.json")
    print(f"campaign spec ({spec.n_points} points) saved to {spec_path}:")
    print("  " + "\n  ".join(spec.to_json().splitlines()[:6]) + "\n  ...\n")

    # -- 3. parallel execution --------------------------------------------
    before = interpretation_count()
    result = run_campaign(spec, store=store, parallel=True)
    print(f"executed via {result.executor} in {result.elapsed_s:.2f}s; "
          f"interpreter runs: {interpretation_count() - before} "
          "(iccg cold, hydro warm)\n")

    # -- 4. aggregation and export ----------------------------------------
    json_path = result.save_json(workdir / "results.json")
    data = json.loads(json_path.read_text())
    print(f"wrote {len(data['results'])} records to {json_path}\n")

    rows = [
        [
            pes,
            result.find(
                kernel="iccg", n_pes=pes, page_size=32, cache_elems=0
            ).remote_read_pct,
            result.find(
                kernel="iccg", n_pes=pes, page_size=32, cache_elems=256
            ).remote_read_pct,
        ]
        for pes in (1, 4, 16, 64)
    ]
    print(render_table(
        ["PEs", "no cache (remote %)", "cache 256 (remote %)"],
        rows,
        title="ICCG, page size 32 — the paper's Figure 2 shape",
    ))


if __name__ == "__main__":
    main()
