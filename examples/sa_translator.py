"""The automatic single-assignment translator (§5) in action.

Takes a conventional accumulation loop (not single assignment: the
same cells are rewritten every iteration), shows the static checker
catching it with a concrete witness, converts it by array expansion,
and verifies the converted program computes identical values — while
reporting the memory growth the paper warns about ("these translators
will tend to increase the amount of memory used for array storage").

Run:  python examples/sa_translator.py
"""

import numpy as np

from repro.ir import (
    ProgramBuilder,
    Ref,
    auto_convert,
    check_program,
    expansion_cost,
    run_program,
)


def build_conventional(n: int = 64):
    """DO k = 1..n: HIST(j) = HIST(j) + W(k)   for three bins j."""
    b = ProgramBuilder("histogram_accumulate")
    HIST = b.inout("HIST", (3,))
    W = b.input("W", (n + 1,))
    j, k = b.index("j"), b.index("k")
    with b.loop(j, 0, 2):
        with b.loop(k, 1, n):
            b.assign(HIST[j], Ref("HIST", [j]) + Ref("W", [k]))
    return b.build()


def main() -> None:
    n = 64
    program = build_conventional(n)

    print("1. static data-path analysis (the §5 checker):")
    report = check_program(program)
    for finding in report.violations():
        print(f"   {finding}")

    print("\n2. translator cost estimate:")
    plan = expansion_cost(program, "HIST", "k")
    print(
        f"   expanding HIST over k: {plan.trip_count} versions, "
        f"+{plan.extra_elements} elements of storage"
    )

    print("\n3. auto-convert and re-check:")
    converted = auto_convert(program)
    print(f"   converted program: {converted.name}")
    print(f"   verdict: {check_program(converted).verdict} "
          f"(no definite violations remain)")
    grew = converted.total_elements() - program.total_elements()
    print(f"   memory growth: +{grew} elements "
          f"({program.total_elements()} -> {converted.total_elements()})")

    print("\n4. value equivalence:")
    rng = np.random.default_rng(11)
    w = rng.random(n + 1)
    seeds = np.zeros(3)
    plain = run_program(program, {"HIST": seeds, "W": w}, check_sa=False)
    expanded_seed = np.full((n + 1, 3), np.nan)
    expanded_seed[0] = seeds
    conv = run_program(converted, {"HIST__sa": expanded_seed, "W": w})
    final = conv.values["HIST__sa"][n]
    print(f"   conventional result: {plain.values['HIST']}")
    print(f"   converted result:    {final}")
    assert np.allclose(final, plain.values["HIST"])
    print("   identical — and the converted loop is machine-partitionable.")


if __name__ == "__main__":
    main()
