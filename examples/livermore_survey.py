"""Survey every Livermore kernel: class, remote ratios, cache benefit.

Replicates the paper's §7/§8 survey across the full kernel registry:
each loop is classified into Matched / Skewed / Cyclic / Random (the
paper's four access-distribution classes) and measured at the paper's
standard configuration (16 PEs, page size 32, 256-element LRU cache).

Run:  python examples/livermore_survey.py
"""

from repro import MachineConfig, classify, simulate
from repro.bench import kernel_trace
from repro.kernels import all_kernels


def main() -> None:
    cfg = MachineConfig(n_pes=16, page_size=32, cache_elems=256)
    print(f"configuration: {cfg.label()}\n")
    header = (
        f"{'kernel':<22} {'LFK#':>4} {'class':<8} {'paper':<8} "
        f"{'remote%':>8} {'no-cache%':>10} {'cached%':>8}"
    )
    print(header)
    print("-" * len(header))
    for kernel in all_kernels():
        program, inputs = kernel.build()
        verdict = classify(program, inputs)
        trace = kernel_trace(program, inputs)
        with_cache = simulate(trace, cfg)
        without = simulate(trace, cfg.without_cache())
        paper = str(kernel.paper_class) if kernel.paper_class else "-"
        print(
            f"{kernel.name:<22} {kernel.number or '-':>4} "
            f"{str(verdict.final):<8} {paper:<8} "
            f"{with_cache.remote_read_pct:>8.2f} "
            f"{without.remote_read_pct:>10.2f} "
            f"{with_cache.cached_read_pct:>8.2f}"
        )
    print(
        "\nMatched loops are 0% remote by construction; skewed and cyclic"
        "\nloops sit under 10% with the paper's small cache; random loops"
        "\nstay high — exactly the §8 conclusions."
    )


if __name__ == "__main__":
    main()
