#!/usr/bin/env python
"""Columnar-replay speedup: ``untimed`` vs ``untimed-vec``, recorded.

Times warm-store replay (the trace is built once and excluded from the
timing — exactly the sweep-many regime the engine exists for) of both
simulators over representative kernels, asserts the counters are
bit-identical on every case while doing so, and records the per-case
wall seconds and speedups.  The committed ``BENCH_vec.json`` is the
performance evidence for the columnar engine: its headline case must
hold a >=5x speedup on at least one warm-store replay kernel.

CI's bench-smoke job re-runs this in ``REPRO_BENCH_FAST`` mode (small
traces, lower speedups — vectorisation amortises per-call overhead
over trace length) and gates on the fast-mode baseline: the case set
must match, counters must still be bit-identical, and no case may
lose more than half of its committed speedup.  Timings are noisy on
shared runners; halving is a collapse, not jitter.

Usage::

    python tools/vec_bench.py --out BENCH_vec.json     # regenerate
    python tools/vec_bench.py --check BENCH_vec.json   # CI gate
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

#: minimum fraction of a case's committed speedup the gate demands.
RETAIN = 0.5


def fast() -> bool:
    return os.environ.get("REPRO_BENCH_FAST", "") not in ("", "0")


def cases() -> tuple[dict, ...]:
    """(kernel, n, config knobs) per case; smaller in fast mode.

    The inner-product cases are the headline: host reduction funnels
    every fold to PE 0, whose alternating x/y page stream the columnar
    engine classifies with short-window shortcuts — no scalar walk at
    all.  The fifo case solves through the eviction-epoch fixed point
    (``docs/fastpaths.md``); ``run_cases`` asserts no case touched the
    scalar fallback, so a silent regression to the escape hatch fails
    the bench before any timing gate does.
    """
    scale = 1 if fast() else 6
    return (
        {
            "name": "inner_product",
            "n": 20_000 * scale,
            "pes": 8,
            "page_size": 32,
            "cache_elems": 256,
            "policy": "lru",
        },
        {
            "name": "inner_product",
            "n": 20_000 * scale,
            "pes": 32,
            "page_size": 32,
            "cache_elems": 256,
            "policy": "lru",
        },
        {
            "name": "hydro_2d",
            "n": 40 * (2 if fast() else 5),
            "pes": 16,
            "page_size": 32,
            "cache_elems": 256,
            "policy": "lru",
        },
        {
            "name": "inner_product",
            "n": 20_000 * scale,
            "pes": 8,
            "page_size": 32,
            "cache_elems": 64,
            "policy": "fifo",
        },
    )


def _case_key(case: dict) -> str:
    return (
        f"{case['name']}[n={case['n']},pes={case['pes']},"
        f"ps={case['page_size']},cache={case['cache_elems']},"
        f"{case['policy']}]"
    )


def _best_of(fn, reps: int) -> float:
    best = float("inf")
    for _ in range(reps):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def run_cases() -> list[dict]:
    import numpy as np

    from repro.bench import kernel_trace
    from repro.core import MachineConfig, simulate, simulate_vec
    from repro.kernels import get_kernel

    reps = 3 if fast() else 5
    rows = []
    for case in cases():
        program, inputs = get_kernel(case["name"]).build(n=case["n"])
        trace = kernel_trace(program, inputs)
        config = MachineConfig(
            n_pes=case["pes"],
            page_size=case["page_size"],
            cache_elems=case["cache_elems"],
            cache_policy=case["policy"],
        )
        scalar = simulate(trace, config)
        telemetry: dict[str, int] = {}
        vec = simulate_vec(trace, config, telemetry)
        if not (
            np.array_equal(scalar.stats.counts, vec.stats.counts)
            and np.array_equal(scalar.page_fetches, vec.page_fetches)
        ):
            raise AssertionError(f"fidelity broken on {_case_key(case)}")
        if telemetry.get("fallback_pes", 0):
            raise AssertionError(
                f"{_case_key(case)}: {telemetry['fallback_pes']} PE(s) "
                "took the scalar fallback — every committed case must "
                "replay through a closed form"
            )
        scalar_s = _best_of(lambda: simulate(trace, config), reps)
        vec_s = _best_of(lambda: simulate_vec(trace, config), reps)
        rows.append(
            {
                "case": _case_key(case),
                "scalar_s": round(scalar_s, 6),
                "vec_s": round(vec_s, 6),
                "speedup": round(scalar_s / max(vec_s, 1e-9), 2),
            }
        )
    return rows


def document(rows: list[dict]) -> dict:
    return {
        "schema": 1,
        "fast": fast(),
        "cases": rows,
        "headline_speedup": max(row["speedup"] for row in rows),
    }


def check(baseline: dict, current: dict) -> list[str]:
    """Speedup-collapse failures of ``current`` against ``baseline``."""
    failures: list[str] = []
    base_rows = {row["case"]: row for row in baseline.get("cases", ())}
    cur_rows = {row["case"]: row for row in current.get("cases", ())}
    if set(base_rows) != set(cur_rows):
        failures.append(
            f"case set changed: baseline {sorted(base_rows)} vs current "
            f"{sorted(cur_rows)} (regenerate with --out if intentional)"
        )
        return failures
    for key, base in base_rows.items():
        floor = RETAIN * float(base["speedup"])
        got = float(cur_rows[key]["speedup"])
        if got < floor:
            failures.append(
                f"{key}: speedup {got:.2f}x collapsed below {floor:.2f}x "
                f"(baseline {base['speedup']:.2f}x, retain {RETAIN:.0%})"
            )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    group = parser.add_mutually_exclusive_group(required=True)
    group.add_argument("--out", metavar="FILE", help="write the report")
    group.add_argument(
        "--check",
        metavar="BASELINE",
        help="bench now and gate speedups against BASELINE",
    )
    args = parser.parse_args(argv)

    doc = document(run_cases())
    for row in doc["cases"]:
        print(
            f"  {row['case']:<60} scalar {row['scalar_s']:>9.4f}s  "
            f"vec {row['vec_s']:>9.4f}s  {row['speedup']:>6.2f}x"
        )
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            json.dump(doc, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.out}: headline {doc['headline_speedup']:.2f}x")
        return 0

    with open(args.check, encoding="utf-8") as fh:
        baseline = json.load(fh)
    failures = check(baseline, doc)
    if failures:
        print("vec speedup regression:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print(
        f"vec speedups within tolerance (headline "
        f"{doc['headline_speedup']:.2f}x vs baseline "
        f"{baseline.get('headline_speedup', 0.0):.2f}x)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
