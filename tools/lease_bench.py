"""Heartbeat-renewal scaling bench: O(held leases) vs O(1) per tick.

Populates a store with N held claim leases (a campaign that claimed a
whole 10^5-point grid up front) and times one heartbeat tick under

* the **legacy** protocol — every held lease file rewritten with a
  pushed-forward expiry (one ``mkstemp`` + ``os.replace`` per lease,
  exactly what ``TraceStore._renew_lease`` used to do), and
* the **manifest** protocol — the per-process heartbeat manifest
  renewed with a single atomic replace
  (:meth:`TraceStore._renew_manifest`), which is what ships.

Usage::

    PYTHONPATH=src python tools/lease_bench.py --held 100000 \
        --out BENCH_leases.json

The JSON report records files-written and seconds per tick for both
protocols; the committed ``BENCH_leases.json`` is the before/after
evidence for the lease-renewal scaling refactor.
"""

from __future__ import annotations

import argparse
import json
import os
import socket
import sys
import tempfile
import time
from pathlib import Path

from repro.engine.store import TraceStore


def populate(store: TraceStore, held: int) -> None:
    """Plant ``held`` claim leases owned by this process.

    Lease files are written directly (we are measuring renewal, not
    acquisition) and registered in the store's held set so both tick
    flavours see a realistic steady state.
    """
    store.lease_dir.mkdir(parents=True, exist_ok=True)
    now = time.time()
    host = socket.gethostname() or "localhost"
    for i in range(held):
        ref = f"{i:040x}"
        document = json.dumps(
            {
                "pid": os.getpid(),
                "host": host,
                "acquired": now,
                "expires": now + store.lease_ttl_s,
            }
        )
        store._lease_path("result", ref).write_text(document + "\n")
        store._held_leases.add(("result", ref))


def legacy_tick(store: TraceStore) -> int:
    """One heartbeat tick, pre-refactor: rewrite every held lease."""
    now = time.time()
    host = socket.gethostname() or "localhost"
    files = 0
    for kind, ref in list(store._held_leases):
        path = store._lease_path(kind, ref)
        document = json.dumps(
            {
                "pid": os.getpid(),
                "host": host,
                "acquired": now,
                "expires": now + store.lease_ttl_s,
            }
        )
        fd, tmp = tempfile.mkstemp(dir=store.lease_dir, suffix=".tmp")
        with os.fdopen(fd, "w") as fh:
            fh.write(document + "\n")
        os.replace(tmp, path)
        files += 1
    return files


def manifest_tick(store: TraceStore) -> int:
    """One heartbeat tick, post-refactor: one manifest replace."""
    store._renew_manifest(force=True)
    return 1


def timed(fn, *args) -> tuple[float, int]:
    start = time.perf_counter()
    files = fn(*args)
    return time.perf_counter() - start, files


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--held",
        type=int,
        default=100_000,
        help="claim leases held by the benched process (default 1e5)",
    )
    parser.add_argument(
        "--root",
        type=Path,
        default=None,
        help="store root (default: a fresh temp dir, removed after)",
    )
    parser.add_argument(
        "--out", type=Path, default=None, help="write the JSON report here"
    )
    args = parser.parse_args(argv)

    def run(root: Path) -> dict:
        store = TraceStore(root, lease_ttl_s=30.0)
        populate(store, args.held)
        legacy_s, legacy_files = timed(legacy_tick, store)
        manifest_s, manifest_files = timed(manifest_tick, store)
        store._held_leases.clear()
        return {
            "bench": "lease-heartbeat-tick",
            "held_leases": args.held,
            "legacy": {
                "files_per_tick": legacy_files,
                "seconds_per_tick": round(legacy_s, 6),
            },
            "manifest": {
                "files_per_tick": manifest_files,
                "seconds_per_tick": round(manifest_s, 6),
            },
            "tick_speedup": round(legacy_s / max(manifest_s, 1e-9), 1),
        }

    if args.root is not None:
        report = run(args.root)
    else:
        with tempfile.TemporaryDirectory(prefix="lease-bench-") as tmp:
            report = run(Path(tmp))

    text = json.dumps(report, indent=2, sort_keys=True)
    print(text)
    if args.out is not None:
        args.out.write_text(text + "\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
