#!/usr/bin/env python3
"""Link-check the repository's Markdown documentation.

Scans the given files/directories for Markdown links and images,
``[text](target)``, and verifies that every *relative* target exists
on disk (external ``http(s)``/``mailto`` targets and pure in-page
``#anchors`` are skipped; a relative target's ``#fragment`` is checked
against the destination file's headings).  Exits non-zero listing
every broken link, so CI fails when docs rot.

Usage::

    python tools/check_links.py README.md docs
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

#: ``[text](target)`` / ``![alt](target)`` — target up to the first
#: unescaped closing parenthesis (no nested parens in our docs).
_LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")

#: Fenced code blocks are excluded — they hold example syntax, not links.
_FENCE = re.compile(r"^(```|~~~)")


def _headings(path: Path) -> set[str]:
    """GitHub-style anchor slugs of a Markdown file's headings."""
    slugs: set[str] = set()
    in_fence = False
    for line in path.read_text(encoding="utf-8").splitlines():
        if _FENCE.match(line.strip()):
            in_fence = not in_fence
            continue
        if in_fence or not line.startswith("#"):
            continue
        text = line.lstrip("#").strip().lower()
        slug = re.sub(r"[^\w\- ]", "", text).replace(" ", "-")
        slugs.add(slug)
    return slugs


def _iter_links(path: Path):
    in_fence = False
    for number, line in enumerate(
        path.read_text(encoding="utf-8").splitlines(), start=1
    ):
        if _FENCE.match(line.strip()):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for match in _LINK.finditer(line):
            yield number, match.group(1)


def check_file(path: Path) -> list[str]:
    problems: list[str] = []
    for number, target in _iter_links(path):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        if target.startswith("#"):
            if target[1:].lower() not in _headings(path):
                problems.append(f"{path}:{number}: broken anchor {target!r}")
            continue
        raw, _, fragment = target.partition("#")
        destination = (path.parent / raw).resolve()
        if not destination.exists():
            problems.append(f"{path}:{number}: missing target {target!r}")
            continue
        if fragment and destination.suffix == ".md":
            if fragment.lower() not in _headings(destination):
                problems.append(f"{path}:{number}: broken anchor {target!r}")
    return problems


def main(argv: list[str]) -> int:
    if not argv:
        print(__doc__, file=sys.stderr)
        return 2
    files: list[Path] = []
    for argument in argv:
        path = Path(argument)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.md")))
        elif path.is_file():
            files.append(path)
        else:
            print(f"no such file or directory: {path}", file=sys.stderr)
            return 2
    problems: list[str] = []
    for path in files:
        problems.extend(check_file(path))
    for problem in problems:
        print(problem, file=sys.stderr)
    print(
        f"checked {len(files)} file(s): "
        + ("OK" if not problems else f"{len(problems)} broken link(s)")
    )
    return 1 if problems else 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
