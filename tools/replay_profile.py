#!/usr/bin/env python
"""Replay profiling baseline: where does evaluation time go?

Runs the full replay path — interpret (trace build), the untimed
simulator's classify / cache_sim / reduction phases, and the columnar
engine's classify_vec / cache_sim_vec / fallback_scalar phases — over
representative kernels and reports per-phase wall seconds *and* each
phase's share of the total.  The committed ``BENCH_replay.json`` is
the baseline; CI's bench-smoke job re-runs this script in
``REPRO_BENCH_FAST`` mode and fails when any phase's share drifts by
more than 25% relative (with a 5-percentage-point absolute floor, so
microsecond phases cannot flake the gate).

Shares, not raw seconds, are what the gate compares: absolute timings
track the runner's hardware, but the *proportion* of replay time spent
in each phase is a property of the code.

Usage::

    python tools/replay_profile.py --out BENCH_replay.json   # regenerate
    python tools/replay_profile.py --check BENCH_replay.json # CI gate
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time

PHASES = (
    "interpret",
    "classify",
    "cache_sim",
    "reduction",
    "classify_vec",
    "cache_sim_vec",
    "fallback_scalar",
)
#: relative share-drift tolerance, plus an absolute floor so phases
#: that are a sliver of the total cannot trip the relative gate.
REL_TOLERANCE = 0.25
ABS_FLOOR = 0.05
#: a baseline share at or below this is "effectively zero" — the
#: reduction phase sits at 0.0002 in the committed baseline, and a
#: 25%-relative band around near-nothing is noise, not a gate.  Such
#: phases are compared against the absolute floor alone, and the
#: failure message never divides by the baseline share.
ZERO_SHARE = 0.01


def fast() -> bool:
    return os.environ.get("REPRO_BENCH_FAST", "") not in ("", "0")


def workload() -> tuple[tuple[tuple[str, int], ...], int]:
    """(kernels, repetitions) — smaller in REPRO_BENCH_FAST mode."""
    if fast():
        return (
            ("hydro_fragment", 400),
            ("first_diff", 400),
            ("inner_product", 400),
        ), 2
    return (
        ("hydro_fragment", 2000),
        ("first_diff", 2000),
        ("inner_product", 2000),
    ), 5


def profile_replay() -> dict[str, float]:
    """Per-phase wall seconds over the workload (one fresh store)."""
    from repro.core import MachineConfig, simulate, simulate_vec
    from repro.engine import TraceStore, kernel_trace_cached
    from repro.obs import profile

    kernels, reps = workload()
    seconds = dict.fromkeys(PHASES, 0.0)
    configs = (
        MachineConfig(n_pes=16, page_size=32, cache_elems=256),
        MachineConfig(n_pes=16, page_size=32, cache_elems=0),
        # A tight FIFO cache: solved by the columnar engine's
        # eviction-epoch fixed point, so its fallback_scalar share
        # stays near zero (docs/fastpaths.md).
        MachineConfig(
            n_pes=16, page_size=32, cache_elems=64, cache_policy="fifo"
        ),
    )
    with tempfile.TemporaryDirectory() as root:
        store = TraceStore(root)
        for name, n in kernels:
            t0 = time.perf_counter()
            trace = kernel_trace_cached(name, n=n, store=store)
            seconds["interpret"] += time.perf_counter() - t0
            for _ in range(reps):
                for config in configs:
                    for engine in (simulate, simulate_vec):
                        with profile.collect() as phases:
                            engine(trace, config)
                        for phase, elapsed in phases.items():
                            seconds[phase] = (
                                seconds.get(phase, 0.0) + elapsed
                            )
    return seconds


def document(seconds: dict[str, float]) -> dict:
    total = sum(seconds.values()) or 1.0
    kernels, reps = workload()
    return {
        "schema": 1,
        "fast": fast(),
        "kernels": [f"{name}[n={n}]" for name, n in kernels],
        "repetitions": reps,
        "total_s": round(total, 6),
        "phases": {
            phase: {
                "seconds": round(elapsed, 6),
                "share": round(elapsed / total, 6),
            }
            for phase, elapsed in sorted(seconds.items())
        },
    }


def check(baseline: dict, current: dict) -> list[str]:
    """Share-drift failures of ``current`` against ``baseline``."""
    failures: list[str] = []
    base_phases = baseline.get("phases", {})
    cur_phases = current.get("phases", {})
    if set(base_phases) != set(cur_phases):
        failures.append(
            f"phase set changed: baseline {sorted(base_phases)} vs "
            f"current {sorted(cur_phases)} (regenerate the baseline "
            "with --out if this is intentional)"
        )
        return failures
    for phase, base in base_phases.items():
        base_share = float(base["share"])
        cur_share = float(cur_phases[phase]["share"])
        drift = abs(cur_share - base_share)
        if base_share <= ZERO_SHARE:
            # Near-zero baseline: the relative band is meaningless and
            # dividing by it is a latent ZeroDivision — absolute only.
            allowed = ABS_FLOOR
            detail = "near-zero baseline, absolute gate only"
        else:
            allowed = max(ABS_FLOOR, REL_TOLERANCE * base_share)
            detail = f"{drift / base_share:.0%} relative"
        if drift > allowed:
            failures.append(
                f"phase {phase!r}: share {cur_share:.3f} vs baseline "
                f"{base_share:.3f} ({detail}; allowed drift "
                f"{allowed:.3f})"
            )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    group = parser.add_mutually_exclusive_group(required=True)
    group.add_argument(
        "--out", metavar="FILE", help="write the profile document"
    )
    group.add_argument(
        "--check",
        metavar="BASELINE",
        help="profile now and diff phase shares against BASELINE",
    )
    args = parser.parse_args(argv)

    doc = document(profile_replay())
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            json.dump(doc, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.out}: total {doc['total_s']}s over "
              f"{', '.join(doc['kernels'])}")
        for phase, entry in doc["phases"].items():
            print(f"  {phase:<10} {entry['seconds']:>10.4f}s "
                  f"({entry['share']:6.1%})")
        return 0

    with open(args.check, encoding="utf-8") as fh:
        baseline = json.load(fh)
    failures = check(baseline, doc)
    for phase, entry in doc["phases"].items():
        base = baseline.get("phases", {}).get(phase, {})
        print(f"  {phase:<10} share {entry['share']:6.1%} "
              f"(baseline {float(base.get('share', 0.0)):6.1%})")
    if failures:
        print("replay profile regression:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print("replay profile within tolerance of the baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
