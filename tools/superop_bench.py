#!/usr/bin/env python
"""Super-op replay: O(unique behavior) speedup + shard compression.

Times warm replay (trace built, compacted and compiled to op programs
once, excluded from the timing) of the flat scalar engine against
:func:`repro.core.superop_replay.replay_superops` over stencil-sweep
kernels, asserts the counters are bit-identical on every case while
doing so, and additionally measures the on-disk win: flat (v1-style)
shard bytes vs the super-op (format-v2) layout.  The committed
``BENCH_superops.json`` is the performance evidence for trace
specialization: stencil-sweep kernels must hold a >=10x warm replay
speedup and a >=20x stored-trace size reduction.

CI's bench-smoke job re-runs this in ``REPRO_BENCH_FAST`` mode and
gates against the committed fast-mode baseline: the case set must
match, counters must still be bit-identical, no case may lose more
than half of its committed speedup (timings are noisy on shared
runners; halving is a collapse, not jitter), and compression — which
is deterministic — must hold to the same floor.

Usage::

    python tools/superop_bench.py --out BENCH_superops.json    # regenerate
    python tools/superop_bench.py --check BENCH_superops.json  # CI gate
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time
from pathlib import Path

#: minimum fraction of a case's committed speedup/compression the gate
#: demands.
RETAIN = 0.5


def fast() -> bool:
    return os.environ.get("REPRO_BENCH_FAST", "") not in ("", "0")


def cases() -> tuple[dict, ...]:
    """(kernel, n, config knobs) per case; smaller in fast mode.

    All are stencil-style sweeps whose whole trace collapses to a
    handful of super-ops, so replay cost tracks *unique behavior*
    (steady-state windows) instead of trip counts — the speedup and
    the shard compression both grow with n.  The fifo row holds the
    eviction-epoch fixed point (``docs/fastpaths.md``) to the same
    floors as the LRU closed form; ``run_cases`` asserts every case
    decided columnar, never per-piece.
    """
    scale = 1 if fast() else 4
    return (
        {
            "name": "hydro_fragment",
            "n": 50_000 * scale,
            "pes": 8,
            "page_size": 32,
            "cache_elems": 256,
            "policy": "lru",
        },
        {
            "name": "first_diff",
            "n": 50_000 * scale,
            "pes": 16,
            "page_size": 32,
            "cache_elems": 256,
            "policy": "lru",
        },
        {
            "name": "tri_diagonal",
            "n": 50_000 * scale,
            "pes": 8,
            "page_size": 64,
            "cache_elems": 512,
            "policy": "lru",
        },
        {
            "name": "hydro_fragment",
            "n": 50_000 * scale,
            "pes": 8,
            "page_size": 32,
            "cache_elems": 64,
            "policy": "fifo",
        },
    )


def _case_key(case: dict) -> str:
    return (
        f"{case['name']}[n={case['n']},pes={case['pes']},"
        f"ps={case['page_size']},cache={case['cache_elems']},"
        f"{case['policy']}]"
    )


def _best_of(fn, reps: int) -> float:
    best = float("inf")
    for _ in range(reps):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def run_cases() -> list[dict]:
    import numpy as np

    from repro.bench import kernel_trace
    from repro.core import MachineConfig, simulate
    from repro.core.superop_replay import replay_superops
    from repro.ir.superops import compact
    from repro.kernels import get_kernel

    reps = 3 if fast() else 5
    rows = []
    for case in cases():
        program, inputs = get_kernel(case["name"]).build(n=case["n"])
        trace = kernel_trace(program, inputs)
        superops = compact(trace)
        if not superops.ops:
            raise AssertionError(
                f"{_case_key(case)}: stencil sweep failed to compact"
            )
        config = MachineConfig(
            n_pes=case["pes"],
            page_size=case["page_size"],
            cache_elems=case["cache_elems"],
            cache_policy=case["policy"],
        )
        flat = simulate(trace, config)
        telemetry: dict[str, int] = {}
        via_ops = replay_superops(superops, config, telemetry=telemetry)
        if not (
            np.array_equal(flat.stats.counts, via_ops.stats.counts)
            and np.array_equal(flat.stats.by_array, via_ops.stats.by_array)
            and np.array_equal(flat.page_fetches, via_ops.page_fetches)
            and np.array_equal(
                flat.distinct_pages_fetched, via_ops.distinct_pages_fetched
            )
        ):
            raise AssertionError(f"fidelity broken on {_case_key(case)}")
        if telemetry.get("superop_piece_pes", 0) or telemetry.get(
            "fallback_pes", 0
        ):
            raise AssertionError(
                f"{_case_key(case)}: "
                f"{telemetry.get('superop_piece_pes', 0)} per-piece / "
                f"{telemetry.get('fallback_pes', 0)} scalar PE(s) — "
                "every committed case must decide in closed form"
            )
        flat_s = _best_of(lambda: simulate(trace, config), reps)
        ops_s = _best_of(lambda: replay_superops(superops, config), reps)

        trace.attach_superops(superops)
        with tempfile.TemporaryDirectory() as tmp:
            flat_path = Path(tmp) / "flat.npz"
            ops_path = Path(tmp) / "ops.npz"
            trace.save(flat_path, compact=False)
            trace.save(ops_path, compact=True)
            flat_bytes = flat_path.stat().st_size
            ops_bytes = ops_path.stat().st_size

        rows.append(
            {
                "case": _case_key(case),
                "flat_s": round(flat_s, 6),
                "superop_s": round(ops_s, 6),
                "speedup": round(flat_s / max(ops_s, 1e-9), 2),
                "flat_bytes": flat_bytes,
                "superop_bytes": ops_bytes,
                "compression": round(flat_bytes / max(ops_bytes, 1), 2),
                "n_ops": len(superops.ops),
                "coverage": round(superops.coverage, 4),
            }
        )
    return rows


def document(rows: list[dict]) -> dict:
    return {
        "schema": 1,
        "fast": fast(),
        "cases": rows,
        "headline_speedup": max(row["speedup"] for row in rows),
        "headline_compression": max(row["compression"] for row in rows),
    }


def check(baseline: dict, current: dict) -> list[str]:
    """Collapse failures of ``current`` against ``baseline``."""
    failures: list[str] = []
    base_rows = {row["case"]: row for row in baseline.get("cases", ())}
    cur_rows = {row["case"]: row for row in current.get("cases", ())}
    if set(base_rows) != set(cur_rows):
        failures.append(
            f"case set changed: baseline {sorted(base_rows)} vs current "
            f"{sorted(cur_rows)} (regenerate with --out if intentional)"
        )
        return failures
    for key, base in base_rows.items():
        cur = cur_rows[key]
        for metric in ("speedup", "compression"):
            floor = RETAIN * float(base[metric])
            got = float(cur[metric])
            if got < floor:
                failures.append(
                    f"{key}: {metric} {got:.2f}x collapsed below "
                    f"{floor:.2f}x (baseline {base[metric]:.2f}x, "
                    f"retain {RETAIN:.0%})"
                )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    group = parser.add_mutually_exclusive_group(required=True)
    group.add_argument("--out", metavar="FILE", help="write the report")
    group.add_argument(
        "--check",
        metavar="BASELINE",
        help="bench now and gate speedup + compression against BASELINE",
    )
    args = parser.parse_args(argv)

    doc = document(run_cases())
    for row in doc["cases"]:
        print(
            f"  {row['case']:<52} flat {row['flat_s']:>8.4f}s  "
            f"superop {row['superop_s']:>8.4f}s  {row['speedup']:>7.2f}x  "
            f"bytes {row['flat_bytes']:>9}->{row['superop_bytes']:<7} "
            f"{row['compression']:>6.2f}x"
        )
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            json.dump(doc, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(
            f"wrote {args.out}: headline {doc['headline_speedup']:.2f}x "
            f"replay, {doc['headline_compression']:.2f}x compression"
        )
        return 0

    with open(args.check, encoding="utf-8") as fh:
        baseline = json.load(fh)
    failures = check(baseline, doc)
    if failures:
        print("super-op replay regression:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print(
        f"super-op replay within tolerance (headline "
        f"{doc['headline_speedup']:.2f}x replay / "
        f"{doc['headline_compression']:.2f}x compression vs baseline "
        f"{baseline.get('headline_speedup', 0.0):.2f}x / "
        f"{baseline.get('headline_compression', 0.0):.2f}x)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
