"""Table T1 — access-distribution classes for every kernel (§7.1).

Regenerates the class survey and asserts full agreement with every
label the paper assigns ("The four classes we observed...").
"""

from __future__ import annotations

from repro.bench import class_table, render_class_table

from _util import once, save


def test_table_t1_access_classes(benchmark):
    rows = once(benchmark, class_table)
    save("table_t1_classes", render_class_table(rows))
    labelled = [r for r in rows if r.paper is not None]
    agreements = [r for r in labelled if r.agrees]
    benchmark.extra_info["agreement"] = f"{len(agreements)}/{len(labelled)}"
    assert len(labelled) >= 12
    assert len(agreements) == len(labelled), [
        (r.kernel, str(r.final), str(r.paper)) for r in labelled if not r.agrees
    ]
