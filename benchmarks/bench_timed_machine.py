"""Ablation A4 — timed execution: speedup, latency hiding, topology.

The paper's §9 future work ("execution time and network contention"),
realised: speedups over one PE for representative kernels, blocking vs
multithreaded PEs, across interconnect topologies.
"""

from __future__ import annotations

from repro.bench import kernel_trace, render_table
from repro.core import MachineConfig
from repro.kernels import get_kernel
from repro.machine import TimedMachine, serial_time

from _util import once, save

TOPOLOGIES = ("crossbar", "ring", "mesh2d", "hypercube", "bus")


def run_speedups():
    program, inputs = get_kernel("hydro_fragment").build(n=1000)
    trace = kernel_trace(program, inputs)
    base = serial_time(trace)
    rows = []
    for pes in (4, 16, 64):
        for mode in ("blocking", "multithreaded"):
            cfg = MachineConfig(n_pes=pes, page_size=32, cache_elems=256)
            result = TimedMachine(trace, cfg, topology="mesh2d", mode=mode).run()
            rows.append(
                [
                    pes,
                    mode,
                    result.finish_time,
                    result.speedup(base),
                    result.stall_time.sum(),
                    result.messages,
                ]
            )
    return base, rows


def run_topologies():
    program, inputs = get_kernel("iccg").build(n=512)
    trace = kernel_trace(program, inputs)
    base = serial_time(trace)
    rows = []
    for topo in TOPOLOGIES:
        cfg = MachineConfig(n_pes=16, page_size=32, cache_elems=256)
        result = TimedMachine(trace, cfg, topology=topo).run()
        rows.append(
            [
                topo,
                result.finish_time,
                result.speedup(base),
                result.total_hops,
                result.contention["messages_per_link_max"],
                result.deferred_reads,
            ]
        )
    return rows


def test_timed_speedup_and_latency_hiding(benchmark):
    base, rows = once(benchmark, run_speedups)
    save(
        "ablation_a4_speedups",
        render_table(
            ["PEs", "mode", "finish (cycles)", "speedup", "stall", "messages"],
            rows,
            title=f"A4a: Hydro Fragment timed speedups (serial = {base:.0f} cycles)",
        ),
    )
    by = {(r[0], r[1]): r[3] for r in rows}
    assert by[(16, "blocking")] > 4.0           # real parallel speedup
    assert by[(64, "blocking")] > by[(4, "blocking")]
    # Latency hiding never loses in finish time.
    for pes in (4, 16, 64):
        assert by[(pes, "multithreaded")] >= by[(pes, "blocking")] * 0.95


def test_timed_topology_contention(benchmark):
    rows = once(benchmark, run_topologies)
    save(
        "ablation_a4_topologies",
        render_table(
            ["topology", "finish", "speedup", "hops", "max link load", "deferred"],
            rows,
            title="A4b: ICCG on 16 PEs across interconnect topologies",
        ),
    )
    by = {r[0]: r for r in rows}
    assert by["mesh2d"][3] >= by["crossbar"][3]       # more hops on mesh
    assert by["ring"][1] >= by["crossbar"][1] * 0.99  # ring no faster
