"""Ablation A3 — page replacement policies (LRU vs FIFO/random/direct).

The paper fixes LRU ("this choice leads to some interesting results",
§4).  This ablation measures how much the choice matters per access
class at the paper's cache size.
"""

from __future__ import annotations

from repro.bench import kernel_trace, render_table
from repro.core import MachineConfig, simulate
from repro.kernels import get_kernel

from _util import once, save

POLICIES = ("lru", "fifo", "random", "direct")
KERNELS = {
    "hydro_fragment": 1000,   # skewed
    "hydro_2d": 100,          # cyclic
    "iccg": 1024,             # cyclic (velocity mismatch)
    "linear_recurrence": 256, # random
}


def run_ablation():
    table = {}
    for name, n in KERNELS.items():
        program, inputs = get_kernel(name).build(n=n)
        trace = kernel_trace(program, inputs)
        table[name] = [
            simulate(
                trace,
                MachineConfig(
                    n_pes=16, page_size=32, cache_elems=256, cache_policy=policy
                ),
            ).remote_read_pct
            for policy in POLICIES
        ]
    return table


def test_ablation_replacement_policy(benchmark):
    table = once(benchmark, run_ablation)
    rows = [[name] + values for name, values in table.items()]
    save(
        "ablation_a3_replacement",
        render_table(
            ["kernel"] + list(POLICIES),
            rows,
            title="A3: replacement-policy ablation, 16 PEs, ps 32, cache 256",
        ),
    )
    for name, values in table.items():
        lru = values[0]
        # LRU is never far from the best policy on these workloads.
        assert lru <= min(values) + 2.0, (name, values)
