"""Ablation A3 — page replacement policies (LRU vs FIFO/random/direct).

The paper fixes LRU ("this choice leads to some interesting results",
§4).  This ablation measures how much the choice matters per access
class at the paper's cache size, as one engine campaign sweeping the
``cache_policies`` axis.
"""

from __future__ import annotations

from repro.bench import render_table
from repro.engine import CampaignSpec, KernelSpec, run_campaign

from _util import once, save, trace_store

POLICIES = ("lru", "fifo", "random", "direct")
KERNELS = {
    "hydro_fragment": 1000,   # skewed
    "hydro_2d": 100,          # cyclic
    "iccg": 1024,             # cyclic (velocity mismatch)
    "linear_recurrence": 256, # random
}


def run_ablation():
    spec = CampaignSpec(
        name="ablation-a3-replacement",
        kernels=tuple(KernelSpec(name, n=n) for name, n in KERNELS.items()),
        pes=(16,),
        page_sizes=(32,),
        cache_elems=(256,),
        cache_policies=POLICIES,
    )
    result = run_campaign(spec, store=trace_store(), parallel=False)
    return {
        name: [
            result.find(kernel=name, cache_policy=policy).remote_read_pct
            for policy in POLICIES
        ]
        for name in KERNELS
    }


def test_ablation_replacement_policy(benchmark):
    table = once(benchmark, run_ablation)
    rows = [[name] + values for name, values in table.items()]
    save(
        "ablation_a3_replacement",
        render_table(
            ["kernel"] + list(POLICIES),
            rows,
            title="A3: replacement-policy ablation, 16 PEs, ps 32, cache 256",
        ),
    )
    for name, values in table.items():
        lru = values[0]
        # LRU is never far from the best policy on these workloads.
        assert lru <= min(values) + 2.0, (name, values)
