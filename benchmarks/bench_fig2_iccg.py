"""Figure 2 — Cyclic access pattern (ICCG).

Expected shape: without a cache most reads are remote (the access
pattern "jumps from page to page"); the 256-element cache removes
nearly all of them.  See EXPERIMENTS.md for the one shape deviation
(our cached series is flat-low rather than decreasing in PE count).
"""

from __future__ import annotations

from repro.bench import figure2, render

from _util import once, save


def test_figure2_iccg(benchmark):
    fig = once(benchmark, lambda: figure2(n=1024))
    save("figure2_iccg", render(fig))
    no_cache = fig.series["No Cache, ps 32"][-1]
    cached = fig.series["Cache, ps 32"][-1]
    benchmark.extra_info["remote_pct_nocache_ps32"] = no_cache
    benchmark.extra_info["remote_pct_cache_ps32"] = cached
    assert no_cache > 80.0                     # most accesses remote
    assert cached < 5.0                        # cache nearly perfect
    assert no_cache / max(cached, 1e-9) > 20   # dramatic reduction
