"""Ablation A1 — modulo vs division (block) vs block-cyclic partitioning.

§9: "we have seen that our simple modulo partitioning scheme performs
worse for certain loops than a division scheme ... it may become
necessary to allow the selection of one or the other scheme based on
the access distribution class."  This ablation quantifies that: one
representative kernel per class, remote ratios under each scheme — a
single engine campaign with the partition axis swept declaratively.
"""

from __future__ import annotations

from repro.bench import render_table
from repro.engine import CampaignSpec, KernelSpec, run_campaign

from _util import once, save, trace_store

REPRESENTATIVES = {
    "Matched": ("pic_1d_fragment", 1000),
    "Skewed": ("hydro_fragment", 1000),
    "Cyclic": ("hydro_2d", 100),
    "Random": ("linear_recurrence", 256),
}
SCHEMES = ("modulo", "block", "block-cyclic:2")


def run_ablation():
    spec = CampaignSpec(
        name="ablation-a1-partition",
        kernels=tuple(
            KernelSpec(name, n=n) for name, n in REPRESENTATIVES.values()
        ),
        pes=(16,),
        page_sizes=(32,),
        cache_elems=(0, 256),
        partitions=SCHEMES,
    )
    result = run_campaign(spec, store=trace_store(), parallel=False)
    rows = []
    for label, (name, _n) in REPRESENTATIVES.items():
        for scheme in SCHEMES:
            values = [
                result.find(
                    kernel=name, partition=scheme, cache_elems=cache
                ).remote_read_pct
                for cache in (0, 256)
            ]
            rows.append([label, name, scheme, values[0], values[1]])
    return rows


def test_ablation_partition_schemes(benchmark):
    rows = once(benchmark, run_ablation)
    save(
        "ablation_a1_partition",
        render_table(
            ["class", "kernel", "scheme", "remote% no-cache", "remote% cache"],
            rows,
            title="A1: partition-scheme ablation, 16 PEs, page size 32 (§9)",
        ),
    )
    by = {(r[1], r[2]): (r[3], r[4]) for r in rows}
    # The division scheme localises the skewed loop's neighbour traffic
    # (§9's observation) ...
    assert by[("hydro_fragment", "block")][0] < by[("hydro_fragment", "modulo")][0]
    # ... while matched loops are 0% under every scheme.
    for scheme in SCHEMES:
        assert by[("pic_1d_fragment", scheme)] == (0.0, 0.0)
