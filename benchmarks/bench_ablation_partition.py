"""Ablation A1 — modulo vs division (block) vs block-cyclic partitioning.

§9: "we have seen that our simple modulo partitioning scheme performs
worse for certain loops than a division scheme ... it may become
necessary to allow the selection of one or the other scheme based on
the access distribution class."  This ablation quantifies that: one
representative kernel per class, remote ratios under each scheme.
"""

from __future__ import annotations

from repro.bench import kernel_trace, render_table
from repro.core import (
    BlockCyclicPartition,
    BlockPartition,
    MachineConfig,
    ModuloPartition,
    simulate,
)
from repro.kernels import get_kernel

from _util import once, save

REPRESENTATIVES = {
    "Matched": ("pic_1d_fragment", 1000),
    "Skewed": ("hydro_fragment", 1000),
    "Cyclic": ("hydro_2d", 100),
    "Random": ("linear_recurrence", 256),
}
SCHEMES = [ModuloPartition(), BlockPartition(), BlockCyclicPartition(block=2)]


def run_ablation():
    rows = []
    for label, (name, n) in REPRESENTATIVES.items():
        program, inputs = get_kernel(name).build(n=n)
        trace = kernel_trace(program, inputs)
        for scheme in SCHEMES:
            values = []
            for cache in (0, 256):
                cfg = MachineConfig(
                    n_pes=16, page_size=32, cache_elems=cache, partition=scheme
                )
                values.append(simulate(trace, cfg).remote_read_pct)
            rows.append([label, name, scheme.name, values[0], values[1]])
    return rows


def test_ablation_partition_schemes(benchmark):
    rows = once(benchmark, run_ablation)
    save(
        "ablation_a1_partition",
        render_table(
            ["class", "kernel", "scheme", "remote% no-cache", "remote% cache"],
            rows,
            title="A1: partition-scheme ablation, 16 PEs, page size 32 (§9)",
        ),
    )
    by = {(r[1], r[2]): (r[3], r[4]) for r in rows}
    # The division scheme localises the skewed loop's neighbour traffic
    # (§9's observation) ...
    assert by[("hydro_fragment", "block")][0] < by[("hydro_fragment", "modulo")][0]
    # ... while matched loops are 0% under every scheme.
    for scheme in SCHEMES:
        assert by[("pic_1d_fragment", scheme.name)] == (0.0, 0.0)
