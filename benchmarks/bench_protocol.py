"""Protocol cost — host-processor re-initialisation rounds (§5).

Measures the message cost of recycling arrays under the paper's
gather-then-broadcast protocol: 2N-1 messages per array per round,
with hosts spread round-robin so no PE becomes a hot spot.
"""

from __future__ import annotations

from repro.bench import render_table
from repro.hostproto import ReinitCoordinator

from _util import once, save


def run_protocol(n_arrays=8, n_pes=64, rounds=10):
    coord = ReinitCoordinator([f"A{i}" for i in range(n_arrays)], n_pes)
    for _ in range(rounds):
        for i in range(n_arrays):
            for pe in range(n_pes):
                coord.request_reinit(f"A{i}", pe)
    return coord


def test_protocol_message_cost(benchmark):
    coord = once(benchmark, run_protocol)
    stats = coord.stats
    rows = [
        ["rounds completed", stats.rounds],
        ["request messages", stats.requests],
        ["grant messages", stats.broadcasts],
        ["total messages", stats.messages],
        ["messages per round", stats.messages / stats.rounds],
    ]
    save(
        "protocol_reinit_cost",
        render_table(
            ["quantity", "value"],
            rows,
            title="Host-processor re-initialisation cost, 64 PEs, 8 arrays (§5)",
        ),
    )
    # 2N-1 messages per (array, round): N requests + N-1 grants.
    n_pes = 64
    assert stats.messages == stats.rounds * (2 * n_pes - 1)
    load = coord.host_load()
    assert max(load.values()) - min(load.values()) <= 1
