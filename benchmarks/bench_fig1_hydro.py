"""Figure 1 — Skewed access pattern (Hydro Fragment, skew 11).

Regenerates the paper's Figure 1 series: % of reads remote vs number
of PEs, page sizes 32 and 64, cache on/off.  Expected shape: the
No-Cache ps-32 series plateaus around 20-22%, the Cache series sits
near 1%, and doubling the page size halves the boundary fraction.
"""

from __future__ import annotations

from repro.bench import figure1, render

from _util import once, save


def test_figure1_hydro_fragment(benchmark):
    fig = once(benchmark, lambda: figure1(n=1000))
    save("figure1_hydro_fragment", render(fig))
    plateau = fig.series["No Cache, ps 32"][-1]
    cached = fig.series["Cache, ps 32"][-1]
    benchmark.extra_info["remote_pct_nocache_ps32"] = plateau
    benchmark.extra_info["remote_pct_cache_ps32"] = cached
    assert 18.0 < plateau < 24.0  # paper: ~20%
    assert cached < 1.5           # paper: ~1%
