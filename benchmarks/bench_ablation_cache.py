"""Ablation A2 — cache-size sweep for random-distribution loops.

§7.1.4: "Increasing the cache size will help here by allowing a
complete cycle to reside in the cache or increasing the probability of
a cache hit simply by having more of the remote pages stored locally."
The sweep raises the per-PE cache from the paper's 256 elements to 16K
and watches the RD kernels' remote ratio fall.  The whole grid is one
engine campaign over the persistent trace store.
"""

from __future__ import annotations

from repro.bench import render_table
from repro.engine import CampaignSpec, KernelSpec, kernel_trace_cached, run_campaign

from _util import once, save, trace_store

CACHE_SIZES = (64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384)
KERNELS = {"linear_recurrence": 256, "adi": 500, "pic_1d": 1000}


def run_sweep():
    spec = CampaignSpec(
        name="ablation-a2-cache-size",
        kernels=tuple(KernelSpec(name, n=n) for name, n in KERNELS.items()),
        pes=(16,),
        page_sizes=(32,),
        cache_elems=CACHE_SIZES,
    )
    result = run_campaign(spec, store=trace_store(), parallel=False)
    return {
        name: [
            result.find(kernel=name, cache_elems=cache).remote_read_pct
            for cache in CACHE_SIZES
        ]
        for name in KERNELS
    }


def test_ablation_cache_size(benchmark):
    table = once(benchmark, run_sweep)
    rows = [
        [cache] + [table[name][i] for name in KERNELS]
        for i, cache in enumerate(CACHE_SIZES)
    ]
    save(
        "ablation_a2_cache_size",
        render_table(
            ["cache (elems)"] + [f"{k} remote%" for k in KERNELS],
            rows,
            title="A2: cache-size sweep for RD loops, 16 PEs, ps 32 (§7.1.4)",
        ),
    )
    for name, series in table.items():
        # Monotone improvement (weakly), and a large cache eventually
        # captures the cycle.
        assert all(a >= b - 1e-9 for a, b in zip(series, series[1:])), name
        assert series[-1] < 0.7 * series[CACHE_SIZES.index(256)], name


def test_stack_distance_curve_predicts_the_sweep(benchmark):
    """The Mattson one-pass analysis (§9 virtual-memory techniques)
    reproduces the directly simulated A2 curve point for point."""
    from repro.core import MachineConfig, hit_rate_curve, simulate

    name, n = "linear_recurrence", 256
    trace = kernel_trace_cached(name, n=n, store=trace_store())
    cfg = MachineConfig(n_pes=16, page_size=32)

    def analyse():
        return hit_rate_curve(
            trace, cfg, [c // 32 for c in CACHE_SIZES]
        )

    curve = once(benchmark, analyse)
    for cache in CACHE_SIZES:
        direct = simulate(
            trace, MachineConfig(n_pes=16, page_size=32, cache_elems=cache)
        ).remote_read_pct
        assert curve[cache // 32] == direct
