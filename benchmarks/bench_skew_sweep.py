"""Skew sweep — §7.1.2's boundary arithmetic as an experiment.

"SD access patterns tend to achieve a very low (< 10%) remote access
ratio ... When the skew is large, the remote access percentage
increases, but caching eliminates the cost of a larger skew.  The
effect of caching in this case depends on the value of the skew
constant.  For a skew of one, the cache has no effect, for a skew of
two, the cache saves one remote access, and so on."

The synthetic skewed generator isolates the mechanism; every measured
point is also checked against the exact closed form.
"""

from __future__ import annotations

from repro.core import MachineConfig, simulate
from repro.bench import render_table
from repro.engine import TraceKey, build_trace
from repro.kernels import build_skewed, expected_skew_remote_fraction

from _util import once, save, trace_store

SKEWS = (0, 1, 2, 4, 8, 11, 16, 24, 32, 48)
N = 2048
PS = 32


def run_sweep():
    store = trace_store()
    rows = []
    for skew in SKEWS:
        # Synthetic kernels aren't in the registry, so they address the
        # store directly: one entry per (n, skew), interpreted once.
        trace = store.get(
            TraceKey.make("synthetic_skewed", n=N, skew=skew),
            lambda: build_trace(*build_skewed(n=N, skew=skew)),
        )
        cfg = MachineConfig(n_pes=16, page_size=PS, cache_elems=256)
        with_cache = simulate(trace, cfg)
        without = simulate(trace, cfg.without_cache())
        rows.append(
            [
                skew,
                100 * without.stats.remote_reads / trace.n_reads,
                100 * with_cache.stats.remote_reads / trace.n_reads,
                100 * expected_skew_remote_fraction(N, skew, PS, False),
                100 * expected_skew_remote_fraction(N, skew, PS, True),
            ]
        )
    return rows


def test_skew_sweep(benchmark):
    rows = once(benchmark, run_sweep)
    save(
        "skew_sweep",
        render_table(
            [
                "skew",
                "remote% no-cache",
                "remote% cache",
                "closed form (nc)",
                "closed form (c)",
            ],
            rows,
            title=f"Skew sweep, n={N}, 16 PEs, ps {PS} (§7.1.2)",
        ),
    )
    by_skew = {r[0]: r for r in rows}
    # Measured equals the closed form at every point.
    for row in rows:
        assert row[1] == round(row[3], 10) or abs(row[1] - row[3]) < 1e-9
        assert abs(row[2] - row[4]) < 1e-9
    # Skew 1: cache has no effect (§7.1.2, quoted above).
    assert by_skew[1][1] == by_skew[1][2]
    # No-cache cost grows with the skew until it saturates at ps.
    assert by_skew[32][1] >= by_skew[16][1] >= by_skew[4][1]
    # With the cache, even a huge skew stays cheap: one fetch per
    # (written page, remote page) pair — 2 pairs per page at skew 48.
    assert by_skew[48][2] <= 2 * 100 / PS + 1e-9
    # The paper's Figure-1-adjacent claim: large-skew reduction is big.
    assert by_skew[32][1] / max(by_skew[32][2], 1e-9) > 10
