"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's figures or tables,
saves the rendered ASCII artefact under ``benchmarks/results/`` and
prints it, while pytest-benchmark times the regeneration itself.
Traces come from a persistent store co-located with the artefacts, so
re-running the harness replays stored traces instead of re-interpreting
every kernel (delete ``benchmarks/results/trace-store`` to go cold).
"""

from __future__ import annotations

import os
from pathlib import Path

RESULTS = Path(__file__).parent / "results"


def fast() -> bool:
    """Whether the harness runs in CI's fast smoke mode.

    ``REPRO_BENCH_FAST=1`` (the benchmark-smoke CI job) shrinks the
    heavyweight cases roughly an order of magnitude: the uploaded
    ``BENCH_*.json`` artifact then tracks the perf *trajectory* per
    commit without paying full-precision problem sizes on every push.
    Bit-exactness assertions are size-independent and stay on.
    """
    return os.environ.get("REPRO_BENCH_FAST", "") not in ("", "0")


def trace_store():
    """The harness's shared persistent trace store."""
    from repro.engine import TraceStore

    return TraceStore(RESULTS / "trace-store")


def save(name: str, text: str) -> None:
    """Persist a rendered artefact and echo it to stdout."""
    RESULTS.mkdir(exist_ok=True)
    path = RESULTS / f"{name}.txt"
    path.write_text(text + "\n")
    print(f"\n{text}\n[saved to {path}]")


def once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark's timer.

    Figure regeneration is deterministic and seconds-scale; a single
    round keeps the harness fast while still recording the cost.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
