"""Ablation A5 — bandwidth-aware contention on the timed machine.

Two claims ride on the ``CostModel`` bandwidth knobs, and this
benchmark pins both on the same cases ``bench_timed_machine`` times:

* **compatibility** — ``infinite-bw`` (per-link queueing on, infinite
  bandwidth) reproduces the historical latencies *bit for bit*, so
  every pre-bandwidth artifact stays comparable;
* **effect** — ``contended`` (4 bytes/cycle per link) turns the
  passive per-link message counts into real queueing delay, reported
  as ``contention_delay_cycles`` and visible in the finish time.

Run with ``REPRO_BENCH_FAST=1`` (CI's benchmark-smoke job) for the
small-problem smoke variant; the bit-exactness assertions are
identical in both modes.
"""

from __future__ import annotations

import numpy as np

from repro.backends import cost_model
from repro.bench import kernel_trace, render_table
from repro.core import MachineConfig
from repro.kernels import get_kernel
from repro.machine import TimedMachine

from _util import fast, once, save

HYDRO_N = 200 if fast() else 1000
ICCG_N = 128 if fast() else 512
HYDRO_PES = (4, 16) if fast() else (4, 16, 64)
TOPOLOGIES = ("crossbar", "ring", "mesh2d", "hypercube", "bus")


def _hydro_trace():
    program, inputs = get_kernel("hydro_fragment").build(n=HYDRO_N)
    return kernel_trace(program, inputs)


def _iccg_trace():
    program, inputs = get_kernel("iccg").build(n=ICCG_N)
    return kernel_trace(program, inputs)


def run_bit_exactness():
    """The bench_timed_machine cases, default vs ``infinite-bw``."""
    rows = []
    trace = _hydro_trace()
    infinite = cost_model("infinite-bw")
    for pes in HYDRO_PES:
        for mode in ("blocking", "multithreaded"):
            cfg = MachineConfig(n_pes=pes, page_size=32, cache_elems=256)
            base = TimedMachine(trace, cfg, topology="mesh2d", mode=mode).run()
            ctrl = TimedMachine(
                trace,
                cfg,
                topology="mesh2d",
                mode=mode,
                costs=infinite,
            ).run()
            assert ctrl.finish_time == base.finish_time
            assert np.array_equal(ctrl.per_pe_finish, base.per_pe_finish)
            assert np.array_equal(ctrl.stall_time, base.stall_time)
            assert ctrl.contention_delay_cycles == 0.0
            rows.append([f"hydro pes={pes}", mode, base.finish_time, "=="])
    trace = _iccg_trace()
    for topo in TOPOLOGIES:
        cfg = MachineConfig(n_pes=16, page_size=32, cache_elems=256)
        base = TimedMachine(trace, cfg, topology=topo).run()
        ctrl = TimedMachine(trace, cfg, topology=topo, costs=infinite).run()
        assert ctrl.finish_time == base.finish_time
        assert np.array_equal(ctrl.per_pe_finish, base.per_pe_finish)
        assert ctrl.contention_delay_cycles == 0.0
        rows.append([f"iccg {topo}", "blocking", base.finish_time, "=="])
    return rows


def run_contention_ablation():
    """Finish time and queueing delay, ``default`` vs ``contended``."""
    rows = []
    trace = _iccg_trace()
    contended = cost_model("contended")
    for topo in TOPOLOGIES:
        for strategy in ("host", "subrange"):
            cfg = MachineConfig(
                n_pes=16,
                page_size=32,
                cache_elems=256,
                reduction_strategy=strategy,
            )
            base = TimedMachine(
                trace,
                cfg,
                topology=topo,
                mode="multithreaded",
            ).run()
            loaded = TimedMachine(
                trace,
                cfg,
                topology=topo,
                mode="multithreaded",
                costs=contended,
            ).run()
            # Queueing shifts *when* fetches land, which can change the
            # partial-page refetch pattern (and with it cached/remote
            # splits or even the finish time, either way); only the
            # structural counters are invariant across cost models.
            assert loaded.contention_delay_cycles >= 0.0
            assert loaded.stats.writes == base.stats.writes
            assert loaded.stats.total_reads == base.stats.total_reads
            rows.append(
                [
                    topo,
                    strategy,
                    base.finish_time,
                    loaded.finish_time,
                    loaded.contention_delay_cycles,
                    loaded.finish_time / base.finish_time,
                ]
            )
    return rows


def test_infinite_bandwidth_is_bit_exact(benchmark):
    rows = once(benchmark, run_bit_exactness)
    save(
        "timed_contention_bitexact",
        render_table(
            ["case", "mode", "finish (cycles)", "infinite-bw"],
            rows,
            title=(
                f"A5a: link_bandwidth=inf reproduces pre-bandwidth "
                f"latencies bit-for-bit ({len(rows)} cases)"
            ),
        ),
    )
    assert len(rows) == 2 * len(HYDRO_PES) + len(TOPOLOGIES)


def test_contended_network_feeds_latency(benchmark):
    rows = once(benchmark, run_contention_ablation)
    save(
        "timed_contention_ablation",
        render_table(
            [
                "topology",
                "reduction",
                "default finish",
                "contended finish",
                "queueing (cycles)",
                "slowdown",
            ],
            rows,
            title="A5b: per-link bandwidth contention (ICCG, 16 PEs)",
        ),
    )
    # Multithreaded PEs keep several messages in flight, so the shared
    # bus must show real queueing on at least the host-funnel runs.
    bus_delay = [row[4] for row in rows if row[0] == "bus"]
    assert max(bus_delay) > 0.0
