"""Figure 3 — Cyclic + skewed combination (2-D Explicit Hydrodynamics).

Expected shape: the No-Cache series is flat under ~10%; the Cache
series *decreases* as PEs grow, because the machine-wide cache grows
until each PE's page cycle fits ("the examples above are rather
counter-intuitive, yet very important results").
"""

from __future__ import annotations

from repro.bench import figure3, render

from _util import once, save


def test_figure3_hydro_2d(benchmark):
    fig = once(benchmark, lambda: figure3(n=100))
    save("figure3_hydro_2d", render(fig))
    cached = fig.series["Cache, ps 32"]
    no_cache = fig.series["No Cache, ps 32"]
    benchmark.extra_info["cache_series_ps32"] = cached
    # x axis is (1, 2, 4, 8, 16, 32, 64); compare 4 PEs to 64 PEs.
    assert cached[-1] < 0.5 * cached[2]
    assert all(v < 12.0 for v in no_cache)
