"""Figure 5 — Load balance of a typical loop (2-D hydro, 64 PEs).

Expected shape: per-PE remote and local read counts are flat — "each
of the sixty-four PEs performs a comparable number of remote reads and
local reads" — because the area-of-responsibility rule hands every PE
a near-equal share of array pages.
"""

from __future__ import annotations

from repro.bench import bar_strip, figure5, render

from _util import once, save


def test_figure5_load_balance(benchmark):
    fig = once(benchmark, lambda: figure5(n=510, n_pes=64, page_size=32))
    strip = "\n".join(
        f"PE {pe:2d} |{bar}"
        for pe, bar in enumerate(
            bar_strip(fig.series["Local with No Cache"], width=40)
        )
    )
    save("figure5_load_balance", render(fig) + "\n\nlocal reads per PE:\n" + strip)
    local = fig.load_balance["Local with No Cache"]
    remote = fig.load_balance["Remote with No Cache"]
    benchmark.extra_info["local_cv"] = local.cv
    benchmark.extra_info["remote_cv"] = remote.cv
    assert local.cv < 0.1      # near-flat local reads
    assert remote.cv < 0.2     # near-flat remote reads
    assert local.minimum > 0   # every PE participates
