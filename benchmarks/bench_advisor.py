"""Ablation A5 — the §9 partitioning advisor over the kernel survey.

For each representative kernel, the advisor searches partition schemes
and page sizes on the kernel's own trace and reports how much remote
traffic its recommendation saves over the paper's fixed default
(modulo, page size 32).
"""

from __future__ import annotations

from repro.bench import render_table
from repro.core import advise
from repro.kernels import get_kernel

from _util import once, save

KERNELS = {
    "pic_1d_fragment": 1000,
    "hydro_fragment": 1000,
    "first_sum": 1000,
    "hydro_2d": 100,
    "iccg": 1024,
    "linear_recurrence": 256,
    "inner_product": 1000,
}


def run_advisor():
    rows = []
    for name, n in KERNELS.items():
        program, inputs = get_kernel(name).build(n=n)
        advice = advise(program, inputs)
        saved = advice.improvement_over("modulo", 32)
        rows.append(
            [
                name,
                str(advice.access_class),
                advice.scheme.label,
                advice.page_size,
                advice.best.remote_pct,
                saved,
            ]
        )
    return rows


def test_advisor_recommendations(benchmark):
    rows = once(benchmark, run_advisor)
    save(
        "ablation_a5_advisor",
        render_table(
            [
                "kernel",
                "class",
                "scheme",
                "page size",
                "remote% (best)",
                "saved vs modulo/ps32",
            ],
            rows,
            title="A5: partitioning advisor recommendations, 16 PEs (§9)",
        ),
    )
    by = {r[0]: r for r in rows}
    # The advisor never recommends something worse than the default.
    for row in rows:
        assert row[5] >= -1e-9, row
    # Matched loops cannot be improved (already 0%).
    assert by["pic_1d_fragment"][4] == 0.0
