"""Engine benchmarks — serial vs parallel fan-out, cold vs warm store.

Times the axes the ``repro.engine`` subsystem adds on top of the
simulator core: (1) evaluating one campaign's configuration grid
serially vs through the multiprocessing executor, (2) acquiring
campaign traces with a cold store (interpret + persist) vs a warm one
(replay ``.npz``, zero interpreter executions — asserted), (3) a
garbage-collection pass over a populated sharded store (eviction
ordering asserted: results before traces), and (4) N *concurrent*
campaigns over one shared evaluation service vs N independently
forked worker pools — the PR-4 scaling case.
"""

from __future__ import annotations

import shutil
import threading
import time
from dataclasses import replace

from repro.engine import (
    CampaignSpec,
    KernelSpec,
    TraceStore,
    interpretation_count,
    run_campaign,
)

from _util import fast, once, save, trace_store

#: 3 kernels × (7 PEs × 2 page sizes × 2 cache settings) = 84 configs.
CAMPAIGN = CampaignSpec(
    name="bench-engine",
    kernels=(
        KernelSpec("hydro_fragment", n=1000),
        KernelSpec("iccg", n=1024),
        KernelSpec("hydro_2d", n=100),
    ),
    pes=(1, 2, 4, 8, 16, 32, 64),
    page_sizes=(32, 64),
    cache_elems=(256, 0),
)

#: CI's benchmark-smoke job (REPRO_BENCH_FAST=1) trades precision for
#: wall time: smaller kernels and a thinner grid derived from the
#: full-precision spec, so the remaining axes can never drift apart.
if fast():
    CAMPAIGN = replace(
        CAMPAIGN,
        name="bench-engine-fast",
        kernels=(
            KernelSpec("hydro_fragment", n=200),
            KernelSpec("iccg", n=256),
            KernelSpec("hydro_2d", n=40),
        ),
        pes=(1, 4, 16),
        page_sizes=(32,),
    )


def _warm_store() -> TraceStore:
    """The shared harness store, pre-warmed for CAMPAIGN's kernels."""
    store = trace_store()
    run_campaign(CAMPAIGN, store=store, parallel=False)  # seed entries
    return store


def test_engine_campaign_serial(benchmark):
    store = _warm_store()
    # use_cache=False: time the evaluations, not result-cache lookups.
    result = once(
        benchmark,
        lambda: run_campaign(
            CAMPAIGN, store=store, parallel=False, use_cache=False
        ),
    )
    assert result.executor == "serial"
    assert len(result) == CAMPAIGN.n_points
    benchmark.extra_info["points"] = len(result)


def test_engine_campaign_parallel(benchmark):
    store = _warm_store()
    baseline = run_campaign(
        CAMPAIGN, store=store, parallel=False, use_cache=False
    )
    result = once(
        benchmark,
        lambda: run_campaign(
            CAMPAIGN, store=store, parallel=True, use_cache=False
        ),
    )
    assert result.executor.startswith(("parallel[", "serial"))
    benchmark.extra_info["executor"] = result.executor
    # Whatever the interleaving, the output is bit-identical.
    assert baseline.identical(result)
    save(
        "engine_campaign",
        f"engine campaign: {CAMPAIGN.n_points} points, "
        f"executor {result.executor}, "
        f"{result.elapsed_s:.3f}s wall",
    )


def test_result_cache_warm(benchmark, tmp_path):
    """A repeated identical campaign replays entirely from the result
    cache — zero backend evaluations, pure store lookups."""
    from repro.backends import evaluation_count

    root = tmp_path / "result-cache"
    run_campaign(CAMPAIGN, store=TraceStore(root), parallel=False)

    def cached_run():
        store = TraceStore(root)  # cold memory, warm disk
        before = evaluation_count()
        result = run_campaign(CAMPAIGN, store=store, parallel=False)
        return evaluation_count() - before, result

    evaluated, result = once(benchmark, cached_run)
    assert evaluated == 0
    assert len(result) == CAMPAIGN.n_points
    benchmark.extra_info["executor"] = result.executor


def test_trace_store_cold(benchmark, tmp_path):
    """Cold acquisition: interpret every kernel and persist the traces."""
    def cold_run():
        root = tmp_path / "cold"
        shutil.rmtree(root, ignore_errors=True)
        store = TraceStore(root)
        before = interpretation_count()
        run_campaign(CAMPAIGN, store=store, parallel=False)
        return interpretation_count() - before

    interpreted = once(benchmark, cold_run)
    assert interpreted == len(CAMPAIGN.kernels)


def test_trace_store_warm(benchmark, tmp_path):
    """Warm acquisition: replay ``.npz`` files, zero interpretations.

    Caching is disabled so every point genuinely evaluates and the
    traces really are loaded from their shards (a cached re-run would
    not touch the trace store at all).
    """
    root = tmp_path / "warm"
    run_campaign(CAMPAIGN, store=TraceStore(root), parallel=False)

    def warm_run():
        store = TraceStore(root)  # cold memory, warm disk
        before = interpretation_count()
        run_campaign(CAMPAIGN, store=store, parallel=False, use_cache=False)
        return interpretation_count() - before, store.counters.disk_hits

    interpreted, disk_hits = once(benchmark, warm_run)
    assert interpreted == 0
    assert disk_hits == len(CAMPAIGN.kernels)


#: The concurrent-campaign case: three campaigns over one kernel's
#: trace, distinct grids so nothing dedups away, 28 points each.
def _concurrent_specs(backend: str) -> list[CampaignSpec]:
    return [
        CampaignSpec(
            name=f"bench-concurrent-{slot}",
            backend=backend,
            kernels=(
                KernelSpec("hydro_fragment", n=200 if fast() else 1000),
            ),
            pes=(1, 4, 16) if fast() else (1, 2, 4, 8, 16, 32, 64),
            page_sizes=(32, 64),
            cache_elems=(256 + slot, 0),  # distinct grids per campaign
        )
        for slot in range(3)
    ]


def _drive_concurrently(specs, store, **kwargs) -> float:
    """Run every campaign on its own thread; wall time of the batch."""
    errors: list[BaseException] = []

    def drive(spec: CampaignSpec) -> None:
        try:
            result = run_campaign(spec, store=store, use_cache=False, **kwargs)
            assert len(result) == spec.n_points
        except BaseException as exc:  # noqa: BLE001 - surfaced below
            errors.append(exc)

    threads = [
        threading.Thread(target=drive, args=(spec,)) for spec in specs
    ]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not errors
    return time.perf_counter() - started


def test_engine_concurrent_campaigns_service_vs_pools(benchmark, tmp_path):
    """The PR-4 scaling claim: N concurrent campaigns through ONE
    resident service pool vs N independently forked pools.

    The benchmark times the service path; the forked-pool wall time
    for the identical workload rides along in ``extra_info`` so the
    saved artefact shows the comparison.  Sharing wins on pool
    startup (one launch instead of N) and on trace distribution (one
    resident copy per worker instead of one per pool).
    """
    from repro.backends import configure_service, get_service, shutdown_service

    store = TraceStore(tmp_path / "store")
    run_campaign(  # warm the trace so neither side pays interpretation
        _concurrent_specs("untimed")[0], store=store, parallel=False
    )

    forked_wall = _drive_concurrently(
        _concurrent_specs("untimed"), store, parallel=True
    )

    shutdown_service()
    configure_service()  # default: one worker per core, one pool
    try:
        service_wall = once(
            benchmark,
            lambda: _drive_concurrently(
                _concurrent_specs("service"), store, parallel=True
            ),
        )
        stats = get_service().stats()
        assert stats["pool_launches"] <= 1
        assert stats["failed"] == 0
    finally:
        shutdown_service()
        configure_service()
    benchmark.extra_info["forked_pools_wall_s"] = round(forked_wall, 3)
    benchmark.extra_info["service_wall_s"] = round(service_wall, 3)
    benchmark.extra_info["speedup_vs_forked"] = round(
        forked_wall / service_wall, 2
    )
    points_each = _concurrent_specs("untimed")[0].n_points
    save(
        "engine_concurrent_service",
        f"3 concurrent campaigns ({points_each} points each), one store:\n"
        f"  N forked pools: {forked_wall:.3f}s wall\n"
        f"  one shared service pool: {service_wall:.3f}s wall\n"
        f"  speedup: {forked_wall / service_wall:.2f}x",
    )


def test_store_gc_half_budget(benchmark, tmp_path):
    """One GC pass over a campaign-populated sharded store: evict down
    to half the store's bytes (results go first — asserted)."""
    root = tmp_path / "gc"
    store = TraceStore(root)
    run_campaign(CAMPAIGN, store=store, parallel=False)
    budget = store.total_bytes() // 2

    report = once(benchmark, lambda: store.gc(max_bytes=budget))
    assert store.total_bytes() <= budget
    assert report.evicted_results >= 1
    # Traces only fall once every result is gone.
    if report.evicted_traces:
        assert store.n_results() == 0
    benchmark.extra_info["evicted"] = len(report.evicted)
    benchmark.extra_info["freed_bytes"] = report.freed_bytes
