"""Tables T2/T3 — the §8 conclusions survey and skew-reduction claim.

T2: "For most access distributions, the percentages of remote accesses
are less than 10% when using a cache of 256 elements (fairly small)."
T3: "for an SD loop with large skew, we observed a reduction from 22%
remote reads to 1% remote reads."
"""

from __future__ import annotations

from repro.bench import (
    conclusions_table,
    render_survey_table,
    render_table,
    skew_reduction,
)
from repro.core import AccessClass

from _util import once, save


def test_table_t2_conclusions_survey(benchmark):
    rows = once(benchmark, conclusions_table)
    save("table_t2_conclusions", render_survey_table(rows))
    benchmark.extra_info["kernels"] = len(rows)
    # Matched loops: exactly 0% remote (§7.1.1).
    for row in rows:
        if row.access_class is AccessClass.MATCHED:
            assert row.remote_pct_cache == 0.0
    # Skewed and cyclic loops: under 10% with the 256-element cache.
    for row in rows:
        if row.access_class in (AccessClass.SKEWED, AccessClass.CYCLIC):
            assert row.remote_pct_cache < 10.0, row
    # "For most access distributions ... less than 10%": a majority.
    under_ten = sum(1 for r in rows if r.remote_pct_cache < 10.0)
    assert under_ten > len(rows) / 2


def test_table_t3_skew_reduction(benchmark):
    no_cache, with_cache = once(benchmark, skew_reduction)
    text = render_table(
        ["configuration", "% of reads remote"],
        [["no cache (paper: 22%)", no_cache], ["cache 256 (paper: 1%)", with_cache]],
        title="T3: Hydro Fragment skew-11 reduction, 16 PEs, ps 32 (§8)",
    )
    save("table_t3_skew_reduction", text)
    benchmark.extra_info["no_cache"] = no_cache
    benchmark.extra_info["with_cache"] = with_cache
    assert abs(no_cache - 22.0) < 1.5
    assert abs(with_cache - 1.0) < 0.5
