"""Figure 4 — Random access pattern (General Linear Recurrence).

Expected shape: remote ratios stay high and the 256-element cache is
nearly indistinguishable from no cache ("the effect of the cache is
minimal, because no page is being kept until it is needed again").
"""

from __future__ import annotations

from repro.bench import figure4, render

from _util import once, save


def test_figure4_linear_recurrence(benchmark):
    fig = once(benchmark, lambda: figure4(n=256))
    save("figure4_linear_recurrence", render(fig))
    cached = fig.series["Cache, ps 32"][-1]
    no_cache = fig.series["No Cache, ps 32"][-1]
    benchmark.extra_info["remote_pct_cache_ps32"] = cached
    benchmark.extra_info["remote_pct_nocache_ps32"] = no_cache
    assert cached > 15.0                                # stays high
    assert (no_cache - cached) / no_cache < 0.35        # cache barely helps
