"""Simulator throughput — the harness's own performance.

Times the hot paths with pytest-benchmark's statistical timing
(multiple rounds, unlike the figure benches): trace generation by the
interpreter, configuration evaluation by the scalar simulator, and the
same evaluation by the columnar ``untimed-vec`` engine.  Evaluation
must be much cheaper than generation — that asymmetry is what makes
the trace-once / sweep-many design worthwhile — and the columnar
cases exist to keep its margin honest (the committed ``BENCH_vec.json``
speedup gate lives in ``tools/vec_bench.py``; these cases are the
statistically-timed artifact CI uploads alongside it).
"""

from __future__ import annotations

import numpy as np

from repro.bench import kernel_trace
from repro.core import MachineConfig, simulate, simulate_vec
from repro.kernels import get_kernel


def test_perf_trace_generation(benchmark):
    program, inputs = get_kernel("hydro_fragment").build(n=1000)
    trace = benchmark(lambda: kernel_trace(program, inputs))
    assert trace.n_instances == 1000


def test_perf_simulate_one_config(benchmark):
    program, inputs = get_kernel("hydro_2d").build(n=200)
    trace = kernel_trace(program, inputs)
    cfg = MachineConfig(n_pes=16, page_size=32, cache_elems=256)
    result = benchmark(lambda: simulate(trace, cfg))
    assert result.stats.total_reads == trace.n_reads


def test_perf_simulate_no_cache_fast_path(benchmark):
    program, inputs = get_kernel("hydro_2d").build(n=200)
    trace = kernel_trace(program, inputs)
    cfg = MachineConfig(n_pes=16, page_size=32, cache_elems=0)
    result = benchmark(lambda: simulate(trace, cfg))
    assert result.stats.cached_reads == 0


def test_perf_simulate_vec_one_config(benchmark):
    """The columnar engine on the scalar case above, bit-identical."""
    program, inputs = get_kernel("hydro_2d").build(n=200)
    trace = kernel_trace(program, inputs)
    cfg = MachineConfig(n_pes=16, page_size=32, cache_elems=256)
    result = benchmark(lambda: simulate_vec(trace, cfg))
    assert np.array_equal(
        result.stats.counts, simulate(trace, cfg).stats.counts
    )


def test_perf_simulate_vec_reduction_funnel(benchmark):
    """The headline regime: host reduction funnels every fold to PE 0,
    whose long alternating page stream the columnar engine batches."""
    program, inputs = get_kernel("inner_product").build(n=20_000)
    trace = kernel_trace(program, inputs)
    cfg = MachineConfig(n_pes=8, page_size=32, cache_elems=256)
    result = benchmark(lambda: simulate_vec(trace, cfg))
    assert np.array_equal(
        result.stats.counts, simulate(trace, cfg).stats.counts
    )


def test_perf_simulate_vec_fallback_policy(benchmark):
    """FIFO over capacity is order-dependent: the per-PE scalar-replay
    escape hatch is what this times."""
    program, inputs = get_kernel("inner_product").build(n=20_000)
    trace = kernel_trace(program, inputs)
    cfg = MachineConfig(
        n_pes=8, page_size=32, cache_elems=64, cache_policy="fifo"
    )
    telemetry: dict[str, int] = {}
    result = benchmark(lambda: simulate_vec(trace, cfg, telemetry))
    assert telemetry["fallback_pes"] >= 1
    assert np.array_equal(
        result.stats.counts, simulate(trace, cfg).stats.counts
    )
