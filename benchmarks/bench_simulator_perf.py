"""Simulator throughput — the harness's own performance.

Times the two hot paths with pytest-benchmark's statistical timing
(multiple rounds, unlike the figure benches): trace generation by the
interpreter and configuration evaluation by the vectorised simulator.
The second must be much cheaper than the first — that asymmetry is
what makes the trace-once / sweep-many design worthwhile.
"""

from __future__ import annotations

from repro.bench import kernel_trace
from repro.core import MachineConfig, simulate
from repro.kernels import get_kernel


def test_perf_trace_generation(benchmark):
    program, inputs = get_kernel("hydro_fragment").build(n=1000)
    trace = benchmark(lambda: kernel_trace(program, inputs))
    assert trace.n_instances == 1000


def test_perf_simulate_one_config(benchmark):
    program, inputs = get_kernel("hydro_2d").build(n=200)
    trace = kernel_trace(program, inputs)
    cfg = MachineConfig(n_pes=16, page_size=32, cache_elems=256)
    result = benchmark(lambda: simulate(trace, cfg))
    assert result.stats.total_reads == trace.n_reads


def test_perf_simulate_no_cache_fast_path(benchmark):
    program, inputs = get_kernel("hydro_2d").build(n=200)
    trace = kernel_trace(program, inputs)
    cfg = MachineConfig(n_pes=16, page_size=32, cache_elems=0)
    result = benchmark(lambda: simulate(trace, cfg))
    assert result.stats.cached_reads == 0
