"""Benchmark-harness fixtures: co-locate the trace store with results.

Everything the harness runs — including the figure/table generators,
which use the *default* store — reads and writes
``benchmarks/results/trace-store``, so deleting that directory really
does make the whole harness cold and no benchmark ever touches the
user's per-machine cache.
"""

from __future__ import annotations

import pytest

from repro.engine import set_default_store

from _util import trace_store


@pytest.fixture(autouse=True, scope="session")
def _harness_trace_store():
    store = trace_store()
    set_default_store(store)
    yield store
    set_default_store(None)
