"""Timed machine simulation: execution time, latency hiding, contention.

The paper's measurement simulator is untimed; §9 calls for "a more
sophisticated simulation [to] better explore the problems of execution
time and network contention".  :class:`TimedMachine` is that
simulation.  It replays an access trace under the same partitioning,
owner-computes and caching rules as :func:`repro.core.simulator.simulate`,
but embeds them in a discrete-event model with

* a cycle-level :class:`~repro.machine.pe.CostModel`,
* an interconnect :class:`~repro.machine.network.Topology` whose hop
  counts delay messages and whose links accumulate traffic,
* I-structure *deferred reads*: a request for a cell whose producer has
  not yet executed parks until the write happens (§3),
* *partial pages*: a fetched page snapshots only the cells defined at
  fetch time; touching a cell produced later forces a re-fetch — the
  §8 caveat that "a single page might have to be fetched more than
  once if that page is only partially filled at the time of the first
  request",
* two execution modes — ``blocking`` (the PE stalls on every remote
  fetch) and ``multithreaded`` (the PE parks the waiting iteration and
  runs ahead, the paper's "during this remote read the requesting PE
  can perform other useful work", §4),
* both reduction strategies: ``host`` (every fold funnels through the
  accumulator's owner — plain owner-computes replay) and ``subrange``
  (folds run where their data lives via the *same*
  :func:`~repro.core.simulator.subrange_placement` the untimed
  simulator uses; once every fold of an accumulator has retired, its
  host gathers one partial per contributing PE over the network and
  performs the final write, releasing any reader deferred on the
  accumulator cell),
* optional per-link bandwidth: with
  ``CostModel(contention_model="per-link")`` every message occupies
  each link on its route for ``message_bytes / link_bandwidth``
  cycles and queues behind traffic already holding the link, so the
  contention the untimed model only *counts* feeds back into
  completion time (``contention_delay_cycles`` in the result).

Determinism: all event ties break on scheduling order; repeated runs
produce identical cycle counts.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from ..cache import PageCache, make_cache
from ..core.access import AccessKind
from ..core.simulator import (
    MachineConfig,
    SubrangeGroup,
    _owners_by_array,
    subrange_groups,
    subrange_placement,
)
from ..core.stats import AccessStats
from ..ir.trace import Trace
from ..memory.pages import PageTable
from ..obs.profile import phase as _phase
from .event import EventQueue
from .network import Topology, make_topology
from .pe import CostModel, PEState

__all__ = ["TimedMachine", "TimedResult", "run_compacted", "serial_time"]

Cell = int  # composite (array_id << 44) | flat


def _cell(arr: int, flat: int) -> Cell:
    return (arr << 44) | flat


@dataclass
class TimedResult:
    """Outcome of one timed run."""

    config: MachineConfig
    topology: str
    mode: str
    finish_time: float
    per_pe_finish: np.ndarray
    stats: AccessStats
    stall_time: np.ndarray
    messages: int
    total_hops: int
    refetches: int
    deferred_reads: int
    contention: dict[str, float]

    @property
    def contention_delay_cycles(self) -> float:
        """Cycles messages spent queueing for (or draining over) links."""
        return self.contention["contention_delay_cycles"]

    @property
    def remote_read_pct(self) -> float:
        return self.stats.remote_read_pct

    def speedup(self, serial_time: float) -> float:
        return serial_time / self.finish_time if self.finish_time else 1.0


@dataclass
class _Context:
    """One in-flight statement instance on a PE (multithreaded mode)."""

    local_idx: int        # index into the PE's instance list
    read_cursor: int = 0  # how many reads are already satisfied


class TimedMachine:
    """Discrete-event replay of a trace on a timed machine."""

    def __init__(
        self,
        trace: Trace,
        config: MachineConfig,
        *,
        topology: str | Topology = "crossbar",
        costs: CostModel | None = None,
        mode: str = "blocking",
        max_outstanding: int = 4,
    ) -> None:
        if mode not in ("blocking", "multithreaded"):
            raise ValueError(f"unknown mode {mode!r}")
        self.trace = trace
        self.config = config
        self.costs = costs if costs is not None else CostModel()
        self.mode = mode
        self.max_outstanding = max_outstanding if mode == "multithreaded" else 1
        self.topology = (
            topology
            if isinstance(topology, Topology)
            else make_topology(topology, config.n_pes)
        )
        if self.topology.n_pes != config.n_pes:
            raise ValueError("topology size disagrees with config")
        self.queue = EventQueue()
        self.stats = AccessStats(config.n_pes, trace.array_names)
        self.tables = [
            PageTable(size, config.page_size) for size in trace.array_sizes
        ]
        with _phase("setup"):
            self._build_placement()
            self._build_memory_state()
        self._pes = [PEState(pe) for pe in range(config.n_pes)]
        for idx, pe in enumerate(self.exec_pe):
            self._pes[pe].instances.append(idx)
        self._caches: list[PageCache] = [
            make_cache(config.cache_policy, config.cache_pages)
            for _ in range(config.n_pes)
        ]
        self._fetch_time: list[dict[tuple[int, int], float]] = [
            {} for _ in range(config.n_pes)
        ]
        self._ready: list[deque[_Context]] = [deque() for _ in range(config.n_pes)]
        self._outstanding = [0] * config.n_pes
        self._burst_scheduled = [False] * config.n_pes
        self.messages = 0
        self.total_hops = 0
        self.refetches = 0
        self.deferred_reads = 0

    # -- setup -----------------------------------------------------------------
    def _build_placement(self) -> None:
        cfg, tr = self.config, self.trace
        w_pages = tr.w_flat // cfg.page_size
        self.exec_pe = _owners_by_array(
            tr.w_arr, w_pages, self.tables, cfg.partition, cfg.n_pes
        )
        # Subrange reductions: the same re-placement and accumulator
        # grouping as the untimed simulator, so both backends agree on
        # which PEs reduce together (and therefore on every counter).
        self._combine_of: dict[Cell, SubrangeGroup] = {}
        if cfg.reduction_strategy == "subrange" and tr.reduction_mask.any():
            self.exec_pe = subrange_placement(
                tr, self.tables, cfg, self.exec_pe
            )
            self._combine_of = {
                _cell(g.array_id, g.flat): g
                for g in subrange_groups(tr, self.tables, cfg, self.exec_pe)
            }
        r_pages = tr.r_flat // cfg.page_size
        self.r_owner = _owners_by_array(
            tr.r_arr, r_pages, self.tables, cfg.partition, cfg.n_pes
        )
        self.r_pages = r_pages

    def _build_memory_state(self) -> None:
        """Per-cell write bookkeeping for deferred reads & partial pages."""
        tr = self.trace
        self._writes_needed: dict[Cell, int] = {}
        for i in range(tr.n_instances):
            cell = _cell(int(tr.w_arr[i]), int(tr.w_flat[i]))
            self._writes_needed[cell] = self._writes_needed.get(cell, 0) + 1
        # A subrange accumulator only becomes defined when its host's
        # combine performs the final write — one write beyond the
        # trace's folds — so readers defer until the gather completes.
        for cell in self._combine_of:
            self._writes_needed[cell] += 1
        # When each accumulator's last trace write *completes* in
        # simulated time (bursts run far ahead of queue.now, so the
        # counting order alone must not time the gather).
        self._acc_write_time: dict[Cell, float] = {}
        self._writes_done: dict[Cell, int] = {}
        self._write_time: dict[Cell, float] = {}
        # Deferred reads parked per cell: (request arrival time, deliver fn).
        self._deferred: dict[Cell, list] = {}

    # -- cell availability --------------------------------------------------------
    def _available_at(self, cell: Cell) -> float | None:
        """Time the cell became fully defined, or None if not yet.

        Cells never written by the trace are initialisation data (§3)
        and are available from time 0.
        """
        needed = self._writes_needed.get(cell)
        if needed is None:
            return 0.0
        if self._writes_done.get(cell, 0) >= needed:
            return self._write_time[cell]
        return None

    # -- main loop -------------------------------------------------------------
    def run(self) -> TimedResult:
        for pe in range(self.config.n_pes):
            state = self._pes[pe]
            self._ready[pe].extend(
                _Context(local_idx=i) for i in range(len(state.instances))
            )
            self._schedule_burst(pe, 0.0)
        with _phase("event_loop"):
            self.queue.run(max_events=20_000_000)
        per_pe_finish = np.asarray(
            [pe_state.busy_until for pe_state in self._pes]
        )
        if any(self._ready) or any(self._outstanding):
            raise RuntimeError("simulation drained with unfinished work")
        return TimedResult(
            config=self.config,
            topology=self.topology.name,
            mode=self.mode,
            finish_time=float(per_pe_finish.max(initial=0.0)),
            per_pe_finish=per_pe_finish,
            stats=self.stats,
            stall_time=np.asarray([p.stall_time for p in self._pes]),
            messages=self.messages,
            total_hops=self.total_hops,
            refetches=self.refetches,
            deferred_reads=self.deferred_reads,
            contention=self.topology.contention_summary(),
        )

    def _schedule_burst(self, pe: int, at: float) -> None:
        if self._burst_scheduled[pe]:
            return
        self._burst_scheduled[pe] = True
        self.queue.schedule(max(at, self.queue.now), lambda: self._burst(pe))

    def _burst(self, pe: int) -> None:
        """Run the PE until it has no ready work or saturates outstanding."""
        self._burst_scheduled[pe] = False
        ready = self._ready[pe]
        while ready:
            ctx = ready.popleft()
            if not self._execute(pe, ctx):
                # Context parked on a fetch.  A blocking PE (or one at
                # its outstanding limit) stops; a multithreaded PE moves
                # on to the next ready context.
                if self._outstanding[pe] >= self.max_outstanding:
                    return
                continue

    def _execute(self, pe: int, ctx: _Context) -> bool:
        """Advance one context; True if the instance completed."""
        state = self._pes[pe]
        cfg, costs, tr = self.config, self.costs, self.trace
        instance = state.instances[ctx.local_idx]
        lo, hi = int(tr.r_ptr[instance]), int(tr.r_ptr[instance + 1])
        cursor = lo + ctx.read_cursor
        while cursor < hi:
            arr = int(tr.r_arr[cursor])
            flat = int(tr.r_flat[cursor])
            page = int(self.r_pages[cursor])
            owner = int(self.r_owner[cursor])
            if owner == pe:
                state.busy_until = max(state.busy_until, self.queue.now)
                state.busy_until += costs.local_read
                self.stats.add(pe, AccessKind.LOCAL_READ, array_id=arr)
            else:
                key = (arr, page)
                hit = cfg.has_cache and self._caches[pe].contains(key)
                if hit and self._snapshot_valid(pe, key, arr, flat):
                    state.busy_until = max(state.busy_until, self.queue.now)
                    state.busy_until += costs.cached_read
                    self._caches[pe].access(key)  # refresh recency
                    self.stats.add(pe, AccessKind.CACHED_READ, array_id=arr)
                else:
                    if hit:
                        self.refetches += 1
                        self._pes[pe].refetches += 1
                    self._start_fetch(pe, ctx, cursor - lo, arr, flat, page, owner)
                    return False
            ctx.read_cursor = cursor - lo + 1
            cursor += 1
        # All reads satisfied: compute and write.
        state.busy_until = max(state.busy_until, self.queue.now)
        state.busy_until += costs.compute_per_statement + costs.write
        self.stats.add(pe, AccessKind.WRITE)
        cell = _cell(int(tr.w_arr[instance]), int(tr.w_flat[instance]))
        done = self._writes_done.get(cell, 0) + 1
        self._writes_done[cell] = done
        group = self._combine_of.get(cell)
        if group is not None:
            self._acc_write_time[cell] = max(
                self._acc_write_time.get(cell, 0.0), state.busy_until
            )
        if done >= self._writes_needed[cell]:
            self._write_time[cell] = state.busy_until
            self._release_waiters(cell, state.busy_until)
        elif group is not None and done == self._writes_needed[cell] - 1:
            # Every fold has been counted; the remaining write is the
            # host's, performed after it gathers the partials.  The
            # gather begins when the *slowest* counted write completes
            # in simulated time — a PE's burst counts its folds while
            # its local clock is already far past queue.now, so the
            # counting order alone would start the combine early.
            self.queue.schedule(
                self._acc_write_time[cell],
                lambda: self._combine(cell, group),
            )
        return True

    # -- messaging ------------------------------------------------------------
    def _send_at(
        self,
        src: int,
        dst: int,
        depart: float,
        payload_elements: int,
        then,
    ) -> None:
        """Put one message on the wire at ``depart`` (simulated time).

        Counts the message and its hops, then calls
        ``then(hops, queued)`` where ``queued`` is the link-queueing
        delay to add on top of the closed-form latency.

        Without link occupancy (``contention_model="none"``, or
        infinite bandwidth) the transmit is pure accounting and
        ``then`` runs *synchronously* with ``queued == 0.0`` — the
        historical event structure, bit-for-bit.  With occupancy, the
        link reservation is deferred to an event at ``depart``: a PE's
        burst calls this while its local clock runs far ahead of
        ``queue.now``, so reserving at call time would queue messages
        in event-processing order and charge a message delay behind
        traffic that departs *later* in simulated time.  Routing
        reservations through the event queue orders them causally.
        """
        occupancy = (
            self.costs.occupancy(payload_elements)
            if self.costs.contended
            else 0.0
        )
        if occupancy == 0.0:
            hops, _ = self.topology.transmit(src, dst, at=depart)
            self.messages += 1
            self.total_hops += hops
            then(hops, 0.0)
            return

        def reserve() -> None:
            hops, queued = self.topology.transmit(
                src, dst, at=self.queue.now, occupancy=occupancy
            )
            self.messages += 1
            self.total_hops += hops
            then(hops, queued)

        self.queue.schedule(depart, reserve)

    # -- remote fetches -------------------------------------------------------------
    def _snapshot_valid(self, pe: int, key: tuple[int, int], arr: int, flat: int) -> bool:
        """Was this cell defined when the cached page was fetched?"""
        fetched = self._fetch_time[pe].get(key)
        if fetched is None:
            return False
        available = self._available_at(_cell(arr, flat))
        return available is not None and available <= fetched

    def _start_fetch(
        self,
        pe: int,
        ctx: _Context,
        read_offset: int,
        arr: int,
        flat: int,
        page: int,
        owner: int,
    ) -> None:
        """Issue a page request; park the context until the reply."""
        state = self._pes[pe]
        costs = self.costs
        state.busy_until = max(state.busy_until, self.queue.now)
        state.requests_sent += 1
        self._outstanding[pe] += 1
        ctx.read_cursor = read_offset  # retry this read on resume
        depart = state.busy_until
        cell = _cell(arr, flat)
        key = (arr, page)
        page_elems = self.tables[arr].elements_in_page(page)

        def on_request(hops: int, queued: float) -> None:
            request_arrival = depart + costs.request_latency(hops) + queued

            def deliver(ready_time: float) -> None:
                def on_reply(reply_hops: int, reply_queued: float) -> None:
                    arrive = (
                        ready_time
                        + costs.reply_latency(reply_hops, page_elems)
                        + reply_queued
                    )
                    self.queue.schedule(
                        max(arrive, self.queue.now),
                        lambda: self._finish_fetch(
                            pe, ctx, key, arrive, read_offset
                        ),
                    )

                self._send_at(owner, pe, ready_time, page_elems, on_reply)

            available = self._available_at(cell)
            if available is not None:
                deliver(max(request_arrival, available))
            else:
                # I-structure deferred read: parked at the owner until
                # the producing write happens (§3).
                self.deferred_reads += 1
                self._deferred.setdefault(cell, []).append(
                    (request_arrival, deliver)
                )

        self._send_at(pe, owner, depart, 0, on_request)

    def _finish_fetch(
        self,
        pe: int,
        ctx: _Context,
        key: tuple[int, int],
        arrive: float,
        read_offset: int,
    ) -> None:
        state = self._pes[pe]
        stall_start = state.busy_until
        if arrive > stall_start:
            state.stall_time += arrive - stall_start
        state.busy_until = max(state.busy_until, arrive)
        if self.config.has_cache:
            self._caches[pe].access(key)
            self._fetch_time[pe][key] = arrive
            self._prune_fetch_times(pe)
        self.stats.add(pe, AccessKind.REMOTE_READ, array_id=key[0])
        # The fetched read is satisfied by the reply itself; resume after it.
        ctx.read_cursor = read_offset + 1
        self._outstanding[pe] -= 1
        self._ready[pe].appendleft(ctx)  # resume the parked iteration first
        self._schedule_burst(pe, state.busy_until)

    def _prune_fetch_times(self, pe: int) -> None:
        """Keep fetch-time bookkeeping in sync with cache evictions."""
        cache = self._caches[pe]
        book = self._fetch_time[pe]
        if len(book) > cache.capacity_pages:
            resident = set(cache.resident_keys())
            for key in [k for k in book if k not in resident]:
                del book[key]

    def _release_waiters(self, cell: Cell, write_time: float) -> None:
        for request_arrival, deliver in self._deferred.pop(cell, []):
            deliver(max(write_time, request_arrival))

    # -- subrange combine -------------------------------------------------------
    def _combine(self, cell: Cell, group: SubrangeGroup) -> None:
        """Gather one accumulator's partials at its host (§9 subrange).

        Fires once every fold of the accumulator has *completed in
        simulated time* (``queue.now`` is at least the slowest fold's
        write completion, so every partial a reply carries exists when
        it is read).  The host requests one partial from each *other*
        contributing PE (request + single-element reply through the
        network, so distance and — under the per-link model —
        bandwidth contention both delay the gather), folds its own
        partial locally if it made one, then performs the final
        write.  Only then does the accumulator cell become available,
        releasing any deferred readers — the exact charge pattern of
        the untimed simulator's combine phase.
        """
        costs = self.costs
        host = group.host
        state = self._pes[host]
        start = max(state.busy_until, self.queue.now)
        remotes = [c for c in group.contributors if c != host]
        arrivals = [start]
        outstanding = [len(remotes)]

        def finish() -> None:
            done_time = max(arrivals)
            if group.local_partials:
                done_time += costs.local_read
                self.stats.add(
                    host, AccessKind.LOCAL_READ, array_id=group.array_id
                )
            done_time += costs.write
            self.stats.add(host, AccessKind.WRITE, array_id=group.array_id)
            state.busy_until = max(state.busy_until, done_time)
            self._writes_done[cell] += 1
            self._write_time[cell] = done_time
            self._release_waiters(cell, done_time)

        def gather(contributor: int) -> None:
            self.stats.add(
                host, AccessKind.REMOTE_READ, array_id=group.array_id
            )

            def on_request(hops: int, queued: float) -> None:
                request_arrival = (
                    start + costs.request_latency(hops) + queued
                )

                def on_reply(reply_hops: int, reply_queued: float) -> None:
                    arrivals.append(
                        request_arrival
                        + costs.reply_latency(reply_hops, 1)
                        + reply_queued
                    )
                    outstanding[0] -= 1
                    if outstanding[0] == 0:
                        finish()

                self._send_at(contributor, host, request_arrival, 1, on_reply)

            self._send_at(host, contributor, start, 0, on_request)

        if not remotes:
            finish()
            return
        for contributor in remotes:
            gather(contributor)


def _analytic_ok(superops, config: MachineConfig, costs: CostModel, mode: str) -> bool:
    """Can a super-op trace be timed analytically, bit-identically?

    The closed form multiplies steady-state charges by trip counts,
    which is exact only when the event machine degenerates to
    independent per-PE arithmetic:

    * ``blocking`` mode — one outstanding fetch, the PE's local clock
      is a pure sum of charges;
    * no link occupancy — ``transmit`` is synchronous accounting, so
      no event from one PE can delay another;
    * a page cache — the cacheless machine re-fetches per read, whose
      page bookkeeping the untimed engine also declines to collapse;
    * no array both written and read — rules out deferred reads,
      refetches and snapshot invalidation (every read's cell is
      initialisation data, available at t=0), and keeps PEs causally
      independent;
    * no subrange reductions (the combine gather is a cross-PE event
      cascade);
    * nonnegative cost fields that are multiples of 1/8 — every charge
      is then a dyadic rational, every partial sum in either engine is
      exactly representable, so *any* summation order reproduces the
      event order bit for bit.
    """
    if mode != "blocking" or not config.has_cache:
        return False
    if costs.contended and costs.link_bandwidth != float("inf"):
        return False
    if config.reduction_strategy == "subrange" and superops.has_reductions:
        return False
    for value in (
        costs.compute_per_statement,
        costs.local_read,
        costs.cached_read,
        costs.write,
        costs.request_overhead,
        costs.reply_overhead,
        costs.per_hop,
        costs.per_element,
    ):
        if value < 0 or not float(value * 8).is_integer():
            return False
    written: set[int] = set(np.unique(superops.f_w_arr).tolist())
    read: set[int] = set(np.unique(superops.f_r_arr).tolist())
    for op in superops.ops:
        written.update(np.unique(op.b_w_arr).tolist())
        read.update(np.unique(op.b_r_arr).tolist())
    return not (written & read)


def run_compacted(
    trace: Trace,
    superops,
    config: MachineConfig,
    *,
    topology: str | Topology = "crossbar",
    costs: CostModel | None = None,
    mode: str = "blocking",
    max_outstanding: int = 4,
) -> TimedResult:
    """Timed result of ``trace`` using its super-op view analytically.

    When :func:`_analytic_ok` holds, the timed machine's charges
    decompose into independent per-PE sums: the super-op replay engine
    (:func:`repro.core.superop_replay.replay_superops`) produces the
    exact per-(PE, array) hit counts and per-(PE, page) miss counts,
    and N steady-state iterations are charged as count x latency —
    bit-identical to the event loop because every addend is an exactly
    representable dyadic float.  Otherwise this falls back to the full
    :class:`TimedMachine` on the flat trace.
    """
    from ..core.superop_replay import TimedLedger, replay_superops

    costs = costs if costs is not None else CostModel()
    if not _analytic_ok(superops, config, costs, mode):
        return TimedMachine(
            trace,
            config,
            topology=topology,
            costs=costs,
            mode=mode,
            max_outstanding=max_outstanding,
        ).run()
    topo = (
        topology
        if isinstance(topology, Topology)
        else make_topology(topology, config.n_pes)
    )
    if topo.n_pes != config.n_pes:
        raise ValueError("topology size disagrees with config")
    tables = [PageTable(size, config.page_size) for size in trace.array_sizes]

    ledger = TimedLedger(config.n_pes, len(trace.array_names))
    with _phase("superop_replay"):
        replay_superops(superops, config, ledger=ledger)

    stats = AccessStats(config.n_pes, trace.array_names)
    busy = np.zeros(config.n_pes, dtype=np.float64)
    stall = np.zeros(config.n_pes, dtype=np.float64)
    per_instance = costs.compute_per_statement + costs.write
    with _phase("analytic"):
        for pe in range(config.n_pes):
            writes = int(ledger.writes[pe])
            if writes:
                stats.add(pe, AccessKind.WRITE, writes)
                busy[pe] += writes * per_instance
            for arr in np.flatnonzero(ledger.local[pe]).tolist():
                n = int(ledger.local[pe, arr])
                stats.add(pe, AccessKind.LOCAL_READ, n, array_id=arr)
                busy[pe] += n * costs.local_read
            for arr in np.flatnonzero(ledger.cached[pe]).tolist():
                n = int(ledger.cached[pe, arr])
                stats.add(pe, AccessKind.CACHED_READ, n, array_id=arr)
                busy[pe] += n * costs.cached_read
        messages = 0
        total_hops = 0
        route_cache: dict[tuple[int, int], tuple[int, list]] = {}

        def route_of(src: int, dst: int) -> tuple[int, list]:
            entry = route_cache.get((src, dst))
            if entry is None:
                entry = (topo.hops(src, dst), topo.route(src, dst))
                route_cache[(src, dst)] = entry
            return entry

        for (pe, arr, page), count in ledger.misses.items():
            owner = config.partition.owner_of(
                page, tables[arr].n_pages, config.n_pes
            )
            page_elems = tables[arr].elements_in_page(page)
            req_hops, req_route = route_of(pe, owner)
            rep_hops, rep_route = route_of(owner, pe)
            latency = costs.request_latency(req_hops) + costs.reply_latency(
                rep_hops, page_elems
            )
            stats.add(pe, AccessKind.REMOTE_READ, count, array_id=arr)
            busy[pe] += count * latency
            stall[pe] += count * latency
            messages += 2 * count
            total_hops += count * (req_hops + rep_hops)
            for link in req_route + rep_route:
                key = (min(link), max(link))
                topo.link_traffic[key] = (
                    topo.link_traffic.get(key, 0) + count
                )
    return TimedResult(
        config=config,
        topology=topo.name,
        mode=mode,
        finish_time=float(busy.max(initial=0.0)),
        per_pe_finish=busy,
        stats=stats,
        stall_time=stall,
        messages=messages,
        total_hops=total_hops,
        refetches=0,
        deferred_reads=0,
        contention=topo.contention_summary(),
    )


def serial_time(trace: Trace, costs: CostModel | None = None) -> float:
    """Cycle count of the same trace on one PE (everything local)."""
    costs = costs if costs is not None else CostModel()
    n = trace.n_instances
    return float(
        n * (costs.compute_per_statement + costs.write)
        + trace.n_reads * costs.local_read
    )
