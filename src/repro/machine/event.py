"""Discrete-event simulation core for the timed machine model.

The paper's simulation is untimed; its future-work list asks for "a
more sophisticated simulation [that] will better explore the problems
of execution time and network contention" (§9).  The :mod:`repro.machine`
package is that simulation; this module supplies the event queue.

Events are ordered by (time, sequence number) so simultaneous events
fire in scheduling order, keeping runs fully deterministic.
"""

from __future__ import annotations

import heapq
from typing import Callable

__all__ = ["EventQueue"]

Callback = Callable[[], None]


class EventQueue:
    """A deterministic time-ordered callback queue."""

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, Callback]] = []
        self._seq = 0
        self.now = 0.0
        self.events_processed = 0

    def schedule(self, time: float, callback: Callback) -> None:
        """Schedule ``callback`` at absolute ``time`` (>= now)."""
        if time < self.now - 1e-12:
            raise ValueError(
                f"cannot schedule into the past (now={self.now}, time={time})"
            )
        heapq.heappush(self._heap, (time, self._seq, callback))
        self._seq += 1

    def schedule_after(self, delay: float, callback: Callback) -> None:
        if delay < 0:
            raise ValueError("delay must be nonnegative")
        self.schedule(self.now + delay, callback)

    def run(self, max_events: int | None = None) -> float:
        """Process events until the queue drains; returns final time."""
        budget = max_events if max_events is not None else float("inf")
        while self._heap and budget > 0:
            time, _, callback = heapq.heappop(self._heap)
            self.now = time
            callback()
            self.events_processed += 1
            budget -= 1
        if self._heap:
            raise RuntimeError(
                f"event budget exhausted with {len(self._heap)} events pending"
            )
        return self.now

    @property
    def pending(self) -> int:
        return len(self._heap)
