"""Processing-element cost model and per-PE execution state.

Costs are expressed in abstract cycles.  Defaults are era-plausible
ratios (remote traffic two orders of magnitude above a local access)
but every knob is a dataclass field — the ablation benchmarks sweep
them.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["CONTENTION_MODELS", "CostModel", "PEState"]


#: Valid values of :attr:`CostModel.contention_model`.
CONTENTION_MODELS: tuple[str, ...] = ("none", "per-link")


@dataclass(frozen=True)
class CostModel:
    """Cycle costs of the abstract machine.

    A remote page fetch costs
    ``request_overhead + per_hop * hops`` for the request,
    plus ``reply_overhead + (per_hop + per_element * page_size) * hops``
    isn't charged per hop for payload — serialization is charged once:
    ``reply_overhead + per_hop * hops + per_element * page_size``.

    **Bandwidth and contention.**  ``link_bandwidth`` (bytes/cycle)
    caps how fast one link drains; with ``contention_model="per-link"``
    every message additionally *occupies* each link on its
    (dimension-order) route for ``message_bytes / link_bandwidth``
    cycles, and messages finding a link busy queue behind the traffic
    already holding it — the queueing delay the untimed model can only
    report as a passive per-link message count.  The default —
    ``link_bandwidth=inf`` with ``contention_model="none"`` —
    reproduces the pre-bandwidth latencies bit for bit, so existing
    benchmark artifacts stay comparable; so does ``"per-link"`` at
    infinite bandwidth (occupancy is exactly ``0.0``).
    """

    compute_per_statement: float = 4.0   # evaluate one RHS
    local_read: float = 1.0              # read from local memory
    cached_read: float = 2.0             # read from the page cache
    write: float = 1.0                   # local write (always local, §2)
    request_overhead: float = 20.0       # send a page request
    reply_overhead: float = 20.0         # service + send a reply
    per_hop: float = 5.0                 # per network hop, each direction
    per_element: float = 0.5             # payload serialization per element
    link_bandwidth: float = float("inf")  # link capacity, bytes/cycle
    contention_model: str = "none"       # "none" | "per-link" queueing
    element_bytes: float = 8.0           # wire size of one array element
    header_bytes: float = 16.0           # wire size of a payload-free message

    def __post_init__(self) -> None:
        if self.contention_model not in CONTENTION_MODELS:
            raise ValueError(
                f"unknown contention model {self.contention_model!r}; "
                f"choose from {CONTENTION_MODELS}"
            )
        if self.link_bandwidth <= 0:
            raise ValueError("link bandwidth must be positive (inf = unlimited)")
        if self.element_bytes < 0 or self.header_bytes < 0:
            raise ValueError("message sizes must be nonnegative")

    def request_latency(self, hops: int) -> float:
        return self.request_overhead + self.per_hop * hops

    def reply_latency(self, hops: int, page_elements: int) -> float:
        return (
            self.reply_overhead
            + self.per_hop * hops
            + self.per_element * page_elements
        )

    # -- bandwidth ------------------------------------------------------------
    @property
    def contended(self) -> bool:
        """Whether messages should reserve link time at all."""
        return self.contention_model == "per-link"

    def message_bytes(self, payload_elements: int) -> float:
        """Wire size of a message carrying ``payload_elements``."""
        return self.header_bytes + self.element_bytes * payload_elements

    def occupancy(self, payload_elements: int) -> float:
        """Cycles the message holds each link on its route.

        Exactly ``0.0`` at infinite bandwidth, so reserving link time
        under the ``"per-link"`` model degenerates to plain traffic
        accounting and perturbs no latency.
        """
        if self.link_bandwidth == float("inf"):
            return 0.0
        return self.message_bytes(payload_elements) / self.link_bandwidth


@dataclass
class PEState:
    """Execution bookkeeping for one PE in the timed simulation."""

    pe: int
    # Indices into the trace of the instances this PE executes, in order.
    instances: list[int] = field(default_factory=list)
    position: int = 0          # next instance to run
    read_cursor: int = 0       # next read within the current instance
    busy_until: float = 0.0    # local clock
    blocked: bool = False
    # statistics
    stall_time: float = 0.0
    requests_sent: int = 0
    refetches: int = 0

    @property
    def done(self) -> bool:
        return self.position >= len(self.instances)
