"""Processing-element cost model and per-PE execution state.

Costs are expressed in abstract cycles.  Defaults are era-plausible
ratios (remote traffic two orders of magnitude above a local access)
but every knob is a dataclass field — the ablation benchmarks sweep
them.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["CostModel", "PEState"]


@dataclass(frozen=True)
class CostModel:
    """Cycle costs of the abstract machine.

    A remote page fetch costs
    ``request_overhead + per_hop * hops`` for the request,
    plus ``reply_overhead + (per_hop + per_element * page_size) * hops``
    isn't charged per hop for payload — serialization is charged once:
    ``reply_overhead + per_hop * hops + per_element * page_size``.
    """

    compute_per_statement: float = 4.0   # evaluate one RHS
    local_read: float = 1.0              # read from local memory
    cached_read: float = 2.0             # read from the page cache
    write: float = 1.0                   # local write (always local, §2)
    request_overhead: float = 20.0       # send a page request
    reply_overhead: float = 20.0         # service + send a reply
    per_hop: float = 5.0                 # per network hop, each direction
    per_element: float = 0.5             # payload serialization per element

    def request_latency(self, hops: int) -> float:
        return self.request_overhead + self.per_hop * hops

    def reply_latency(self, hops: int, page_elements: int) -> float:
        return (
            self.reply_overhead
            + self.per_hop * hops
            + self.per_element * page_elements
        )


@dataclass
class PEState:
    """Execution bookkeeping for one PE in the timed simulation."""

    pe: int
    # Indices into the trace of the instances this PE executes, in order.
    instances: list[int] = field(default_factory=list)
    position: int = 0          # next instance to run
    read_cursor: int = 0       # next read within the current instance
    busy_until: float = 0.0    # local clock
    blocked: bool = False
    # statistics
    stall_time: float = 0.0
    requests_sent: int = 0
    refetches: int = 0

    @property
    def done(self) -> bool:
        return self.position >= len(self.instances)
