"""Interconnection network topologies and a latency/contention model.

Loosely-coupled MIMD machines of the paper's era were built around
buses, rings, 2-D meshes and hypercubes (cf. Reed & Fujimoto, the
paper's [R&F87]).  Each topology answers ``hops(src, dst)`` and
enumerates the links a (dimension-order-routed) message traverses, so
the machine simulator can both delay messages by distance and report
per-link traffic — the "network contention" the paper defers to future
work.

Hop counts use closed forms; :meth:`Topology.graph` exposes the same
topology as a ``networkx`` graph so tests can verify every closed form
against a shortest-path computation.
"""

from __future__ import annotations

from math import isqrt

import numpy as np

__all__ = [
    "Bus",
    "Crossbar",
    "Hypercube",
    "Mesh2D",
    "Ring",
    "Topology",
    "Torus2D",
    "canonical_topology",
    "make_topology",
    "topology_names",
]

Link = tuple[int, int]


class Topology:
    """Base: a set of PEs with distances and deterministic routes."""

    name = "abstract"

    def __init__(self, n_pes: int) -> None:
        if n_pes <= 0:
            raise ValueError("need at least one PE")
        self.n_pes = n_pes
        self.link_traffic: dict[Link, int] = {}
        # Bandwidth bookkeeping: the time each link next drains, kept
        # only for messages transmitted with a nonzero occupancy.
        self.link_free: dict[Link, float] = {}
        self.queueing_delay = 0.0

    # -- required ---------------------------------------------------------------
    def hops(self, src: int, dst: int) -> int:
        raise NotImplementedError

    def route(self, src: int, dst: int) -> list[Link]:
        """Directed links traversed from src to dst."""
        raise NotImplementedError

    def edges(self) -> list[Link]:
        """Undirected link list (canonical order src < dst)."""
        raise NotImplementedError

    # -- bookkeeping ---------------------------------------------------------------
    def record(self, src: int, dst: int) -> int:
        """Account one message's traffic; returns its hop count."""
        hops, _ = self.transmit(src, dst, at=0.0)
        return hops

    def transmit(
        self, src: int, dst: int, *, at: float, occupancy: float = 0.0
    ) -> tuple[int, float]:
        """Account one message and charge it link time.

        The message departs at ``at`` and holds every link on its
        deterministic route for ``occupancy`` cycles, store-and-forward:
        a link still draining earlier traffic queues the message until
        it frees.  Returns ``(hops, delay)`` where ``delay`` is the
        cycles lost to queueing *and* serialization past the departure
        time — the caller adds it on top of the closed-form latency.

        With ``occupancy=0.0`` (the ``"none"`` contention model, or
        infinite bandwidth) no link state is touched and the delay is
        exactly ``0.0``: pure traffic accounting, identical to the
        historical :meth:`record`.
        """
        self._check(src)
        self._check(dst)
        t = at
        for link in self.route(src, dst):
            key = (min(link), max(link))
            self.link_traffic[key] = self.link_traffic.get(key, 0) + 1
            if occupancy > 0.0:
                t = max(t, self.link_free.get(key, 0.0))
                self.link_free[key] = t + occupancy
                t += occupancy
        delay = t - at
        self.queueing_delay += delay
        return self.hops(src, dst), delay

    def contention_summary(self) -> dict[str, float]:
        """Aggregate link-load statistics after a run."""
        if not self.link_traffic:
            return {
                "messages_per_link_max": 0.0,
                "messages_per_link_mean": 0.0,
                "contention_delay_cycles": 0.0,
            }
        loads = np.asarray(list(self.link_traffic.values()), dtype=float)
        return {
            "messages_per_link_max": float(loads.max()),
            "messages_per_link_mean": float(loads.mean()),
            "contention_delay_cycles": float(self.queueing_delay),
        }

    def graph(self):
        """The topology as an undirected networkx graph (for validation)."""
        import networkx as nx

        g = nx.Graph()
        g.add_nodes_from(range(self.n_pes))
        g.add_edges_from(self.edges())
        return g

    def _check(self, pe: int) -> None:
        if not 0 <= pe < self.n_pes:
            raise IndexError(f"PE {pe} out of range [0, {self.n_pes})")

    def __repr__(self) -> str:
        return f"{type(self).__name__}(n_pes={self.n_pes})"


class Bus(Topology):
    """A single shared medium: every transfer is one hop on one 'link'.

    All traffic shares the bus, so the contention summary degenerates
    to total message count — the architecture the paper's "broadcast
    would still strain the network facilities" remark has in mind.
    """

    name = "bus"

    def hops(self, src: int, dst: int) -> int:
        return 0 if src == dst else 1

    def route(self, src: int, dst: int) -> list[Link]:
        return [] if src == dst else [(0, 0)]  # the bus itself

    def edges(self) -> list[Link]:
        # Model the bus as a star around a virtual hub for graph checks:
        # not used for hop counts (hops() is closed-form).
        return [(pe, (pe + 1) % self.n_pes) for pe in range(self.n_pes - 1)]


class Crossbar(Topology):
    """Full point-to-point connectivity (one hop, dedicated links)."""

    name = "crossbar"

    def hops(self, src: int, dst: int) -> int:
        return 0 if src == dst else 1

    def route(self, src: int, dst: int) -> list[Link]:
        return [] if src == dst else [(src, dst)]

    def edges(self) -> list[Link]:
        return [
            (i, j)
            for i in range(self.n_pes)
            for j in range(i + 1, self.n_pes)
        ]


class Ring(Topology):
    """Bidirectional ring; messages take the shorter direction."""

    name = "ring"

    def hops(self, src: int, dst: int) -> int:
        d = abs(src - dst)
        return min(d, self.n_pes - d)

    def route(self, src: int, dst: int) -> list[Link]:
        if src == dst:
            return []
        n = self.n_pes
        forward = (dst - src) % n
        step = 1 if forward <= n - forward else -1
        links = []
        here = src
        while here != dst:
            nxt = (here + step) % n
            links.append((here, nxt))
            here = nxt
        return links

    def edges(self) -> list[Link]:
        if self.n_pes == 1:
            return []
        if self.n_pes == 2:
            return [(0, 1)]
        return [(pe, (pe + 1) % self.n_pes) for pe in range(self.n_pes)]


class Mesh2D(Topology):
    """A rows x cols mesh with dimension-order (X then Y) routing."""

    name = "mesh2d"

    def __init__(self, n_pes: int, cols: int | None = None) -> None:
        super().__init__(n_pes)
        if cols is None:
            cols = int(np.ceil(np.sqrt(n_pes)))
        if cols <= 0:
            raise ValueError("cols must be positive")
        self.cols = cols
        self.rows = -(-n_pes // cols)

    def _coords(self, pe: int) -> tuple[int, int]:
        return divmod(pe, self.cols)

    def _pe(self, row: int, col: int) -> int:
        return row * self.cols + col

    def hops(self, src: int, dst: int) -> int:
        (r1, c1), (r2, c2) = self._coords(src), self._coords(dst)
        return abs(r1 - r2) + abs(c1 - c2)

    def route(self, src: int, dst: int) -> list[Link]:
        (r1, c1), (r2, c2) = self._coords(src), self._coords(dst)
        links = []
        col = c1
        while col != c2:  # X first
            nxt = col + (1 if c2 > col else -1)
            links.append((self._pe(r1, col), self._pe(r1, nxt)))
            col = nxt
        row = r1
        while row != r2:  # then Y
            nxt = row + (1 if r2 > row else -1)
            links.append((self._pe(row, col), self._pe(nxt, col)))
            row = nxt
        return links

    def edges(self) -> list[Link]:
        links = []
        for pe in range(self.n_pes):
            row, col = self._coords(pe)
            if col + 1 < self.cols and pe + 1 < self.n_pes:
                links.append((pe, pe + 1))
            if row + 1 < self.rows and pe + self.cols < self.n_pes:
                links.append((pe, pe + self.cols))
        return links


class Torus2D(Mesh2D):
    """A rows x cols mesh with wraparound links in both dimensions.

    Dimension-order routing as in :class:`Mesh2D`, but each dimension
    takes the shorter way around its ring (ties go the positive
    direction).  The wraparound keeps the worst-case distance at half a
    mesh's, at the price of one extra link per row and column — the
    classic mesh/torus trade-off.  Requires a full rectangular grid.
    """

    name = "torus2d"

    def __init__(self, n_pes: int, cols: int | None = None) -> None:
        if cols is None:
            # Most-square full grid: largest divisor of n_pes that does
            # not exceed its square root (primes degenerate to a ring).
            cols = next(
                c
                for c in range(isqrt(n_pes), 0, -1)
                if n_pes % c == 0
            )
        super().__init__(n_pes, cols)
        if self.rows * self.cols != n_pes:
            raise ValueError(
                f"torus requires a full grid: {n_pes} PEs do not fill "
                f"{self.rows}x{self.cols}"
            )

    @staticmethod
    def _ring_hops(a: int, b: int, length: int) -> int:
        d = abs(a - b)
        return min(d, length - d)

    def hops(self, src: int, dst: int) -> int:
        (r1, c1), (r2, c2) = self._coords(src), self._coords(dst)
        return self._ring_hops(r1, r2, self.rows) + self._ring_hops(
            c1, c2, self.cols
        )

    @staticmethod
    def _ring_step(a: int, b: int, length: int) -> int:
        """Direction (+1/-1) of the shorter way around a ring."""
        forward = (b - a) % length
        return 1 if forward <= length - forward else -1

    def route(self, src: int, dst: int) -> list[Link]:
        (r1, c1), (r2, c2) = self._coords(src), self._coords(dst)
        links = []
        col = c1
        if col != c2:  # X first, the shorter way around
            step = self._ring_step(c1, c2, self.cols)
            while col != c2:
                nxt = (col + step) % self.cols
                links.append((self._pe(r1, col), self._pe(r1, nxt)))
                col = nxt
        row = r1
        if row != r2:  # then Y
            step = self._ring_step(r1, r2, self.rows)
            while row != r2:
                nxt = (row + step) % self.rows
                links.append((self._pe(row, col), self._pe(nxt, col)))
                row = nxt
        return links

    def edges(self) -> list[Link]:
        links: set[Link] = set()
        for row in range(self.rows):
            for col in range(self.cols):
                pe = self._pe(row, col)
                if self.cols > 1:
                    other = self._pe(row, (col + 1) % self.cols)
                    links.add((min(pe, other), max(pe, other)))
                if self.rows > 1:
                    other = self._pe((row + 1) % self.rows, col)
                    links.add((min(pe, other), max(pe, other)))
        return sorted(links)


class Hypercube(Topology):
    """A d-cube (requires a power-of-two PE count); e-cube routing."""

    name = "hypercube"

    def __init__(self, n_pes: int) -> None:
        super().__init__(n_pes)
        if n_pes & (n_pes - 1):
            raise ValueError("hypercube requires a power-of-two PE count")
        self.dimensions = n_pes.bit_length() - 1

    def hops(self, src: int, dst: int) -> int:
        return bin(src ^ dst).count("1")

    def route(self, src: int, dst: int) -> list[Link]:
        links = []
        here = src
        diff = src ^ dst
        bit = 0
        while diff:
            if diff & 1:
                nxt = here ^ (1 << bit)
                links.append((here, nxt))
                here = nxt
            diff >>= 1
            bit += 1
        return links

    def edges(self) -> list[Link]:
        links = []
        for pe in range(self.n_pes):
            for bit in range(self.dimensions):
                other = pe ^ (1 << bit)
                if other > pe:
                    links.append((pe, other))
        return links


_TOPOLOGIES = {
    "bus": Bus,
    "crossbar": Crossbar,
    "ring": Ring,
    "mesh2d": Mesh2D,
    "torus2d": Torus2D,
    "hypercube": Hypercube,
}

#: Accepted shorthands (the CLI advertises these).
_ALIASES = {
    "mesh": "mesh2d",
    "torus": "torus2d",
    "cube": "hypercube",
    "xbar": "crossbar",
}


def topology_names() -> tuple[str, ...]:
    """Canonical topology names (aliases excluded)."""
    return tuple(sorted(_TOPOLOGIES))


def canonical_topology(name: str) -> str:
    """Resolve a topology name or alias to its canonical name."""
    resolved = _ALIASES.get(name, name)
    if resolved not in _TOPOLOGIES:
        raise KeyError(
            f"unknown topology {name!r}; choose from {sorted(_TOPOLOGIES)}"
            f" (aliases: {sorted(_ALIASES)})"
        )
    return resolved


def make_topology(name: str, n_pes: int) -> Topology:
    """Instantiate a topology by (possibly aliased) name."""
    return _TOPOLOGIES[canonical_topology(name)](n_pes)
