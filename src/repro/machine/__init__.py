"""Timed discrete-event machine model (the paper's §9 future work)."""

from .emulator import DeadlockError, EmulatedMachine, EmulationResult
from .event import EventQueue
from .msim import TimedMachine, TimedResult, serial_time
from .network import (
    Bus,
    Crossbar,
    Hypercube,
    Mesh2D,
    Ring,
    Topology,
    Torus2D,
    canonical_topology,
    make_topology,
    topology_names,
)
from .pe import CONTENTION_MODELS, CostModel, PEState

__all__ = [
    "Bus",
    "CONTENTION_MODELS",
    "CostModel",
    "Crossbar",
    "DeadlockError",
    "EmulatedMachine",
    "EmulationResult",
    "EventQueue",
    "Hypercube",
    "Mesh2D",
    "PEState",
    "Ring",
    "TimedMachine",
    "TimedResult",
    "Topology",
    "Torus2D",
    "canonical_topology",
    "make_topology",
    "serial_time",
    "topology_names",
]
