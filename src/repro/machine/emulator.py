"""Value-level emulation of the execution model (§9).

The paper closes with: "we are adding the mechanism described in this
paper to a low level 'emulation' of the execution model we are
developing."  This module is that emulator: unlike the trace-driven
simulator (which replays *addresses*), it executes a kernel's actual
*values* the way the machine would —

* every PE walks the whole loop nest and **screens** indices (§3),
  executing exactly the statement instances whose written element it
  owns (indices may themselves require reads, as in PIC scatters; "all
  are generated and then screened" is the paper's sanctioned option);
* reads go through the :class:`~repro.memory.heap.DistributedHeap`'s
  I-structure banks; a read of a not-yet-produced cell *blocks* the PE,
  which retries after other PEs make progress (deferred reads);
* writes are owner-checked (:class:`~repro.memory.heap.NotOwnerError`
  would flag any screening bug) and write-once;
* reductions accumulate host-side and publish at completion, following
  the paper's host-collection sketch.

PEs advance round-robin, so the interleaving is a genuinely different
schedule from the sequential interpreter — making the equivalence test
(emulated values == interpreted values, for every kernel) a meaningful
check of the paper's central claim that single assignment makes the
parallel execution *deterministic* with no synchronisation primitives.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from ..core.owner import DataLayout
from ..core.partition import PartitionScheme
from ..ir.expr import EvalContext
from ..ir.loops import Loop, Program
from ..ir.stmt import Reduction, Statement
from ..memory.heap import DistributedHeap
from ..memory.linearize import linearize

__all__ = ["DeadlockError", "EmulatedMachine", "EmulationResult"]


class DeadlockError(RuntimeError):
    """No PE can make progress — a read waits on a value nobody will
    produce (impossible for kernels with a valid sequential order)."""


class _Blocked(Exception):
    """Internal: evaluation touched an undefined remote cell."""

    def __init__(self, array: str, flat: int) -> None:
        super().__init__(f"blocked on {array}[{flat}]")
        self.array = array
        self.flat = flat


@dataclass
class EmulationResult:
    """Outcome of one emulated run."""

    values: dict[str, np.ndarray]
    defined: dict[str, np.ndarray]
    instances_per_pe: np.ndarray
    local_reads: np.ndarray
    remote_reads: np.ndarray
    blocked_retries: int
    rounds: int

    @property
    def total_instances(self) -> int:
        return int(self.instances_per_pe.sum())


@dataclass
class _PEState:
    pe: int
    position: int = 0       # index into the shared instance list
    executed: int = 0
    local_reads: int = 0
    remote_reads: int = 0


class EmulatedMachine:
    """Round-robin parallel execution of one kernel over N PEs."""

    def __init__(
        self,
        program: Program,
        inputs: Mapping[str, np.ndarray],
        *,
        n_pes: int,
        page_size: int,
        scheme: PartitionScheme | None = None,
        quantum: int = 8,
    ) -> None:
        self.program = program
        self.quantum = quantum
        shapes = {name: decl.shape for name, decl in program.arrays.items()}
        self.layout = DataLayout(shapes, page_size, n_pes, scheme)
        self.heap = DistributedHeap(self.layout)
        for name, decl in program.arrays.items():
            if decl.role in ("input", "inout"):
                if name not in inputs:
                    raise KeyError(f"missing initial data for {name!r}")
                buf = np.asarray(inputs[name], dtype=np.float64).ravel()
                mask = ~np.isnan(buf)
                self.heap.banks[name].initialize(
                    np.where(mask, buf, 0.0), mask
                )
        # The shared instance list: (statement, loop-variable bindings).
        self.instances: list[tuple[Statement, dict[str, float]]] = list(
            self._enumerate(program)
        )
        self._pes = [_PEState(pe) for pe in range(n_pes)]
        # Host-side partial accumulators for reductions.
        self._accumulators: dict[tuple[str, int], float] = {}
        self.blocked_retries = 0
        self.rounds = 0

    @staticmethod
    def _enumerate(program: Program):
        env = dict(program.scalars)

        def rec(body: Sequence[Loop | Statement]):
            for node in body:
                if isinstance(node, Loop):
                    for value in node.iter_values(env):
                        env[node.var] = value
                        yield from rec(node.body)
                    env.pop(node.var, None)
                else:
                    yield node, dict(env)

        yield from rec(program.body)

    # -- reads ------------------------------------------------------------------
    def _reader(self, state: _PEState):
        def read(array: str, idx: tuple[int, ...]) -> float:
            flat = linearize(idx, self.layout.shapes[array])
            value = self.heap.try_read(array, flat)
            if value is None:
                raise _Blocked(array, flat)
            if self.layout.owner_of_flat(array, flat) == state.pe:
                state.local_reads += 1
            else:
                state.remote_reads += 1
            return value

        return read

    # -- stepping ----------------------------------------------------------------
    def _attempt(self, state: _PEState) -> bool:
        """Try to advance one instance; True if the PE made progress
        (executed or screened out an instance)."""
        if state.position >= len(self.instances):
            return False
        stmt, bindings = self.instances[state.position]
        ctx = EvalContext(dict(bindings), self._reader(state))
        reads_before = (state.local_reads, state.remote_reads)
        try:
            idx = tuple(
                int(round(sub.evaluate(ctx))) for sub in stmt.target.subs
            )
            flat = linearize(idx, self.layout.shapes[stmt.target.array])
            owner = self.layout.owner_of_flat(stmt.target.array, flat)
            if owner != state.pe:
                # Screening: not this PE's area of responsibility.  The
                # speculative subscript reads are discarded from stats.
                state.local_reads, state.remote_reads = reads_before
                state.position += 1
                return True
            value = stmt.rhs.evaluate(ctx)
        except _Blocked:
            state.local_reads, state.remote_reads = reads_before
            self.blocked_retries += 1
            return False
        if isinstance(stmt, Reduction):
            key = (stmt.target.array, flat)
            if key in self._accumulators:
                self._accumulators[key] = stmt.fold(
                    self._accumulators[key], value
                )
            else:
                self._accumulators[key] = value
        else:
            self.heap.write(state.pe, stmt.target.array, flat, value)
        state.position += 1
        state.executed += 1
        return True

    def run(self) -> EmulationResult:
        """Round-robin the PEs to completion (or detect deadlock)."""
        pending = set(range(len(self._pes)))
        while pending:
            progressed = False
            self.rounds += 1
            for pe in sorted(pending):
                state = self._pes[pe]
                for _ in range(self.quantum):
                    if not self._attempt(state):
                        break
                    progressed = True
                if state.position >= len(self.instances):
                    pending.discard(pe)
            if pending and not progressed:
                blocked_on = [
                    self.instances[self._pes[pe].position][0]
                    for pe in sorted(pending)
                ]
                raise DeadlockError(
                    f"no PE can progress; first stuck statements: "
                    f"{blocked_on[:3]}"
                )
        # Publish reduction results (host writes at loop completion).
        for (array, flat), value in self._accumulators.items():
            self.heap.banks[array].write(flat, value)
        values = {}
        defined = {}
        for name, decl in self.program.arrays.items():
            bank = self.heap.banks[name]
            values[name] = bank.values().reshape(decl.shape)
            defined[name] = bank.defined_mask().reshape(decl.shape)
        return EmulationResult(
            values=values,
            defined=defined,
            instances_per_pe=np.asarray([p.executed for p in self._pes]),
            local_reads=np.asarray([p.local_reads for p in self._pes]),
            remote_reads=np.asarray([p.remote_reads for p in self._pes]),
            blocked_retries=self.blocked_retries,
            rounds=self.rounds,
        )
