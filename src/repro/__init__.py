"""repro — reproduction of Bic, Nagel & Roy (1989),
"Automatic Data/Program Partitioning Using the Single Assignment
Principle" (UC Irvine ICS TR #89-08).

The package provides:

* :mod:`repro.ir` — a loop-nest IR with a reference interpreter,
  static single-assignment checking and an automatic SA translator;
* :mod:`repro.memory` — the single-assignment memory substrate
  (I-structure cells, paging, distributed heap);
* :mod:`repro.core` — the paper's contribution: automatic
  data/program partitioning, the trace-driven multiprocessor
  simulator, and the access-distribution classifier;
* :mod:`repro.cache` — coherence-free per-PE page caches;
* :mod:`repro.machine` — a timed discrete-event machine model with
  network topologies (the paper's §9 future-work simulation);
* :mod:`repro.backends` — the evaluation API: a frozen ``Scenario``
  type, the ``EvalBackend`` protocol and registry, and the three
  built-in backends ("untimed" wraps the §6 simulator, "timed" wraps
  the discrete-event machine, "service" dispatches either through a
  shared long-lived worker pool) so every evaluator is sweepable
  through one contract;
* :mod:`repro.hostproto` — the §5 host-processor re-initialisation
  protocol;
* :mod:`repro.kernels` — Livermore Loops workloads (IR + NumPy
  references);
* :mod:`repro.engine` — the single evaluation surface: persistent,
  content-addressed stores for traces (a kernel is interpreted once
  per machine, ever) *and* results (identical campaigns replay from
  cache), declarative campaign specs with backend axes (Python or
  JSON), a process-parallel executor dispatching through the backend
  registry with deterministic ordering and streaming progress, and
  backend-tagged typed results with JSON export;
* :mod:`repro.bench` — sweeps, figure and table generators (running
  on :mod:`repro.engine`).

Quickstart::

    from repro import MachineConfig, simulate_program
    from repro.kernels import get_kernel

    kernel = get_kernel("hydro_fragment")
    program, inputs = kernel.build(n=1000)
    result = simulate_program(
        program, inputs, MachineConfig(n_pes=16, page_size=32)
    )
    print(f"{result.remote_read_pct:.2f}% of reads were remote")

Or through the engine, picking an evaluation backend::

    from repro.engine import CampaignSpec, run_campaign

    spec = CampaignSpec(
        name="timed-mesh",
        backend="timed",
        kernels=("hydro_fragment",),
        pes=(4, 16, 64),
        topologies=("mesh2d", "torus2d"),
    )
    for record in run_campaign(spec, stream=True):
        print(record.scenario.label(), record.metrics["speedup"])
"""

from .core import (
    AccessClass,
    AccessKind,
    AccessStats,
    BlockCyclicPartition,
    BlockPartition,
    Classification,
    DataLayout,
    LoadBalance,
    MachineConfig,
    ModuloPartition,
    PartitionScheme,
    SimResult,
    classify,
    simulate,
    simulate_program,
)
from .ir import (
    Program,
    ProgramBuilder,
    SingleAssignmentError,
    Trace,
    UndefinedReadError,
    check_program,
    run_program,
)
from .memory import (
    DoubleWriteError,
    IStructureMemory,
    SingleAssignmentArray,
    UndefinedElementError,
)

__version__ = "1.0.0"

__all__ = [
    "AccessClass",
    "AccessKind",
    "AccessStats",
    "BlockCyclicPartition",
    "BlockPartition",
    "Classification",
    "DataLayout",
    "DoubleWriteError",
    "IStructureMemory",
    "LoadBalance",
    "MachineConfig",
    "ModuloPartition",
    "PartitionScheme",
    "Program",
    "ProgramBuilder",
    "SimResult",
    "SingleAssignmentArray",
    "SingleAssignmentError",
    "Trace",
    "UndefinedElementError",
    "UndefinedReadError",
    "__version__",
    "check_program",
    "classify",
    "run_program",
    "simulate",
    "simulate_program",
]
