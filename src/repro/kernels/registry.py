"""Kernel registry: every Livermore workload with its paper metadata.

Each :class:`Kernel` couples an IR builder with an independent NumPy
reference implementation and records what the paper says about the
loop (its access class, which figure it appears in).  The test suite
iterates the registry to validate IR-vs-NumPy equivalence and the
classifier's agreement with the paper's labels; the benchmark harness
iterates it to regenerate the survey tables.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator, Mapping

import numpy as np

from ..core.classify import AccessClass
from ..ir.loops import Program
from . import cyclic, random_access, simple1d

__all__ = ["Kernel", "all_kernels", "get_kernel", "kernel_names", "paper_kernels"]

Inputs = dict[str, np.ndarray]
BuildFn = Callable[..., tuple[Program, Inputs]]
ReferenceFn = Callable[[Mapping[str, np.ndarray], int], dict[str, np.ndarray]]


@dataclass(frozen=True)
class Kernel:
    """A registered workload."""

    name: str
    number: int | None           # Livermore kernel number, if applicable
    title: str
    build_fn: BuildFn
    reference_fn: ReferenceFn
    paper_class: AccessClass | None = None  # class assigned by the paper
    figure: str | None = None               # paper figure featuring it
    default_n: int = 1000
    note: str = ""

    def build(self, n: int | None = None, seed: int | None = None) -> tuple[Program, Inputs]:
        """Build the IR program and deterministic inputs."""
        kwargs: dict[str, int] = {}
        if seed is not None:
            kwargs["seed"] = seed
        size = self.default_n if n is None else n
        return self.build_fn(size, **kwargs)

    def reference(self, inputs: Mapping[str, np.ndarray], n: int | None = None) -> dict[str, np.ndarray]:
        """Expected outputs via the independent NumPy implementation."""
        size = self.default_n if n is None else n
        return self.reference_fn(inputs, size)


_REGISTRY: dict[str, Kernel] = {}


def _register(kernel: Kernel) -> None:
    if kernel.name in _REGISTRY:
        raise ValueError(f"duplicate kernel {kernel.name!r}")
    _REGISTRY[kernel.name] = kernel


_register(Kernel(
    name="hydro_fragment",
    number=1,
    title="Hydro Fragment",
    build_fn=simple1d.build_hydro_fragment,
    reference_fn=simple1d.hydro_fragment_reference,
    paper_class=AccessClass.SKEWED,
    figure="Figure 1",
    note="Skew 11; the paper's flagship SD loop (22% -> 1% remote with cache).",
))
_register(Kernel(
    name="iccg",
    number=2,
    title="Incomplete Cholesky-Conjugate Gradient",
    build_fn=cyclic.build_iccg,
    reference_fn=cyclic.iccg_reference,
    paper_class=AccessClass.CYCLIC,
    figure="Figure 2",
    default_n=1024,
    note="Write index at half the read-index speed; staged halving loop.",
))
_register(Kernel(
    name="inner_product",
    number=3,
    title="Inner Product",
    build_fn=simple1d.build_inner_product,
    reference_fn=simple1d.inner_product_reference,
    note="Vector-to-scalar reduction routed to the host processor (§9).",
))
_register(Kernel(
    name="tri_diagonal",
    number=5,
    title="Tri-Diagonal Elimination",
    build_fn=simple1d.build_tri_diagonal,
    reference_fn=simple1d.tri_diagonal_reference,
    paper_class=AccessClass.SKEWED,
    note="First-order recurrence, skew -1.",
))
_register(Kernel(
    name="linear_recurrence",
    number=6,
    title="General Linear Recurrence Equations",
    build_fn=random_access.build_linear_recurrence,
    reference_fn=random_access.linear_recurrence_reference,
    paper_class=AccessClass.RANDOM,
    figure="Figure 4",
    default_n=256,
    note="SA-converted by array expansion; triangular, scattered reads.",
))
_register(Kernel(
    name="equation_of_state",
    number=7,
    title="Equation of State Fragment",
    build_fn=simple1d.build_equation_of_state,
    reference_fn=simple1d.equation_of_state_reference,
    paper_class=AccessClass.SKEWED,
    note="Skews 1..6 on U.",
))
_register(Kernel(
    name="adi",
    number=8,
    title="A.D.I. Integration",
    build_fn=random_access.build_adi,
    reference_fn=random_access.adi_reference,
    paper_class=AccessClass.RANDOM,
    default_n=500,
    note="3-D arrays, plane-1 reads while producing plane 2.",
))
_register(Kernel(
    name="integrate_predictors",
    number=9,
    title="Integrate Predictors",
    build_fn=random_access.build_integrate_predictors,
    reference_fn=random_access.integrate_predictors_reference,
    note="13 parallel row streams at large constant skews.",
))
_register(Kernel(
    name="diff_predictors",
    number=10,
    title="Difference Predictors",
    build_fn=random_access.build_diff_predictors,
    reference_fn=random_access.diff_predictors_reference,
    note="Row-strided chain, SA-converted to a fresh output array.",
))
_register(Kernel(
    name="first_sum",
    number=11,
    title="First Sum",
    build_fn=simple1d.build_first_sum,
    reference_fn=simple1d.first_sum_reference,
    paper_class=AccessClass.SKEWED,
    note="Prefix sum, skew -1.",
))
_register(Kernel(
    name="first_diff",
    number=12,
    title="First Difference",
    build_fn=simple1d.build_first_diff,
    reference_fn=simple1d.first_diff_reference,
    paper_class=AccessClass.SKEWED,
    note="Skew +1.",
))
_register(Kernel(
    name="pic_2d",
    number=13,
    title="2-D Particle in a Cell",
    build_fn=random_access.build_pic_2d,
    reference_fn=random_access.pic_2d_reference,
    paper_class=AccessClass.RANDOM,
    note="2-D permutation gather plus scatter-add.",
))
_register(Kernel(
    name="pic_1d_fragment",
    number=14,
    title="1-D Particle in a Cell (fragment)",
    build_fn=simple1d.build_pic_1d_fragment,
    reference_fn=simple1d.pic_1d_fragment_reference,
    paper_class=AccessClass.MATCHED,
    note="The paper's Class 1 example: RX(k) = XX(k) - IR(k).",
))
_register(Kernel(
    name="pic_1d",
    number=14,
    title="1-D Particle in a Cell (gather/scatter)",
    build_fn=random_access.build_pic_1d,
    reference_fn=random_access.pic_1d_reference,
    paper_class=AccessClass.RANDOM,
    note="Permutation lookups — the paper's canonical RD mechanism.",
))
_register(Kernel(
    name="hydro_2d",
    number=18,
    title="2-D Explicit Hydrodynamics Fragment",
    build_fn=cyclic.build_hydro_2d,
    reference_fn=cyclic.hydro_2d_reference,
    paper_class=AccessClass.CYCLIC,
    figure="Figures 3 and 5",
    default_n=100,
    note=(
        "Cyclic via multi-dimensional strides; the load-balance workload. "
        "LFK-scale n=100 keeps the per-PE page cycle within cache reach, "
        "as in the paper's Figure 3."
    ),
))
_register(Kernel(
    name="matmul",
    number=21,
    title="Matrix * Matrix Product",
    build_fn=random_access.build_matmul,
    reference_fn=random_access.matmul_reference,
    default_n=32,
    note="Per-cell reductions under owner-computes.",
))
_register(Kernel(
    name="planckian",
    number=22,
    title="Planckian Distribution",
    build_fn=simple1d.build_planckian,
    reference_fn=simple1d.planckian_reference,
    paper_class=AccessClass.MATCHED,
    note="Two matched stages with a transcendental.",
))


def get_kernel(name: str) -> Kernel:
    """Look up one kernel by registry name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown kernel {name!r}; available: {sorted(_REGISTRY)}"
        ) from None


def kernel_names() -> list[str]:
    return sorted(_REGISTRY)


def all_kernels() -> Iterator[Kernel]:
    for name in kernel_names():
        yield _REGISTRY[name]


def paper_kernels() -> Iterator[Kernel]:
    """Kernels the paper explicitly assigns to an access class."""
    for kernel in all_kernels():
        if kernel.paper_class is not None:
            yield kernel
