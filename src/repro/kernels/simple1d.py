"""One-dimensional Livermore kernels: the Matched and Skewed classes.

Each builder returns ``(Program, inputs)`` for a given problem size and
seed; the matching ``*_reference`` function computes the expected
output arrays with plain NumPy so the IR renditions are validated
against an independent implementation.

Index conventions follow the Fortran originals: loops are 1-based and
element 0 of each array is unused padding (it stays undefined in
outputs, seeded in inputs).  This keeps the access *addresses* — which
are what the partitioning study measures — aligned with the paper's.
"""

from __future__ import annotations

import numpy as np

from ..ir.builder import ProgramBuilder
from ..ir.expr import Call
from ..ir.loops import Program

__all__ = [
    "build_equation_of_state",
    "build_first_diff",
    "build_first_sum",
    "build_hydro_fragment",
    "build_inner_product",
    "build_pic_1d_fragment",
    "build_planckian",
    "build_tri_diagonal",
    "equation_of_state_reference",
    "first_diff_reference",
    "first_sum_reference",
    "hydro_fragment_reference",
    "inner_product_reference",
    "pic_1d_fragment_reference",
    "planckian_reference",
    "tri_diagonal_reference",
]

Inputs = dict[str, np.ndarray]


def _rng(seed: int) -> np.random.Generator:
    return np.random.default_rng(seed)


# ---------------------------------------------------------------------------
# Kernel 1 — Hydro Fragment (paper §7.1.2, Figure 1; class SD, skew 11)
# ---------------------------------------------------------------------------


def build_hydro_fragment(n: int = 1000, seed: int = 1) -> tuple[Program, Inputs]:
    """``X(k) = Q + Y(k) * (R*ZX(k+10) + T*ZX(k+11))`` for k = 1..n."""
    b = ProgramBuilder(
        "hydro_fragment",
        "Livermore kernel 1 (Hydro Fragment): skewed access, skew 11.",
    )
    X = b.output("X", (n + 1,))
    Y = b.input("Y", (n + 1,))
    ZX = b.input("ZX", (n + 12,))
    Q, R, T = b.scalar(Q=0.5, R=1.5, T=0.25)
    k = b.index("k")
    with b.loop(k, 1, n):
        b.assign(X[k], Q + Y[k] * (R * ZX[k + 10] + T * ZX[k + 11]))
    rng = _rng(seed)
    inputs = {"Y": rng.random(n + 1), "ZX": rng.random(n + 12)}
    return b.build(), inputs


def hydro_fragment_reference(inputs: Inputs, n: int) -> dict[str, np.ndarray]:
    Y, ZX = inputs["Y"], inputs["ZX"]
    X = np.zeros(n + 1)
    k = np.arange(1, n + 1)
    X[k] = 0.5 + Y[k] * (1.5 * ZX[k + 10] + 0.25 * ZX[k + 11])
    return {"X": X}


# ---------------------------------------------------------------------------
# Kernel 3 — Inner Product (reduction; routed to the host processor, §9)
# ---------------------------------------------------------------------------


def build_inner_product(n: int = 1000, seed: int = 3) -> tuple[Program, Inputs]:
    """``Q = Q + Z(k) * X(k)`` — a vector-to-scalar operation (§9)."""
    b = ProgramBuilder(
        "inner_product",
        "Livermore kernel 3 (Inner Product): host-processor reduction.",
    )
    QS = b.output("QS", (1,))
    Z = b.input("Z", (n + 1,))
    X = b.input("X", (n + 1,))
    k = b.index("k")
    with b.loop(k, 1, n):
        b.reduce(QS[0], Z[k] * X[k], op="+")
    rng = _rng(seed)
    inputs = {"Z": rng.random(n + 1), "X": rng.random(n + 1)}
    return b.build(), inputs


def inner_product_reference(inputs: Inputs, n: int) -> dict[str, np.ndarray]:
    Z, X = inputs["Z"], inputs["X"]
    return {"QS": np.array([float(np.dot(Z[1 : n + 1], X[1 : n + 1]))])}


# ---------------------------------------------------------------------------
# Kernel 5 — Tri-Diagonal Elimination (paper class SD)
# ---------------------------------------------------------------------------


def build_tri_diagonal(n: int = 1000, seed: int = 5) -> tuple[Program, Inputs]:
    """``X(i) = Z(i) * (Y(i) - X(i-1))`` for i = 2..n (X(1) seeded).

    A first-order linear recurrence: inherently sequential in value
    flow, but single assignment — each X cell is written once.  The
    paper lists it in the Skewed class (skew -1 on X).
    """
    b = ProgramBuilder(
        "tri_diagonal",
        "Livermore kernel 5 (Tri-Diagonal Elimination): skew -1 recurrence.",
    )
    X = b.inout("X", (n + 1,))
    Y = b.input("Y", (n + 1,))
    Z = b.input("Z", (n + 1,))
    i = b.index("i")
    with b.loop(i, 2, n):
        b.assign(X[i], Z[i] * (Y[i] - X[i - 1]))
    rng = _rng(seed)
    # NaN marks the cells the kernel produces (undefined before the run).
    x0 = np.full(n + 1, np.nan)
    x0[1] = rng.random()
    inputs = {"X": x0, "Y": rng.random(n + 1), "Z": rng.random(n + 1)}
    return b.build(), inputs


def tri_diagonal_reference(inputs: Inputs, n: int) -> dict[str, np.ndarray]:
    X = inputs["X"].copy()
    Y, Z = inputs["Y"], inputs["Z"]
    for i in range(2, n + 1):
        X[i] = Z[i] * (Y[i] - X[i - 1])
    return {"X": X}


# ---------------------------------------------------------------------------
# Kernel 7 — Equation of State Fragment (paper class SD)
# ---------------------------------------------------------------------------


def build_equation_of_state(n: int = 1000, seed: int = 7) -> tuple[Program, Inputs]:
    """The equation-of-state fragment with skews 1..6 on U."""
    b = ProgramBuilder(
        "equation_of_state",
        "Livermore kernel 7 (Equation of State Fragment): skews up to 6.",
    )
    X = b.output("X", (n + 1,))
    U = b.input("U", (n + 7,))
    Y = b.input("Y", (n + 1,))
    Z = b.input("Z", (n + 1,))
    R, T, Q = b.scalar(R=0.5, T=0.25, Q=0.125)
    k = b.index("k")
    with b.loop(k, 1, n):
        b.assign(
            X[k],
            U[k]
            + R * (Z[k] + R * Y[k])
            + T
            * (
                U[k + 3]
                + R * (U[k + 2] + R * U[k + 1])
                + T * (U[k + 6] + Q * (U[k + 5] + Q * U[k + 4]))
            ),
        )
    rng = _rng(seed)
    inputs = {
        "U": rng.random(n + 7),
        "Y": rng.random(n + 1),
        "Z": rng.random(n + 1),
    }
    return b.build(), inputs


def equation_of_state_reference(inputs: Inputs, n: int) -> dict[str, np.ndarray]:
    U, Y, Z = inputs["U"], inputs["Y"], inputs["Z"]
    R, T, Q = 0.5, 0.25, 0.125
    k = np.arange(1, n + 1)
    X = np.zeros(n + 1)
    X[k] = (
        U[k]
        + R * (Z[k] + R * Y[k])
        + T
        * (
            U[k + 3]
            + R * (U[k + 2] + R * U[k + 1])
            + T * (U[k + 6] + Q * (U[k + 5] + Q * U[k + 4]))
        )
    )
    return {"X": X}


# ---------------------------------------------------------------------------
# Kernel 11 — First Sum (paper class SD)
# ---------------------------------------------------------------------------


def build_first_sum(n: int = 1000, seed: int = 11) -> tuple[Program, Inputs]:
    """``X(k) = X(k-1) + Y(k)`` for k = 2..n — a running prefix sum."""
    b = ProgramBuilder(
        "first_sum",
        "Livermore kernel 11 (First Sum): prefix sum, skew -1.",
    )
    X = b.inout("X", (n + 1,))
    Y = b.input("Y", (n + 1,))
    k = b.index("k")
    with b.loop(k, 2, n):
        b.assign(X[k], X[k - 1] + Y[k])
    rng = _rng(seed)
    x0 = np.full(n + 1, np.nan)
    x0[1] = rng.random()
    inputs = {"X": x0, "Y": rng.random(n + 1)}
    return b.build(), inputs


def first_sum_reference(inputs: Inputs, n: int) -> dict[str, np.ndarray]:
    X = inputs["X"].copy()
    Y = inputs["Y"]
    X[2 : n + 1] = X[1] + np.cumsum(Y[2 : n + 1])
    return {"X": X}


# ---------------------------------------------------------------------------
# Kernel 12 — First Difference (paper class SD)
# ---------------------------------------------------------------------------


def build_first_diff(n: int = 1000, seed: int = 12) -> tuple[Program, Inputs]:
    """``X(k) = Y(k+1) - Y(k)`` for k = 1..n."""
    b = ProgramBuilder(
        "first_diff",
        "Livermore kernel 12 (First Difference): skew +1.",
    )
    X = b.output("X", (n + 1,))
    Y = b.input("Y", (n + 2,))
    k = b.index("k")
    with b.loop(k, 1, n):
        b.assign(X[k], Y[k + 1] - Y[k])
    inputs = {"Y": _rng(seed).random(n + 2)}
    return b.build(), inputs


def first_diff_reference(inputs: Inputs, n: int) -> dict[str, np.ndarray]:
    Y = inputs["Y"]
    X = np.zeros(n + 1)
    k = np.arange(1, n + 1)
    X[k] = Y[k + 1] - Y[k]
    return {"X": X}


# ---------------------------------------------------------------------------
# 1-D Particle in a Cell fragment (paper §7.1.1 — the Matched example)
# ---------------------------------------------------------------------------


def build_pic_1d_fragment(n: int = 1000, seed: int = 14) -> tuple[Program, Inputs]:
    """``RX(k) = XX(k) - IR(k)`` — "all array indices equal" (Class 1)."""
    b = ProgramBuilder(
        "pic_1d_fragment",
        "1-D Particle in a Cell fragment: matched distribution (Class 1).",
    )
    RX = b.output("RX", (n + 1,))
    XX = b.input("XX", (n + 1,))
    IR = b.input("IR", (n + 1,))
    k = b.index("k")
    with b.loop(k, 1, n):
        b.assign(RX[k], XX[k] - IR[k])
    rng = _rng(seed)
    inputs = {
        "XX": rng.random(n + 1) * 64.0,
        "IR": np.floor(rng.random(n + 1) * 64.0),
    }
    return b.build(), inputs


def pic_1d_fragment_reference(inputs: Inputs, n: int) -> dict[str, np.ndarray]:
    RX = np.zeros(n + 1)
    RX[1:] = inputs["XX"][1:] - inputs["IR"][1:]
    return {"RX": RX}


# ---------------------------------------------------------------------------
# Kernel 22 — Planckian Distribution (matched, with transcendentals)
# ---------------------------------------------------------------------------


def build_planckian(n: int = 1000, seed: int = 22) -> tuple[Program, Inputs]:
    """``Y(k) = U(k)/V(k); W(k) = X(k)/(EXP(Y(k)) - 1)`` for k = 1..n."""
    b = ProgramBuilder(
        "planckian",
        "Livermore kernel 22 (Planckian Distribution): matched, two stages.",
    )
    Y = b.output("Y", (n + 1,))
    W = b.output("W", (n + 1,))
    U = b.input("U", (n + 1,))
    V = b.input("V", (n + 1,))
    X = b.input("X", (n + 1,))
    k = b.index("k")
    with b.loop(k, 1, n):
        b.assign(Y[k], U[k] / V[k])
        b.assign(W[k], X[k] / (Call("exp", Y[k]) - 1.0))
    rng = _rng(seed)
    inputs = {
        "U": rng.random(n + 1) + 0.5,
        "V": rng.random(n + 1) + 0.5,
        "X": rng.random(n + 1),
    }
    return b.build(), inputs


def planckian_reference(inputs: Inputs, n: int) -> dict[str, np.ndarray]:
    U, V, X = inputs["U"], inputs["V"], inputs["X"]
    Y = np.zeros(n + 1)
    W = np.zeros(n + 1)
    k = np.arange(1, n + 1)
    Y[k] = U[k] / V[k]
    W[k] = X[k] / (np.exp(Y[k]) - 1.0)
    return {"Y": Y, "W": W}
