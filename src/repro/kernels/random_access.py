"""Random-distribution and multi-dimensional Livermore kernels (§7.1.4).

The paper places the General Linear Recurrence Equations (kernel 6) and
A.D.I. Integration (kernel 8) in the Random class: "This behavior can
occur when multi-dimensional arrays are combined with skewed accesses"
or with "effectively random page accesses (e.g., permutation lookups)".
The particle-in-cell kernels supply the permutation-lookup flavour; the
predictor kernels (9, 10) and matrix multiplication (21) round out the
multi-dimensional spectrum.

Kernels 6, 10, 18-nests-2/3 and the PIC deposits are *translated* into
single assignment by array expansion / renaming — the transformation
the paper's §5 "automatic conversion tool" performs, with the memory
growth it predicts.
"""

from __future__ import annotations

import numpy as np

from ..ir.builder import ProgramBuilder
from ..ir.expr import Call, Ref
from ..ir.loops import Program

__all__ = [
    "adi_reference",
    "build_adi",
    "build_diff_predictors",
    "build_integrate_predictors",
    "build_linear_recurrence",
    "build_matmul",
    "build_pic_1d",
    "build_pic_2d",
    "diff_predictors_reference",
    "integrate_predictors_reference",
    "linear_recurrence_reference",
    "matmul_reference",
    "pic_1d_reference",
    "pic_2d_reference",
]

Inputs = dict[str, np.ndarray]


def _rng(seed: int) -> np.random.Generator:
    return np.random.default_rng(seed)


# ---------------------------------------------------------------------------
# Kernel 6 — General Linear Recurrence Equations (Figure 4; class RD)
# ---------------------------------------------------------------------------


def build_linear_recurrence(n: int = 256, seed: int = 6) -> tuple[Program, Inputs]:
    """``W(i) = W(i) + B(i,k)*W(i-k)`` in single-assignment form.

    The Fortran accumulates into W(i); array expansion over ``k``
    produces partial sums ``WS(i, k)`` with ``WS(i, 0)`` seeding from
    the initial W and ``WS(j, j-1)`` holding the final value of row j::

        WS(i, 0)   = W0(i)
        WS(i, k)   = WS(i, k-1) + B(i, k) * WS(i-k, i-k-1)   k = 1..i-2
        WS(i, i-1) = WS(i, i-2) + B(i, i-1) * W0(1)

    The read ``WS(i-k, i-k-1)`` strides by -(columns+1) per inner
    iteration — the "seemingly random" page jumping of §7.1.4.
    """
    b = ProgramBuilder(
        "linear_recurrence",
        "Livermore kernel 6 (General Linear Recurrence): random distribution.",
    )
    WS = b.output("WS", (n + 1, n))
    W0 = b.input("W0", (n + 1,))
    B = b.input("B", (n + 1, n))
    i, k = b.index("i"), b.index("k")
    with b.loop(i, 2, n):
        b.assign(WS[i, 0], W0[i])
        with b.loop(k, 1, i - 2):
            b.assign(
                WS[i, k],
                WS[i, k - 1] + B[i, k] * WS[i - k, i - k - 1],
            )
        b.assign(WS[i, i - 1], WS[i, i - 2] + B[i, i - 1] * W0[1])
    rng = _rng(seed)
    inputs = {
        "W0": rng.random(n + 1),
        "B": rng.random((n + 1, n)) * (0.9 / n),
    }
    return b.build(), inputs


def linear_recurrence_reference(inputs: Inputs, n: int) -> dict[str, np.ndarray]:
    W0, B = inputs["W0"], inputs["B"]
    W = W0.copy()
    WS = np.zeros((n + 1, n))
    for i in range(2, n + 1):
        WS[i, 0] = W0[i]
        acc = W0[i]
        for k in range(1, i):
            acc += B[i, k] * W[i - k]
            WS[i, k] = acc
        W[i] = acc
    return {"WS": WS}


# ---------------------------------------------------------------------------
# Kernel 8 — A.D.I. Integration (Figure 4's companion; class RD)
# ---------------------------------------------------------------------------


def build_adi(n: int = 500, seed: int = 8) -> tuple[Program, Inputs]:
    """The paper's A.D.I. fragment: write plane 2, read plane 1.

    The scratch DU arrays are expanded over ``kx`` (they are rewritten
    per outer iteration in the Fortran) and the U arrays are ``inout``
    with plane 1 seeded and plane 2 produced.
    """
    b = ProgramBuilder(
        "adi",
        "Livermore kernel 8 (A.D.I. Integration): random distribution.",
    )
    ushape = (5, n + 2, 3)  # kx 0..4, ky 0..n+1, plane index 1 or 2
    U1 = b.inout("U1", ushape)
    U2 = b.inout("U2", ushape)
    U3 = b.inout("U3", ushape)
    DU1 = b.output("DU1", (4, n + 1))
    DU2 = b.output("DU2", (4, n + 1))
    DU3 = b.output("DU3", (4, n + 1))
    (A11, A12, A13, A21, A22, A23, A31, A32, A33, SIG) = b.scalar(
        A11=0.031, A12=0.021, A13=0.011,
        A21=0.012, A22=0.032, A23=0.022,
        A31=0.013, A32=0.023, A33=0.033,
        SIG=0.025,
    )
    kx, ky = b.index("kx"), b.index("ky")
    with b.loop(kx, 2, 3):
        with b.loop(ky, 2, n):
            b.assign(DU1[kx, ky], U1[kx, ky + 1, 1] - U1[kx, ky - 1, 1])
            b.assign(DU2[kx, ky], U2[kx, ky + 1, 1] - U2[kx, ky - 1, 1])
            b.assign(DU3[kx, ky], U3[kx, ky + 1, 1] - U3[kx, ky - 1, 1])
            b.assign(
                U1[kx, ky, 2],
                U1[kx, ky, 1]
                + A11 * DU1[kx, ky] + A12 * DU2[kx, ky] + A13 * DU3[kx, ky]
                + SIG
                * (U1[kx + 1, ky, 1] - 2.0 * U1[kx, ky, 1] + U1[kx - 1, ky, 1]),
            )
            b.assign(
                U2[kx, ky, 2],
                U2[kx, ky, 1]
                + A21 * DU1[kx, ky] + A22 * DU2[kx, ky] + A23 * DU3[kx, ky]
                + SIG
                * (U2[kx + 1, ky, 1] - 2.0 * U2[kx, ky, 1] + U2[kx - 1, ky, 1]),
            )
            b.assign(
                U3[kx, ky, 2],
                U3[kx, ky, 1]
                + A31 * DU1[kx, ky] + A32 * DU2[kx, ky] + A33 * DU3[kx, ky]
                + SIG
                * (U3[kx + 1, ky, 1] - 2.0 * U3[kx, ky, 1] + U3[kx - 1, ky, 1]),
            )
    rng = _rng(seed)
    inputs = {}
    for name in ("U1", "U2", "U3"):
        u = rng.random(ushape)
        # Plane 2 of the interior is produced by the kernel -> undefined.
        u[2:4, 2 : n + 1, 2] = np.nan
        inputs[name] = u
    return b.build(), inputs


def adi_reference(inputs: Inputs, n: int) -> dict[str, np.ndarray]:
    a = {
        "A11": 0.031, "A12": 0.021, "A13": 0.011,
        "A21": 0.012, "A22": 0.032, "A23": 0.022,
        "A31": 0.013, "A32": 0.023, "A33": 0.033,
    }
    sig = 0.025
    out: dict[str, np.ndarray] = {}
    dus: dict[str, np.ndarray] = {}
    kx = np.arange(2, 4)[:, None]
    ky = np.arange(2, n + 1)[None, :]
    for idx, name in enumerate(("U1", "U2", "U3"), start=1):
        u = np.nan_to_num(inputs[name].copy())
        du = np.zeros((4, n + 1))
        du[kx, ky] = u[kx, ky + 1, 1] - u[kx, ky - 1, 1]
        dus[f"DU{idx}"] = du
        out[name] = u
    for idx, name in enumerate(("U1", "U2", "U3"), start=1):
        u = out[name]
        u[kx, ky, 2] = (
            u[kx, ky, 1]
            + a[f"A{idx}1"] * dus["DU1"][kx, ky]
            + a[f"A{idx}2"] * dus["DU2"][kx, ky]
            + a[f"A{idx}3"] * dus["DU3"][kx, ky]
            + sig * (u[kx + 1, ky, 1] - 2.0 * u[kx, ky, 1] + u[kx - 1, ky, 1])
        )
    out.update(dus)
    return out


# ---------------------------------------------------------------------------
# Kernel 9 — Integrate Predictors
# ---------------------------------------------------------------------------

_K9_COEFFS = {
    "DM28": 0.0101, "DM27": 0.0102, "DM26": 0.0103, "DM25": 0.0104,
    "DM24": 0.0105, "DM23": 0.0106, "DM22": 0.0107, "C0": 0.0108,
}


def build_integrate_predictors(
    n: int = 1000, seed: int = 9
) -> tuple[Program, Inputs]:
    """``PX(1,i) = Σ DMj*PX(j,i) + C0*(PX(5,i)+PX(6,i)) + PX(3,i)``.

    Thirteen parallel row streams at large constant skews: whether the
    per-PE cache can hold one page per stream decides between skewed
    and random behaviour — a good stress of the paper's 256-element
    cache.
    """
    b = ProgramBuilder(
        "integrate_predictors",
        "Livermore kernel 9 (Integrate Predictors): many large row skews.",
    )
    PXN = b.output("PXN", (2, n + 1))
    PX = b.input("PX", (14, n + 1))
    cs = b.scalar(**_K9_COEFFS)
    DM28, DM27, DM26, DM25, DM24, DM23, DM22, C0 = cs
    i = b.index("i")
    with b.loop(i, 1, n):
        b.assign(
            PXN[1, i],
            DM28 * PX[13, i] + DM27 * PX[12, i] + DM26 * PX[11, i]
            + DM25 * PX[10, i] + DM24 * PX[9, i] + DM23 * PX[8, i]
            + DM22 * PX[7, i] + C0 * (PX[5, i] + PX[6, i]) + PX[3, i],
        )
    inputs = {"PX": _rng(seed).random((14, n + 1))}
    return b.build(), inputs


def integrate_predictors_reference(inputs: Inputs, n: int) -> dict[str, np.ndarray]:
    PX = inputs["PX"]
    c = _K9_COEFFS
    i = np.arange(1, n + 1)
    PXN = np.zeros((2, n + 1))
    PXN[1, i] = (
        c["DM28"] * PX[13, i] + c["DM27"] * PX[12, i] + c["DM26"] * PX[11, i]
        + c["DM25"] * PX[10, i] + c["DM24"] * PX[9, i] + c["DM23"] * PX[8, i]
        + c["DM22"] * PX[7, i] + c["C0"] * (PX[5, i] + PX[6, i]) + PX[3, i]
    )
    return {"PXN": PXN}


# ---------------------------------------------------------------------------
# Kernel 10 — Difference Predictors
# ---------------------------------------------------------------------------


def build_diff_predictors(n: int = 1000, seed: int = 10) -> tuple[Program, Inputs]:
    """The difference table update, SA-converted to a fresh output PXN.

    The Fortran chains scalar temporaries through rows 5..14 of PX in
    place; renaming the output makes each cell single assignment::

        PXN(5, i) = CX(5, i)
        PXN(j, i) = PXN(j-1, i) - PX(j-1, i)    j = 6..14
    """
    b = ProgramBuilder(
        "diff_predictors",
        "Livermore kernel 10 (Difference Predictors): row-strided chain.",
    )
    PXN = b.output("PXN", (15, n + 1))
    PX = b.input("PX", (15, n + 1))
    CX = b.input("CX", (15, n + 1))
    i, j = b.index("i"), b.index("j")
    with b.loop(i, 1, n):
        b.assign(PXN[5, i], CX[5, i])
        with b.loop(j, 6, 14):
            b.assign(PXN[j, i], PXN[j - 1, i] - PX[j - 1, i])
    rng = _rng(seed)
    inputs = {
        "PX": rng.random((15, n + 1)),
        "CX": rng.random((15, n + 1)),
    }
    return b.build(), inputs


def diff_predictors_reference(inputs: Inputs, n: int) -> dict[str, np.ndarray]:
    PX, CX = inputs["PX"], inputs["CX"]
    PXN = np.zeros((15, n + 1))
    i = np.arange(1, n + 1)
    PXN[5, i] = CX[5, i]
    for j in range(6, 15):
        PXN[j, i] = PXN[j - 1, i] - PX[j - 1, i]
    return {"PXN": PXN}


# ---------------------------------------------------------------------------
# Kernel 14 — 1-D Particle in a Cell (gather + scatter; class RD)
# ---------------------------------------------------------------------------


def build_pic_1d(
    n: int = 1000, grid: int | None = None, seed: int = 140
) -> tuple[Program, Inputs]:
    """Gather field values at particle cells, then deposit charge.

    Phase 1 gathers ``EX(trunc(GRD(k)))`` — a permutation lookup, the
    paper's canonical random access.  Phase 2 deposits charge with a
    scatter-add, routed (like all accumulations) through the owner of
    the target cell.  The grid defaults to the particle count so the
    field arrays dwarf the 256-element cache, as in a real PIC mesh.
    """
    if grid is None:
        grid = n
    b = ProgramBuilder(
        "pic_1d",
        "Livermore kernel 14 (1-D PIC): permutation gather + scatter-add.",
    )
    EX1 = b.output("EX1", (n + 1,))
    RHO = b.output("RHO", (grid + 2,))
    GRD = b.input("GRD", (n + 1,))
    EX = b.input("EX", (grid + 2,))
    DEX = b.input("DEX", (grid + 2,))
    FR = b.input("FR", (n + 1,))
    Q = b.scalar(Q=1.5)
    k = b.index("k")
    with b.loop(k, 1, n):
        cell = Call("trunc", GRD[k])
        b.assign(EX1[k], Ref("EX", [cell]) + Ref("DEX", [cell]) * FR[k])
    with b.loop(k, 1, n):
        b.reduce(Ref("RHO", [Call("trunc", GRD[k])]), Q * EX1[k], op="+")
    rng = _rng(seed)
    inputs = {
        "GRD": 1.0 + rng.random(n + 1) * grid,  # cells in [1, grid]
        "EX": rng.random(grid + 2),
        "DEX": rng.random(grid + 2),
        "FR": rng.random(n + 1),
    }
    return b.build(), inputs


def pic_1d_reference(inputs: Inputs, n: int) -> dict[str, np.ndarray]:
    GRD, EX, DEX, FR = (inputs[a] for a in ("GRD", "EX", "DEX", "FR"))
    cells = np.trunc(GRD[1 : n + 1]).astype(int)
    EX1 = np.zeros(n + 1)
    EX1[1 : n + 1] = EX[cells] + DEX[cells] * FR[1 : n + 1]
    RHO = np.zeros(len(EX))
    np.add.at(RHO, cells, 1.5 * EX1[1 : n + 1])
    return {"EX1": EX1, "RHO": RHO}


# ---------------------------------------------------------------------------
# Kernel 13 — 2-D Particle in a Cell (class RD)
# ---------------------------------------------------------------------------


def build_pic_2d(
    n: int = 1000, grid: int = 32, seed: int = 13
) -> tuple[Program, Inputs]:
    """2-D gather of a field plus a particle-count scatter.

    Positions are gathered from a 2-D magnetic field grid via truncated
    coordinates, then the particle positions advance (matched part) and
    each particle increments its cell's counter (scatter-add part).
    """
    b = ProgramBuilder(
        "pic_2d",
        "Livermore kernel 13 (2-D PIC): 2-D permutation gather + scatter.",
    )
    BG = b.output("BG", (n + 1,))
    PN1 = b.output("PN1", (n + 1,))
    PN2 = b.output("PN2", (n + 1,))
    CNT = b.output("CNT", (grid + 2, grid + 2))
    P1 = b.input("P1", (n + 1,))
    P2 = b.input("P2", (n + 1,))
    V1 = b.input("V1", (n + 1,))
    V2 = b.input("V2", (n + 1,))
    BFLD = b.input("BFLD", (grid + 2, grid + 2))
    DT = b.scalar(DT=0.05)
    ip = b.index("ip")
    with b.loop(ip, 1, n):
        c1 = Call("trunc", P1[ip])
        c2 = Call("trunc", P2[ip])
        b.assign(BG[ip], Ref("BFLD", [c1, c2]))
        b.assign(PN1[ip], P1[ip] + V1[ip] * DT)
        b.assign(PN2[ip], P2[ip] + V2[ip] * DT)
        b.reduce(Ref("CNT", [c1, c2]), 1.0, op="+")
    rng = _rng(seed)
    inputs = {
        "P1": 1.0 + rng.random(n + 1) * grid,
        "P2": 1.0 + rng.random(n + 1) * grid,
        "V1": rng.random(n + 1) - 0.5,
        "V2": rng.random(n + 1) - 0.5,
        "BFLD": rng.random((grid + 2, grid + 2)),
    }
    return b.build(), inputs


def pic_2d_reference(inputs: Inputs, n: int) -> dict[str, np.ndarray]:
    P1, P2, V1, V2, BFLD = (
        inputs[a] for a in ("P1", "P2", "V1", "V2", "BFLD")
    )
    c1 = np.trunc(P1[1 : n + 1]).astype(int)
    c2 = np.trunc(P2[1 : n + 1]).astype(int)
    BG = np.zeros(n + 1)
    BG[1 : n + 1] = BFLD[c1, c2]
    PN1 = np.zeros(n + 1)
    PN2 = np.zeros(n + 1)
    PN1[1 : n + 1] = P1[1 : n + 1] + V1[1 : n + 1] * 0.05
    PN2[1 : n + 1] = P2[1 : n + 1] + V2[1 : n + 1] * 0.05
    CNT = np.zeros(BFLD.shape)
    np.add.at(CNT, (c1, c2), 1.0)
    return {"BG": BG, "PN1": PN1, "PN2": PN2, "CNT": CNT}


# ---------------------------------------------------------------------------
# Kernel 21 — Matrix * Matrix Product (reduction per cell)
# ---------------------------------------------------------------------------


def build_matmul(m: int = 32, seed: int = 21) -> tuple[Program, Inputs]:
    """``PX(i,j) = PX(i,j) + VY(i,k) * CX(k,j)`` as a per-cell reduction.

    Each PX cell is an accumulator owned by one PE (owner-computes), so
    the k loop contributes through the reduction mechanism — the
    paper's "vector to scalar" collection generalised per cell.
    """
    b = ProgramBuilder(
        "matmul",
        "Livermore kernel 21 (Matrix Product): per-cell reductions.",
    )
    PX = b.output("PX", (m + 1, m + 1))
    VY = b.input("VY", (m + 1, m + 1))
    CX = b.input("CX", (m + 1, m + 1))
    i, j, k = b.index("i"), b.index("j"), b.index("k")
    with b.loop(i, 1, m):
        with b.loop(j, 1, m):
            with b.loop(k, 1, m):
                b.reduce(PX[i, j], VY[i, k] * CX[k, j], op="+")
    rng = _rng(seed)
    inputs = {
        "VY": rng.random((m + 1, m + 1)),
        "CX": rng.random((m + 1, m + 1)),
    }
    return b.build(), inputs


def matmul_reference(inputs: Inputs, m: int) -> dict[str, np.ndarray]:
    VY, CX = inputs["VY"], inputs["CX"]
    PX = np.zeros((m + 1, m + 1))
    PX[1:, 1:] = VY[1:, 1:] @ CX[1:, 1:]
    return {"PX": PX}
