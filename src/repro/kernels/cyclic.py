"""Cyclic-distribution Livermore kernels (paper §7.1.3).

Two kernels the paper places in the Cyclic class:

* **ICCG** (kernel 2) — the write index advances at half the speed of
  the read index, so a fixed set of pages is revisited cyclically.
* **2-D Explicit Hydrodynamics** (kernel 18) — constant multi-index
  skews, but the row-major inner-loop stride exceeds one, so pages are
  revisited as the outer dimension advances.
"""

from __future__ import annotations

import numpy as np

from ..ir.builder import ProgramBuilder
from ..ir.expr import Var
from ..ir.loops import Program

__all__ = [
    "build_hydro_2d",
    "build_iccg",
    "hydro_2d_reference",
    "iccg_reference",
]

Inputs = dict[str, np.ndarray]


# ---------------------------------------------------------------------------
# Kernel 2 — Incomplete Cholesky-Conjugate Gradient (Figure 2)
# ---------------------------------------------------------------------------


def iccg_stages(n: int) -> list[tuple[int, int]]:
    """The (IPNT, IPNTP) pairs of the paper's halving loop.

    Mirrors::

        II = n; IPNTP = 0
        22 IPNT = IPNTP; IPNTP = IPNTP + II; II = II/2
           DO 2 k = IPNT+2, IPNTP, 2 ...
           IF (II.GT.1) GOTO 22

    The Fortran's very last stage is a single iteration with i = k+1,
    which *reads the cell it is writing* — the one spot where the
    paper's "this is single assignment; ... i > k+1" claim breaks.  We
    stop one stage earlier (the remaining two-element reduction would
    be finished by the host processor), so every kept stage satisfies
    i > k+1 and is genuinely single assignment.
    """
    if n < 4 or n & (n - 1):
        raise ValueError("ICCG requires n to be a power of two >= 4")
    stages = []
    ii = n
    ipntp = 0
    while True:
        ipnt = ipntp
        ipntp += ii
        ii //= 2
        stages.append((ipnt, ipntp))
        if ii <= 2:
            return stages


def build_iccg(n: int = 1024, seed: int = 2) -> tuple[Program, Inputs]:
    """``X(i) = X(k) - V(k)*X(k-1) - V(k+1)*X(k+1)`` with i at half speed.

    The data-dependent outer loop is *staged*: the Python builder emits
    one IR loop per halving step with concrete bounds, reproducing the
    exact dynamic access sequence of the Fortran GOTO loop.
    """
    b = ProgramBuilder(
        "iccg",
        "Livermore kernel 2 (ICCG): cyclic distribution, Figure 2.",
    )
    size = 2 * n
    X = b.inout("X", (size,))
    V = b.input("V", (size,))
    for stage, (ipnt, ipntp) in enumerate(iccg_stages(n)):
        k = b.index(f"k{stage}")
        # i = IPNTP + (k - IPNT - 2)/2 + 1  (i advances half as fast as k)
        i_expr = (Var(k.name) - (ipnt + 2)) / 2 + (ipntp + 1)
        with b.loop(k, ipnt + 2, ipntp, step=2):
            b.assign(X[i_expr], X[k] - V[k] * X[k - 1] - V[k + 1] * X[k + 1])
    rng = np.random.default_rng(seed)
    x0 = np.full(size, np.nan)
    x0[1 : n + 1] = rng.random(n)  # cells 1..n seeded; the rest produced
    inputs = {"X": x0, "V": rng.random(size) * 0.1}
    return b.build(), inputs


def iccg_reference(inputs: Inputs, n: int) -> dict[str, np.ndarray]:
    X = inputs["X"].copy()
    V = inputs["V"]
    for ipnt, ipntp in iccg_stages(n):
        i = ipntp
        for k in range(ipnt + 2, ipntp + 1, 2):
            i += 1
            X[i] = X[k] - V[k] * X[k - 1] - V[k + 1] * X[k + 1]
    return {"X": X}


# ---------------------------------------------------------------------------
# Kernel 18 — 2-D Explicit Hydrodynamics Fragment (Figure 3, Figure 5)
# ---------------------------------------------------------------------------

#: Second-dimension extent: k runs 2..6 and subscripts reach k+1 = 7.
KDIM = 8


def _interior_nan(arr: np.ndarray, n: int) -> np.ndarray:
    """Mark the produced region (j = 2..n, k = 2..6) undefined."""
    arr = arr.copy()
    arr[2 : n + 1, 2:7] = np.nan
    return arr


def build_hydro_2d(n: int = 1000, seed: int = 18) -> tuple[Program, Inputs]:
    """All three nests of kernel 18 in single-assignment form.

    The first nest is the fragment printed in the paper (§7.1.3); the
    in-place updates of the second and third nests are converted to
    single assignment by writing fresh arrays (ZUN/ZVN, then ZRN/ZZN) —
    precisely the renaming a §5 translator performs.  ZA and ZB are
    ``inout`` with their boundary cells (row 1, column 7) seeded, as
    the Fortran's initialisation data provides.
    """
    b = ProgramBuilder(
        "hydro_2d",
        "Livermore kernel 18 (2-D Explicit Hydrodynamics): cyclic+skewed.",
    )
    shape = (n + 2, KDIM)
    ZA = b.inout("ZA", shape)
    ZB = b.inout("ZB", shape)
    ZUN = b.output("ZUN", shape)
    ZVN = b.output("ZVN", shape)
    ZRN = b.output("ZRN", shape)
    ZZN = b.output("ZZN", shape)
    ZP = b.input("ZP", shape)
    ZQ = b.input("ZQ", shape)
    ZR = b.input("ZR", shape)
    ZM = b.input("ZM", shape)
    ZZ = b.input("ZZ", shape)
    ZU = b.input("ZU", shape)
    ZV = b.input("ZV", shape)
    S, T = b.scalar(S=0.0041, T=0.0037)
    j, k = b.index("j"), b.index("k")
    # Nest 1 — the paper's fragment (k outer, j inner, row-major (j, k)).
    with b.loop(k, 2, 6):
        with b.loop(j, 2, n):
            b.assign(
                ZA[j, k],
                (ZP[j - 1, k + 1] + ZQ[j - 1, k + 1] - ZP[j - 1, k] - ZQ[j - 1, k])
                * (ZR[j, k] + ZR[j - 1, k])
                / (ZM[j - 1, k] + ZM[j - 1, k + 1]),
            )
            b.assign(
                ZB[j, k],
                (ZP[j - 1, k] + ZQ[j - 1, k] - ZP[j, k] - ZQ[j, k])
                * (ZR[j, k] + ZR[j, k - 1])
                / (ZM[j, k] + ZM[j - 1, k]),
            )
    # Nest 2 — velocity update reading the freshly produced ZA/ZB
    # (boundary reads ZA(1,k) and ZB(j,7) hit seeded cells).
    with b.loop(k, 2, 6):
        with b.loop(j, 2, n):
            b.assign(
                ZUN[j, k],
                ZU[j, k]
                + S
                * (
                    ZA[j, k] * (ZZ[j, k] - ZZ[j + 1, k])
                    - ZA[j - 1, k] * (ZZ[j, k] - ZZ[j - 1, k])
                    - ZB[j, k] * (ZZ[j, k] - ZZ[j, k - 1])
                    + ZB[j, k + 1] * (ZZ[j, k] - ZZ[j, k + 1])
                ),
            )
            b.assign(
                ZVN[j, k],
                ZV[j, k]
                + S
                * (
                    ZA[j, k] * (ZR[j, k] - ZR[j + 1, k])
                    - ZA[j - 1, k] * (ZR[j, k] - ZR[j - 1, k])
                    - ZB[j, k] * (ZR[j, k] - ZR[j, k - 1])
                    + ZB[j, k + 1] * (ZR[j, k] - ZR[j, k + 1])
                ),
            )
    # Nest 3 — position update from the new velocities.
    with b.loop(k, 2, 6):
        with b.loop(j, 2, n):
            b.assign(ZRN[j, k], ZR[j, k] + T * ZUN[j, k])
            b.assign(ZZN[j, k], ZZ[j, k] + T * ZVN[j, k])
    rng = np.random.default_rng(seed)
    inputs = {
        name: rng.random(shape) + 1.0
        for name in ("ZP", "ZQ", "ZR", "ZM", "ZZ", "ZU", "ZV")
    }
    inputs["ZA"] = _interior_nan(rng.random(shape), n)
    inputs["ZB"] = _interior_nan(rng.random(shape), n)
    return b.build(), inputs


def hydro_2d_reference(inputs: Inputs, n: int) -> dict[str, np.ndarray]:
    ZP, ZQ, ZR, ZM = (inputs[a] for a in ("ZP", "ZQ", "ZR", "ZM"))
    ZZ, ZU, ZV = (inputs[a] for a in ("ZZ", "ZU", "ZV"))
    shape = (n + 2, KDIM)
    ZA = np.nan_to_num(inputs["ZA"].copy())
    ZB = np.nan_to_num(inputs["ZB"].copy())
    ZUN = np.zeros(shape)
    ZVN = np.zeros(shape)
    ZRN = np.zeros(shape)
    ZZN = np.zeros(shape)
    j = np.arange(2, n + 1)[:, None]
    k = np.arange(2, 7)[None, :]
    ZA[j, k] = (
        (ZP[j - 1, k + 1] + ZQ[j - 1, k + 1] - ZP[j - 1, k] - ZQ[j - 1, k])
        * (ZR[j, k] + ZR[j - 1, k])
        / (ZM[j - 1, k] + ZM[j - 1, k + 1])
    )
    ZB[j, k] = (
        (ZP[j - 1, k] + ZQ[j - 1, k] - ZP[j, k] - ZQ[j, k])
        * (ZR[j, k] + ZR[j, k - 1])
        / (ZM[j, k] + ZM[j - 1, k])
    )
    s, t = 0.0041, 0.0037
    ZUN[j, k] = ZU[j, k] + s * (
        ZA[j, k] * (ZZ[j, k] - ZZ[j + 1, k])
        - ZA[j - 1, k] * (ZZ[j, k] - ZZ[j - 1, k])
        - ZB[j, k] * (ZZ[j, k] - ZZ[j, k - 1])
        + ZB[j, k + 1] * (ZZ[j, k] - ZZ[j, k + 1])
    )
    ZVN[j, k] = ZV[j, k] + s * (
        ZA[j, k] * (ZR[j, k] - ZR[j + 1, k])
        - ZA[j - 1, k] * (ZR[j, k] - ZR[j - 1, k])
        - ZB[j, k] * (ZR[j, k] - ZR[j, k - 1])
        + ZB[j, k + 1] * (ZR[j, k] - ZR[j, k + 1])
    )
    ZRN[j, k] = ZR[j, k] + t * ZUN[j, k]
    ZZN[j, k] = ZZ[j, k] + t * ZVN[j, k]
    return {"ZA": ZA, "ZB": ZB, "ZUN": ZUN, "ZVN": ZVN, "ZRN": ZRN, "ZZN": ZZN}
