"""Synthetic workload generators: one knob per access class.

The Livermore kernels each mix several effects; these generators
isolate one mechanism at a time so the simulator's behaviour can be
checked against closed forms:

* :func:`build_matched` — all indices equal (Class 1; 0% remote).
* :func:`build_skewed` — a single constant skew ``s``.  §7.1.2: without
  a cache a fraction ``min(s, ps)/ps`` of the skewed reads is remote;
  with a cache "for a skew of one, the cache has no effect, for a skew
  of two, the cache saves one remote access, and so on" — i.e. the
  cache collapses each page's ``min(s, ps)`` boundary reads into one
  fetch.
* :func:`build_strided` — constant-offset reads under a non-unit inner
  stride, the pure form of the 2-D cyclic mechanism (§7.1.3).
* :func:`build_permutation` — reads through a random permutation, the
  pure form of Class 4 ("effectively random page accesses (e.g.,
  permutation lookups)").

Each returns ``(Program, inputs)`` like the registry kernels, and each
has a closed-form/NumPy reference for value validation.
"""

from __future__ import annotations

import numpy as np

from ..ir.builder import ProgramBuilder
from ..ir.expr import Ref
from ..ir.loops import Program

__all__ = [
    "build_matched",
    "build_permutation",
    "build_skewed",
    "build_strided",
    "expected_skew_remote_fraction",
]

Inputs = dict[str, np.ndarray]


def build_matched(n: int = 1024, seed: int = 101) -> tuple[Program, Inputs]:
    """``X(k) = A(k) + B(k)`` — Class 1 in its purest form."""
    b = ProgramBuilder("syn_matched", "Synthetic matched-distribution loop.")
    X = b.output("X", (n,))
    A = b.input("A", (n,))
    B = b.input("B", (n,))
    k = b.index("k")
    with b.loop(k, 0, n - 1):
        b.assign(X[k], A[k] + B[k])
    rng = np.random.default_rng(seed)
    return b.build(), {"A": rng.random(n), "B": rng.random(n)}


def build_skewed(
    n: int = 1024, skew: int = 4, seed: int = 102
) -> tuple[Program, Inputs]:
    """``X(k) = Y(k + skew)`` — one constant skew, nothing else."""
    if skew < 0:
        raise ValueError("skew must be nonnegative")
    b = ProgramBuilder(
        f"syn_skewed_{skew}", f"Synthetic skewed loop, skew {skew}."
    )
    X = b.output("X", (n,))
    Y = b.input("Y", (n + skew,))
    k = b.index("k")
    with b.loop(k, 0, n - 1):
        b.assign(X[k], Ref("Y", [k + skew]) * 2.0)
    rng = np.random.default_rng(seed)
    return b.build(), {"Y": rng.random(n + skew)}


def expected_skew_remote_fraction(
    n: int, skew: int, page_size: int, cached: bool
) -> float:
    """Closed-form remote-read fraction of :func:`build_skewed`.

    Without a cache every read whose target page differs from the
    written page is remote; with a cache each (written page, remote
    page) pair costs exactly one fetch.  Exact for any PE count > 1
    under modulo partitioning when the skew stays below the PE ring
    (remote pages never wrap back onto the reader).
    """
    remote = 0
    fetched: set[tuple[int, int]] = set()
    for k in range(n):
        wp = k // page_size
        rp = (k + skew) // page_size
        if rp == wp:
            continue
        if cached:
            if (wp, rp) not in fetched:
                fetched.add((wp, rp))
                remote += 1
        else:
            remote += 1
    return remote / n


def build_strided(
    n: int = 256, stride: int = 8, offset: int = 1, seed: int = 103
) -> tuple[Program, Inputs]:
    """2-D loop whose linearised inner stride is ``stride``.

    Writes ``X(j, c)`` for each outer column c (inner loop over rows
    j), reading the previous *row* ``Y(j-1, c)``: a constant address
    skew of ``-stride`` under a stride-``stride`` traversal.  Row
    boundary pages are fetched during one column sweep and re-used on
    the next — the isolated Cyclic mechanism of §7.1.3.  ``offset``
    widens the skew to ``offset`` rows.
    """
    if stride < 2:
        raise ValueError("stride must be >= 2 (use build_skewed otherwise)")
    if offset < 1:
        raise ValueError("offset must be >= 1")
    b = ProgramBuilder(
        f"syn_strided_{stride}",
        f"Synthetic cyclic loop, inner stride {stride}.",
    )
    shape = (n, stride)
    X = b.output("X", shape)
    Y = b.input("Y", shape)
    j, c = b.index("j"), b.index("c")
    with b.loop(c, 0, stride - 1):
        with b.loop(j, offset, n - 1):
            b.assign(X[j, c], Ref("Y", [j - offset, c]) + 1.0)
    rng = np.random.default_rng(seed)
    return b.build(), {"Y": rng.random(shape)}


def build_permutation(
    n: int = 1024, seed: int = 104
) -> tuple[Program, Inputs]:
    """``X(k) = Y(P(k))`` with P a uniform random permutation (Class 4)."""
    b = ProgramBuilder(
        "syn_permutation", "Synthetic random loop: permutation gather."
    )
    X = b.output("X", (n,))
    Y = b.input("Y", (n,))
    P = b.input("P", (n,))
    k = b.index("k")
    with b.loop(k, 0, n - 1):
        b.assign(X[k], Ref("Y", [Ref("P", [k])]))
    rng = np.random.default_rng(seed)
    perm = rng.permutation(n).astype(np.float64)
    return b.build(), {"Y": rng.random(n), "P": perm}
