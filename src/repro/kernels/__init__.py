"""Livermore Loops workloads: IR programs plus NumPy references.

The paper evaluates its partitioning scheme on "a set of loops
(extracted from the Livermore Loops benchmark program) with data access
patterns that are typically found in scientific programs" (§4).  This
subpackage provides every loop the paper names, plus the rest of the
classic suite that is expressible in the single-assignment IR, each
validated against an independent NumPy implementation.
"""

from .cyclic import build_hydro_2d, build_iccg, hydro_2d_reference, iccg_reference
from .random_access import (
    adi_reference,
    build_adi,
    build_diff_predictors,
    build_integrate_predictors,
    build_linear_recurrence,
    build_matmul,
    build_pic_1d,
    build_pic_2d,
    diff_predictors_reference,
    integrate_predictors_reference,
    linear_recurrence_reference,
    matmul_reference,
    pic_1d_reference,
    pic_2d_reference,
)
from .registry import Kernel, all_kernels, get_kernel, kernel_names, paper_kernels
from .synthetic import (
    build_matched,
    build_permutation,
    build_skewed,
    build_strided,
    expected_skew_remote_fraction,
)
from .simple1d import (
    build_equation_of_state,
    build_first_diff,
    build_first_sum,
    build_hydro_fragment,
    build_inner_product,
    build_pic_1d_fragment,
    build_planckian,
    build_tri_diagonal,
    equation_of_state_reference,
    first_diff_reference,
    first_sum_reference,
    hydro_fragment_reference,
    inner_product_reference,
    pic_1d_fragment_reference,
    planckian_reference,
    tri_diagonal_reference,
)

__all__ = [
    "Kernel",
    "all_kernels",
    "get_kernel",
    "kernel_names",
    "paper_kernels",
    # builders
    "build_adi",
    "build_diff_predictors",
    "build_equation_of_state",
    "build_first_diff",
    "build_first_sum",
    "build_hydro_2d",
    "build_matched",
    "build_permutation",
    "build_skewed",
    "build_strided",
    "expected_skew_remote_fraction",
    "build_hydro_fragment",
    "build_iccg",
    "build_inner_product",
    "build_integrate_predictors",
    "build_linear_recurrence",
    "build_matmul",
    "build_pic_1d",
    "build_pic_1d_fragment",
    "build_pic_2d",
    "build_planckian",
    "build_tri_diagonal",
    # references
    "adi_reference",
    "diff_predictors_reference",
    "equation_of_state_reference",
    "first_diff_reference",
    "first_sum_reference",
    "hydro_2d_reference",
    "hydro_fragment_reference",
    "iccg_reference",
    "inner_product_reference",
    "integrate_predictors_reference",
    "linear_recurrence_reference",
    "matmul_reference",
    "pic_1d_fragment_reference",
    "pic_1d_reference",
    "pic_2d_reference",
    "planckian_reference",
    "tri_diagonal_reference",
]
