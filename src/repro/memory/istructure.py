"""I-structure memory: write-once cells with deferred reads (§3).

The paper's synchronisation story is hardware memory tagging: "Each
memory cell has two states — undefined or defined.  If a cell is
undefined, it may also have a queue of read requests associated with
it.  Hardware enforces the write-before-read requirement."  It cites
HEP full/empty bits and dataflow I-structures as precedents.

:class:`IStructureMemory` is the software model of one such memory
bank.  Reads of a defined cell return immediately; reads of an
undefined cell register a *deferred read* continuation that fires
exactly once, when the producer writes the cell.  A second write to any
cell raises :class:`DoubleWriteError` ("writing more than once results
in a runtime error").

The timed machine simulator (:mod:`repro.machine.msim`) uses the
deferred-read queue to model PEs blocking on remote data that has not
been produced yet; the untimed core only needs the write-once check.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

__all__ = ["CellState", "DoubleWriteError", "IStructureMemory"]

ReadContinuation = Callable[[float], None]


class DoubleWriteError(RuntimeError):
    """A defined cell was written again."""


class CellState:
    """State tags for I-structure cells."""

    UNDEFINED = 0
    DEFINED = 1


@dataclass
class IStructureStats:
    """Counters for one memory bank."""

    writes: int = 0
    immediate_reads: int = 0
    deferred_reads: int = 0
    resumed_reads: int = 0

    @property
    def total_reads(self) -> int:
        return self.immediate_reads + self.deferred_reads


class IStructureMemory:
    """A bank of ``n_cells`` write-once cells with deferred-read queues."""

    def __init__(self, n_cells: int, name: str = "") -> None:
        if n_cells <= 0:
            raise ValueError("memory bank needs at least one cell")
        self.name = name
        self.n_cells = n_cells
        self._values = np.zeros(n_cells, dtype=np.float64)
        self._defined = np.zeros(n_cells, dtype=bool)
        self._waiting: dict[int, list[ReadContinuation]] = {}
        self.stats = IStructureStats()

    # -- core protocol --------------------------------------------------------
    def write(self, cell: int, value: float) -> int:
        """Define a cell; returns the number of deferred reads released."""
        self._check(cell)
        if self._defined[cell]:
            raise DoubleWriteError(
                f"cell {cell} of {self.name or 'bank'} written twice"
            )
        self._values[cell] = value
        self._defined[cell] = True
        self.stats.writes += 1
        waiters = self._waiting.pop(cell, [])
        for continuation in waiters:
            continuation(value)
        self.stats.resumed_reads += len(waiters)
        return len(waiters)

    def read(self, cell: int, on_ready: ReadContinuation) -> bool:
        """Read a cell.

        If the cell is defined, ``on_ready`` is invoked synchronously
        and the method returns True.  Otherwise the read is queued and
        the method returns False; ``on_ready`` fires when the producer
        writes the cell.
        """
        self._check(cell)
        if self._defined[cell]:
            self.stats.immediate_reads += 1
            on_ready(float(self._values[cell]))
            return True
        self.stats.deferred_reads += 1
        self._waiting.setdefault(cell, []).append(on_ready)
        return False

    def try_read(self, cell: int) -> float | None:
        """Non-queueing read: value if defined, else None."""
        self._check(cell)
        if self._defined[cell]:
            self.stats.immediate_reads += 1
            return float(self._values[cell])
        return None

    # -- inspection -----------------------------------------------------------
    def state(self, cell: int) -> int:
        self._check(cell)
        return CellState.DEFINED if self._defined[cell] else CellState.UNDEFINED

    def is_defined(self, cell: int) -> bool:
        self._check(cell)
        return bool(self._defined[cell])

    def pending_reads(self, cell: int) -> int:
        self._check(cell)
        return len(self._waiting.get(cell, []))

    def total_pending(self) -> int:
        return sum(len(q) for q in self._waiting.values())

    def defined_count(self) -> int:
        return int(self._defined.sum())

    def values(self) -> np.ndarray:
        """Copy of the value buffer (undefined cells read as 0)."""
        return self._values.copy()

    def defined_mask(self) -> np.ndarray:
        return self._defined.copy()

    # -- bulk initialisation ----------------------------------------------------
    def initialize(self, values: np.ndarray, mask: np.ndarray | None = None) -> None:
        """Pre-define cells with initialisation data (§3: arrays may be
        "filled with initialization data (if specified in the program)").

        Only permitted on cells that are still undefined and have no
        waiting readers (initialisation happens "prior to execution").
        """
        values = np.asarray(values, dtype=np.float64).ravel()
        if len(values) != self.n_cells:
            raise ValueError("initialisation length mismatch")
        if mask is None:
            mask = np.ones(self.n_cells, dtype=bool)
        else:
            mask = np.asarray(mask, dtype=bool).ravel()
            if len(mask) != self.n_cells:
                raise ValueError("initialisation mask length mismatch")
        if np.any(self._defined & mask):
            raise DoubleWriteError("initialisation overlaps defined cells")
        if self._waiting:
            raise RuntimeError("cannot initialise while reads are pending")
        self._values[mask] = values[mask]
        self._defined |= mask
        self.stats.writes += int(mask.sum())

    def reset(self) -> None:
        """Return every cell to undefined (used by the §5 re-initialisation
        protocol once the host processor has granted reuse)."""
        if self._waiting:
            raise RuntimeError("cannot reset while reads are pending")
        self._values.fill(0.0)
        self._defined.fill(False)

    def _check(self, cell: int) -> None:
        if not 0 <= cell < self.n_cells:
            raise IndexError(f"cell {cell} out of range [0, {self.n_cells})")

    def __repr__(self) -> str:
        return (
            f"IStructureMemory({self.name or '?'}, cells={self.n_cells}, "
            f"defined={self.defined_count()}, pending={self.total_pending()})"
        )
