"""Distributed heap: per-array I-structure banks placed over PEs.

Combines the data layout (paging + partition) with I-structure storage,
enforcing the paper's ownership discipline: "Each PE may write only
into undefined array cells and only into those mapped to that PE" (§3).
It also assigns each array a *host processor* for the §5
re-initialisation protocol, "evenly distributed among the arrays" in
round-robin order of allocation.

The heap is the storage substrate of the timed machine model
(:mod:`repro.machine`); the untimed simulator does not need values and
works directly from traces.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

import numpy as np

from .istructure import IStructureMemory

if TYPE_CHECKING:  # imported lazily to keep the package layering acyclic
    from ..core.owner import DataLayout

__all__ = ["DistributedHeap", "NotOwnerError"]


class NotOwnerError(RuntimeError):
    """A PE attempted to write a cell outside its area of responsibility."""


class DistributedHeap:
    """All arrays of one computation, placed over the machine."""

    def __init__(self, layout: "DataLayout") -> None:
        self.layout = layout
        self.banks: dict[str, IStructureMemory] = {}
        self.hosts: dict[str, int] = {}
        for position, name in enumerate(layout.shapes):
            size = int(np.prod(layout.shapes[name]))
            self.banks[name] = IStructureMemory(size, name=name)
            # Host processors are dealt round-robin so the
            # re-initialisation bookkeeping is spread evenly (§5).
            self.hosts[name] = position % layout.n_pes

    # -- placement queries -------------------------------------------------------
    def owner_of(self, array: str, flat: int) -> int:
        return self.layout.owner_of_flat(array, flat)

    def host_of(self, array: str) -> int:
        return self.hosts[array]

    def usage_per_pe(self) -> np.ndarray:
        return self.layout.memory_per_pe()

    # -- memory protocol -----------------------------------------------------------
    def write(self, pe: int, array: str, flat: int, value: float) -> int:
        """Owner-checked write; returns released deferred-read count."""
        owner = self.owner_of(array, flat)
        if pe != owner:
            raise NotOwnerError(
                f"PE {pe} wrote {array}[{flat}] owned by PE {owner}; "
                "writes must stay within the area of responsibility"
            )
        return self.banks[array].write(flat, value)

    def read(
        self,
        array: str,
        flat: int,
        on_ready: Callable[[float], None],
    ) -> bool:
        """I-structure read: immediate if defined, else deferred."""
        return self.banks[array].read(flat, on_ready)

    def try_read(self, array: str, flat: int) -> float | None:
        return self.banks[array].try_read(flat)

    def is_defined(self, array: str, flat: int) -> bool:
        return self.banks[array].is_defined(flat)

    def initialize(self, array: str, values: np.ndarray) -> None:
        """Pre-execution initialisation of a whole array (§3)."""
        self.banks[array].initialize(np.asarray(values, dtype=np.float64))

    def page_values(self, array: str, page: int) -> np.ndarray:
        """Contents of one page (for modelling page-granularity replies).

        Undefined cells read as NaN — a "partially filled page", which
        real systems may have to re-fetch (§8).
        """
        table = self.layout.tables[array]
        start, stop = table.page_range(page)
        bank = self.banks[array]
        values = bank.values()[start:stop].copy()
        mask = bank.defined_mask()[start:stop]
        values[~mask] = np.nan
        return values

    def page_fully_defined(self, array: str, page: int) -> bool:
        table = self.layout.tables[array]
        start, stop = table.page_range(page)
        return bool(self.banks[array].defined_mask()[start:stop].all())

    def reinitialize(self, array: str) -> None:
        """Reset an array's bank (granted §5 re-initialisation)."""
        self.banks[array].reset()

    def pending_reads(self) -> int:
        return sum(bank.total_pending() for bank in self.banks.values())

    def __repr__(self) -> str:
        return (
            f"DistributedHeap(arrays={sorted(self.banks)}, "
            f"pes={self.layout.n_pes})"
        )
