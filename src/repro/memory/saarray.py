"""User-facing single-assignment arrays.

:class:`SingleAssignmentArray` wraps an I-structure bank in NumPy-style
multi-dimensional indexing, enforcing the paper's element-level
single-assignment rule: "each element of an array may be assigned only
once.  This allows a great deal more flexibility in the use of arrays"
(§2).  It is the array type the example applications build against.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .istructure import DoubleWriteError, IStructureMemory
from .linearize import delinearize, linearize

__all__ = ["SingleAssignmentArray", "UndefinedElementError"]


class UndefinedElementError(RuntimeError):
    """A read touched an element no producer has written yet."""


class SingleAssignmentArray:
    """A write-once, multi-dimensional array of float64.

    Reads of undefined elements raise :class:`UndefinedElementError`
    immediately — sequential host code has no other producer to wait
    for, so a blocking read would deadlock.  (The simulated machine in
    :mod:`repro.machine` uses deferred reads instead.)
    """

    def __init__(self, shape: Sequence[int] | int, name: str = "") -> None:
        if isinstance(shape, int):
            shape = (shape,)
        self.shape = tuple(int(d) for d in shape)
        if not self.shape or any(d <= 0 for d in self.shape):
            raise ValueError(f"bad shape {self.shape!r}")
        self.name = name or "anonymous"
        size = 1
        for d in self.shape:
            size *= d
        self._bank = IStructureMemory(size, name=self.name)

    # -- factory helpers -------------------------------------------------------
    @classmethod
    def from_values(
        cls, values: np.ndarray, name: str = ""
    ) -> "SingleAssignmentArray":
        """A fully initialised (every element defined) array."""
        values = np.asarray(values, dtype=np.float64)
        arr = cls(values.shape, name=name)
        arr._bank.initialize(values.ravel())
        return arr

    # -- indexing ----------------------------------------------------------------
    def _flat(self, idx: "int | Sequence[int]") -> int:
        if isinstance(idx, (int, np.integer)):
            idx = (int(idx),)
        return linearize(tuple(int(i) for i in idx), self.shape)

    def __setitem__(self, idx: "int | Sequence[int]", value: float) -> None:
        flat = self._flat(idx)
        try:
            self._bank.write(flat, float(value))
        except DoubleWriteError:
            raise DoubleWriteError(
                f"single assignment violated: element "
                f"{delinearize(flat, self.shape)} of {self.name!r} "
                "was already written"
            ) from None

    def __getitem__(self, idx: "int | Sequence[int]") -> float:
        flat = self._flat(idx)
        value = self._bank.try_read(flat)
        if value is None:
            raise UndefinedElementError(
                f"element {delinearize(flat, self.shape)} of {self.name!r} "
                "is undefined"
            )
        return value

    # -- bulk views --------------------------------------------------------------
    @property
    def size(self) -> int:
        return self._bank.n_cells

    def is_defined(self, idx: "int | Sequence[int]") -> bool:
        return self._bank.is_defined(self._flat(idx))

    def defined_fraction(self) -> float:
        return self._bank.defined_count() / self.size

    def to_numpy(self, *, require_full: bool = True) -> np.ndarray:
        """Materialise the contents as a plain ndarray.

        With ``require_full`` (default) every element must be defined;
        otherwise undefined elements read as NaN.
        """
        mask = self._bank.defined_mask()
        values = self._bank.values()
        if require_full and not mask.all():
            missing = int((~mask).sum())
            raise UndefinedElementError(
                f"{missing} element(s) of {self.name!r} are undefined"
            )
        if not require_full:
            values = values.copy()
            values[~mask] = np.nan
        return values.reshape(self.shape)

    def reinitialize(self) -> None:
        """Clear all definitions (models a granted §5 re-initialisation)."""
        self._bank.reset()

    def __repr__(self) -> str:
        return (
            f"SingleAssignmentArray({self.name!r}, shape={self.shape}, "
            f"defined={self._bank.defined_count()}/{self.size})"
        )
