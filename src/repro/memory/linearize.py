"""Row-major linearisation of multi-dimensional arrays.

The paper maps "multidimensional arrays ... to a linear address space
through row-major ordering" (§7) before paging them.  These helpers
convert between multi-index tuples and flat element offsets, both for
scalars (interpreter hot path) and vectorised for NumPy index arrays.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = [
    "delinearize",
    "linearize",
    "linearize_many",
    "row_major_strides",
]


def row_major_strides(shape: Sequence[int]) -> tuple[int, ...]:
    """Element strides of a row-major array: last axis is contiguous."""
    if not shape:
        raise ValueError("shape must be non-empty")
    strides = [1] * len(shape)
    for axis in range(len(shape) - 2, -1, -1):
        strides[axis] = strides[axis + 1] * shape[axis + 1]
    return tuple(strides)


def linearize(idx: Sequence[int], shape: Sequence[int]) -> int:
    """Flat offset of a multi-index, with bounds checking.

    Indices are zero-based.  Raises :class:`IndexError` when any
    component is out of range — the simulator relies on this to catch
    kernels that read past their declared extents.
    """
    if len(idx) != len(shape):
        raise IndexError(
            f"rank mismatch: index {tuple(idx)} vs shape {tuple(shape)}"
        )
    flat = 0
    for component, extent in zip(idx, shape):
        if component < 0 or component >= extent:
            raise IndexError(
                f"index {tuple(idx)} out of bounds for shape {tuple(shape)}"
            )
        flat = flat * extent + component
    return flat


def delinearize(flat: int, shape: Sequence[int]) -> tuple[int, ...]:
    """Inverse of :func:`linearize`."""
    size = 1
    for extent in shape:
        size *= extent
    if flat < 0 or flat >= size:
        raise IndexError(f"flat index {flat} out of bounds for shape {tuple(shape)}")
    idx = []
    for stride in row_major_strides(shape):
        idx.append(flat // stride)
        flat %= stride
    return tuple(idx)


def linearize_many(indices: Sequence[np.ndarray], shape: Sequence[int]) -> np.ndarray:
    """Vectorised linearisation: one NumPy array per axis -> flat offsets.

    Used by the vectorised trace generator for affine loop nests.
    """
    if len(indices) != len(shape):
        raise IndexError("rank mismatch in linearize_many")
    flat = np.zeros_like(np.asarray(indices[0], dtype=np.int64))
    for component, extent in zip(indices, shape):
        component = np.asarray(component, dtype=np.int64)
        if component.size and (component.min() < 0 or component.max() >= extent):
            raise IndexError(
                f"vectorised index out of bounds for extent {extent}"
            )
        flat = flat * extent + component
    return flat
