"""Paging of linearised arrays (§2, "data partitioning").

Each array is "segmented into pages of some fixed (perhaps
parameterized) size".  A :class:`PageTable` performs element↔page
arithmetic for one array; partition schemes (:mod:`repro.core.partition`)
then map page numbers to owning PEs.  The last page of an array may be
*partial* — the paper's four-PE example allocates "a partial page (4
elements)" to PE 3 — which matters to the timed simulator because a
partially filled page may have to be fetched more than once (§8).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["PageTable"]


@dataclass(frozen=True)
class PageTable:
    """Element↔page arithmetic for one linearised array."""

    n_elements: int
    page_size: int

    def __post_init__(self) -> None:
        if self.n_elements <= 0:
            raise ValueError("array must have at least one element")
        if self.page_size <= 0:
            raise ValueError("page size must be positive")

    @property
    def n_pages(self) -> int:
        return -(-self.n_elements // self.page_size)

    @property
    def last_page_elements(self) -> int:
        """Number of elements in the final (possibly partial) page."""
        rem = self.n_elements % self.page_size
        return rem if rem else self.page_size

    def page_of(self, flat: int) -> int:
        if flat < 0 or flat >= self.n_elements:
            raise IndexError(
                f"element {flat} out of range [0, {self.n_elements})"
            )
        return flat // self.page_size

    def pages_of(self, flats: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`page_of` (no bounds check on the hot path)."""
        return np.asarray(flats, dtype=np.int64) // self.page_size

    def offset_in_page(self, flat: int) -> int:
        return flat % self.page_size

    def page_range(self, page: int) -> tuple[int, int]:
        """Half-open element range [start, stop) of one page."""
        if page < 0 or page >= self.n_pages:
            raise IndexError(f"page {page} out of range [0, {self.n_pages})")
        start = page * self.page_size
        return start, min(start + self.page_size, self.n_elements)

    def elements_in_page(self, page: int) -> int:
        start, stop = self.page_range(page)
        return stop - start
