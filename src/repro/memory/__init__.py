"""Distributed single-assignment memory substrate.

Linearisation, paging, I-structure cells (write-once with deferred
reads), user-facing single-assignment arrays, and the distributed heap
that places arrays over PEs.
"""

from .heap import DistributedHeap, NotOwnerError
from .istructure import CellState, DoubleWriteError, IStructureMemory
from .linearize import delinearize, linearize, linearize_many, row_major_strides
from .pages import PageTable
from .saarray import SingleAssignmentArray, UndefinedElementError

__all__ = [
    "CellState",
    "DistributedHeap",
    "DoubleWriteError",
    "IStructureMemory",
    "NotOwnerError",
    "PageTable",
    "SingleAssignmentArray",
    "UndefinedElementError",
    "delinearize",
    "linearize",
    "linearize_many",
    "row_major_strides",
]
