"""Host-processor re-initialisation protocol (§5)."""

from .reinit import ArrayPhase, ProtocolError, ReinitCoordinator, ReinitStats

__all__ = ["ArrayPhase", "ProtocolError", "ReinitCoordinator", "ReinitStats"]
