"""Host-processor array re-initialisation protocol (§5).

Single assignment forbids reusing an array, which "in statically
allocated systems ... can be solved by providing a special array
re-initialization construct.  Each PE's re-initialization must
synchronize in some way with the re-initialization requests of all
other PEs."  The paper's method:

* each array has an assigned *host processor*, "evenly distributed
  among the arrays" by the compiler;
* a PE that wants to reuse array A sends a re-initialisation message to
  A's host;
* the host collects messages "until the last PE has requested
  re-initialization", then broadcasts a grant, after which A may be
  written again ("no PE attempts to write to an out-of-date version of
  A");
* deallocation uses the same synchronisation.

:class:`ReinitCoordinator` implements the protocol as an explicit state
machine with message counting, generation numbers, and hooks for
clearing I-structure banks and invalidating cached pages of the reused
array (a reused array's stale pages must leave every cache — the one
place coherence re-enters this machine, at array granularity rather
than per write).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

__all__ = ["ArrayPhase", "ProtocolError", "ReinitCoordinator", "ReinitStats"]


class ProtocolError(RuntimeError):
    """A PE violated the protocol (double request, early write, ...)."""


class ArrayPhase:
    """Lifecycle phase of one array generation."""

    ACTIVE = "active"          # generation readable/writable under SA
    COLLECTING = "collecting"  # some PEs have requested re-initialisation
    # (the grant broadcast is atomic here: COLLECTING -> ACTIVE with a
    # bumped generation once the last request arrives)


@dataclass
class ReinitStats:
    """Message and round counters (for the protocol-cost benchmark)."""

    requests: int = 0
    broadcasts: int = 0
    rounds: int = 0

    @property
    def messages(self) -> int:
        """Total point-to-point messages: N requests + (N-1) grant sends
        per completed round (the host doesn't message itself)."""
        return self.requests + self.broadcasts


@dataclass
class _ArrayState:
    host: int
    phase: str = ArrayPhase.ACTIVE
    generation: int = 0
    pending: set[int] = field(default_factory=set)


class ReinitCoordinator:
    """Hosts, generations, and the gather-then-broadcast handshake.

    ``on_grant`` callbacks (e.g. clearing the array's I-structure bank
    and invalidating its pages in every cache) run exactly once per
    completed round, at grant time.
    """

    def __init__(self, arrays: list[str], n_pes: int) -> None:
        if n_pes <= 0:
            raise ValueError("need at least one PE")
        self.n_pes = n_pes
        # Round-robin host assignment — "the compiler ensures that the
        # host processors are evenly distributed among the arrays".
        self._arrays: dict[str, _ArrayState] = {
            name: _ArrayState(host=i % n_pes)
            for i, name in enumerate(arrays)
        }
        self.stats = ReinitStats()
        self._on_grant: list[Callable[[str, int], None]] = []

    # -- configuration -----------------------------------------------------------
    def on_grant(self, callback: Callable[[str, int], None]) -> None:
        """Register a grant hook: ``callback(array, new_generation)``."""
        self._on_grant.append(callback)

    # -- queries --------------------------------------------------------------------
    def host_of(self, array: str) -> int:
        return self._state(array).host

    def generation(self, array: str) -> int:
        return self._state(array).generation

    def phase(self, array: str) -> str:
        return self._state(array).phase

    def pending_requests(self, array: str) -> int:
        return len(self._state(array).pending)

    # -- protocol -----------------------------------------------------------------
    def request_reinit(self, array: str, pe: int) -> bool:
        """PE ``pe`` asks the host to recycle ``array``.

        Returns True when this request completed the round (the grant
        broadcast fired).  Requesting twice within one round is a
        protocol error — a correct compiler emits exactly one request
        per PE per reuse point.
        """
        state = self._state(array)
        if not 0 <= pe < self.n_pes:
            raise IndexError(f"PE {pe} out of range [0, {self.n_pes})")
        if pe in state.pending:
            raise ProtocolError(
                f"PE {pe} requested re-initialisation of {array!r} twice "
                "in one round"
            )
        state.pending.add(pe)
        state.phase = ArrayPhase.COLLECTING
        self.stats.requests += 1
        if len(state.pending) == self.n_pes:
            self._grant(array, state)
            return True
        return False

    def _grant(self, array: str, state: _ArrayState) -> None:
        state.pending.clear()
        state.generation += 1
        state.phase = ArrayPhase.ACTIVE
        # The host broadcasts the grant to every other PE.
        self.stats.broadcasts += self.n_pes - 1
        self.stats.rounds += 1
        for callback in self._on_grant:
            callback(array, state.generation)

    def check_write_allowed(self, array: str, pe: int) -> None:
        """A PE that already requested reuse must not write the old
        generation while the round is still collecting."""
        state = self._state(array)
        if pe in state.pending:
            raise ProtocolError(
                f"PE {pe} wrote {array!r} after requesting re-initialisation "
                "but before the grant (out-of-date version, §5)"
            )

    def _state(self, array: str) -> _ArrayState:
        try:
            return self._arrays[array]
        except KeyError:
            raise KeyError(f"unknown array {array!r}") from None

    def host_load(self) -> dict[int, int]:
        """Arrays hosted per PE (should be balanced within one)."""
        load: dict[int, int] = {pe: 0 for pe in range(self.n_pes)}
        for state in self._arrays.values():
            load[state.host] += 1
        return load
