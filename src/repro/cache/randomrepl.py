"""Random-replacement page cache (replacement-policy ablation).

A deterministic seeded PRNG keeps simulations reproducible run-to-run:
the same trace and configuration always yield the same counters.
"""

from __future__ import annotations

import random

from .base import PageCache, PageKey

__all__ = ["RandomCache"]


class RandomCache(PageCache):
    """Evicts a uniformly random resident page on overflow."""

    policy = "random"

    def __init__(self, capacity_pages: int, seed: int = 0x5A17) -> None:
        super().__init__(capacity_pages)
        self._rng = random.Random(seed)
        self._slots: list[PageKey] = []
        self._index: dict[PageKey, int] = {}

    def access(self, key: PageKey) -> bool:
        if self.capacity_pages == 0:
            self.stats.misses += 1
            return False
        if key in self._index:
            self.stats.hits += 1
            return True
        self.stats.misses += 1
        if len(self._slots) >= self.capacity_pages:
            victim_pos = self._rng.randrange(len(self._slots))
            victim = self._slots[victim_pos]
            del self._index[victim]
            self._slots[victim_pos] = key
            self._index[key] = victim_pos
            self.stats.evictions += 1
        else:
            self._index[key] = len(self._slots)
            self._slots.append(key)
        return False

    def contains(self, key: PageKey) -> bool:
        return key in self._index

    def __len__(self) -> int:
        return len(self._slots)

    def resident_keys(self) -> list[PageKey]:
        return list(self._slots)

    def clear(self) -> None:
        self._slots.clear()
        self._index.clear()

    def invalidate(self, key: PageKey) -> bool:
        pos = self._index.pop(key, None)
        if pos is None:
            return False
        last = self._slots.pop()
        if last != key:
            self._slots[pos] = last
            self._index[last] = pos
        return True
