"""Direct-mapped page cache (replacement-policy ablation).

Each page key hashes to exactly one slot; conflicting pages evict each
other regardless of recency.  Included because direct mapping is what
simple 1989-era hardware would most plausibly have built, making the
LRU-vs-direct comparison a realistic design question for the paper's
machine.
"""

from __future__ import annotations

from .base import PageCache, PageKey

__all__ = ["DirectMappedCache"]


class DirectMappedCache(PageCache):
    """One slot per page-key hash; conflict misses evict in place."""

    policy = "direct"

    def __init__(self, capacity_pages: int) -> None:
        super().__init__(capacity_pages)
        self._slots: list[PageKey | None] = [None] * capacity_pages

    def _slot_of(self, key: PageKey) -> int:
        array_id, page = key
        # Deterministic mix so different arrays of the same length do not
        # all collide on the same slots.
        return (page + 0x9E37 * array_id) % self.capacity_pages

    def access(self, key: PageKey) -> bool:
        if self.capacity_pages == 0:
            self.stats.misses += 1
            return False
        slot = self._slot_of(key)
        if self._slots[slot] == key:
            self.stats.hits += 1
            return True
        self.stats.misses += 1
        if self._slots[slot] is not None:
            self.stats.evictions += 1
        self._slots[slot] = key
        return False

    def contains(self, key: PageKey) -> bool:
        if self.capacity_pages == 0:
            return False
        return self._slots[self._slot_of(key)] == key

    def __len__(self) -> int:
        return sum(1 for s in self._slots if s is not None)

    def resident_keys(self) -> list[PageKey]:
        return [s for s in self._slots if s is not None]

    def clear(self) -> None:
        self._slots = [None] * self.capacity_pages

    def invalidate(self, key: PageKey) -> bool:
        if self.capacity_pages == 0:
            return False
        slot = self._slot_of(key)
        if self._slots[slot] == key:
            self._slots[slot] = None
            return True
        return False
