"""First-in-first-out page cache (replacement-policy ablation).

FIFO differs from LRU only in that hits do not refresh recency; for the
paper's cyclic loops this makes eviction order independent of the reuse
pattern, which is exactly the contrast the ablation benchmark probes.
"""

from __future__ import annotations

from collections import OrderedDict

from .base import PageCache, PageKey

__all__ = ["FIFOCache"]


class FIFOCache(PageCache):
    """Evicts in insertion order, ignoring hits."""

    policy = "fifo"

    def __init__(self, capacity_pages: int) -> None:
        super().__init__(capacity_pages)
        self._pages: OrderedDict[PageKey, None] = OrderedDict()

    def access(self, key: PageKey) -> bool:
        if self.capacity_pages == 0:
            self.stats.misses += 1
            return False
        if key in self._pages:
            self.stats.hits += 1
            return True
        self.stats.misses += 1
        if len(self._pages) >= self.capacity_pages:
            self._pages.popitem(last=False)
            self.stats.evictions += 1
        self._pages[key] = None
        return False

    def contains(self, key: PageKey) -> bool:
        return key in self._pages

    def __len__(self) -> int:
        return len(self._pages)

    def resident_keys(self) -> list[PageKey]:
        return list(self._pages.keys())

    def clear(self) -> None:
        self._pages.clear()

    def invalidate(self, key: PageKey) -> bool:
        return self._pages.pop(key, _MISSING) is not _MISSING


_MISSING = object()
