"""Coherence-free per-PE page caches (§4) and replacement policies."""

from .base import CacheStats, PageCache, PageKey
from .direct import DirectMappedCache
from .fifo import FIFOCache
from .lru import LRUCache
from .randomrepl import RandomCache

__all__ = [
    "CacheStats",
    "DirectMappedCache",
    "FIFOCache",
    "LRUCache",
    "PageCache",
    "PageKey",
    "RandomCache",
    "make_cache",
    "POLICIES",
]

POLICIES = {
    "lru": LRUCache,
    "fifo": FIFOCache,
    "random": RandomCache,
    "direct": DirectMappedCache,
}


def make_cache(policy: str, capacity_pages: int) -> PageCache:
    """Instantiate a cache by policy name ("lru", "fifo", "random", "direct")."""
    try:
        cls = POLICIES[policy]
    except KeyError:
        raise KeyError(
            f"unknown cache policy {policy!r}; choose from {sorted(POLICIES)}"
        ) from None
    return cls(capacity_pages)
