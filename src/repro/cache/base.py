"""Per-PE page caches (§4).

"Each PE may safely cache a remotely fetched page in a local data
cache, preventing future accesses of the same remote page.  The cache
used will be of fixed size and thus must use some sort of page
replacement strategy."  The paper uses LRU; FIFO, random and
direct-mapped variants are provided for the replacement-policy
ablation.

A cache maps keys ``(array_id, page_number)`` to resident remote pages.
Only *remote* pages are ever inserted — locally owned pages live in the
PE's own memory, and single assignment guarantees a cached page can
never be invalidated (the paper's coherence-freedom argument).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["CacheStats", "PageCache", "PageKey"]

PageKey = tuple[int, int]  # (array id, page number)


@dataclass
class CacheStats:
    """Hit/miss/eviction counters for one cache instance."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    def reset(self) -> None:
        self.hits = 0
        self.misses = 0
        self.evictions = 0


class PageCache:
    """Base class: fixed capacity (in pages), replacement on overflow.

    ``access(key)`` models one read that missed local memory: a hit
    means the page is resident (a *cached read*); a miss fetches and
    inserts the page (a *remote read*), evicting per policy when full.
    """

    policy = "abstract"

    def __init__(self, capacity_pages: int) -> None:
        if capacity_pages < 0:
            raise ValueError("capacity must be nonnegative")
        self.capacity_pages = capacity_pages
        self.stats = CacheStats()

    # -- required protocol -------------------------------------------------------
    def access(self, key: PageKey) -> bool:
        """Touch a page; returns True on hit, False on miss (+insert)."""
        raise NotImplementedError

    def contains(self, key: PageKey) -> bool:
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError

    def resident_keys(self) -> list[PageKey]:
        raise NotImplementedError

    def clear(self) -> None:
        raise NotImplementedError

    def invalidate(self, key: PageKey) -> bool:
        """Drop one page (used by the §5 re-initialisation protocol: a
        reused array's stale pages must leave every cache before the
        next generation is produced).  Returns True if it was resident.
        """
        raise NotImplementedError

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(capacity={self.capacity_pages}, "
            f"resident={len(self)}, hit_rate={self.stats.hit_rate:.3f})"
        )
