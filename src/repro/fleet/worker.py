"""The fleet worker: pull points, evaluate them, publish to the store.

Two transports, one evaluation path:

* **TCP mode** (``repro worker --connect HOST:PORT``) — fetch jobs
  from a :class:`~.server.FleetServer`, report ``done``/``fail``;
* **spool mode** (``repro worker --store-root PATH``) — no network at
  all: campaign specs dropped under ``<root>/fleet/spool/`` are picked
  up and evaluated point by point, for fleets whose machines share
  only the filesystem.

Either way :func:`evaluate_point` is the unit of work, and it is the
same lookup → claim → evaluate → publish dance the campaign executor
performs: the *store's* leases — not the server — are what guarantee
each point is built exactly once across every machine on the root.
Workers on rival transports, or a worker racing the submitting
process itself, coordinate correctly because they only ever meet in
the store.

Every settled point emits a ``fleet.eval`` obs event whose
``computed`` flag says whether this process actually built the point
(it won the claim) or replayed it.  Summing ``computed`` over the
fleet's merged event log is the exactly-once audit the tests and the
CI smoke job assert on.

``REPRO_FLEET_STALL_S`` (seconds, default 0) makes a worker sleep
*after winning a claim and before evaluating* — a deterministic
window in which tests kill the worker to exercise the lease-steal
recovery path.
"""

from __future__ import annotations

import os
import time
from typing import Any

from .. import obs
from ..backends import evaluate_scenario
from ..engine import (
    CampaignSpec,
    ResultKey,
    TraceStore,
    kernel_trace_cached,
    kernel_trace_key,
)
from ..engine.store import default_store
from .protocol import FleetClient, FleetError

__all__ = ["evaluate_point", "run_spool_worker", "run_worker", "spool_dir"]

#: Total deferral to a live-but-wedged foreign claim holder, matching
#: the campaign executor's cap.
_CLAIM_TIMEOUT_S = 120.0

#: kill-window hook: sleep this long between claiming and evaluating.
_STALL_ENV = "REPRO_FLEET_STALL_S"

#: point enumerations memoised per campaign digest (spec → points is
#: deterministic, and a 10⁵-point spec should enumerate once, not per
#: job)
_POINT_CACHE: dict[str, list] = {}
_POINT_CACHE_MAX = 8


def _points_of(spec: CampaignSpec) -> list:
    digest = spec.digest
    points = _POINT_CACHE.get(digest)
    if points is None:
        points = list(spec.points())
        if len(_POINT_CACHE) >= _POINT_CACHE_MAX:
            _POINT_CACHE.pop(next(iter(_POINT_CACHE)))
        _POINT_CACHE[digest] = points
    return points


def evaluate_point(
    spec: CampaignSpec, index: int, *, store: TraceStore | None = None
) -> dict[str, Any]:
    """Settle one ``(kernel, scenario)`` point against the shared store.

    Returns ``{"ref", "computed", "wall_s"}``.  ``computed`` is True
    only when this process owned the claim and ran the evaluation;
    a cache hit or a replay of a peer's build reports False.
    """
    store = store if store is not None else default_store()
    points = _points_of(spec)
    if not 0 <= index < len(points):
        raise IndexError(
            f"point {index} out of range for campaign {spec.name!r} "
            f"({len(points)} points)"
        )
    kernel, scenario = points[index]
    key = ResultKey.make(
        kernel_trace_key(kernel.name, n=kernel.n, seed=kernel.seed), scenario
    )
    started = time.perf_counter()

    def settle(computed: bool) -> dict[str, Any]:
        obs.emit(
            "fleet.eval",
            campaign=spec.digest[:8],
            index=index,
            ref=key.ref,
            computed=computed,
        )
        return {
            "ref": key.ref,
            "computed": computed,
            "wall_s": time.perf_counter() - started,
        }

    claimed = False
    deadline = time.monotonic() + _CLAIM_TIMEOUT_S
    while True:
        outcome = store.lookup_result(key)
        if outcome is not None:
            return settle(False)
        gate = store.claim_result(key)
        if gate is None:
            # Won the claim — re-check (uncounted) for a result that
            # landed between the miss and the claim.
            outcome = store.lookup_result(key, count=False)
            if outcome is not None:
                store.abandon_result_claim(key)
                return settle(False)
            claimed = True
            break
        if time.monotonic() >= deadline:
            # Wedged-but-alive foreign holder: build unclaimed (benign
            # duplicate, atomic replace) rather than stall the fleet.
            break
        gate.wait(timeout=min(5.0, max(0.05, deadline - time.monotonic())))

    try:
        stall = float(os.environ.get(_STALL_ENV, "0") or 0.0)
        if stall > 0:
            obs.emit("fleet.stall", ref=key.ref, stall_s=stall)
            time.sleep(stall)
        trace = kernel_trace_cached(
            kernel.name, n=kernel.n, seed=kernel.seed, store=store
        )
        outcome = evaluate_scenario(trace, scenario)
    except BaseException:
        if claimed:
            store.abandon_result_claim(key)
        raise
    store.put_result(key, outcome)
    return settle(True)


# ---------------------------------------------------------------------------
# TCP mode
# ---------------------------------------------------------------------------


def run_worker(
    address: str,
    *,
    store: TraceStore | None = None,
    max_jobs: int | None = None,
    idle_exit_s: float | None = None,
    retries: int = 5,
) -> int:
    """The TCP worker loop: fetch → evaluate → report, until told not to.

    ``max_jobs`` bounds the number of settled points (tests); with
    ``idle_exit_s`` the worker exits 0 after that long without work —
    the natural way for a CI fleet to wind down instead of being
    killed.  Returns a process exit code.
    """
    store = store if store is not None else default_store()
    settled = 0
    idle_since: float | None = None
    with FleetClient(address, role="worker", retries=retries) as client:
        obs.emit("fleet.worker_start", server=client.server_host or "?")
        while True:
            reply = client.request({"op": "fetch"})
            op = reply.get("op")
            if op == "job":
                idle_since = None
                spec = CampaignSpec.from_dict(reply["spec"])
                try:
                    result = evaluate_point(
                        spec, int(reply["index"]), store=store
                    )
                except Exception as exc:  # noqa: BLE001 - reported upstream
                    client.request(
                        {
                            "op": "fail",
                            "job_id": reply["job_id"],
                            "error": f"{type(exc).__name__}: {exc}",
                        }
                    )
                else:
                    client.request(
                        {
                            "op": "done",
                            "job_id": reply["job_id"],
                            "ref": result["ref"],
                            "computed": result["computed"],
                            "wall_s": result["wall_s"],
                        }
                    )
                settled += 1
                if max_jobs is not None and settled >= max_jobs:
                    return 0
            elif op == "idle":
                now = time.monotonic()
                if idle_since is None:
                    idle_since = now
                if (
                    idle_exit_s is not None
                    and now - idle_since >= idle_exit_s
                ):
                    obs.emit("fleet.worker_idle_exit", settled=settled)
                    return 0
                time.sleep(float(reply.get("retry_after", 0.5)))
            elif op == "shutdown":
                return 0
            else:
                raise FleetError(f"unexpected reply {op!r} to fetch")


# ---------------------------------------------------------------------------
# spool mode
# ---------------------------------------------------------------------------


def spool_dir(store: TraceStore):
    """Where spool-mode campaign specs live under a store root."""
    return store.root / "fleet" / "spool"


def run_spool_worker(
    *,
    store: TraceStore | None = None,
    once: bool = True,
    poll_s: float = 1.0,
) -> int:
    """Evaluate every campaign spec spooled under the store root.

    Specs are ``<spool>/<anything>.json``; a finished campaign gains a
    ``<same-stem>.done`` marker.  Multiple spool workers over one root
    cooperate point by point through the store's claims — the marker
    is written by whichever worker settles the campaign's last point
    it can see, and writing it twice is harmless.  ``once=True``
    processes the current backlog and returns (the CI-friendly mode);
    otherwise the worker polls every ``poll_s`` seconds forever.
    """
    store = store if store is not None else default_store()
    spool = spool_dir(store)
    spool.mkdir(parents=True, exist_ok=True)
    while True:
        handled = 0
        for path in sorted(spool.glob("*.json")):
            marker = path.with_suffix(".done")
            if marker.exists():
                continue
            spec = CampaignSpec.load(path)
            obs.emit(
                "fleet.spool_campaign",
                campaign=spec.digest[:8],
                points=spec.n_points,
            )
            for index in range(spec.n_points):
                evaluate_point(spec, index, store=store)
                handled += 1
            marker.write_text(spec.digest + "\n")
        if once:
            return 0
        if not handled:
            time.sleep(poll_s)
