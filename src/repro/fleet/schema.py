"""Versioned JSON Schema for campaign specs, with a built-in validator.

:data:`CAMPAIGN_SCHEMA` is a standard JSON Schema document (draft
2020-12 vocabulary, restricted to the subset below) describing the
on-disk :class:`~repro.engine.CampaignSpec` format.  It is versioned
through :data:`CAMPAIGN_SCHEMA_VERSION` and the spec format's
``$id`` — a fleet server and its clients compare versions in the
``campaign validate`` path, and any incompatible change to the spec
format bumps the number.

The container ships no ``jsonschema`` dependency, so
:func:`validate_campaign` implements the subset the schema actually
uses: ``type``, ``properties`` / ``required`` /
``additionalProperties``, ``items`` / ``minItems``, ``anyOf``,
``enum``, ``minimum`` / ``maximum``, ``minLength``.  The document
itself remains consumable by any off-the-shelf validator.

Structural validation is the first gate; semantic rules that need the
registries (kernel names, partition schemes, backend axes) live in
``CampaignSpec.from_dict`` and run after the shape is known good.
"""

from __future__ import annotations

from typing import Any

__all__ = [
    "CAMPAIGN_SCHEMA",
    "CAMPAIGN_SCHEMA_VERSION",
    "validate_campaign",
]

#: Version of the campaign-spec document format this schema describes.
CAMPAIGN_SCHEMA_VERSION = 1

_POSITIVE_INT_ARRAY = {
    "type": "array",
    "minItems": 1,
    "items": {"type": "integer", "minimum": 1},
}

_NONNEGATIVE_INT_ARRAY = {
    "type": "array",
    "minItems": 1,
    "items": {"type": "integer", "minimum": 0},
}

_STRING_ARRAY = {
    "type": "array",
    "minItems": 1,
    "items": {"type": "string", "minLength": 1},
}

CAMPAIGN_SCHEMA: dict[str, Any] = {
    "$schema": "https://json-schema.org/draft/2020-12/schema",
    "$id": f"repro:campaign-spec:v{CAMPAIGN_SCHEMA_VERSION}",
    "title": "repro campaign spec",
    "type": "object",
    "required": ["kernels"],
    "additionalProperties": False,
    "properties": {
        "name": {"type": "string", "minLength": 1},
        "backend": {"type": "string", "minLength": 1},
        "kernels": {
            "type": "array",
            "minItems": 1,
            "items": {
                "anyOf": [
                    {"type": "string", "minLength": 1},
                    {
                        "type": "object",
                        "required": ["name"],
                        "additionalProperties": False,
                        "properties": {
                            "name": {"type": "string", "minLength": 1},
                            "n": {"type": "integer", "minimum": 1},
                            "seed": {"type": "integer", "minimum": 0},
                        },
                    },
                ]
            },
        },
        "pes": _POSITIVE_INT_ARRAY,
        "page_sizes": _POSITIVE_INT_ARRAY,
        "cache_elems": _NONNEGATIVE_INT_ARRAY,
        "cache_policies": _STRING_ARRAY,
        "partitions": _STRING_ARRAY,
        "reduction_strategies": {
            "type": "array",
            "minItems": 1,
            "items": {"enum": ["host", "subrange"]},
        },
        "topologies": _STRING_ARRAY,
        "modes": {
            "type": "array",
            "minItems": 1,
            "items": {"enum": ["blocking", "multithreaded"]},
        },
        "cost_models": _STRING_ARRAY,
        "max_outstanding": {"type": "integer", "minimum": 1},
    },
}


def _type_ok(value: Any, expected: str) -> bool:
    if expected == "object":
        return isinstance(value, dict)
    if expected == "array":
        return isinstance(value, list)
    if expected == "string":
        return isinstance(value, str)
    if expected == "integer":
        # JSON has no bool/int split; Python does — a JSON true must
        # not pass as the integer 1.
        return isinstance(value, int) and not isinstance(value, bool)
    if expected == "boolean":
        return isinstance(value, bool)
    if expected == "number":
        return isinstance(value, (int, float)) and not isinstance(value, bool)
    raise ValueError(f"schema uses unsupported type {expected!r}")


def _validate(value: Any, schema: dict, path: str, errors: list[str]) -> None:
    if "enum" in schema:
        if value not in schema["enum"]:
            errors.append(
                f"{path}: {value!r} is not one of {schema['enum']}"
            )
        return
    if "anyOf" in schema:
        for option in schema["anyOf"]:
            probe: list[str] = []
            _validate(value, option, path, probe)
            if not probe:
                return
        errors.append(
            f"{path}: matches none of the {len(schema['anyOf'])} "
            "allowed shapes"
        )
        return
    expected = schema.get("type")
    if expected is not None and not _type_ok(value, expected):
        errors.append(
            f"{path}: expected {expected}, got {type(value).__name__}"
        )
        return
    if expected == "object":
        for name in schema.get("required", ()):
            if name not in value:
                errors.append(f"{path}: missing required key {name!r}")
        properties = schema.get("properties", {})
        if schema.get("additionalProperties") is False:
            for name in sorted(set(value) - set(properties)):
                errors.append(f"{path}: unknown key {name!r}")
        for name, sub in properties.items():
            if name in value:
                _validate(value[name], sub, f"{path}.{name}", errors)
    elif expected == "array":
        if len(value) < schema.get("minItems", 0):
            errors.append(
                f"{path}: needs at least {schema['minItems']} item(s)"
            )
        item_schema = schema.get("items")
        if item_schema is not None:
            for i, item in enumerate(value):
                _validate(item, item_schema, f"{path}[{i}]", errors)
    elif expected == "string":
        if len(value) < schema.get("minLength", 0):
            errors.append(f"{path}: must not be empty")
    elif expected in ("integer", "number"):
        if "minimum" in schema and value < schema["minimum"]:
            errors.append(
                f"{path}: {value} is below the minimum {schema['minimum']}"
            )
        if "maximum" in schema and value > schema["maximum"]:
            errors.append(
                f"{path}: {value} is above the maximum {schema['maximum']}"
            )


def validate_campaign(document: Any) -> list[str]:
    """Structurally validate one campaign-spec document.

    Returns the list of violations (empty: the document conforms to
    :data:`CAMPAIGN_SCHEMA`).  Purely structural — pass a conforming
    document on to ``CampaignSpec.from_dict`` for the semantic checks
    (kernel registry, backend axes, partition schemes).
    """
    errors: list[str] = []
    _validate(document, CAMPAIGN_SCHEMA, "$", errors)
    return errors
