"""The fleet server: admit campaigns, hand points out, track workers.

One asyncio server owns one :class:`~.coordinator.FleetCoordinator`.
Connections handshake (see :mod:`.protocol`) and then speak request/
response frames; a connection that identified as a worker and drops —
cleanly or not — has its in-flight jobs requeued immediately, so a
killed machine delays its points by one round trip, never loses them.

The server is control-plane only.  It never ships traces or outcomes:
workers evaluate against the shared store root and publish through
the claim leases, which is also why the server can requeue a job it
is not sure about — the second evaluation is a cache hit or a benign
atomically-replaced duplicate, never a conflict.

Campaign specs submitted with ``backend="service"`` are normalised to
the server's concrete ``--delegate`` before distribution: "service"
names this-process scheduling, which does not exist on a remote
worker, and the normalisation keeps every fleet result cached under a
concrete backend identity that any later local run can replay.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import replace

from .. import obs
from ..engine import CampaignSpec
from .coordinator import FleetCoordinator, SaturatedError
from .protocol import MAX_FRAME_BYTES, PROTOCOL_VERSION, FleetProtocolError
from .schema import validate_campaign

__all__ = ["FleetServer"]

#: Longest one ``wait`` round trip blocks server-side; clients loop.
_WAIT_SLICE_S = 30.0

#: What an idle worker is told to sleep before fetching again.
_IDLE_RETRY_S = 0.5


async def _read_frame(reader: asyncio.StreamReader) -> dict | None:
    """Asyncio twin of :func:`repro.fleet.protocol.read_frame`."""
    try:
        header = await reader.readline()
    except (asyncio.IncompleteReadError, ConnectionError):
        return None
    if not header:
        return None
    try:
        length = int(header)
    except ValueError:
        raise FleetProtocolError(f"bad frame header {header!r}") from None
    if length < 0 or length > MAX_FRAME_BYTES:
        raise FleetProtocolError(f"frame length {length} out of bounds")
    try:
        body = await reader.readexactly(length + 1)
    except (asyncio.IncompleteReadError, ConnectionError):
        raise FleetProtocolError("truncated frame body") from None
    try:
        message = json.loads(body[:-1])
    except ValueError as exc:
        raise FleetProtocolError(f"frame body is not JSON: {exc}") from None
    if not isinstance(message, dict) or "op" not in message:
        raise FleetProtocolError("frame is not an {'op': ...} object")
    return message


async def _write_frame(writer: asyncio.StreamWriter, message: dict) -> None:
    body = json.dumps(message, separators=(",", ":")).encode()
    writer.write(b"%d\n%s\n" % (len(body), body))
    await writer.drain()


class FleetServer:
    """One listening fleet endpoint over one coordinator."""

    def __init__(
        self,
        coordinator: FleetCoordinator | None = None,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        delegate: str = "untimed",
    ) -> None:
        self.coordinator = (
            coordinator if coordinator is not None else FleetCoordinator()
        )
        self._host = host
        self._port = port
        self.delegate = delegate
        self._server: asyncio.base_events.Server | None = None
        self._changed: asyncio.Condition | None = None
        self._worker_seq = 0

    # -- lifecycle -------------------------------------------------------------
    @property
    def port(self) -> int:
        """The bound port (meaningful after :meth:`start`)."""
        if self._server is None:
            return self._port
        return self._server.sockets[0].getsockname()[1]

    async def start(self) -> None:
        self._changed = asyncio.Condition()
        self._server = await asyncio.start_server(
            self._handle_connection, self._host, self._port
        )
        obs.emit("fleet.listen", host=self._host, port=self.port)

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        async with self._server:
            await self._server.serve_forever()

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()

    # -- the per-connection loop -----------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        worker_id: str | None = None
        try:
            hello = await _read_frame(reader)
            if hello is None:
                return
            if hello.get("op") != "hello":
                await _write_frame(
                    writer,
                    {"op": "error", "error": "handshake must open with hello"},
                )
                return
            if hello.get("proto") != PROTOCOL_VERSION:
                await _write_frame(
                    writer,
                    {
                        "op": "error",
                        "error": (
                            f"unsupported protocol {hello.get('proto')!r}; "
                            f"this server speaks {PROTOCOL_VERSION}"
                        ),
                    },
                )
                return
            if hello.get("role") == "worker":
                self._worker_seq += 1
                worker_id = f"{hello.get('host', '?')}#{self._worker_seq}"
            await _write_frame(
                writer,
                {
                    "op": "welcome",
                    "proto": PROTOCOL_VERSION,
                    "server": obs.HOSTNAME,
                },
            )
            while True:
                message = await _read_frame(reader)
                if message is None:
                    return
                reply = await self._dispatch(message, worker_id)
                await _write_frame(writer, reply)
        except FleetProtocolError as exc:
            with_suppressed_send = {"op": "error", "error": str(exc)}
            try:
                await _write_frame(writer, with_suppressed_send)
            except (OSError, ConnectionError):
                pass
        except (OSError, ConnectionError, asyncio.CancelledError):
            raise
        finally:
            if worker_id is not None:
                recovered = self.coordinator.worker_lost(worker_id)
                if recovered:
                    obs.emit(
                        "fleet.worker_lost",
                        worker=worker_id,
                        requeued=recovered,
                    )
                    await self._notify()
            writer.close()
            try:
                await writer.wait_closed()
            except (OSError, ConnectionError):
                pass

    async def _notify(self) -> None:
        assert self._changed is not None
        async with self._changed:
            self._changed.notify_all()

    # -- ops -------------------------------------------------------------------
    async def _dispatch(
        self, message: dict, worker_id: str | None
    ) -> dict:
        op = message.get("op")
        if op == "ping":
            return {"op": "pong"}
        if op == "stats":
            return {"op": "stats", "stats": self.coordinator.stats()}
        if op == "submit":
            return await self._op_submit(message)
        if op == "status":
            status = self.coordinator.status(str(message.get("campaign")))
            if status is None:
                return {"op": "error", "error": "unknown campaign"}
            return {"op": "campaign", **status}
        if op == "wait":
            return await self._op_wait(message)
        if op == "fetch":
            if worker_id is None:
                return {"op": "error", "error": "fetch requires role=worker"}
            job = self.coordinator.next_job(worker_id)
            if job is None:
                return {"op": "idle", "retry_after": _IDLE_RETRY_S}
            obs.emit(
                "fleet.job",
                job=job["job_id"],
                worker=worker_id,
                campaign=job["campaign"][:8],
                index=job["index"],
            )
            return {"op": "job", **job}
        if op in ("done", "fail"):
            if worker_id is None:
                return {"op": "error", "error": f"{op} requires role=worker"}
            ok = op == "done"
            status = self.coordinator.complete(
                str(message.get("job_id")),
                ok=ok,
                error=str(message.get("error", "")) or None,
            )
            obs.emit(
                "fleet.settle",
                job=str(message.get("job_id")),
                worker=worker_id,
                ok=ok,
            )
            await self._notify()
            return {"op": "ack", "known": status is not None}
        return {"op": "error", "error": f"unknown op {op!r}"}

    async def _op_submit(self, message: dict) -> dict:
        document = message.get("spec")
        violations = validate_campaign(document)
        if violations:
            return {
                "op": "error",
                "error": "campaign spec rejected",
                "violations": violations,
            }
        try:
            spec = CampaignSpec.from_dict(document)
            spec = self._normalise(spec)
        except (KeyError, ValueError) as exc:
            return {"op": "error", "error": str(exc)}
        try:
            accepted = self.coordinator.submit(spec)
        except SaturatedError as exc:
            return {"op": "error", "error": str(exc), "saturated": True}
        obs.emit(
            "fleet.submit",
            campaign=accepted["campaign"][:8],
            points=accepted["points"],
            known=accepted["known"],
        )
        await self._notify()
        return {"op": "accepted", "backend": spec.backend, **accepted}

    def _normalise(self, spec: CampaignSpec) -> CampaignSpec:
        """Pin the spec to a concrete backend before distribution."""
        if spec.backend == "service":
            spec = replace(spec, backend=self.delegate)
        from ..backends import get_backend

        if hasattr(get_backend(spec.backend), "dispatch_jobs"):
            raise ValueError(
                f"backend {spec.backend!r} is a dispatching facade; fleet "
                "campaigns need a concrete backend"
            )
        return spec

    async def _op_wait(self, message: dict) -> dict:
        digest = str(message.get("campaign"))
        timeout = min(
            float(message.get("timeout", _WAIT_SLICE_S)), _WAIT_SLICE_S
        )
        assert self._changed is not None
        deadline = asyncio.get_running_loop().time() + max(timeout, 0.0)
        while True:
            status = self.coordinator.status(digest)
            if status is None:
                return {"op": "error", "error": "unknown campaign"}
            if status["state"] != "running":
                return {"op": "campaign", **status}
            remaining = deadline - asyncio.get_running_loop().time()
            if remaining <= 0:
                return {"op": "campaign", **status}
            async with self._changed:
                try:
                    await asyncio.wait_for(
                        self._changed.wait(), timeout=remaining
                    )
                except asyncio.TimeoutError:
                    pass
