"""Fleet wire protocol: framed JSON messages over a byte stream.

Frame format (both directions, every message)::

    <length>\\n<body>\\n

``length`` is the body's byte count in ASCII decimal, ``body`` is one
UTF-8 JSON object.  The explicit length makes framing independent of
the body's content (a JSON string may contain anything), the trailing
newline keeps captures greppable and lets a human drive the protocol
with ``nc``.  Frames above :data:`MAX_FRAME_BYTES` are refused before
allocation — a garbage header cannot balloon the peer.

Every message carries an ``op`` field.  Connections open with a
versioned handshake: the initiator sends ``hello`` naming its
:data:`PROTOCOL_VERSION` and role, the server answers ``welcome`` (or
a terminal ``error`` when the version is unsupported — the number is
bumped on any incompatible change, so mismatched builds fail in the
first round trip instead of corrupting a campaign later).

:class:`FleetClient` is the synchronous side used by workers and the
CLI: one request/response at a time, with bounded reconnect-and-retry
(exponential backoff) around connection failures.  Requests are safe
to retry because the protocol is idempotent by design — submitting a
known campaign re-acks it, re-finishing a job re-acks it, and the
store's claim leases make a re-handed evaluation a cache hit.
"""

from __future__ import annotations

import json
import socket
import time
from typing import BinaryIO

__all__ = [
    "MAX_FRAME_BYTES",
    "PROTOCOL_VERSION",
    "FleetClient",
    "FleetError",
    "FleetProtocolError",
    "parse_address",
    "read_frame",
    "write_frame",
]

#: Wire protocol version; bumped on any incompatible change.  The
#: handshake rejects mismatches up front.
PROTOCOL_VERSION = 1

#: Upper bound on one frame's body.  Campaign specs are the largest
#: legitimate payload (a few KiB); 8 MiB leaves two orders of margin
#: while keeping a corrupt length header harmless.
MAX_FRAME_BYTES = 8 * 1024 * 1024


class FleetError(RuntimeError):
    """The peer answered with a structured ``error`` message."""


class FleetProtocolError(RuntimeError):
    """The byte stream violated the framing or handshake rules."""


def parse_address(address: str) -> tuple[str, int]:
    """``"host:port"`` → ``(host, port)`` (IPv6 hosts in brackets)."""
    host, sep, port = address.rpartition(":")
    if not sep or not port.isdigit():
        raise ValueError(
            f"address {address!r} is not HOST:PORT (e.g. 127.0.0.1:7341)"
        )
    host = host.strip("[]")
    if not host:
        raise ValueError(f"address {address!r} has an empty host")
    return host, int(port)


# ---------------------------------------------------------------------------
# framing (synchronous file objects; the server has asyncio twins)
# ---------------------------------------------------------------------------


def write_frame(stream: BinaryIO, message: dict) -> None:
    """Serialise one message onto a binary stream and flush it."""
    body = json.dumps(message, separators=(",", ":")).encode()
    if len(body) > MAX_FRAME_BYTES:
        raise FleetProtocolError(
            f"outgoing frame of {len(body)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte bound"
        )
    stream.write(b"%d\n%s\n" % (len(body), body))
    stream.flush()


def read_frame(stream: BinaryIO) -> dict | None:
    """Read one message; ``None`` on clean EOF before a header."""
    header = stream.readline(32)
    if not header:
        return None
    if not header.endswith(b"\n"):
        raise FleetProtocolError(f"unterminated frame header {header!r}")
    try:
        length = int(header)
    except ValueError:
        raise FleetProtocolError(f"bad frame header {header!r}") from None
    if length < 0 or length > MAX_FRAME_BYTES:
        raise FleetProtocolError(f"frame length {length} out of bounds")
    body = stream.read(length + 1)
    if len(body) != length + 1 or body[-1:] != b"\n":
        raise FleetProtocolError("truncated frame body")
    try:
        message = json.loads(body[:-1])
    except ValueError as exc:
        raise FleetProtocolError(f"frame body is not JSON: {exc}") from None
    if not isinstance(message, dict) or "op" not in message:
        raise FleetProtocolError("frame is not an {'op': ...} object")
    return message


# ---------------------------------------------------------------------------
# the synchronous client
# ---------------------------------------------------------------------------


class FleetClient:
    """One synchronous fleet connection with reconnect-and-retry.

    ``request`` sends one message and returns the reply.  Connection
    failures (refused, reset, timed out) are retried up to ``retries``
    times with exponential backoff capped at ``max_backoff`` — this is
    what lets a worker start before its server, or ride out a server
    restart, without wrapper scripts.  A structured ``error`` reply is
    *not* retried: it raises :class:`FleetError` carrying the server's
    message (the server stayed up and said no).
    """

    def __init__(
        self,
        address: str | tuple[str, int],
        *,
        role: str = "client",
        timeout: float = 30.0,
        retries: int = 5,
        backoff_s: float = 0.2,
        max_backoff_s: float = 5.0,
    ) -> None:
        self.address = (
            parse_address(address) if isinstance(address, str) else address
        )
        self.role = role
        self.timeout = timeout
        self.retries = retries
        self.backoff_s = backoff_s
        self.max_backoff_s = max_backoff_s
        self._sock: socket.socket | None = None
        self._stream: BinaryIO | None = None
        self.server_host: str | None = None

    # -- connection lifecycle --------------------------------------------------
    def connect(self) -> None:
        """Dial and complete the handshake (no-op when connected)."""
        if self._stream is not None:
            return
        from ..obs import HOSTNAME

        sock = socket.create_connection(self.address, timeout=self.timeout)
        try:
            stream = sock.makefile("rwb")
            write_frame(
                stream,
                {
                    "op": "hello",
                    "proto": PROTOCOL_VERSION,
                    "role": self.role,
                    "host": HOSTNAME,
                },
            )
            reply = read_frame(stream)
            if reply is None:
                raise FleetProtocolError("server closed during handshake")
            if reply.get("op") == "error":
                raise FleetError(str(reply.get("error", "handshake refused")))
            if reply.get("op") != "welcome":
                raise FleetProtocolError(
                    f"expected welcome, got {reply.get('op')!r}"
                )
            if reply.get("proto") != PROTOCOL_VERSION:
                raise FleetError(
                    f"server speaks protocol {reply.get('proto')!r}, "
                    f"this client speaks {PROTOCOL_VERSION}"
                )
        except BaseException:
            sock.close()
            raise
        self._sock = sock
        self._stream = stream
        self.server_host = str(reply.get("server", ""))

    def close(self) -> None:
        stream, self._stream = self._stream, None
        sock, self._sock = self._sock, None
        for closable in (stream, sock):
            if closable is not None:
                try:
                    closable.close()
                except OSError:
                    pass

    def __enter__(self) -> "FleetClient":
        self.connect()
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- requests --------------------------------------------------------------
    def request(self, message: dict) -> dict:
        """One round trip; reconnects and retries on connection loss."""
        attempt = 0
        while True:
            try:
                self.connect()
                assert self._stream is not None
                write_frame(self._stream, message)
                reply = read_frame(self._stream)
                if reply is None:
                    raise FleetProtocolError("server closed mid-request")
            except (OSError, FleetProtocolError):
                # The stream is in an unknown state: drop it, back off,
                # redial.  FleetError (a live server's refusal) is
                # deliberately not in this tuple.
                self.close()
                attempt += 1
                if attempt > self.retries:
                    raise
                time.sleep(
                    min(
                        self.backoff_s * (2 ** (attempt - 1)),
                        self.max_backoff_s,
                    )
                )
                continue
            if reply.get("op") == "error":
                raise FleetError(str(reply.get("error", "request refused")))
            return reply
