"""Fleet scheduling state: campaigns, job leases, fairness, retries.

Pure bookkeeping — no sockets, no store I/O — so every scheduling
decision is unit-testable.  The server owns one instance and drives it
from its single-threaded event loop.

Scheduling rules:

* **round-robin fairness** — :meth:`FleetCoordinator.next_job` serves
  campaigns with pending work alternately (the cross-host mirror of
  the service's ``_FairQueue``): a 10⁵-point grid admitted first
  cannot starve a later one-kernel campaign behind its whole backlog;
* **worker leases** — a handed-out job is charged to its worker
  connection; :meth:`worker_lost` requeues everything a vanished
  worker still owed, at the *front* of the campaign (recovered points
  finish before fresh tail work starts);
* **attempt caps** — a point that failed ``max_attempts`` times stops
  retrying and is recorded as a structured failure on its campaign
  (state ``failed``), so one poisoned point cannot wedge the queue;
* **admission control** — ``max_campaigns`` bounds concurrently open
  campaigns; re-submitting a known digest is idempotent (re-acked,
  never duplicated).
"""

from __future__ import annotations

import collections
from dataclasses import dataclass, field
from typing import Any, Mapping

from ..engine import CampaignSpec

__all__ = ["FleetCoordinator", "SaturatedError"]


class SaturatedError(RuntimeError):
    """Admission refused: ``max_campaigns`` campaigns already open."""


@dataclass
class _Campaign:
    spec: CampaignSpec
    digest: str
    total: int
    pending: collections.deque = field(default_factory=collections.deque)
    #: job_id -> (index, worker_id)
    running: dict[str, tuple[int, str]] = field(default_factory=dict)
    attempts: dict[int, int] = field(default_factory=dict)
    #: index -> final error, once the attempt cap is spent
    failures: dict[int, str] = field(default_factory=dict)
    done: int = 0

    @property
    def finished(self) -> bool:
        return not self.pending and not self.running

    @property
    def state(self) -> str:
        if not self.finished:
            return "running"
        return "failed" if self.failures else "done"

    def status(self) -> dict[str, Any]:
        return {
            "campaign": self.digest,
            "name": self.spec.name,
            "state": self.state,
            "total": self.total,
            "done": self.done,
            "pending": len(self.pending),
            "running": len(self.running),
            "failures": {
                str(i): err for i, err in sorted(self.failures.items())
            },
        }


class FleetCoordinator:
    """The scheduling brain shared by every fleet-server connection."""

    def __init__(
        self,
        *,
        max_attempts: int = 3,
        max_campaigns: int | None = None,
    ) -> None:
        if max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if max_campaigns is not None and max_campaigns < 1:
            raise ValueError("max_campaigns must be at least 1")
        self.max_attempts = max_attempts
        self.max_campaigns = max_campaigns
        self._campaigns: dict[str, _Campaign] = {}
        #: digests with pending work, each exactly once, service order
        self._rotation: collections.deque[str] = collections.deque()
        self._jobs_handed = 0
        self._requeued = 0

    # -- admission -------------------------------------------------------------
    def submit(self, spec: CampaignSpec) -> dict[str, Any]:
        """Admit one campaign; idempotent on its digest.

        Returns ``{"campaign", "points", "known"}`` — ``known`` is
        True when this digest was already admitted (the spec is not
        enqueued twice).  Raises :class:`SaturatedError` past the
        ``max_campaigns`` bound; *finished* campaigns still count
        until :meth:`forget` drops them, so a server's memory of
        completed work is bounded by explicit policy, not luck.
        """
        digest = spec.digest
        existing = self._campaigns.get(digest)
        if existing is not None:
            return {
                "campaign": digest,
                "points": existing.total,
                "known": True,
            }
        if (
            self.max_campaigns is not None
            and len(self._campaigns) >= self.max_campaigns
        ):
            raise SaturatedError(
                f"{len(self._campaigns)} campaigns already admitted "
                f"(max_campaigns={self.max_campaigns})"
            )
        campaign = _Campaign(spec=spec, digest=digest, total=spec.n_points)
        campaign.pending.extend(range(spec.n_points))
        self._campaigns[digest] = campaign
        self._rotation.append(digest)
        return {"campaign": digest, "points": campaign.total, "known": False}

    def forget(self, digest: str) -> bool:
        """Drop a *finished* campaign's state (frees an admission slot)."""
        campaign = self._campaigns.get(digest)
        if campaign is None or not campaign.finished:
            return False
        del self._campaigns[digest]
        return True

    # -- the job loop ----------------------------------------------------------
    def next_job(self, worker_id: str) -> dict[str, Any] | None:
        """Hand one point to ``worker_id`` (round-robin), or ``None``.

        The returned document carries everything a worker needs to
        evaluate the point against the shared store: the campaign's
        digest and full spec, and the point's index into the spec's
        canonical ``points()`` enumeration.
        """
        while self._rotation:
            digest = self._rotation[0]
            campaign = self._campaigns.get(digest)
            if campaign is None or not campaign.pending:
                self._rotation.popleft()  # stale entry: retired below
                continue
            index = campaign.pending.popleft()
            # Rotate: this campaign goes to the back (or leaves the
            # rotation until a requeue refills it).
            self._rotation.popleft()
            if campaign.pending:
                self._rotation.append(digest)
            attempt = campaign.attempts.get(index, 0) + 1
            campaign.attempts[index] = attempt
            self._jobs_handed += 1
            # The serial (not the attempt) makes the id unique across a
            # worker_lost requeue, which resets the attempt counter: a
            # zombie worker's late ``done`` for the lost hand-out must
            # not settle the re-handed job.
            job_id = f"{digest[:16]}:{index}:{self._jobs_handed}"
            campaign.running[job_id] = (index, worker_id)
            return {
                "job_id": job_id,
                "campaign": digest,
                "index": index,
                "attempt": attempt,
                "spec": campaign.spec.to_dict(),
            }
        return None

    def complete(
        self, job_id: str, *, ok: bool, error: str | None = None
    ) -> dict[str, Any] | None:
        """Settle one handed-out job; returns the campaign's status.

        Failures requeue at the front until the point's attempt cap is
        spent, then land in the campaign's structured ``failures``.
        Unknown job ids (a worker finishing work the server already
        requeued after a disconnect) are acknowledged as ``None`` —
        the store made the duplicate harmless, so the protocol does
        not escalate it.
        """
        for campaign in self._campaigns.values():
            entry = campaign.running.pop(job_id, None)
            if entry is None:
                continue
            index, _worker = entry
            if ok:
                campaign.done += 1
            elif campaign.attempts.get(index, 0) >= self.max_attempts:
                campaign.failures[index] = error or "evaluation failed"
            else:
                campaign.pending.appendleft(index)
                self._requeue(campaign.digest)
            return campaign.status()
        return None

    def worker_lost(self, worker_id: str) -> int:
        """Requeue every job the vanished worker still held."""
        recovered = 0
        for campaign in self._campaigns.values():
            owed = [
                (job_id, index)
                for job_id, (index, owner) in campaign.running.items()
                if owner == worker_id
            ]
            for job_id, index in owed:
                del campaign.running[job_id]
                # A lost connection says nothing about the point
                # itself: the attempt that died in transit does not
                # count against the cap.
                campaign.attempts[index] = max(
                    0, campaign.attempts.get(index, 1) - 1
                )
                campaign.pending.appendleft(index)
                recovered += 1
            if owed:
                self._requeue(campaign.digest)
        self._requeued += recovered
        return recovered

    def _requeue(self, digest: str) -> None:
        if digest not in self._rotation:
            self._rotation.append(digest)

    # -- introspection ---------------------------------------------------------
    def status(self, digest: str) -> dict[str, Any] | None:
        campaign = self._campaigns.get(digest)
        return None if campaign is None else campaign.status()

    def campaigns(self) -> Mapping[str, dict[str, Any]]:
        return {d: c.status() for d, c in self._campaigns.items()}

    @property
    def idle(self) -> bool:
        """No campaign has pending or running work."""
        return all(c.finished for c in self._campaigns.values())

    def stats(self) -> dict[str, Any]:
        return {
            "campaigns": len(self._campaigns),
            "finished": sum(
                1 for c in self._campaigns.values() if c.finished
            ),
            "pending": sum(
                len(c.pending) for c in self._campaigns.values()
            ),
            "running": sum(
                len(c.running) for c in self._campaigns.values()
            ),
            "jobs_handed": self._jobs_handed,
            "requeued": self._requeued,
            "max_attempts": self.max_attempts,
            "max_campaigns": self.max_campaigns,
        }
