"""``repro.fleet`` — cross-host evaluation: one store root, many machines.

The fleet generalises the in-process evaluation service to machines:
a **server** (``repro serve --listen HOST:PORT``) admits campaigns and
hands their points out; **workers** (``repro worker --connect``) pull
points, evaluate them against the *shared store root*, and report
back.  The wire protocol is control-plane only — job identities,
acks, status.  Results never travel over the socket: every worker
publishes into the same content-addressed store through the claim
leases campaigns already use, so the store stays the single source of
truth and a re-handed job is a cache hit, not a second build.

Four pieces:

* :mod:`.protocol` — length-delimited JSON frames, the versioned
  handshake, and the retrying synchronous :class:`~.protocol.FleetClient`;
* :mod:`.schema` — the versioned JSON Schema for campaign specs and a
  dependency-free validator (``repro campaign validate``);
* :mod:`.coordinator` — pure scheduling state: round-robin across
  campaigns, per-worker job leases, requeue on worker loss, attempt
  caps, admission control;
* :mod:`.server` / :mod:`.worker` — the asyncio server and the worker
  loop (TCP mode, plus a socketless spool mode for air-gapped fleets
  that share only the filesystem).
"""

from __future__ import annotations

from .coordinator import FleetCoordinator
from .protocol import (
    PROTOCOL_VERSION,
    FleetClient,
    FleetError,
    FleetProtocolError,
    parse_address,
    read_frame,
    write_frame,
)
from .schema import (
    CAMPAIGN_SCHEMA,
    CAMPAIGN_SCHEMA_VERSION,
    validate_campaign,
)

__all__ = [
    "CAMPAIGN_SCHEMA",
    "CAMPAIGN_SCHEMA_VERSION",
    "FleetClient",
    "FleetCoordinator",
    "FleetError",
    "FleetProtocolError",
    "PROTOCOL_VERSION",
    "parse_address",
    "read_frame",
    "validate_campaign",
    "write_frame",
]
