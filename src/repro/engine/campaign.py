"""Declarative sweep campaigns: kernels × backend × scenario axes.

A :class:`CampaignSpec` names the workloads, the evaluation *backend*,
and the full cross product of scenario parameters to evaluate them
under — the paper's §6 sweep ("number of processors; page size ...;
with the cache toggled per series") generalised to every axis the
evaluators expose: cache policy, partition scheme, reduction strategy,
and (for the timed backend) interconnect topology, PE execution mode
and cost-model preset.  Specs are plain frozen data, expressible in
Python or JSON (``to_json``/``from_json``), and enumerate their points
in one canonical order so serial and parallel executions are
comparable record for record.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, replace
from itertools import product
from pathlib import Path
from typing import Iterator, Mapping, Sequence

from ..backends import MODES, Scenario, cost_model, get_backend
from ..core.partition import named_scheme
from ..core.simulator import MachineConfig
from ..machine.network import canonical_topology

__all__ = [
    "DEFAULT_CACHES",
    "DEFAULT_PAGE_SIZES",
    "DEFAULT_PES",
    "CampaignSpec",
    "KernelSpec",
]

#: The PE axis of the paper's Figures 1-4 (extended past 16 to cover
#: the 32- and 64-PE claims of §7.1.3 and Figure 5).
DEFAULT_PES: tuple[int, ...] = (1, 2, 4, 8, 16, 32, 64)
#: The paper's two page sizes.
DEFAULT_PAGE_SIZES: tuple[int, ...] = (32, 64)
#: The paper's fixed cache capacity, plus 0 for the "No Cache" series.
DEFAULT_CACHES: tuple[int, ...] = (256, 0)


@dataclass(frozen=True)
class KernelSpec:
    """One workload of a campaign: registry name + build parameters."""

    name: str
    n: int | None = None
    seed: int | None = None

    @property
    def label(self) -> str:
        """Unique, stable identifier of this workload within a spec."""
        parts = [self.name]
        if self.n is not None:
            parts.append(f"n={self.n}")
        if self.seed is not None:
            parts.append(f"seed={self.seed}")
        return parts[0] if len(parts) == 1 else f"{parts[0]}[{','.join(parts[1:])}]"

    def to_dict(self) -> dict[str, object]:
        out: dict[str, object] = {"name": self.name}
        if self.n is not None:
            out["n"] = self.n
        if self.seed is not None:
            out["seed"] = self.seed
        return out

    @staticmethod
    def coerce(value: "KernelSpec | str | Mapping[str, object]") -> "KernelSpec":
        if isinstance(value, KernelSpec):
            return value
        if isinstance(value, str):
            return KernelSpec(name=value)
        extra = set(value) - {"name", "n", "seed"}
        if extra:
            raise ValueError(f"unknown kernel spec keys: {sorted(extra)}")
        return KernelSpec(
            name=str(value["name"]),
            n=None if value.get("n") is None else int(value["n"]),
            seed=None if value.get("seed") is None else int(value["seed"]),
        )


#: Machine-configuration axes (feed the :class:`MachineConfig` grid).
_CONFIG_AXES = (
    "pes",
    "page_sizes",
    "cache_elems",
    "cache_policies",
    "partitions",
    "reduction_strategies",
)

#: Backend axes (feed the :class:`~repro.backends.Scenario` envelope);
#: a backend declares which of these it consumes via ``scenario_axes``.
#: Axes a backend does not consume must sit at these defaults — a
#: non-default value would silently taint scenario labels and result
#: cache keys with a knob that never reaches the evaluator.
_BACKEND_AXIS_DEFAULTS = {
    "topologies": ("crossbar",),
    "modes": ("blocking",),
    "cost_models": ("default",),
}

_BACKEND_AXES = tuple(_BACKEND_AXIS_DEFAULTS)

_AXIS_FIELDS = _CONFIG_AXES + _BACKEND_AXES


@dataclass(frozen=True)
class CampaignSpec:
    """A declarative sweep: every kernel under every scenario.

    ``partitions`` holds partition-scheme *names* ("modulo", "block",
    "block-cyclic:K") so the spec stays JSON-serialisable; they are
    resolved through :func:`repro.core.partition.named_scheme` when the
    configurations are materialised.  Likewise ``topologies`` and
    ``cost_models`` hold registry names; sweeping a backend axis the
    chosen backend does not consume is rejected up front rather than
    silently producing duplicate points.
    """

    name: str
    kernels: tuple[KernelSpec, ...]
    backend: str = "untimed-vec"
    pes: tuple[int, ...] = DEFAULT_PES
    page_sizes: tuple[int, ...] = DEFAULT_PAGE_SIZES
    cache_elems: tuple[int, ...] = DEFAULT_CACHES
    cache_policies: tuple[str, ...] = ("lru",)
    partitions: tuple[str, ...] = ("modulo",)
    reduction_strategies: tuple[str, ...] = ("host",)
    topologies: tuple[str, ...] = ("crossbar",)
    modes: tuple[str, ...] = ("blocking",)
    cost_models: tuple[str, ...] = ("default",)
    max_outstanding: int = 4

    def __post_init__(self) -> None:
        object.__setattr__(
            self,
            "kernels",
            tuple(KernelSpec.coerce(k) for k in self.kernels),
        )
        for axis in _AXIS_FIELDS:
            object.__setattr__(self, axis, tuple(getattr(self, axis)))
        # Canonicalise topology aliases so specs, labels and cache keys
        # agree however the sweep was requested ("mesh" == "mesh2d").
        object.__setattr__(
            self,
            "topologies",
            tuple(canonical_topology(t) for t in self.topologies),
        )
        if not self.kernels:
            raise ValueError("campaign needs at least one kernel")
        for axis in _AXIS_FIELDS:
            if not getattr(self, axis):
                raise ValueError(f"campaign axis {axis!r} is empty")
        labels = [k.label for k in self.kernels]
        if len(set(labels)) != len(labels):
            raise ValueError(f"duplicate kernel specs in campaign: {labels}")
        for scheme in self.partitions:
            named_scheme(scheme)  # fail fast on typos
        for preset in self.cost_models:
            cost_model(preset)
        for mode in self.modes:
            if mode not in MODES:
                raise ValueError(
                    f"unknown mode {mode!r}; choose from {MODES}"
                )
        if self.max_outstanding < 1:
            raise ValueError("max_outstanding must be at least 1")
        backend = get_backend(self.backend)  # KeyError on typos
        for axis in _BACKEND_AXES:
            if axis in backend.scenario_axes:
                continue
            if getattr(self, axis) != _BACKEND_AXIS_DEFAULTS[axis]:
                raise ValueError(
                    f"axis {axis!r} is not used by backend "
                    f"{self.backend!r}; leave it at "
                    f"{_BACKEND_AXIS_DEFAULTS[axis]!r}"
                )
        # max_outstanding rides with the execution-mode knob: backends
        # without a modes axis never read it, so a non-default value
        # would only taint scenario digests and result-cache keys.
        if "modes" not in backend.scenario_axes and self.max_outstanding != 4:
            raise ValueError(
                f"'max_outstanding' is not used by backend "
                f"{self.backend!r}; leave it at 4"
            )
        # Backends may declare the reduction strategies they can model
        # (both built-ins now model "host" and "subrange", but the
        # declaration still guards third-party backends and typos);
        # fail at spec construction, not minutes later in a worker.
        supported = getattr(backend, "supported_reductions", None)
        if supported is not None:
            for strategy in self.reduction_strategies:
                if strategy not in supported:
                    raise ValueError(
                        f"backend {self.backend!r} does not model "
                        f"reduction strategy {strategy!r} "
                        f"(supported: {tuple(supported)})"
                    )

    # -- enumeration -----------------------------------------------------------
    @property
    def n_configs(self) -> int:
        """Scenarios evaluated per kernel (all axes crossed)."""
        total = 1
        for axis in _AXIS_FIELDS:
            total *= len(getattr(self, axis))
        return total

    @property
    def n_points(self) -> int:
        return len(self.kernels) * self.n_configs

    def configs(self) -> list[MachineConfig]:
        """The machine-configuration grid, in canonical order.

        The innermost nesting (page size → cache → PEs) matches the
        historical :class:`repro.bench.Sweep` ordering so refactored
        callers see records in the order they always did.
        """
        out = []
        for scheme, policy, strategy, page_size, cache, n_pes in product(
            self.partitions,
            self.cache_policies,
            self.reduction_strategies,
            self.page_sizes,
            self.cache_elems,
            self.pes,
        ):
            out.append(
                MachineConfig(
                    n_pes=n_pes,
                    page_size=page_size,
                    cache_elems=cache,
                    cache_policy=policy,
                    partition=named_scheme(scheme),
                    reduction_strategy=strategy,
                )
            )
        return out

    def scenarios(self) -> list[Scenario]:
        """The full scenario grid: backend axes × configuration grid.

        Backend axes nest outermost, so a spec that leaves them at
        their defaults (every untimed campaign) enumerates in exactly
        the historical configuration order.
        """
        configs = self.configs()
        out = []
        for topology, mode, preset in product(
            self.topologies, self.modes, self.cost_models
        ):
            for config in configs:
                out.append(
                    Scenario(
                        config=config,
                        backend=self.backend,
                        topology=topology,
                        mode=mode,
                        cost_model=preset,
                        max_outstanding=self.max_outstanding,
                    )
                )
        return out

    def points(self) -> Iterator[tuple[KernelSpec, Scenario]]:
        """Every (kernel, scenario) pair, kernel-major."""
        scenarios = self.scenarios()
        for kernel in self.kernels:
            for scenario in scenarios:
                yield kernel, scenario

    def subset(self, kernels: Sequence[str]) -> "CampaignSpec":
        """Restrict to the named kernels (by label or registry name)."""
        wanted = set(kernels)
        keep = tuple(
            k for k in self.kernels if k.label in wanted or k.name in wanted
        )
        if not keep:
            raise KeyError(f"no campaign kernels match {sorted(wanted)}")
        return replace(self, kernels=keep)

    @property
    def digest(self) -> str:
        """Content address of the spec (canonical JSON, hashed).

        Two specs enumerating the same points share a digest however
        they were constructed (aliases are canonicalised in
        ``__post_init__``).  The engine uses it to attribute a
        campaign's write-ahead store-touch files.
        """
        return hashlib.sha256(
            json.dumps(self.to_dict(), sort_keys=True).encode()
        ).hexdigest()

    # -- (de)serialisation -----------------------------------------------------
    def to_dict(self) -> dict[str, object]:
        return {
            "name": self.name,
            "backend": self.backend,
            "kernels": [k.to_dict() for k in self.kernels],
            **{axis: list(getattr(self, axis)) for axis in _AXIS_FIELDS},
            "max_outstanding": self.max_outstanding,
        }

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @staticmethod
    def from_dict(data: Mapping[str, object]) -> "CampaignSpec":
        known = {"name", "backend", "kernels", "max_outstanding", *_AXIS_FIELDS}
        extra = set(data) - known
        if extra:
            raise ValueError(f"unknown campaign spec keys: {sorted(extra)}")
        if "kernels" not in data:
            raise ValueError("campaign spec needs a 'kernels' list")
        kwargs: dict[str, object] = {
            "name": str(data.get("name", "campaign")),
            "kernels": tuple(
                KernelSpec.coerce(k) for k in data["kernels"]  # type: ignore[union-attr]
            ),
        }
        if "backend" in data:
            kwargs["backend"] = str(data["backend"])
        if "max_outstanding" in data:
            kwargs["max_outstanding"] = int(data["max_outstanding"])  # type: ignore[arg-type]
        for axis in _AXIS_FIELDS:
            if axis in data:
                kwargs[axis] = tuple(data[axis])  # type: ignore[arg-type]
        return CampaignSpec(**kwargs)  # type: ignore[arg-type]

    @staticmethod
    def from_json(text: str) -> "CampaignSpec":
        return CampaignSpec.from_dict(json.loads(text))

    def save(self, path: str | os.PathLike) -> Path:
        path = Path(path)
        path.write_text(self.to_json() + "\n")
        return path

    @staticmethod
    def load(path: str | os.PathLike) -> "CampaignSpec":
        return CampaignSpec.from_json(Path(path).read_text())
