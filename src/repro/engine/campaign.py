"""Declarative sweep campaigns: kernels × machine-configuration axes.

A :class:`CampaignSpec` names the workloads and the full cross product
of machine parameters to evaluate them under — the paper's §6 sweep
("number of processors; page size ...; with the cache toggled per
series") generalised to every axis the simulator exposes: cache
policy, partition scheme and reduction strategy.  Specs are plain
frozen data, expressible in Python or JSON (``to_json``/``from_json``),
and enumerate their points in one canonical order so serial and
parallel executions are comparable record for record.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, replace
from itertools import product
from pathlib import Path
from typing import Iterator, Mapping, Sequence

from ..core.partition import named_scheme
from ..core.simulator import MachineConfig

__all__ = [
    "DEFAULT_CACHES",
    "DEFAULT_PAGE_SIZES",
    "DEFAULT_PES",
    "CampaignSpec",
    "KernelSpec",
]

#: The PE axis of the paper's Figures 1-4 (extended past 16 to cover
#: the 32- and 64-PE claims of §7.1.3 and Figure 5).
DEFAULT_PES: tuple[int, ...] = (1, 2, 4, 8, 16, 32, 64)
#: The paper's two page sizes.
DEFAULT_PAGE_SIZES: tuple[int, ...] = (32, 64)
#: The paper's fixed cache capacity, plus 0 for the "No Cache" series.
DEFAULT_CACHES: tuple[int, ...] = (256, 0)


@dataclass(frozen=True)
class KernelSpec:
    """One workload of a campaign: registry name + build parameters."""

    name: str
    n: int | None = None
    seed: int | None = None

    @property
    def label(self) -> str:
        """Unique, stable identifier of this workload within a spec."""
        parts = [self.name]
        if self.n is not None:
            parts.append(f"n={self.n}")
        if self.seed is not None:
            parts.append(f"seed={self.seed}")
        return parts[0] if len(parts) == 1 else f"{parts[0]}[{','.join(parts[1:])}]"

    def to_dict(self) -> dict[str, object]:
        out: dict[str, object] = {"name": self.name}
        if self.n is not None:
            out["n"] = self.n
        if self.seed is not None:
            out["seed"] = self.seed
        return out

    @staticmethod
    def coerce(value: "KernelSpec | str | Mapping[str, object]") -> "KernelSpec":
        if isinstance(value, KernelSpec):
            return value
        if isinstance(value, str):
            return KernelSpec(name=value)
        extra = set(value) - {"name", "n", "seed"}
        if extra:
            raise ValueError(f"unknown kernel spec keys: {sorted(extra)}")
        return KernelSpec(
            name=str(value["name"]),
            n=None if value.get("n") is None else int(value["n"]),
            seed=None if value.get("seed") is None else int(value["seed"]),
        )


_AXIS_FIELDS = (
    "pes",
    "page_sizes",
    "cache_elems",
    "cache_policies",
    "partitions",
    "reduction_strategies",
)


@dataclass(frozen=True)
class CampaignSpec:
    """A declarative sweep: every kernel under every configuration.

    ``partitions`` holds partition-scheme *names* ("modulo", "block",
    "block-cyclic:K") so the spec stays JSON-serialisable; they are
    resolved through :func:`repro.core.partition.named_scheme` when the
    configurations are materialised.
    """

    name: str
    kernels: tuple[KernelSpec, ...]
    pes: tuple[int, ...] = DEFAULT_PES
    page_sizes: tuple[int, ...] = DEFAULT_PAGE_SIZES
    cache_elems: tuple[int, ...] = DEFAULT_CACHES
    cache_policies: tuple[str, ...] = ("lru",)
    partitions: tuple[str, ...] = ("modulo",)
    reduction_strategies: tuple[str, ...] = ("host",)

    def __post_init__(self) -> None:
        object.__setattr__(
            self,
            "kernels",
            tuple(KernelSpec.coerce(k) for k in self.kernels),
        )
        for axis in _AXIS_FIELDS:
            object.__setattr__(self, axis, tuple(getattr(self, axis)))
        if not self.kernels:
            raise ValueError("campaign needs at least one kernel")
        for axis in _AXIS_FIELDS:
            if not getattr(self, axis):
                raise ValueError(f"campaign axis {axis!r} is empty")
        labels = [k.label for k in self.kernels]
        if len(set(labels)) != len(labels):
            raise ValueError(f"duplicate kernel specs in campaign: {labels}")
        for scheme in self.partitions:
            named_scheme(scheme)  # fail fast on typos

    # -- enumeration -----------------------------------------------------------
    @property
    def n_configs(self) -> int:
        """Machine configurations evaluated per kernel."""
        total = 1
        for axis in _AXIS_FIELDS:
            total *= len(getattr(self, axis))
        return total

    @property
    def n_points(self) -> int:
        return len(self.kernels) * self.n_configs

    def configs(self) -> list[MachineConfig]:
        """The configuration grid, in canonical order.

        The innermost nesting (page size → cache → PEs) matches the
        historical :class:`repro.bench.Sweep` ordering so refactored
        callers see records in the order they always did.
        """
        out = []
        for scheme, policy, strategy, page_size, cache, n_pes in product(
            self.partitions,
            self.cache_policies,
            self.reduction_strategies,
            self.page_sizes,
            self.cache_elems,
            self.pes,
        ):
            out.append(
                MachineConfig(
                    n_pes=n_pes,
                    page_size=page_size,
                    cache_elems=cache,
                    cache_policy=policy,
                    partition=named_scheme(scheme),
                    reduction_strategy=strategy,
                )
            )
        return out

    def points(self) -> Iterator[tuple[KernelSpec, MachineConfig]]:
        """Every (kernel, configuration) pair, kernel-major."""
        configs = self.configs()
        for kernel in self.kernels:
            for config in configs:
                yield kernel, config

    def subset(self, kernels: Sequence[str]) -> "CampaignSpec":
        """Restrict to the named kernels (by label or registry name)."""
        wanted = set(kernels)
        keep = tuple(
            k for k in self.kernels if k.label in wanted or k.name in wanted
        )
        if not keep:
            raise KeyError(f"no campaign kernels match {sorted(wanted)}")
        return replace(self, kernels=keep)

    # -- (de)serialisation -----------------------------------------------------
    def to_dict(self) -> dict[str, object]:
        return {
            "name": self.name,
            "kernels": [k.to_dict() for k in self.kernels],
            **{axis: list(getattr(self, axis)) for axis in _AXIS_FIELDS},
        }

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @staticmethod
    def from_dict(data: Mapping[str, object]) -> "CampaignSpec":
        known = {"name", "kernels", *_AXIS_FIELDS}
        extra = set(data) - known
        if extra:
            raise ValueError(f"unknown campaign spec keys: {sorted(extra)}")
        if "kernels" not in data:
            raise ValueError("campaign spec needs a 'kernels' list")
        kwargs: dict[str, object] = {
            "name": str(data.get("name", "campaign")),
            "kernels": tuple(
                KernelSpec.coerce(k) for k in data["kernels"]  # type: ignore[union-attr]
            ),
        }
        for axis in _AXIS_FIELDS:
            if axis in data:
                kwargs[axis] = tuple(data[axis])  # type: ignore[arg-type]
        return CampaignSpec(**kwargs)  # type: ignore[arg-type]

    @staticmethod
    def from_json(text: str) -> "CampaignSpec":
        return CampaignSpec.from_dict(json.loads(text))

    def save(self, path: str | os.PathLike) -> Path:
        path = Path(path)
        path.write_text(self.to_json() + "\n")
        return path

    @staticmethod
    def load(path: str | os.PathLike) -> "CampaignSpec":
        return CampaignSpec.from_json(Path(path).read_text())
