"""repro.engine — parallel sweep execution over a persistent trace store.

The production layer between the simulator core and the bench/CLI
surface, exploiting the paper's trace-once / sweep-many structure at
scale:

* :mod:`~repro.engine.store` — content-addressed ``.npz`` trace store
  (a kernel is interpreted once per machine, ever) and the single
  code path for trace acquisition;
* :mod:`~repro.engine.campaign` — declarative sweep specs (kernels ×
  PEs × page sizes × caches × policies × partitions), JSON in and out;
* :mod:`~repro.engine.executor` — a multiprocessing fan-out with
  copy-on-write trace sharing, deterministic result ordering and a
  serial fallback;
* :mod:`~repro.engine.results` — typed records with bit-exact
  comparison and JSON export.

Quickstart::

    from repro.engine import CampaignSpec, run_campaign

    spec = CampaignSpec(
        name="demo",
        kernels=("hydro_fragment", "iccg"),
        pes=(1, 4, 16, 64),
        page_sizes=(32, 64),
        cache_elems=(256, 0),
    )
    result = run_campaign(spec)           # parallel, store-backed
    print(result.to_json())
"""

from .campaign import (
    DEFAULT_CACHES,
    DEFAULT_PAGE_SIZES,
    DEFAULT_PES,
    CampaignSpec,
    KernelSpec,
)
from .executor import default_workers, run_campaign, run_grid
from .results import CampaignResult, EvalRecord
from .store import (
    TRACE_STORE_ENV,
    StoreCounters,
    TraceKey,
    TraceStore,
    build_trace,
    default_store,
    interpretation_count,
    kernel_trace_cached,
    set_default_store,
)

__all__ = [
    "DEFAULT_CACHES",
    "DEFAULT_PAGE_SIZES",
    "DEFAULT_PES",
    "TRACE_STORE_ENV",
    "CampaignResult",
    "CampaignSpec",
    "EvalRecord",
    "KernelSpec",
    "StoreCounters",
    "TraceKey",
    "TraceStore",
    "build_trace",
    "default_store",
    "default_workers",
    "interpretation_count",
    "kernel_trace_cached",
    "run_campaign",
    "run_grid",
    "set_default_store",
]
