"""repro.engine — the system's single evaluation surface.

The production layer between the pluggable evaluation backends
(:mod:`repro.backends`) and the bench/CLI surface, exploiting the
paper's trace-once / sweep-many structure at scale:

* :mod:`~repro.engine.store` — sharded, content-addressed ``.npz``
  stores for *traces* (a kernel is interpreted once per machine, ever
  — the single trace-acquisition path) and for *results* (an
  evaluation is pure in ``(trace, scenario, backend)``, so re-running
  an identical campaign skips simulation entirely), both with
  hit/miss/eviction counters;
* :mod:`~repro.engine.campaign` — declarative sweep specs (kernels ×
  PEs × page sizes × caches × policies × partitions, plus the timed
  backend's topologies × modes × cost models), JSON in and out;
* :mod:`~repro.engine.executor` — a multiprocessing fan-out that
  dispatches through the backend registry, with copy-on-write trace
  sharing, deterministic result ordering, a serial fallback, and
  streaming (:class:`~repro.engine.executor.CampaignStream`) for
  progress on long sweeps; campaigns with ``backend="service"``
  submit their whole grid to the process-wide resident worker pool
  (:mod:`repro.backends.service`) instead of forking one;
* :mod:`~repro.engine.results` — backend-tagged typed records with
  bit-exact comparison and JSON export.

Quickstart::

    from repro.engine import CampaignSpec, run_campaign

    spec = CampaignSpec(
        name="demo",
        kernels=("hydro_fragment", "iccg"),
        pes=(1, 4, 16, 64),
        page_sizes=(32, 64),
        cache_elems=(256, 0),
    )
    result = run_campaign(spec)           # parallel, store-backed
    print(result.to_json())

    timed = CampaignSpec(
        name="demo-timed",
        backend="timed",                  # same engine, timed model
        kernels=("hydro_fragment",),
        pes=(4, 16),
        topologies=("mesh2d", "torus2d"),
        modes=("blocking", "multithreaded"),
    )
    for record in run_campaign(timed, stream=True):   # progress
        print(record.index, record.metrics["speedup"])

Store layout (fleet scale)
--------------------------

The store fans artifacts out across 256 prefix shards and keeps a
crash-safe index, so campaign traffic never funnels into one flat
directory and disk use stays bounded::

    <root>/index.json        {"index_format": 1, "entries":
                              {ref: {kind, path, bytes, atime, ctime}}}
                             written via temp file + atomic rename;
                             rebuilt from the shards if unreadable
    <root>/traces/<ab>/...   trace .npz, shard = digest[:2]
    <root>/results/<cd>/...  cached EvalOutcome .npz, same scheme
    <root>/touch/*.jsonl     write-ahead per-worker access logs,
                             merged into the index (access times,
                             counters, worker evaluation counts) on
                             campaign completion
    <root>/leases/*.json     cross-process claim leases (holder pid +
                             expiry, heartbeat-renewed): independent
                             processes sharing the root build every
                             trace and result exactly once, and steal
                             a crashed holder's lease after its TTL

``TraceStore(max_bytes=..., policy="lru")`` (or
``$REPRO_STORE_MAX_BYTES``) turns on eviction: ``store.gc()`` — also
run after every put — drops least-recently-used **result entries
first, then traces**, stops the moment the budget is met, and never
unlinks an entry a reader has pinned.  A legacy flat-layout store
migrates losslessly into shards the first time it is opened.
``repro store stats`` / ``repro store gc`` expose the same machinery
on the command line.
"""

from .campaign import (
    DEFAULT_CACHES,
    DEFAULT_PAGE_SIZES,
    DEFAULT_PES,
    CampaignSpec,
    KernelSpec,
)
from .executor import CampaignStream, default_workers, run_campaign, run_grid
from .results import CampaignResult, EvalRecord
from .store import (
    INDEX_FORMAT_VERSION,
    LEASE_TTL_S,
    RESULT_FORMAT_VERSION,
    STORE_MAX_BYTES_ENV,
    TRACE_STORE_ENV,
    GCReport,
    ResultKey,
    StoreCounters,
    TraceKey,
    TraceStore,
    build_trace,
    default_store,
    interpretation_count,
    kernel_trace_cached,
    kernel_trace_key,
    set_default_store,
    shard_of,
)

__all__ = [
    "DEFAULT_CACHES",
    "DEFAULT_PAGE_SIZES",
    "DEFAULT_PES",
    "INDEX_FORMAT_VERSION",
    "LEASE_TTL_S",
    "RESULT_FORMAT_VERSION",
    "STORE_MAX_BYTES_ENV",
    "TRACE_STORE_ENV",
    "CampaignResult",
    "CampaignSpec",
    "CampaignStream",
    "EvalRecord",
    "GCReport",
    "KernelSpec",
    "ResultKey",
    "StoreCounters",
    "TraceKey",
    "TraceStore",
    "build_trace",
    "default_store",
    "default_workers",
    "interpretation_count",
    "kernel_trace_cached",
    "kernel_trace_key",
    "run_campaign",
    "run_grid",
    "set_default_store",
    "shard_of",
]
