"""repro.engine — the system's single evaluation surface.

The production layer between the pluggable evaluation backends
(:mod:`repro.backends`) and the bench/CLI surface, exploiting the
paper's trace-once / sweep-many structure at scale:

* :mod:`~repro.engine.store` — content-addressed ``.npz`` stores for
  *traces* (a kernel is interpreted once per machine, ever — the
  single trace-acquisition path) and for *results* (an evaluation is
  pure in ``(trace, scenario, backend)``, so re-running an identical
  campaign skips simulation entirely), both with hit/miss counters;
* :mod:`~repro.engine.campaign` — declarative sweep specs (kernels ×
  PEs × page sizes × caches × policies × partitions, plus the timed
  backend's topologies × modes × cost models), JSON in and out;
* :mod:`~repro.engine.executor` — a multiprocessing fan-out that
  dispatches through the backend registry, with copy-on-write trace
  sharing, deterministic result ordering, a serial fallback, and
  streaming (:class:`~repro.engine.executor.CampaignStream`) for
  progress on long sweeps;
* :mod:`~repro.engine.results` — backend-tagged typed records with
  bit-exact comparison and JSON export.

Quickstart::

    from repro.engine import CampaignSpec, run_campaign

    spec = CampaignSpec(
        name="demo",
        kernels=("hydro_fragment", "iccg"),
        pes=(1, 4, 16, 64),
        page_sizes=(32, 64),
        cache_elems=(256, 0),
    )
    result = run_campaign(spec)           # parallel, store-backed
    print(result.to_json())

    timed = CampaignSpec(
        name="demo-timed",
        backend="timed",                  # same engine, timed model
        kernels=("hydro_fragment",),
        pes=(4, 16),
        topologies=("mesh2d", "torus2d"),
        modes=("blocking", "multithreaded"),
    )
    for record in run_campaign(timed, stream=True):   # progress
        print(record.index, record.metrics["speedup"])
"""

from .campaign import (
    DEFAULT_CACHES,
    DEFAULT_PAGE_SIZES,
    DEFAULT_PES,
    CampaignSpec,
    KernelSpec,
)
from .executor import CampaignStream, default_workers, run_campaign, run_grid
from .results import CampaignResult, EvalRecord
from .store import (
    RESULT_FORMAT_VERSION,
    TRACE_STORE_ENV,
    ResultKey,
    StoreCounters,
    TraceKey,
    TraceStore,
    build_trace,
    default_store,
    interpretation_count,
    kernel_trace_cached,
    kernel_trace_key,
    set_default_store,
)

__all__ = [
    "DEFAULT_CACHES",
    "DEFAULT_PAGE_SIZES",
    "DEFAULT_PES",
    "RESULT_FORMAT_VERSION",
    "TRACE_STORE_ENV",
    "CampaignResult",
    "CampaignSpec",
    "CampaignStream",
    "EvalRecord",
    "KernelSpec",
    "ResultKey",
    "StoreCounters",
    "TraceKey",
    "TraceStore",
    "build_trace",
    "default_store",
    "default_workers",
    "interpretation_count",
    "kernel_trace_cached",
    "kernel_trace_key",
    "run_campaign",
    "run_grid",
    "set_default_store",
]
