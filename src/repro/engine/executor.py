"""Backend-dispatched campaign execution: parallel, cached, streamable.

The unit of work is one ``evaluate_scenario(trace, scenario)`` call —
pure, deterministic, and independent of every other point, so a
campaign fans out embarrassingly across cores whatever the backend.
Traces are loaded (or pulled from the :mod:`store
<repro.engine.store>`) exactly once in the parent and *shared* with
the workers: under the ``fork`` start method the worker pool inherits
the parent's trace table copy-on-write, paying zero serialisation
cost; under ``spawn``/``forkserver`` the table is shipped once per
worker through the pool initializer.  Serial execution never touches
shared state, so any number of campaigns/streams can be in flight in
one process.

Jobs carry their position in the spec's canonical enumeration and
results are reassembled by that index, so the parallel executor
returns records in exactly the serial order — bit-identical output,
whatever the scheduling interleaving (asserted by the test suite).
The pool is created lazily, on first iteration; if it cannot be
created at all (restricted sandboxes without working process
primitives), execution degrades to the serial path with a warning
rather than failing.

Three engine features ride on the same job indexing:

* **result caching** — each job is content-addressed as
  ``(trace digest, scenario digest, backend)`` in the store; hits skip
  evaluation entirely (a fully-cached campaign does not even load its
  traces) and fresh outcomes are persisted for the next run (disable
  with ``use_cache=False``).  Points another in-flight campaign has
  already *claimed* are not re-evaluated either: the stream waits for
  the peer's result and replays it from the store, so two concurrent
  campaigns over one store build every shared entry exactly once;
* **streaming** — ``run_campaign(..., stream=True)`` returns a
  :class:`CampaignStream` that yields backend-tagged records as
  workers complete them (cache hits first), for progress reporting on
  long sweeps; ``stream.result()`` drains it into the same
  canonically-ordered :class:`CampaignResult` a non-streaming run
  produces;
* **write-ahead store accounting** — every evaluated job logs a touch
  record for its trace (:func:`repro.engine.store.append_touch`):
  workers to per-process files the parent merges into the store index
  on campaign completion (access times for the GC's LRU order,
  hit/miss counters, worker-side evaluation counts folded into
  :func:`repro.backends.evaluation_count` via
  :func:`~repro.backends.base.record_evaluations`), so the index is
  never written from inside a pool worker.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import time
import uuid
import warnings
from itertools import count
from typing import Iterator, Sequence

from ..backends import EvalOutcome, Scenario, evaluate_scenario
from ..backends.base import record_evaluations
from ..core.simulator import MachineConfig
from ..ir.trace import Trace
from .campaign import CampaignSpec, KernelSpec
from .results import CampaignResult, EvalRecord
from .store import (
    ResultKey,
    TraceStore,
    append_touch,
    default_store,
    kernel_trace_key,
)

__all__ = ["CampaignStream", "default_workers", "run_campaign", "run_grid"]

#: Traces published to pool workers, keyed by "<launch>:<label>" so
#: concurrent parallel campaigns never collide.  A launch's entries
#: live exactly as long as its pool (fork children — including
#: replacements for workers that die mid-run — inherit the table
#: copy-on-write at fork time; spawn children receive it through
#: ``_init_worker``) and are removed when the pool closes.
_SHARED_TRACES: dict[str, Trace] = {}

#: Worker-side (touch_dir, tag) for write-ahead access logging; set by
#: the pool initializer (it runs in every worker, whatever the start
#: method), never in the parent.
_WORKER_TOUCH: tuple[str, str] | None = None

#: Distinguishes concurrent launches in ``_SHARED_TRACES``.
_launch_ids = count()

#: A job is (canonical index, trace label, trace ref, scenario); the
#: ref is the store-index key of the trace the job evaluates ("" when
#: the trace is not store-backed, e.g. ``run_grid`` on a bare trace).
_Job = tuple[int, str, str, Scenario]

#: How long a stream waits for a peer campaign's claimed point before
#: giving up and evaluating it locally.
_CLAIM_TIMEOUT_S = 120.0


def default_workers() -> int:
    """Worker count when unspecified: one per available core."""
    return max(1, os.cpu_count() or 1)


def _init_worker(
    traces: dict[str, Trace] | None, touch: tuple[str, str] | None
) -> None:
    global _WORKER_TOUCH
    _WORKER_TOUCH = touch
    if traces is not None:  # spawn/forkserver: table arrives pickled
        _SHARED_TRACES.clear()
        _SHARED_TRACES.update(traces)


def _eval_job(job: _Job) -> tuple[int, EvalOutcome]:
    """Pool-worker entry point: evaluate against the inherited table."""
    index, label, ref, scenario = job
    outcome = evaluate_scenario(_SHARED_TRACES[label], scenario)
    if _WORKER_TOUCH is not None and ref:
        touch_dir, tag = _WORKER_TOUCH
        # Write-ahead: one access record per evaluation, to this
        # worker's own file.  ``evals=1`` carries the worker-side
        # evaluation count home (the parent's counter never saw it).
        append_touch(touch_dir, tag, ref, evals=1)
    return index, outcome


def _iter_parallel(
    jobs: Sequence[_Job],
    traces: dict[str, Trace],
    workers: int,
    touch: tuple[str, str] | None,
) -> Iterator[tuple[int, EvalOutcome]]:
    methods = mp.get_all_start_methods()
    ctx = mp.get_context("fork" if "fork" in methods else None)
    fork = ctx.get_start_method() == "fork"
    chunksize = max(1, len(jobs) // (workers * 4))
    # Namespace this launch's table entries and keep them published for
    # the pool's whole lifetime, so replacement workers forked after a
    # worker death still inherit a complete table while concurrent
    # launches cannot collide.
    launch = next(_launch_ids)
    namespaced = {f"{launch}:{label}": t for label, t in traces.items()}
    jobs = [
        (index, f"{launch}:{label}", ref, scenario)
        for index, label, ref, scenario in jobs
    ]
    initargs = (None, touch) if fork else (namespaced, touch)
    _SHARED_TRACES.update(namespaced)
    try:
        pool = ctx.Pool(
            processes=workers, initializer=_init_worker, initargs=initargs
        )
    except BaseException:
        for key in namespaced:
            _SHARED_TRACES.pop(key, None)
        raise

    def results() -> Iterator[tuple[int, EvalOutcome]]:
        try:
            with pool:
                yield from pool.imap_unordered(_eval_job, jobs, chunksize)
        finally:
            for key in namespaced:
                _SHARED_TRACES.pop(key, None)

    return results()


class _JobRunner:
    """Lazily executes a job list; the pool is created on first use.

    Nothing happens at construction beyond deciding the plan, so a
    runner that is never iterated starts no processes and leaks
    nothing.  ``description`` reports how the jobs actually ran
    ("serial", "parallel[N]", or "serial-fallback" if the pool could
    not be created) and is final once iteration has begun.
    """

    def __init__(
        self,
        jobs: Sequence[_Job],
        traces: dict[str, Trace],
        parallel: bool,
        workers: int | None,
        touch: tuple[str, str] | None = None,
    ) -> None:
        self._jobs = jobs
        self._traces = traces
        self._touch = touch
        self._parallel = parallel and len(jobs) >= 2
        self._workers = (
            min(workers or default_workers(), len(jobs))
            if self._parallel
            else 0
        )
        self.description = (
            f"parallel[{self._workers}]" if self._parallel else "serial"
        )

    def _serial(self) -> Iterator[tuple[int, EvalOutcome]]:
        for index, label, ref, scenario in self._jobs:
            outcome = evaluate_scenario(self._traces[label], scenario)
            if self._touch is not None and ref:
                # Same write-ahead record the workers produce, with
                # evals=0: the parent's evaluation counter already saw
                # this one, only the access time / hit count is news.
                touch_dir, tag = self._touch
                append_touch(touch_dir, tag, ref, evals=0)
            yield index, outcome

    def __iter__(self) -> Iterator[tuple[int, EvalOutcome]]:
        if not self._parallel:
            yield from self._serial()
            return
        try:
            pairs = _iter_parallel(
                self._jobs, self._traces, self._workers, self._touch
            )
        except OSError as exc:
            warnings.warn(
                f"worker pool unavailable ({exc}); falling back to serial",
                RuntimeWarning,
                stacklevel=2,
            )
            self.description = "serial-fallback"
            yield from self._serial()
            return
        yield from pairs


def run_grid(
    trace: Trace,
    scenarios: Sequence[Scenario | MachineConfig],
    *,
    parallel: bool = False,
    workers: int | None = None,
) -> list[EvalOutcome]:
    """Evaluate one trace under many scenarios, in input order.

    The engine primitive beneath :class:`repro.bench.Sweep`: serial by
    default (cheap grids are dominated by pool startup), parallel on
    request, identical results either way.  Bare
    :class:`MachineConfig` items are coerced to untimed scenarios.
    """
    coerced = [
        s if isinstance(s, Scenario) else Scenario(config=s)
        for s in scenarios
    ]
    jobs: list[_Job] = [(i, "", "", s) for i, s in enumerate(coerced)]
    results = dict(_JobRunner(jobs, {"": trace}, parallel, workers))
    return [results[i] for i in range(len(coerced))]


class CampaignStream:
    """A campaign in flight: iterate records as they complete.

    Construction resolves cache hits, *claims* the points it will
    compute (so a concurrent campaign over the same store defers to
    this one instead of re-evaluating them) and plans the remaining
    jobs — traces are loaded only for kernels that actually need
    evaluating; worker processes start on first iteration.  Iterating
    yields :class:`EvalRecord` objects in *completion* order — cache
    hits first (canonical order), then live evaluations as workers
    finish them, then points replayed from peer campaigns — each
    tagged with its canonical ``index``.  :meth:`result` drains
    whatever has not been consumed and assembles the canonical-order
    :class:`CampaignResult`.  On completion the stream folds the
    write-ahead touch files back into the store index and releases any
    claims it still holds.
    """

    def __init__(
        self,
        spec: CampaignSpec,
        *,
        store: TraceStore | None = None,
        parallel: bool = True,
        workers: int | None = None,
        use_cache: bool = True,
    ) -> None:
        from .store import kernel_trace_cached

        self.spec = spec
        self._store = store if store is not None else default_store()
        self._use_cache = use_cache
        self._started = time.perf_counter()
        # The tag namespacing this campaign's write-ahead touch files:
        # spec identity for attribution, a nonce for uniqueness when
        # the same spec runs twice concurrently.
        self._touch_tag = f"{spec.digest[:8]}-{uuid.uuid4().hex[:8]}"
        #: shape of every trace *acquired for this run* (a fully-cached
        #: campaign loads no traces and records no shapes)
        self.trace_meta: dict[str, dict[str, int]] = {}
        self._records: list[EvalRecord] = []

        trace_keys = {
            kernel.label: kernel_trace_key(
                kernel.name, n=kernel.n, seed=kernel.seed
            )
            for kernel in spec.kernels
        }
        self._points: list[tuple[KernelSpec, Scenario]] = list(spec.points())
        self._cached: list[tuple[int, EvalOutcome]] = []
        self._result_keys: dict[int, ResultKey] = {}
        #: indexes whose result claim this stream currently owns
        self._owned_claims: set[int] = set()
        #: points a peer campaign claimed first: (index, event)
        self._deferred: list[tuple[int, object]] = []
        pending: list[tuple[int, KernelSpec, Scenario]] = []
        for index, (kernel, scenario) in enumerate(self._points):
            if self._use_cache:
                key = ResultKey(
                    trace_digest=trace_keys[kernel.label].digest,
                    scenario_digest=scenario.digest,
                    backend=scenario.backend,
                )
                self._result_keys[index] = key
                outcome = self._store.lookup_result(key)
                if outcome is not None:
                    self._cached.append((index, outcome))
                    continue
                event = self._store.claim_result(key)
                if event is not None:
                    # Another in-flight campaign is computing this
                    # exact point: replay its result instead of
                    # building the cache entry twice.
                    self._deferred.append((index, event))
                    continue
                # Won the claim — but a peer may have delivered this
                # point between our miss and the claim; re-check
                # (uncounted) before planning an evaluation.
                outcome = self._store.lookup_result(key, count=False)
                if outcome is not None:
                    self._store.abandon_result_claim(key)
                    self._cached.append((index, outcome))
                    continue
                self._owned_claims.add(index)
            pending.append((index, kernel, scenario))

        try:
            # Acquire traces only for kernels with work left to do.
            traces: dict[str, Trace] = {}
            for kernel in spec.kernels:
                if not any(k.label == kernel.label for _i, k, _s in pending):
                    continue
                trace = kernel_trace_cached(
                    kernel.name,
                    n=kernel.n,
                    seed=kernel.seed,
                    store=self._store,
                )
                traces[kernel.label] = trace
                self.trace_meta[kernel.label] = {
                    "n_instances": trace.n_instances,
                    "n_reads": trace.n_reads,
                }
        except BaseException:
            # Claims were taken above; a failed construction must not
            # leave peers blocked on events nobody will ever set.
            for index in sorted(self._owned_claims):
                self._store.abandon_result_claim(self._result_keys[index])
            self._owned_claims.clear()
            raise

        jobs: list[_Job] = [
            (i, k.label, trace_keys[k.label].ref, s) for i, k, s in pending
        ]
        self._runner = _JobRunner(
            jobs,
            traces,
            parallel,
            workers,
            touch=(str(self._store.touch_dir), self._touch_tag),
        )
        self._iterator = self._generate()

    @property
    def executor(self) -> str:
        """How the campaign ran (final once iteration has begun)."""
        description = self._runner.description
        if self._cached:
            description += f"+cache[{len(self._cached)}/{self.spec.n_points}]"
        if self._deferred:
            description += (
                f"+shared[{len(self._deferred)}/{self.spec.n_points}]"
            )
        return description

    def __len__(self) -> int:
        return self.spec.n_points

    def _record(self, index: int, outcome: EvalOutcome) -> EvalRecord:
        kernel, _scenario = self._points[index]
        return EvalRecord(kernel=kernel, outcome=outcome, index=index)

    def _resolve_deferred(self, index: int, event) -> EvalOutcome:
        """Replay a point a peer campaign claimed (compute if it died)."""
        from .store import kernel_trace_cached

        event.wait(timeout=_CLAIM_TIMEOUT_S)
        key = self._result_keys[index]
        outcome = self._store.lookup_result(key)
        if outcome is None:
            # The peer abandoned its claim (error, or its stream was
            # dropped un-iterated): fall back to evaluating locally.
            kernel, scenario = self._points[index]
            trace = kernel_trace_cached(
                kernel.name, n=kernel.n, seed=kernel.seed, store=self._store
            )
            outcome = evaluate_scenario(trace, scenario)
            self._store.put_result(key, outcome)
        return outcome

    def _generate(self) -> Iterator[EvalRecord]:
        runner_iter = iter(self._runner)
        try:
            for index, outcome in self._cached:
                record = self._record(index, outcome)
                self._records.append(record)
                yield record
            for index, outcome in runner_iter:
                if self._use_cache:
                    self._store.put_result(self._result_keys[index], outcome)
                    self._owned_claims.discard(index)
                record = self._record(index, outcome)
                self._records.append(record)
                yield record
            for index, event in self._deferred:
                record = self._record(
                    index, self._resolve_deferred(index, event)
                )
                self._records.append(record)
                yield record
        finally:
            # Stop the runner (and its worker pool) *before* merging,
            # so an early-abandoned stream cannot leave workers
            # appending touch records after their files were swept.
            close = getattr(runner_iter, "close", None)
            if close is not None:
                close()
            # Wake any peer waiting on a point this stream never
            # delivered (abandoned mid-iteration or errored).
            for index in sorted(self._owned_claims):
                self._store.abandon_result_claim(self._result_keys[index])
            self._owned_claims.clear()
            # Fold this campaign's write-ahead touch files into the
            # index: access times feed the GC's LRU order, and the
            # workers' evaluation counts join the process counter.
            merged = self._store.merge_touches(self._touch_tag)
            if merged["evaluations"]:
                record_evaluations(merged["evaluations"])

    def __iter__(self) -> Iterator[EvalRecord]:
        """Single-pass: every record is yielded exactly once."""
        return self._iterator

    def result(self) -> CampaignResult:
        """Drain any unconsumed records and assemble the final result."""
        for _record in self._iterator:
            pass
        return CampaignResult.from_records(
            self.spec,
            self._records,
            trace_meta=self.trace_meta,
            executor=self.executor,
            elapsed_s=time.perf_counter() - self._started,
            store_stats=self._store.stats(),
        )


def run_campaign(
    spec: CampaignSpec,
    *,
    store: TraceStore | None = None,
    parallel: bool = True,
    workers: int | None = None,
    stream: bool = False,
    use_cache: bool = True,
) -> CampaignResult | CampaignStream:
    """Execute a campaign: acquire traces once, fan scenarios out.

    Traces come from ``store`` (the default store when ``None``) —
    interpreted at most once per machine, then replayed from ``.npz``.
    Evaluations dispatch through the backend registry, so the same
    call runs untimed and timed campaigns alike.  With ``use_cache``
    (the default) previously-evaluated points replay from the store's
    result cache without simulating, and points a concurrent campaign
    has claimed are awaited rather than re-built.  ``stream=True``
    returns a :class:`CampaignStream` yielding records as they
    complete; otherwise records arrive assembled in the spec's
    canonical order regardless of how the pool interleaved the work.
    """
    s = CampaignStream(
        spec,
        store=store,
        parallel=parallel,
        workers=workers,
        use_cache=use_cache,
    )
    return s if stream else s.result()
