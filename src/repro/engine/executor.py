"""Process-parallel campaign execution with a serial twin.

The unit of work is one ``simulate(trace, config)`` call — pure,
deterministic, and independent of every other point, so a campaign
fans out embarrassingly across cores.  Traces are loaded (or pulled
from the :mod:`store <repro.engine.store>`) exactly once in the parent
and *shared* with the workers: under the ``fork`` start method the
worker pool inherits the parent's trace table copy-on-write, paying
zero serialisation cost; under ``spawn``/``forkserver`` the table is
shipped once per worker through the pool initializer.

Jobs carry their position in the spec's canonical enumeration and
results are reassembled by that index, so the parallel executor
returns records in exactly the serial order — bit-identical output,
whatever the scheduling interleaving (asserted by the test suite).
If a pool cannot be created at all (restricted sandboxes without
working process primitives), execution degrades to the serial path
with a warning rather than failing.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import time
import warnings
from typing import Sequence

from ..core.simulator import MachineConfig, SimResult, simulate
from ..ir.trace import Trace
from .campaign import CampaignSpec
from .results import CampaignResult
from .store import TraceStore, kernel_trace_cached

__all__ = ["default_workers", "run_campaign", "run_grid"]

#: Traces published to pool workers.  Populated in the parent right
#: before the pool is created: fork children inherit it copy-on-write;
#: spawn children receive the same table through ``_init_worker``.
_SHARED_TRACES: dict[str, Trace] = {}

#: A job is (canonical index, trace label, machine configuration).
_Job = tuple[int, str, MachineConfig]


def default_workers() -> int:
    """Worker count when unspecified: one per available core."""
    return max(1, os.cpu_count() or 1)


def _init_worker(traces: dict[str, Trace] | None) -> None:
    if traces is not None:  # spawn/forkserver: table arrives pickled
        _SHARED_TRACES.clear()
        _SHARED_TRACES.update(traces)


def _eval_job(job: _Job) -> tuple[int, SimResult]:
    index, label, config = job
    return index, simulate(_SHARED_TRACES[label], config)


def _run_serial(jobs: Sequence[_Job]) -> dict[int, SimResult]:
    return dict(_eval_job(job) for job in jobs)


def _run_parallel(
    jobs: Sequence[_Job], traces: dict[str, Trace], workers: int
) -> dict[int, SimResult]:
    methods = mp.get_all_start_methods()
    ctx = mp.get_context("fork" if "fork" in methods else None)
    fork = ctx.get_start_method() == "fork"
    # fork children inherit the already-populated _SHARED_TRACES
    # copy-on-write; other start methods get the table pickled once
    # per worker through the initializer.
    initargs = (None,) if fork else (traces,)
    chunksize = max(1, len(jobs) // (workers * 4))
    with ctx.Pool(
        processes=workers, initializer=_init_worker, initargs=initargs
    ) as pool:
        return dict(pool.map(_eval_job, jobs, chunksize=chunksize))


def _execute(
    jobs: Sequence[_Job],
    traces: dict[str, Trace],
    parallel: bool,
    workers: int | None,
) -> tuple[dict[int, SimResult], str]:
    """Run all jobs; returns (index→result, executor description)."""
    _SHARED_TRACES.clear()
    _SHARED_TRACES.update(traces)
    try:
        if not parallel or len(jobs) < 2:
            return _run_serial(jobs), "serial"
        n_workers = min(workers or default_workers(), len(jobs))
        try:
            return (
                _run_parallel(jobs, traces, n_workers),
                f"parallel[{n_workers}]",
            )
        except OSError as exc:
            warnings.warn(
                f"worker pool unavailable ({exc}); falling back to serial",
                RuntimeWarning,
                stacklevel=3,
            )
            return _run_serial(jobs), "serial-fallback"
    finally:
        _SHARED_TRACES.clear()


def run_grid(
    trace: Trace,
    configs: Sequence[MachineConfig],
    *,
    parallel: bool = False,
    workers: int | None = None,
) -> list[SimResult]:
    """Evaluate one trace under many configurations, in input order.

    The engine primitive beneath :class:`repro.bench.Sweep`: serial by
    default (cheap grids are dominated by pool startup), parallel on
    request, identical results either way.
    """
    configs = list(configs)
    jobs: list[_Job] = [(i, "", config) for i, config in enumerate(configs)]
    results, _ = _execute(jobs, {"": trace}, parallel, workers)
    return [results[i] for i in range(len(configs))]


def run_campaign(
    spec: CampaignSpec,
    *,
    store: TraceStore | None = None,
    parallel: bool = True,
    workers: int | None = None,
) -> CampaignResult:
    """Execute a campaign: acquire traces once, fan configurations out.

    Traces come from ``store`` (the default store when ``None``) —
    interpreted at most once per machine, then replayed from ``.npz``.
    Results arrive in the spec's canonical order regardless of how the
    pool interleaved the work.
    """
    started = time.perf_counter()
    traces: dict[str, Trace] = {}
    trace_meta: dict[str, dict[str, int]] = {}
    for kernel in spec.kernels:
        trace = kernel_trace_cached(
            kernel.name, n=kernel.n, seed=kernel.seed, store=store
        )
        traces[kernel.label] = trace
        trace_meta[kernel.label] = {
            "n_instances": trace.n_instances,
            "n_reads": trace.n_reads,
        }
    jobs: list[_Job] = [
        (i, kernel.label, config)
        for i, (kernel, config) in enumerate(spec.points())
    ]
    results, executor = _execute(jobs, traces, parallel, workers)
    return CampaignResult.from_mapping(
        spec,
        results,
        trace_meta=trace_meta,
        executor=executor,
        elapsed_s=time.perf_counter() - started,
    )
