"""Backend-dispatched campaign execution: parallel, cached, streamable.

The unit of work is one ``evaluate_scenario(trace, scenario)`` call —
pure, deterministic, and independent of every other point, so a
campaign fans out embarrassingly across cores whatever the backend.
Traces are loaded (or pulled from the :mod:`store
<repro.engine.store>`) exactly once in the parent and *shared* with
the workers: under the ``fork`` start method the worker pool inherits
the parent's trace table copy-on-write, paying zero serialisation
cost; under ``spawn``/``forkserver`` the table is shipped once per
worker through the pool initializer.  Serial execution never touches
shared state, so any number of campaigns/streams can be in flight in
one process.

Jobs carry their position in the spec's canonical enumeration and
results are reassembled by that index, so the parallel executor
returns records in exactly the serial order — bit-identical output,
whatever the scheduling interleaving (asserted by the test suite).
The pool is created lazily, on first iteration; if it cannot be
created at all (restricted sandboxes without working process
primitives), execution degrades to the serial path with a warning
rather than failing.

Three engine features ride on the same job indexing:

* **result caching** — each job is content-addressed as
  ``(trace digest, scenario digest, backend)`` in the store; hits skip
  evaluation entirely (a fully-cached campaign does not even load its
  traces) and fresh outcomes are persisted for the next run (disable
  with ``use_cache=False``).  Points another in-flight campaign has
  already *claimed* are not re-evaluated either: the stream waits for
  the peer's result and replays it from the store, so two concurrent
  campaigns over one store build every shared entry exactly once;
* **streaming** — ``run_campaign(..., stream=True)`` returns a
  :class:`CampaignStream` that yields backend-tagged records as
  workers complete them (cache hits first), for progress reporting on
  long sweeps; ``stream.result()`` drains it into the same
  canonically-ordered :class:`CampaignResult` a non-streaming run
  produces;
* **write-ahead store accounting** — every evaluated job logs a touch
  record for its trace (:func:`repro.engine.store.append_touch`):
  workers to per-process files the parent merges into the store index
  on campaign completion (access times for the GC's LRU order,
  hit/miss counters, worker-side evaluation counts folded into
  :func:`repro.backends.evaluation_count` via
  :func:`~repro.backends.base.record_evaluations`), so the index is
  never written from inside a pool worker.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import time
import uuid
import warnings
from itertools import count
from typing import Iterator, Sequence

from .. import obs
from ..backends import EvalOutcome, Scenario, evaluate_scenario, get_backend
from ..backends.base import record_evaluations
from ..core.simulator import MachineConfig
from ..ir.trace import Trace
from .campaign import CampaignSpec, KernelSpec
from .results import CampaignResult, EvalRecord
from .store import (
    ResultKey,
    TraceStore,
    append_touch,
    default_store,
    kernel_trace_key,
)

__all__ = ["CampaignStream", "default_workers", "run_campaign", "run_grid"]

#: Traces published to pool workers, keyed by "<launch>:<label>" so
#: concurrent parallel campaigns never collide.  A launch's entries
#: live exactly as long as its pool (fork children — including
#: replacements for workers that die mid-run — inherit the table
#: copy-on-write at fork time; spawn children receive it through
#: ``_init_worker``) and are removed when the pool closes.
_SHARED_TRACES: dict[str, Trace] = {}

#: Worker-side (touch_dir, tag) for write-ahead access logging; set by
#: the pool initializer (it runs in every worker, whatever the start
#: method), never in the parent.
_WORKER_TOUCH: tuple[str, str] | None = None

#: Distinguishes concurrent launches in ``_SHARED_TRACES``.
_launch_ids = count()

#: A job is (canonical index, trace label, trace ref, scenario); the
#: ref is the store-index key of the trace the job evaluates ("" when
#: the trace is not store-backed, e.g. ``run_grid`` on a bare trace).
_Job = tuple[int, str, str, Scenario]

#: How long a stream waits for a peer campaign's claimed point before
#: giving up and evaluating it locally.
_CLAIM_TIMEOUT_S = 120.0


def default_workers() -> int:
    """Worker count when unspecified: one per available core."""
    return max(1, os.cpu_count() or 1)


def _init_worker(
    traces: dict[str, Trace] | None, touch: tuple[str, str] | None
) -> None:
    global _WORKER_TOUCH
    _WORKER_TOUCH = touch
    if traces is not None:  # spawn/forkserver: table arrives pickled
        _SHARED_TRACES.clear()
        _SHARED_TRACES.update(traces)


def _eval_job(job: _Job) -> tuple[int, EvalOutcome, float]:
    """Pool-worker entry point: evaluate against the inherited table."""
    index, label, ref, scenario = job
    t0 = time.perf_counter()
    with obs.span("engine.evaluate", index=index):
        outcome = evaluate_scenario(_SHARED_TRACES[label], scenario)
    wall = time.perf_counter() - t0
    if _WORKER_TOUCH is not None and ref:
        touch_dir, tag = _WORKER_TOUCH
        # Write-ahead: one access record per evaluation, to this
        # worker's own file.  ``evals=1`` carries the worker-side
        # evaluation count home (the parent's counter never saw it).
        append_touch(touch_dir, tag, ref, evals=1)
    return index, outcome, wall


def _iter_parallel(
    jobs: Sequence[_Job],
    traces: dict[str, Trace],
    workers: int,
    touch: tuple[str, str] | None,
) -> Iterator[tuple[int, EvalOutcome, float]]:
    methods = mp.get_all_start_methods()
    ctx = mp.get_context("fork" if "fork" in methods else None)
    fork = ctx.get_start_method() == "fork"
    chunksize = max(1, len(jobs) // (workers * 4))
    # Namespace this launch's table entries and keep them published for
    # the pool's whole lifetime, so replacement workers forked after a
    # worker death still inherit a complete table while concurrent
    # launches cannot collide.
    launch = next(_launch_ids)
    namespaced = {f"{launch}:{label}": t for label, t in traces.items()}
    jobs = [
        (index, f"{launch}:{label}", ref, scenario)
        for index, label, ref, scenario in jobs
    ]
    initargs = (None, touch) if fork else (namespaced, touch)
    _SHARED_TRACES.update(namespaced)
    try:
        pool = ctx.Pool(
            processes=workers, initializer=_init_worker, initargs=initargs
        )
    except BaseException:
        for key in namespaced:
            _SHARED_TRACES.pop(key, None)
        raise

    def results() -> Iterator[tuple[int, EvalOutcome, float]]:
        try:
            with pool:
                yield from pool.imap_unordered(_eval_job, jobs, chunksize)
        finally:
            for key in namespaced:
                _SHARED_TRACES.pop(key, None)

    return results()


class _JobRunner:
    """Lazily executes a job list; the pool is created on first use.

    Nothing happens at construction beyond deciding the plan, so a
    runner that is never iterated starts no processes and leaks
    nothing.  ``description`` reports how the jobs actually ran
    ("serial", "parallel[N]", or "serial-fallback" if the pool could
    not be created) and is final once iteration has begun.
    """

    def __init__(
        self,
        jobs: Sequence[_Job],
        traces: dict[str, Trace],
        parallel: bool,
        workers: int | None,
        touch: tuple[str, str] | None = None,
        trace_paths: dict[str, str] | None = None,
    ) -> None:
        self._jobs = jobs
        self._traces = traces
        self._touch = touch
        self._trace_paths = trace_paths or {}
        # A dispatching backend (the shared evaluation service) takes
        # whole job lists instead of having a pool forked around it:
        # submitting through it is what lets N concurrent campaigns
        # share one resident worker pool.  Dispatch applies only to a
        # *homogeneous* job list — a dispatcher evaluates with one
        # delegate, so handing it a mixed grid would silently swap
        # physics, and sending service jobs into forked pool workers
        # would spawn a nested service per worker.  Campaigns are
        # homogeneous by construction; a mixed parallel run_grid must
        # split (serially, mixed grids dispatch per scenario).
        self._dispatcher = None
        if jobs:
            backends = {scenario.backend for _i, _l, _r, scenario in jobs}
            dispatching = {
                name
                for name in backends
                if hasattr(get_backend(name), "dispatch_jobs")
            }
            if dispatching and len(backends) > 1:
                if parallel:
                    raise ValueError(
                        f"cannot mix dispatching backend(s) "
                        f"{sorted(dispatching)} with other backends "
                        f"{sorted(backends - dispatching)} in one "
                        "parallel grid; run them as separate grids "
                        "(or serially)"
                    )
            elif dispatching:
                self._dispatcher = get_backend(next(iter(backends)))
        #: dispatch the whole list at once (parallel) vs one job at a
        #: time (serial pacing, but still through the resident pool so
        #: traces ship by path instead of being pickled per job)
        self._bulk_dispatch = parallel and self._dispatcher is not None
        self._parallel = (
            parallel and len(jobs) >= 2 and self._dispatcher is None
        )
        self._workers = (
            min(workers or default_workers(), len(jobs))
            if self._parallel
            else 0
        )
        if self._bulk_dispatch:
            # dispatch_label is optional on the dispatching-backend
            # extension; fall back to a generic tag for custom
            # backends that only implement dispatch_jobs.
            label = getattr(self._dispatcher, "dispatch_label", None)
            self.description = (
                label() if label else f"dispatch[{self._dispatcher.name}]"
            )
        else:
            self.description = (
                f"parallel[{self._workers}]" if self._parallel else "serial"
            )

    def _serial(self) -> Iterator[tuple[int, EvalOutcome, float]]:
        for index, label, ref, scenario in self._jobs:
            t0 = time.perf_counter()
            with obs.span("engine.evaluate", index=index):
                outcome = evaluate_scenario(self._traces[label], scenario)
            wall = time.perf_counter() - t0
            if self._touch is not None and ref:
                # Same write-ahead record the workers produce, with
                # evals=0: the parent's evaluation counter already saw
                # this one, only the access time / hit count is news.
                touch_dir, tag = self._touch
                append_touch(touch_dir, tag, ref, evals=0)
            yield index, outcome, wall

    @staticmethod
    def _with_wall(
        items: Iterator[tuple],
    ) -> Iterator[tuple[int, EvalOutcome, float]]:
        """Normalise dispatcher output: old-style (index, outcome)
        pairs from custom dispatching backends gain ``wall=None``."""
        for item in items:
            if len(item) == 2:
                index, outcome = item
                yield index, outcome, None
            else:
                yield item

    def __iter__(self) -> Iterator[tuple[int, EvalOutcome, float]]:
        if self._dispatcher is not None:
            if self._bulk_dispatch:
                yield from self._with_wall(
                    self._dispatcher.dispatch_jobs(
                        self._jobs,
                        self._traces,
                        self._touch,
                        trace_paths=self._trace_paths,
                    )
                )
            else:
                # Serial pacing, same machinery: one job in flight at
                # a time, but still through the dispatcher, so traces
                # travel by artifact path and resident workers memoise
                # them instead of unpickling the trace per point.
                for job in self._jobs:
                    yield from self._with_wall(
                        self._dispatcher.dispatch_jobs(
                            [job],
                            self._traces,
                            self._touch,
                            trace_paths=self._trace_paths,
                        )
                    )
            return
        if not self._parallel:
            yield from self._serial()
            return
        try:
            pairs = _iter_parallel(
                self._jobs, self._traces, self._workers, self._touch
            )
        except OSError as exc:
            warnings.warn(
                f"worker pool unavailable ({exc}); falling back to serial",
                RuntimeWarning,
                stacklevel=2,
            )
            self.description = "serial-fallback"
            yield from self._serial()
            return
        yield from pairs


def run_grid(
    trace: Trace,
    scenarios: Sequence[Scenario | MachineConfig],
    *,
    parallel: bool = False,
    workers: int | None = None,
) -> list[EvalOutcome]:
    """Evaluate one trace under many scenarios, in input order.

    The engine primitive beneath :class:`repro.bench.Sweep`: serial by
    default (cheap grids are dominated by pool startup), parallel on
    request, identical results either way.  Bare
    :class:`MachineConfig` items are coerced to default-backend
    (``untimed-vec``) scenarios.
    """
    coerced = [
        s if isinstance(s, Scenario) else Scenario(config=s)
        for s in scenarios
    ]
    jobs: list[_Job] = [(i, "", "", s) for i, s in enumerate(coerced)]
    results = {
        i: outcome
        for i, outcome, _wall in _JobRunner(jobs, {"": trace}, parallel, workers)
    }
    return [results[i] for i in range(len(coerced))]


class CampaignStream:
    """A campaign in flight: iterate records as they complete.

    Construction resolves cache hits, *claims* the points it will
    compute (so a concurrent campaign over the same store defers to
    this one instead of re-evaluating them) and plans the remaining
    jobs — traces are loaded only for kernels that actually need
    evaluating; worker processes start on first iteration.  Iterating
    yields :class:`EvalRecord` objects in *completion* order — cache
    hits first (canonical order), then live evaluations as workers
    finish them, then points replayed from peer campaigns — each
    tagged with its canonical ``index``.  :meth:`result` drains
    whatever has not been consumed and assembles the canonical-order
    :class:`CampaignResult`.  On completion the stream folds the
    write-ahead touch files back into the store index and releases any
    claims it still holds.
    """

    def __init__(
        self,
        spec: CampaignSpec,
        *,
        store: TraceStore | None = None,
        parallel: bool = True,
        workers: int | None = None,
        use_cache: bool = True,
    ) -> None:
        from .store import kernel_trace_cached

        self.spec = spec
        self._store = store if store is not None else default_store()
        self._use_cache = use_cache
        self._started = time.perf_counter()
        # The tag namespacing this campaign's write-ahead touch files:
        # spec identity for attribution, a nonce for uniqueness when
        # the same spec runs twice concurrently.
        self._touch_tag = f"{spec.digest[:8]}-{uuid.uuid4().hex[:8]}"
        #: shape of every trace *acquired for this run* (a fully-cached
        #: campaign loads no traces and records no shapes)
        self.trace_meta: dict[str, dict[str, int]] = {}
        self._records: list[EvalRecord] = []
        self._done = 0

        trace_keys = {
            kernel.label: kernel_trace_key(
                kernel.name, n=kernel.n, seed=kernel.seed
            )
            for kernel in spec.kernels
        }
        self._points: list[tuple[KernelSpec, Scenario]] = list(spec.points())
        self._cached: list[tuple[int, EvalOutcome]] = []
        self._result_keys: dict[int, ResultKey] = {}
        #: indexes whose result claim this stream currently owns
        self._owned_claims: set[int] = set()
        #: points a peer campaign claimed first: (index, event)
        self._deferred: list[tuple[int, object]] = []
        pending: list[tuple[int, KernelSpec, Scenario]] = []
        for index, (kernel, scenario) in enumerate(self._points):
            if self._use_cache:
                # ResultKey.make resolves the backend's *cache
                # identity* (the service includes its delegate:
                # "service:untimed"), so cached physics never
                # survives a delegate switch.
                key = ResultKey.make(trace_keys[kernel.label], scenario)
                self._result_keys[index] = key
                outcome = self._store.lookup_result(key)
                if outcome is not None:
                    self._cached.append((index, outcome))
                    continue
                event = self._store.claim_result(key)
                if event is not None:
                    # Another in-flight campaign is computing this
                    # exact point: replay its result instead of
                    # building the cache entry twice.
                    self._deferred.append((index, event))
                    continue
                # Won the claim — but a peer may have delivered this
                # point between our miss and the claim; re-check
                # (uncounted) before planning an evaluation.
                outcome = self._store.lookup_result(key, count=False)
                if outcome is not None:
                    self._store.abandon_result_claim(key)
                    self._cached.append((index, outcome))
                    continue
                self._owned_claims.add(index)
            pending.append((index, kernel, scenario))

        try:
            # Acquire traces only for kernels with work left to do.
            traces: dict[str, Trace] = {}
            trace_paths: dict[str, str] = {}
            for kernel in spec.kernels:
                if not any(k.label == kernel.label for _i, k, _s in pending):
                    continue
                trace = kernel_trace_cached(
                    kernel.name,
                    n=kernel.n,
                    seed=kernel.seed,
                    store=self._store,
                )
                traces[kernel.label] = trace
                # The artifact's on-disk path lets a dispatching
                # backend (the shared service) hand jobs to resident
                # workers without pickling the trace per job.
                path = self._store._resolve(trace_keys[kernel.label])
                if path.is_file():
                    trace_paths[kernel.label] = str(path)
                self.trace_meta[kernel.label] = {
                    "n_instances": trace.n_instances,
                    "n_reads": trace.n_reads,
                }
        except BaseException:
            # Claims were taken above; a failed construction must not
            # leave peers blocked on events nobody will ever set.
            for index in sorted(self._owned_claims):
                self._store.abandon_result_claim(self._result_keys[index])
            self._owned_claims.clear()
            raise

        jobs: list[_Job] = [
            (i, k.label, trace_keys[k.label].ref, s) for i, k, s in pending
        ]
        self._runner = _JobRunner(
            jobs,
            traces,
            parallel,
            workers,
            touch=(str(self._store.touch_dir), self._touch_tag),
            trace_paths=trace_paths,
        )
        self._iterator = self._generate()
        if obs.active():
            obs.emit(
                "campaign.start",
                campaign=spec.digest[:8],
                backend=spec.backend,
                points=spec.n_points,
                cached=len(self._cached),
                deferred=len(self._deferred),
            )

    @property
    def executor(self) -> str:
        """How the campaign ran (final once iteration has begun)."""
        description = self._runner.description
        if self._cached:
            description += f"+cache[{len(self._cached)}/{self.spec.n_points}]"
        if self._deferred:
            description += (
                f"+shared[{len(self._deferred)}/{self.spec.n_points}]"
            )
        return description

    def __len__(self) -> int:
        return self.spec.n_points

    def _record(
        self,
        index: int,
        outcome: EvalOutcome,
        *,
        wall_s: float | None = None,
        cache_hit: bool = False,
    ) -> EvalRecord:
        kernel, scenario = self._points[index]
        self._done += 1
        if obs.active():
            obs.emit(
                "campaign.point",
                campaign=self.spec.digest[:8],
                index=index,
                done=self._done,
                total=self.spec.n_points,
                kernel=kernel.label,
                scenario=scenario.label(),
                cache_hit=cache_hit,
                wall_s=wall_s,
            )
        return EvalRecord(
            kernel=kernel,
            outcome=outcome,
            index=index,
            eval_wall_s=wall_s,
            cache_hit=cache_hit,
        )

    def _resolve_deferred(self, index: int, event) -> EvalOutcome:
        """Replay a point a peer campaign claimed (compute if it died).

        The peer may be a thread of this process (``event`` is its
        claim's :class:`threading.Event`) or another process entirely
        (``event`` is a lease waiter polling the shared store root).
        If the peer abandons the point — error, dropped stream, or a
        crash that lets its lease lapse — this stream *re-claims* it
        before evaluating locally, so several deferred campaigns
        recovering from one dead peer still build the entry once.  A
        peer that stays alive but wedged is only waited on for
        ``_CLAIM_TIMEOUT_S`` in total: past that, this stream builds
        the point without a claim (a redundant but benign evaluation —
        identical content, atomically replaced) rather than blocking
        the campaign forever.
        """
        from .store import kernel_trace_cached

        key = self._result_keys[index]
        waiter = event
        claimed = False
        deadline = time.monotonic() + _CLAIM_TIMEOUT_S
        while True:
            waiter.wait(timeout=max(0.0, deadline - time.monotonic()))
            outcome = self._store.lookup_result(key)
            if outcome is not None:
                return outcome
            if time.monotonic() >= deadline:
                break  # wedged-but-alive peer: stop deferring
            claim = self._store.claim_result(key)
            if claim is None:
                # Our turn to build — unless the result landed between
                # the miss and the claim.
                outcome = self._store.lookup_result(key, count=False)
                if outcome is not None:
                    self._store.abandon_result_claim(key)
                    return outcome
                claimed = True
                break
            waiter = claim  # another peer took over; defer again
        kernel, scenario = self._points[index]
        try:
            trace = kernel_trace_cached(
                kernel.name, n=kernel.n, seed=kernel.seed, store=self._store
            )
            outcome = evaluate_scenario(trace, scenario)
        except BaseException:
            if claimed:
                self._store.abandon_result_claim(key)
            raise
        self._store.put_result(key, outcome)
        return outcome

    def _current_cache_identity(self) -> str:
        from ..backends.base import cache_identity_of

        return cache_identity_of(self.spec.backend)

    def _generate(self) -> Iterator[EvalRecord]:
        runner_iter = iter(self._runner)
        identity_warned = False
        try:
            for index, outcome in self._cached:
                record = self._record(index, outcome, cache_hit=True)
                self._records.append(record)
                yield record
            for index, outcome, wall in runner_iter:
                if self._use_cache:
                    key = self._result_keys[index]
                    if key.backend == self._current_cache_identity():
                        self._store.put_result(key, outcome)
                    else:
                        # The backend's cache identity drifted between
                        # planning and execution (e.g. the service's
                        # delegate was reconfigured mid-campaign):
                        # caching under the planned key would file
                        # this outcome's physics in the wrong
                        # namespace, so drop the claim uncached.
                        if not identity_warned:
                            identity_warned = True
                            warnings.warn(
                                f"backend {self.spec.backend!r} changed "
                                f"cache identity mid-campaign (planned "
                                f"{key.backend!r}); results will not be "
                                "cached",
                                RuntimeWarning,
                                stacklevel=2,
                            )
                        self._store.abandon_result_claim(key)
                    self._owned_claims.discard(index)
                record = self._record(index, outcome, wall_s=wall)
                self._records.append(record)
                yield record
            for index, event in self._deferred:
                record = self._record(
                    index,
                    self._resolve_deferred(index, event),
                    cache_hit=True,
                )
                self._records.append(record)
                yield record
        finally:
            # Stop the runner (and its worker pool) *before* merging,
            # so an early-abandoned stream cannot leave workers
            # appending touch records after their files were swept.
            close = getattr(runner_iter, "close", None)
            if close is not None:
                close()
            # Wake any peer waiting on a point this stream never
            # delivered (abandoned mid-iteration or errored).
            for index in sorted(self._owned_claims):
                self._store.abandon_result_claim(self._result_keys[index])
            self._owned_claims.clear()
            # Fold this campaign's write-ahead touch files into the
            # index: access times feed the GC's LRU order, and the
            # workers' evaluation counts join the process counter.
            merged = self._store.merge_touches(self._touch_tag)
            if merged["evaluations"]:
                record_evaluations(merged["evaluations"])
            # Telemetry follows the same write-ahead pattern: workers
            # emitted into per-process JSONL files; fold them into the
            # merged log now that the pool is closed.
            if obs.active():
                obs.emit(
                    "campaign.done",
                    campaign=self.spec.digest[:8],
                    points=self.spec.n_points,
                    delivered=self._done,
                    elapsed_s=time.perf_counter() - self._started,
                )
                obs.merge()

    def __iter__(self) -> Iterator[EvalRecord]:
        """Single-pass: every record is yielded exactly once."""
        return self._iterator

    def result(self) -> CampaignResult:
        """Drain any unconsumed records and assemble the final result."""
        for _record in self._iterator:
            pass
        return CampaignResult.from_records(
            self.spec,
            self._records,
            trace_meta=self.trace_meta,
            executor=self.executor,
            elapsed_s=time.perf_counter() - self._started,
            store_stats=self._store.stats(),
        )


def run_campaign(
    spec: CampaignSpec,
    *,
    store: TraceStore | None = None,
    parallel: bool = True,
    workers: int | None = None,
    stream: bool = False,
    use_cache: bool = True,
) -> CampaignResult | CampaignStream:
    """Execute a campaign: acquire traces once, fan scenarios out.

    Traces come from ``store`` (the default store when ``None``) —
    interpreted at most once per machine, then replayed from ``.npz``.
    Evaluations dispatch through the backend registry, so the same
    call runs untimed, timed and service campaigns alike; with
    ``backend="service"`` the parallel path submits the grid to the
    process-wide resident worker pool (shared by every concurrent
    campaign) instead of forking a pool of its own.  With
    ``use_cache`` (the default) previously-evaluated points replay
    from the store's result cache without simulating, and points a
    concurrent campaign has claimed — a thread of this process, or an
    independent process holding a lock-file lease on the shared store
    root — are awaited and replayed rather than re-built.
    ``stream=True`` returns a :class:`CampaignStream` yielding records
    as they complete; otherwise records arrive assembled in the spec's
    canonical order regardless of how the pool interleaved the work.
    """
    s = CampaignStream(
        spec,
        store=store,
        parallel=parallel,
        workers=workers,
        use_cache=use_cache,
    )
    return s if stream else s.result()
