"""Typed campaign results with JSON export.

One :class:`EvalRecord` per (kernel, configuration) point, in the
spec's canonical order, each carrying the full :class:`SimResult` so
nothing is lost between execution and reporting; ``to_dict`` flattens
a record to the JSON-friendly summary the CLI and the figure/table
generators consume.  :meth:`CampaignResult.identical` compares two
runs counter for counter — the bit-exactness contract between the
serial and parallel executors.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator, Mapping

import numpy as np

from ..core.simulator import SimResult
from .campaign import CampaignSpec, KernelSpec

__all__ = ["CampaignResult", "EvalRecord"]


@dataclass(frozen=True)
class EvalRecord:
    """One evaluated sweep point."""

    kernel: KernelSpec
    result: SimResult

    # -- convenient views ------------------------------------------------------
    @property
    def config(self):
        return self.result.config

    @property
    def remote_read_pct(self) -> float:
        return self.result.remote_read_pct

    @property
    def cached_read_pct(self) -> float:
        return self.result.cached_read_pct

    def matches(self, **criteria: object) -> bool:
        """True when every criterion equals the record's field.

        Criteria may name ``kernel`` (registry name or label) or any
        configuration axis (``n_pes``, ``page_size``, ``cache_elems``,
        ``cache_policy``, ``partition`` — by scheme label — or
        ``reduction_strategy``).
        """
        config = self.config
        for key, wanted in criteria.items():
            if key == "kernel":
                if wanted not in (self.kernel.name, self.kernel.label):
                    return False
            elif key == "partition":
                if config.partition.label != wanted:
                    return False
            elif key in ("n", "seed"):
                if getattr(self.kernel, key) != wanted:
                    return False
            else:
                if getattr(config, key) != wanted:
                    return False
        return True

    def to_dict(self) -> dict[str, object]:
        config = self.config
        out: dict[str, object] = {
            "kernel": self.kernel.name,
            "n": self.kernel.n,
            "seed": self.kernel.seed,
            "n_pes": config.n_pes,
            "page_size": config.page_size,
            "cache_elems": config.cache_elems,
            "cache_policy": config.cache_policy,
            "partition": config.partition.label,
            "reduction_strategy": config.reduction_strategy,
        }
        out.update(self.result.summary())
        return out

    def identical(self, other: "EvalRecord") -> bool:
        """Bit-exact comparison of every simulation counter."""
        mine, theirs = self.result, other.result
        return (
            self.kernel == other.kernel
            and self.config.label() == other.config.label()
            and np.array_equal(mine.stats.counts, theirs.stats.counts)
            and np.array_equal(mine.stats.by_array, theirs.stats.by_array)
            and np.array_equal(mine.page_fetches, theirs.page_fetches)
            and np.array_equal(
                mine.distinct_pages_fetched, theirs.distinct_pages_fetched
            )
        )


@dataclass
class CampaignResult:
    """All records of one executed campaign, in canonical spec order."""

    spec: CampaignSpec
    records: list[EvalRecord]
    #: per-kernel-label trace shape, recorded at acquisition time
    trace_meta: dict[str, dict[str, int]] = field(default_factory=dict)
    #: how the campaign ran ("serial" or "parallel[N]")
    executor: str = "serial"
    elapsed_s: float | None = None

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[EvalRecord]:
        return iter(self.records)

    # -- selection -------------------------------------------------------------
    def select(self, **criteria: object) -> list[EvalRecord]:
        return [r for r in self.records if r.matches(**criteria)]

    def find(self, **criteria: object) -> EvalRecord:
        """The unique record matching the criteria (KeyError otherwise)."""
        hits = self.select(**criteria)
        if len(hits) != 1:
            raise KeyError(
                f"{len(hits)} records match {criteria!r} (need exactly 1)"
            )
        return hits[0]

    def kernels(self) -> list[str]:
        seen: dict[str, None] = {}
        for record in self.records:
            seen.setdefault(record.kernel.label)
        return list(seen)

    # -- comparison ------------------------------------------------------------
    def identical(self, other: "CampaignResult") -> bool:
        """Record-for-record bit-exact equality (order included)."""
        if len(self.records) != len(other.records):
            return False
        return all(
            a.identical(b) for a, b in zip(self.records, other.records)
        )

    # -- export ----------------------------------------------------------------
    def to_dict(self) -> dict[str, object]:
        return {
            "campaign": self.spec.to_dict(),
            "executor": self.executor,
            "elapsed_s": self.elapsed_s,
            "traces": self.trace_meta,
            "results": [record.to_dict() for record in self.records],
        }

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    def save_json(self, path: str | os.PathLike) -> Path:
        path = Path(path)
        path.write_text(self.to_json() + "\n")
        return path

    def rows(
        self, kernel: str | None = None
    ) -> tuple[list[str], list[list[object]]]:
        """(headers, rows) for ASCII rendering, optionally one kernel."""
        records = self.select(kernel=kernel) if kernel else self.records
        headers = [
            "kernel",
            "pes",
            "ps",
            "cache",
            "policy",
            "partition",
            "remote%",
            "cached%",
        ]
        rows: list[list[object]] = []
        for record in records:
            config = record.config
            rows.append(
                [
                    record.kernel.label,
                    config.n_pes,
                    config.page_size,
                    config.cache_elems,
                    config.cache_policy,
                    config.partition.label,
                    record.remote_read_pct,
                    record.cached_read_pct,
                ]
            )
        return headers, rows

    @staticmethod
    def from_mapping(
        spec: CampaignSpec,
        results: Mapping[int, SimResult],
        **kwargs: object,
    ) -> "CampaignResult":
        """Assemble records from index→result, restoring spec order."""
        records = [
            EvalRecord(kernel=kernel, result=results[i])
            for i, (kernel, _config) in enumerate(spec.points())
        ]
        return CampaignResult(spec=spec, records=records, **kwargs)  # type: ignore[arg-type]
