"""Typed, backend-tagged campaign results with JSON export.

One :class:`EvalRecord` per (kernel, scenario) point, in the spec's
canonical order, each carrying the full
:class:`~repro.backends.base.EvalOutcome` so nothing is lost between
execution and reporting; ``to_dict`` flattens a record to the
JSON-friendly summary the CLI and the figure/table generators consume,
with the backend name and the backend's metric columns riding along.
:meth:`CampaignResult.identical` compares two runs counter for counter
— the bit-exactness contract between the serial and parallel
executors, whatever the backend.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Mapping

from ..backends import EvalOutcome, Scenario, get_backend
from .campaign import CampaignSpec, KernelSpec

__all__ = ["CampaignResult", "EvalRecord"]

#: Spec axis name → scenario field it populates.
_AXIS_TO_FIELD = {
    "topologies": "topology",
    "modes": "mode",
    "cost_models": "cost_model",
}


@dataclass(frozen=True, eq=False)
class EvalRecord:
    """One evaluated sweep point, tagged with its canonical index."""

    kernel: KernelSpec
    outcome: EvalOutcome
    index: int = -1
    #: wall seconds this record's evaluation took in *this* run
    #: (``None`` when it never ran here — served from the result cache)
    eval_wall_s: float | None = None
    #: True when the outcome came from the result cache (memory, disk,
    #: or a peer campaign's deferred point), not a fresh evaluation
    cache_hit: bool = False

    # -- convenient views ------------------------------------------------------
    @property
    def scenario(self) -> Scenario:
        return self.outcome.scenario

    @property
    def backend(self) -> str:
        return self.outcome.backend

    @property
    def config(self):
        return self.outcome.scenario.config

    @property
    def metrics(self) -> dict[str, float]:
        return self.outcome.metrics

    @property
    def remote_read_pct(self) -> float:
        return self.outcome.remote_read_pct

    @property
    def cached_read_pct(self) -> float:
        return self.outcome.cached_read_pct

    def matches(self, **criteria: object) -> bool:
        """True when every criterion equals the record's field.

        Criteria may name ``kernel`` (registry name or label),
        ``backend``, any configuration axis (``n_pes``, ``page_size``,
        ``cache_elems``, ``cache_policy``, ``partition`` — by scheme
        label — or ``reduction_strategy``) or any scenario knob
        (``topology``, ``mode``, ``cost_model``).
        """
        config = self.config
        scenario = self.scenario
        for key, wanted in criteria.items():
            if key == "kernel":
                if wanted not in (self.kernel.name, self.kernel.label):
                    return False
            elif key == "partition":
                if config.partition.label != wanted:
                    return False
            elif key in ("n", "seed"):
                if getattr(self.kernel, key) != wanted:
                    return False
            elif key in (
                "backend",
                "topology",
                "mode",
                "cost_model",
                "max_outstanding",
            ):
                if getattr(scenario, key) != wanted:
                    return False
            else:
                if getattr(config, key) != wanted:
                    return False
        return True

    def _scenario_columns(self) -> dict[str, object]:
        """The scenario knobs the record's backend actually consumes.

        Axes outside the built-in map (a custom backend's own axis
        names) have no :class:`Scenario` field to report and are
        skipped.
        """
        try:
            axes = get_backend(self.backend).scenario_axes
        except KeyError:  # result outlived its backend registration
            axes = tuple(_AXIS_TO_FIELD)
        out: dict[str, object] = {}
        for axis in axes:
            name = _AXIS_TO_FIELD.get(axis)
            if name is not None:
                out[name] = getattr(self.scenario, name)
        if axes:
            out["max_outstanding"] = self.scenario.max_outstanding
        return out

    def to_dict(self) -> dict[str, object]:
        config = self.config
        out: dict[str, object] = {
            "kernel": self.kernel.name,
            "n": self.kernel.n,
            "seed": self.kernel.seed,
            "backend": self.backend,
            "n_pes": config.n_pes,
            "page_size": config.page_size,
            "cache_elems": config.cache_elems,
            "cache_policy": config.cache_policy,
            "partition": config.partition.label,
            "reduction_strategy": config.reduction_strategy,
        }
        out.update(self._scenario_columns())
        out["eval_wall_s"] = self.eval_wall_s
        out["cache_hit"] = self.cache_hit
        out.update(self.outcome.summary())
        return out

    def identical(self, other: "EvalRecord") -> bool:
        """Bit-exact comparison of every counter, metric and array.

        Wall-clock provenance (``eval_wall_s``, ``cache_hit``) is
        deliberately excluded — two runs of one campaign are the same
        *result* however long each took and wherever each was served
        from.
        """
        return (
            self.kernel == other.kernel
            and self.index == other.index
            and self.outcome.identical(other.outcome)
        )


@dataclass
class CampaignResult:
    """All records of one executed campaign, in canonical spec order."""

    spec: CampaignSpec
    records: list[EvalRecord]
    #: per-kernel-label trace shape, recorded at acquisition time
    trace_meta: dict[str, dict[str, int]] = field(default_factory=dict)
    #: how the campaign ran ("serial", "parallel[N]", "+cache[H/N]", ...)
    executor: str = "serial"
    elapsed_s: float | None = None
    #: snapshot of the store's layout/counter stats at completion
    #: (:meth:`repro.engine.store.TraceStore.stats`) — sizes, shard
    #: counts, hit/miss/eviction counters; ``None`` when the campaign
    #: was assembled without a store
    store_stats: dict | None = None

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[EvalRecord]:
        return iter(self.records)

    # -- selection -------------------------------------------------------------
    def select(self, **criteria: object) -> list[EvalRecord]:
        return [r for r in self.records if r.matches(**criteria)]

    def find(self, **criteria: object) -> EvalRecord:
        """The unique record matching the criteria (KeyError otherwise)."""
        hits = self.select(**criteria)
        if len(hits) != 1:
            raise KeyError(
                f"{len(hits)} records match {criteria!r} (need exactly 1)"
            )
        return hits[0]

    def kernels(self) -> list[str]:
        seen: dict[str, None] = {}
        for record in self.records:
            seen.setdefault(record.kernel.label)
        return list(seen)

    # -- comparison ------------------------------------------------------------
    def identical(self, other: "CampaignResult") -> bool:
        """Record-for-record bit-exact equality (order included)."""
        if len(self.records) != len(other.records):
            return False
        return all(
            a.identical(b) for a, b in zip(self.records, other.records)
        )

    # -- export ----------------------------------------------------------------
    def to_dict(self) -> dict[str, object]:
        out: dict[str, object] = {
            "campaign": self.spec.to_dict(),
            "backend": self.spec.backend,
            "executor": self.executor,
            "elapsed_s": self.elapsed_s,
            "traces": self.trace_meta,
            "results": [record.to_dict() for record in self.records],
        }
        if self.store_stats is not None:
            out["store"] = self.store_stats
        return out

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    def save_json(self, path: str | os.PathLike) -> Path:
        path = Path(path)
        path.write_text(self.to_json() + "\n")
        return path

    def rows(
        self, kernel: str | None = None
    ) -> tuple[list[str], list[list[object]]]:
        """(headers, rows) for ASCII rendering, optionally one kernel.

        Backend-specific columns follow the common ones: the scenario
        knobs the backend consumes plus its ``table_metrics``.
        """
        records = self.select(kernel=kernel) if kernel else self.records
        try:
            backend = get_backend(self.spec.backend)
            scenario_axes = backend.scenario_axes
            table_metrics = backend.table_metrics
        except KeyError:  # result outlived its backend registration
            scenario_axes = tuple(_AXIS_TO_FIELD)
            table_metrics = ()
        scenario_fields = [
            _AXIS_TO_FIELD[axis]
            for axis in scenario_axes
            if axis in _AXIS_TO_FIELD
        ]
        headers = [
            "kernel",
            "backend",
            "pes",
            "ps",
            "cache",
            "policy",
            "partition",
            *scenario_fields,
            "remote%",
            "cached%",
            "eval_s",
            "hit",
            *table_metrics,
        ]
        rows: list[list[object]] = []
        for record in records:
            config = record.config
            rows.append(
                [
                    record.kernel.label,
                    record.backend,
                    config.n_pes,
                    config.page_size,
                    config.cache_elems,
                    config.cache_policy,
                    config.partition.label,
                    *(
                        getattr(record.scenario, name)
                        for name in scenario_fields
                    ),
                    record.remote_read_pct,
                    record.cached_read_pct,
                    (
                        None
                        if record.eval_wall_s is None
                        else round(record.eval_wall_s, 4)
                    ),
                    record.cache_hit,
                    *(
                        record.metrics.get(metric)
                        for metric in table_metrics
                    ),
                ]
            )
        return headers, rows

    @staticmethod
    def from_mapping(
        spec: CampaignSpec,
        results: Mapping[int, EvalOutcome],
        **kwargs: object,
    ) -> "CampaignResult":
        """Assemble records from index→outcome, restoring spec order."""
        records = [
            EvalRecord(kernel=kernel, outcome=results[i], index=i)
            for i, (kernel, _scenario) in enumerate(spec.points())
        ]
        return CampaignResult(spec=spec, records=records, **kwargs)  # type: ignore[arg-type]

    @staticmethod
    def from_records(
        spec: CampaignSpec,
        records: Iterable[EvalRecord],
        **kwargs: object,
    ) -> "CampaignResult":
        """Assemble a result from index-tagged records (any arrival
        order — the streaming consumer's constructor)."""
        ordered = sorted(records, key=lambda r: r.index)
        if [r.index for r in ordered] != list(range(spec.n_points)):
            raise ValueError(
                f"records do not cover the campaign: got "
                f"{len(ordered)} of {spec.n_points} points"
            )
        return CampaignResult(spec=spec, records=ordered, **kwargs)  # type: ignore[arg-type]
