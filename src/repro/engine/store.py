"""Persistent, content-addressed trace store.

The paper's method is trace-once / sweep-many: a kernel's access trace
depends only on the program and its data, never on the machine
configuration, so one interpreter run drives an entire parameter space
(§6).  The store pushes that to its logical end — a kernel is
interpreted once *per machine, ever*.  Traces are serialised to
compressed ``.npz`` files (:meth:`repro.ir.trace.Trace.save`) under a
root directory and addressed by a digest of ``(kernel name, build
parameters, trace format version)``, so a change to any ingredient
yields a fresh entry instead of a stale hit.

This module is also the single code path for trace *acquisition*:
:func:`build_trace` is the only place the interpreter (or its
vectorised fast path) is invoked on behalf of the engine, the bench
harness and the CLI, which is what lets the test suite assert that a
warm store performs **zero** interpreter executions.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
import zipfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Mapping

import numpy as np

from ..ir.loops import Program
from ..ir.trace import TRACE_FORMAT_VERSION, Trace

__all__ = [
    "TRACE_STORE_ENV",
    "StoreCounters",
    "TraceKey",
    "TraceStore",
    "build_trace",
    "default_store",
    "interpretation_count",
    "kernel_trace_cached",
    "set_default_store",
]

#: Environment variable overriding the default store root.
TRACE_STORE_ENV = "REPRO_TRACE_STORE"

# ---------------------------------------------------------------------------
# the one interpretation path
# ---------------------------------------------------------------------------

_interpretations = 0


def interpretation_count() -> int:
    """How many traces this process has generated from scratch.

    Every trace acquisition in the repo funnels through
    :func:`build_trace`, so this counter is exactly the number of
    interpreter / fast-path executions — a warm store keeps it flat.
    """
    return _interpretations


def build_trace(program: Program, inputs: Mapping[str, np.ndarray]) -> Trace:
    """Generate a trace from scratch (the *only* interpretation path).

    Uses the vectorised affine fast path (bit-identical to the
    interpreter, asserted by the test suite) and falls back to the
    interpreter for kernels with indirect subscripts.
    """
    global _interpretations
    _interpretations += 1
    from ..ir.vectorize import fast_trace

    return fast_trace(program, inputs)


# ---------------------------------------------------------------------------
# content addressing
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class TraceKey:
    """Identity of a stored trace: kernel name + canonicalised params.

    The digest covers the trace format version too, so a format bump
    invalidates every old entry instead of misreading it.
    """

    kernel: str
    params: tuple[tuple[str, object], ...] = ()

    @staticmethod
    def make(kernel: str, **params: object) -> "TraceKey":
        return TraceKey(kernel=kernel, params=tuple(sorted(params.items())))

    @property
    def digest(self) -> str:
        from .. import __version__

        # The package version is part of the identity: a release that
        # changes kernel builders or the trace generator invalidates
        # every old entry instead of silently replaying stale traces.
        # (Within one dev version, ``TraceStore.clear()`` or deleting
        # the store root forces a rebuild.)
        document = json.dumps(
            {
                "kernel": self.kernel,
                "params": list(self.params),
                "format_version": TRACE_FORMAT_VERSION,
                "package_version": __version__,
            },
            sort_keys=True,
            default=str,
        )
        return hashlib.sha256(document.encode()).hexdigest()

    @property
    def filename(self) -> str:
        safe = re.sub(r"[^A-Za-z0-9_.-]+", "_", self.kernel) or "trace"
        return f"{safe}-{self.digest[:16]}.npz"

    def describe(self) -> str:
        args = ", ".join(f"{k}={v}" for k, v in self.params)
        return f"{self.kernel}({args})"


@dataclass
class StoreCounters:
    """Observability: where each ``get`` was satisfied."""

    memory_hits: int = 0
    disk_hits: int = 0
    misses: int = 0

    @property
    def total(self) -> int:
        return self.memory_hits + self.disk_hits + self.misses

    def as_dict(self) -> dict[str, int]:
        return {
            "memory_hits": self.memory_hits,
            "disk_hits": self.disk_hits,
            "misses": self.misses,
        }


class TraceStore:
    """Two-level (memory, disk) cache of frozen traces.

    ``get`` resolves a :class:`TraceKey` against the in-process map
    first, then the ``.npz`` file under ``root``, and only then invokes
    the builder — persisting its result for every later process.
    Unreadable or stale-format files are treated as misses and
    rebuilt in place, never propagated.
    """

    def __init__(self, root: str | os.PathLike) -> None:
        self.root = Path(root)
        self.counters = StoreCounters()
        self._memory: dict[TraceKey, Trace] = {}

    # -- paths -----------------------------------------------------------------
    def path_for(self, key: TraceKey) -> Path:
        return self.root / key.filename

    def __contains__(self, key: TraceKey) -> bool:
        return key in self._memory or self.path_for(key).is_file()

    def __len__(self) -> int:
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("*.npz"))

    # -- access ----------------------------------------------------------------
    def load(self, key: TraceKey) -> Trace | None:
        """Disk lookup only; ``None`` on absent or unreadable entries."""
        path = self.path_for(key)
        if not path.is_file():
            return None
        try:
            return Trace.load(path)
        except (OSError, ValueError, KeyError, zipfile.BadZipFile):
            return None

    def put(self, key: TraceKey, trace: Trace) -> Path:
        self._memory[key] = trace
        return trace.save(self.path_for(key))

    def get(self, key: TraceKey, builder: Callable[[], Trace]) -> Trace:
        """Memory → disk → ``builder()`` (which is then persisted)."""
        trace = self._memory.get(key)
        if trace is not None:
            self.counters.memory_hits += 1
            return trace
        trace = self.load(key)
        if trace is not None:
            self.counters.disk_hits += 1
            self._memory[key] = trace
            return trace
        self.counters.misses += 1
        trace = builder()
        self.put(key, trace)
        return trace

    # -- maintenance -----------------------------------------------------------
    def clear_memory(self) -> None:
        self._memory.clear()

    def clear(self) -> None:
        """Drop the memory map and delete every on-disk entry."""
        self.clear_memory()
        if self.root.is_dir():
            for path in self.root.glob("*.npz"):
                path.unlink(missing_ok=True)

    def __repr__(self) -> str:
        return f"TraceStore({str(self.root)!r}, entries={len(self)})"


# ---------------------------------------------------------------------------
# default store
# ---------------------------------------------------------------------------

_override: TraceStore | None = None
_instances: dict[Path, TraceStore] = {}


def set_default_store(store: TraceStore | None) -> None:
    """Globally override (or with ``None`` reset) the default store.

    The test suite points the default at a tmpdir through this hook so
    runs never pollute the user's cache directory.
    """
    global _override
    _override = store


def default_store() -> TraceStore:
    """The process-wide store: ``$REPRO_TRACE_STORE`` or ``~/.cache``.

    Instances are memoised per resolved root so the in-memory layer
    survives repeated calls while env-var changes take effect.
    """
    if _override is not None:
        return _override
    env = os.environ.get(TRACE_STORE_ENV)
    root = (
        Path(env).expanduser()
        if env
        else Path.home() / ".cache" / "repro" / "traces"
    )
    store = _instances.get(root)
    if store is None:
        store = _instances.setdefault(root, TraceStore(root))
    return store


def kernel_trace_cached(
    name: str,
    n: int | None = None,
    seed: int | None = None,
    store: TraceStore | None = None,
) -> Trace:
    """Trace of a registered kernel, interpreted at most once per machine.

    The canonical acquisition path for everything keyed by a registry
    kernel name: resolves ``n`` to the kernel's default so equivalent
    requests share one store entry, and only builds (program, inputs)
    on a miss.
    """
    from ..kernels import get_kernel

    kernel = get_kernel(name)
    eff_n = kernel.default_n if n is None else n
    key = TraceKey.make(name, n=eff_n, seed=seed)
    target = store if store is not None else default_store()

    def _build() -> Trace:
        program, inputs = kernel.build(n=eff_n, seed=seed)
        return build_trace(program, inputs)

    return target.get(key, _build)
