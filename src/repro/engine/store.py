"""Persistent, content-addressed trace store.

The paper's method is trace-once / sweep-many: a kernel's access trace
depends only on the program and its data, never on the machine
configuration, so one interpreter run drives an entire parameter space
(§6).  The store pushes that to its logical end — a kernel is
interpreted once *per machine, ever*.  Traces are serialised to
compressed ``.npz`` files (:meth:`repro.ir.trace.Trace.save`) under a
root directory and addressed by a digest of ``(kernel name, build
parameters, trace format version)``, so a change to any ingredient
yields a fresh entry instead of a stale hit.

This module is also the single code path for trace *acquisition*:
:func:`build_trace` is the only place the interpreter (or its
vectorised fast path) is invoked on behalf of the engine, the bench
harness and the CLI, which is what lets the test suite assert that a
warm store performs **zero** interpreter executions.

The store also caches *results*: an evaluation is pure in
``(trace, scenario, backend)``, so a :class:`ResultKey` content-address
maps to a persisted :class:`~repro.backends.base.EvalOutcome` and a
re-run of an identical campaign skips simulation entirely.  Result
hits and misses are counted (``result_counters``) exactly like trace
acquisitions, and the backends' ``evaluation_count`` mirrors the
interpretation counter on the evaluation side.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
import tempfile
import zipfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Mapping

import numpy as np

from ..backends.base import EvalOutcome, Scenario
from ..core.stats import AccessStats
from ..ir.loops import Program
from ..ir.trace import TRACE_FORMAT_VERSION, Trace

__all__ = [
    "RESULT_FORMAT_VERSION",
    "TRACE_STORE_ENV",
    "ResultKey",
    "StoreCounters",
    "TraceKey",
    "TraceStore",
    "build_trace",
    "default_store",
    "interpretation_count",
    "kernel_trace_cached",
    "kernel_trace_key",
    "set_default_store",
]

#: Environment variable overriding the default store root.
TRACE_STORE_ENV = "REPRO_TRACE_STORE"

# ---------------------------------------------------------------------------
# the one interpretation path
# ---------------------------------------------------------------------------

_interpretations = 0


def interpretation_count() -> int:
    """How many traces this process has generated from scratch.

    Every trace acquisition in the repo funnels through
    :func:`build_trace`, so this counter is exactly the number of
    interpreter / fast-path executions — a warm store keeps it flat.
    """
    return _interpretations


def build_trace(program: Program, inputs: Mapping[str, np.ndarray]) -> Trace:
    """Generate a trace from scratch (the *only* interpretation path).

    Uses the vectorised affine fast path (bit-identical to the
    interpreter, asserted by the test suite) and falls back to the
    interpreter for kernels with indirect subscripts.
    """
    global _interpretations
    _interpretations += 1
    from ..ir.vectorize import fast_trace

    return fast_trace(program, inputs)


# ---------------------------------------------------------------------------
# content addressing
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class TraceKey:
    """Identity of a stored trace: kernel name + canonicalised params.

    The digest covers the trace format version too, so a format bump
    invalidates every old entry instead of misreading it.
    """

    kernel: str
    params: tuple[tuple[str, object], ...] = ()

    @staticmethod
    def make(kernel: str, **params: object) -> "TraceKey":
        return TraceKey(kernel=kernel, params=tuple(sorted(params.items())))

    @property
    def digest(self) -> str:
        from .. import __version__

        # The package version is part of the identity: a release that
        # changes kernel builders or the trace generator invalidates
        # every old entry instead of silently replaying stale traces.
        # (Within one dev version, ``TraceStore.clear()`` or deleting
        # the store root forces a rebuild.)
        document = json.dumps(
            {
                "kernel": self.kernel,
                "params": list(self.params),
                "format_version": TRACE_FORMAT_VERSION,
                "package_version": __version__,
            },
            sort_keys=True,
            default=str,
        )
        return hashlib.sha256(document.encode()).hexdigest()

    @property
    def filename(self) -> str:
        safe = re.sub(r"[^A-Za-z0-9_.-]+", "_", self.kernel) or "trace"
        return f"{safe}-{self.digest[:16]}.npz"

    def describe(self) -> str:
        args = ", ".join(f"{k}={v}" for k, v in self.params)
        return f"{self.kernel}({args})"


#: Version of the persisted result layout; a bump invalidates every
#: cached outcome instead of misreading it.
RESULT_FORMAT_VERSION = 1


@dataclass(frozen=True)
class ResultKey:
    """Identity of a cached evaluation: trace x scenario x backend.

    The trace digest already covers kernel identity, build parameters,
    trace format and package version; the scenario digest covers the
    machine configuration and every backend knob.  Everything that can
    change an outcome is in the address, so stale hits are impossible
    within a package version.
    """

    trace_digest: str
    scenario_digest: str
    backend: str

    @staticmethod
    def make(trace_key: "TraceKey", scenario: Scenario) -> "ResultKey":
        return ResultKey(
            trace_digest=trace_key.digest,
            scenario_digest=scenario.digest,
            backend=scenario.backend,
        )

    @property
    def digest(self) -> str:
        document = json.dumps(
            {
                "trace": self.trace_digest,
                "scenario": self.scenario_digest,
                "backend": self.backend,
                "result_format": RESULT_FORMAT_VERSION,
            },
            sort_keys=True,
        )
        return hashlib.sha256(document.encode()).hexdigest()

    @property
    def filename(self) -> str:
        safe = re.sub(r"[^A-Za-z0-9_.-]+", "_", self.backend) or "backend"
        return f"{safe}-{self.digest[:20]}.npz"


def _save_outcome(path: Path, outcome: EvalOutcome) -> Path:
    """Persist an outcome to ``.npz`` (atomic replace, exact dtypes)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    meta = json.dumps(
        {
            "result_format": RESULT_FORMAT_VERSION,
            "backend": outcome.backend,
            "scenario": outcome.scenario.to_dict(),
            "metrics": outcome.metrics,
            "array_names": list(outcome.stats.array_names),
            "per_pe_keys": sorted(outcome.per_pe),
        },
        sort_keys=True,
    )
    payload = {
        "counts": outcome.stats.counts,
        "by_array": outcome.stats.by_array,
    }
    for name in outcome.per_pe:
        payload[f"per_pe__{name}"] = outcome.per_pe[name]
    fd, tmp = tempfile.mkstemp(
        dir=path.parent, prefix=path.name, suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "wb") as fh:
            np.savez_compressed(fh, meta=np.array(meta), **payload)
        os.replace(tmp, path)
    except BaseException:
        if os.path.exists(tmp):
            os.unlink(tmp)
        raise
    return path


def _load_outcome(path: Path) -> EvalOutcome:
    """Load an outcome saved by :func:`_save_outcome` (validated)."""
    with np.load(Path(path), allow_pickle=False) as data:
        try:
            meta = json.loads(str(data["meta"][()]))
            counts = data["counts"]
            by_array = data["by_array"]
            per_pe = {
                name: data[f"per_pe__{name}"]
                for name in meta.get("per_pe_keys", [])
            }
        except KeyError as exc:
            raise ValueError(f"not a result file: missing {exc}") from None
    version = meta.get("result_format")
    if version != RESULT_FORMAT_VERSION:
        raise ValueError(
            f"unsupported result format version {version!r} "
            f"(expected {RESULT_FORMAT_VERSION})"
        )
    stats = AccessStats(
        n_pes=int(counts.shape[0]),
        array_names=tuple(meta["array_names"]),
    )
    stats.counts = counts
    stats.by_array = by_array
    return EvalOutcome(
        backend=str(meta["backend"]),
        scenario=Scenario.from_dict(meta["scenario"]),
        stats=stats,
        metrics=dict(meta["metrics"]),
        per_pe=per_pe,
    )


@dataclass
class StoreCounters:
    """Observability: where each ``get`` was satisfied."""

    memory_hits: int = 0
    disk_hits: int = 0
    misses: int = 0

    @property
    def total(self) -> int:
        return self.memory_hits + self.disk_hits + self.misses

    def as_dict(self) -> dict[str, int]:
        return {
            "memory_hits": self.memory_hits,
            "disk_hits": self.disk_hits,
            "misses": self.misses,
        }


class TraceStore:
    """Two-level (memory, disk) cache of frozen traces.

    ``get`` resolves a :class:`TraceKey` against the in-process map
    first, then the ``.npz`` file under ``root``, and only then invokes
    the builder — persisting its result for every later process.
    Unreadable or stale-format files are treated as misses and
    rebuilt in place, never propagated.
    """

    def __init__(self, root: str | os.PathLike) -> None:
        self.root = Path(root)
        self.counters = StoreCounters()
        #: where each result lookup was satisfied (mirrors ``counters``)
        self.result_counters = StoreCounters()
        self._memory: dict[TraceKey, Trace] = {}
        self._result_memory: dict[ResultKey, EvalOutcome] = {}

    # -- paths -----------------------------------------------------------------
    def path_for(self, key: TraceKey) -> Path:
        return self.root / key.filename

    def result_path_for(self, key: ResultKey) -> Path:
        return self.root / "results" / key.filename

    def __contains__(self, key: TraceKey) -> bool:
        return key in self._memory or self.path_for(key).is_file()

    def __len__(self) -> int:
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("*.npz"))

    # -- access ----------------------------------------------------------------
    def load(self, key: TraceKey) -> Trace | None:
        """Disk lookup only; ``None`` on absent or unreadable entries."""
        path = self.path_for(key)
        if not path.is_file():
            return None
        try:
            return Trace.load(path)
        except (OSError, ValueError, KeyError, zipfile.BadZipFile):
            return None

    def put(self, key: TraceKey, trace: Trace) -> Path:
        self._memory[key] = trace
        return trace.save(self.path_for(key))

    def get(self, key: TraceKey, builder: Callable[[], Trace]) -> Trace:
        """Memory → disk → ``builder()`` (which is then persisted)."""
        trace = self._memory.get(key)
        if trace is not None:
            self.counters.memory_hits += 1
            return trace
        trace = self.load(key)
        if trace is not None:
            self.counters.disk_hits += 1
            self._memory[key] = trace
            return trace
        self.counters.misses += 1
        trace = builder()
        self.put(key, trace)
        return trace

    # -- result cache ----------------------------------------------------------
    def n_results(self) -> int:
        results = self.root / "results"
        if not results.is_dir():
            return 0
        return sum(1 for _ in results.glob("*.npz"))

    def lookup_result(self, key: ResultKey) -> EvalOutcome | None:
        """Memory → disk result lookup; counts the hit/miss either way."""
        outcome = self._result_memory.get(key)
        if outcome is not None:
            self.result_counters.memory_hits += 1
            return outcome
        path = self.result_path_for(key)
        if path.is_file():
            try:
                outcome = _load_outcome(path)
            except (OSError, ValueError, KeyError, zipfile.BadZipFile):
                outcome = None
        if outcome is not None:
            self.result_counters.disk_hits += 1
            self._result_memory[key] = outcome
            return outcome
        self.result_counters.misses += 1
        return None

    def put_result(self, key: ResultKey, outcome: EvalOutcome) -> Path:
        self._result_memory[key] = outcome
        return _save_outcome(self.result_path_for(key), outcome)

    def get_result(
        self, key: ResultKey, compute: Callable[[], EvalOutcome]
    ) -> EvalOutcome:
        """Memory → disk → ``compute()`` (which is then persisted)."""
        outcome = self.lookup_result(key)
        if outcome is None:
            outcome = compute()
            self.put_result(key, outcome)
        return outcome

    # -- maintenance -----------------------------------------------------------
    def clear_memory(self) -> None:
        self._memory.clear()
        self._result_memory.clear()

    def clear(self) -> None:
        """Drop the memory maps and delete every on-disk entry."""
        self.clear_memory()
        if self.root.is_dir():
            for path in self.root.glob("*.npz"):
                path.unlink(missing_ok=True)
        results = self.root / "results"
        if results.is_dir():
            for path in results.glob("*.npz"):
                path.unlink(missing_ok=True)

    def __repr__(self) -> str:
        return (
            f"TraceStore({str(self.root)!r}, entries={len(self)}, "
            f"results={self.n_results()})"
        )


# ---------------------------------------------------------------------------
# default store
# ---------------------------------------------------------------------------

_override: TraceStore | None = None
_instances: dict[Path, TraceStore] = {}


def set_default_store(store: TraceStore | None) -> None:
    """Globally override (or with ``None`` reset) the default store.

    The test suite points the default at a tmpdir through this hook so
    runs never pollute the user's cache directory.
    """
    global _override
    _override = store


def default_store() -> TraceStore:
    """The process-wide store: ``$REPRO_TRACE_STORE`` or ``~/.cache``.

    Instances are memoised per resolved root so the in-memory layer
    survives repeated calls while env-var changes take effect.
    """
    if _override is not None:
        return _override
    env = os.environ.get(TRACE_STORE_ENV)
    root = (
        Path(env).expanduser()
        if env
        else Path.home() / ".cache" / "repro" / "traces"
    )
    store = _instances.get(root)
    if store is None:
        store = _instances.setdefault(root, TraceStore(root))
    return store


def kernel_trace_key(
    name: str, n: int | None = None, seed: int | None = None
) -> TraceKey:
    """Store identity of a registry kernel's trace.

    ``n`` is resolved to the kernel's default so equivalent requests
    share one store entry — the same resolution
    :func:`kernel_trace_cached` applies, exposed so result caching can
    address ``(trace, scenario, backend)`` without re-acquiring.
    """
    from ..kernels import get_kernel

    kernel = get_kernel(name)
    eff_n = kernel.default_n if n is None else n
    return TraceKey.make(name, n=eff_n, seed=seed)


def kernel_trace_cached(
    name: str,
    n: int | None = None,
    seed: int | None = None,
    store: TraceStore | None = None,
) -> Trace:
    """Trace of a registered kernel, interpreted at most once per machine.

    The canonical acquisition path for everything keyed by a registry
    kernel name: resolves ``n`` to the kernel's default so equivalent
    requests share one store entry, and only builds (program, inputs)
    on a miss.
    """
    from ..kernels import get_kernel

    kernel = get_kernel(name)
    eff_n = kernel.default_n if n is None else n
    key = TraceKey.make(name, n=eff_n, seed=seed)
    target = store if store is not None else default_store()

    def _build() -> Trace:
        program, inputs = kernel.build(n=eff_n, seed=seed)
        return build_trace(program, inputs)

    return target.get(key, _build)
