"""Persistent, content-addressed, *sharded* trace/result store.

The paper's method is trace-once / sweep-many: a kernel's access trace
depends only on the program and its data, never on the machine
configuration, so one interpreter run drives an entire parameter space
(§6).  The store pushes that to its logical end — a kernel is
interpreted once *per machine, ever*.  Traces are serialised to
compressed ``.npz`` files (:meth:`repro.ir.trace.Trace.save`) and
addressed by a digest of ``(kernel name, build parameters, trace
format version)``, so a change to any ingredient yields a fresh entry
instead of a stale hit.

This module is also the single code path for trace *acquisition*:
:func:`build_trace` is the only place the interpreter (or its
vectorised fast path) is invoked on behalf of the engine, the bench
harness and the CLI, which is what lets the test suite assert that a
warm store performs **zero** interpreter executions.

The store also caches *results*: an evaluation is pure in
``(trace, scenario, backend)``, so a :class:`ResultKey` content-address
maps to a persisted :class:`~repro.backends.base.EvalOutcome` and a
re-run of an identical campaign skips simulation entirely.  Result
hits and misses are counted (``result_counters``) exactly like trace
acquisitions, and the backends' ``evaluation_count`` mirrors the
interpretation counter on the evaluation side.

On-disk layout (fleet scale: many campaigns, bounded disk)
----------------------------------------------------------

A flat directory stops working once campaign traffic fans out — at a
few thousand artifacts every ``readdir`` and every eviction decision
touches one giant directory, and nothing bounds disk use.  The store
therefore shards::

    <root>/
      index.json            versioned JSON index (atomic rename)
      traces/<ab>/<name>-<digest16>.npz     trace shards
      results/<cd>/<backend>-<digest20>.npz result shards
      touch/<tag>-<host>-<pid>.jsonl        per-worker write-ahead logs

* **Shards** — every artifact lives under a two-hex-character prefix
  directory derived from its digest (:func:`shard_of`, i.e.
  ``digest[:2]``: 256-way fan-out, stable forever).
* **Index** — ``index.json`` maps each entry's *ref* (the digest
  prefix embedded in its filename) to ``{kind, path, bytes, atime,
  ctime}`` under a top-level ``{"index_format": N, "entries": ...}``
  envelope.  Writes go through a temp file + ``os.replace`` so the
  index is never torn; an unreadable or stale-format index is rebuilt
  by scanning the shard directories, and addressable files missing
  from the index (a crash between artifact write and index flush) are
  adopted on first lookup.  Access times are updated in memory and
  flushed on the next mutation, so pure-read workloads do not rewrite
  the index per hit.
* **GC** — ``TraceStore(max_bytes=..., policy="lru")`` bounds disk
  use: :meth:`TraceStore.gc` (also run automatically after each put
  when a budget is set) evicts least-recently-used **result-cache
  entries first, then traces** (results are cheap to recompute from a
  stored trace; a trace costs an interpreter run), stops as soon as
  the budget is met, and never evicts an entry a reader currently has
  pinned (:meth:`TraceStore.reading`).  Evictions are counted per
  kind (``counters.evictions`` / ``result_counters.evictions``).
* **Write-ahead touch files** — multiprocessing campaign workers never
  write ``index.json``; each worker appends one JSON line per
  evaluation to its own ``touch/<tag>-<host>-<pid>.jsonl`` file and the
  parent merges them (access times, hit counters, worker-side
  evaluation counts) when the campaign completes
  (:meth:`TraceStore.merge_touches`), so the index cannot be corrupted
  by concurrent writers.
* **Claim leases** — in-process claims (threads, streams) coordinate
  through :class:`threading.Event`; *cross-process* claims coordinate
  through lock-file leases under ``leases/``: one small JSON file per
  in-flight build recording the holder's pid, host and an expiry
  timestamp.  A lease is published atomically (written to a temp file,
  then hard-linked into place, so a reader can never observe a
  half-written lease) and *stolen* by a rival once it goes stale — or
  immediately, when the holder's pid is provably dead on the same
  host.  Liveness past the lease's own expiry comes from a single
  per-process *heartbeat manifest* (``leases/hb/<host>-<pid>.json``)
  renewed with one atomic replace per tick, so heartbeat I/O is O(1)
  per tick no matter how many leases a campaign holds: a lease is
  live while its own expiry is in the future *or* its holder's
  heartbeat is fresh.  Two independent processes sharing one store
  root therefore never build the same entry twice while the first
  builder is alive; a crash stops the heartbeat and delays rivals by
  at most ``lease_ttl_s``.
* **Migration** — a legacy flat-layout store (traces at ``<root>/
  *.npz``, results at ``<root>/results/*.npz``) is migrated losslessly
  into the sharded layout the first time it is opened.

``repro store stats`` and ``repro store gc`` expose the same machinery
on the command line.
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import os
import re
import socket
import tempfile
import threading
import time
import warnings
import zipfile
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable, Iterator, Mapping

import numpy as np

from .. import obs
from ..backends.base import EvalOutcome, Scenario
from ..core.stats import AccessStats
from ..ir.loops import Program
from ..ir.trace import TRACE_DIGEST_VERSION, Trace

__all__ = [
    "INDEX_FORMAT_VERSION",
    "LEASE_TTL_S",
    "RESULT_FORMAT_VERSION",
    "STORE_MAX_BYTES_ENV",
    "TRACE_STORE_ENV",
    "GCReport",
    "ResultKey",
    "StoreCounters",
    "TraceKey",
    "TraceStore",
    "append_touch",
    "build_trace",
    "default_store",
    "interpretation_count",
    "kernel_trace_cached",
    "kernel_trace_key",
    "set_default_store",
    "shard_of",
]

#: Environment variable overriding the default store root.
TRACE_STORE_ENV = "REPRO_TRACE_STORE"

#: Environment variable setting the default store's disk budget (bytes).
STORE_MAX_BYTES_ENV = "REPRO_STORE_MAX_BYTES"

#: Version of the on-disk index envelope; a bump (or any unreadable
#: index) triggers a rebuild from the shard directories instead of a
#: misread.
INDEX_FORMAT_VERSION = 1

_INDEX_NAME = "index.json"
_TRACES_DIR = "traces"
_RESULTS_DIR = "results"
_TOUCH_DIR = "touch"
_LEASES_DIR = "leases"

#: How long a waiter blocks on another thread's in-flight build/claim
#: before giving up and building the entry itself.
_INFLIGHT_TIMEOUT_S = 120.0

#: Default validity of a cross-process claim lease.  A holder's
#: per-process heartbeat manifest is renewed every ``lease_ttl_s / 3``
#: (one atomic replace covering every lease it holds), so only a
#: crashed (or wedged) holder ever lets its leases go stale.
LEASE_TTL_S = 30.0

#: How often a cross-process lease waiter re-checks for the peer's
#: result (or the lease's disappearance).
_LEASE_POLL_S = 0.05

_HOSTNAME = socket.gethostname() or "localhost"

#: Heartbeat manifests live in a subdirectory so the ``*-*.json``
#: globs over claim-lease files never pick one up.
_HB_DIR = "hb"


def _safe_host(host: str) -> str:
    """A hostname reduced to filename-safe characters."""
    return re.sub(r"[^A-Za-z0-9_.-]+", "-", host) or "localhost"


def _pid_alive(pid: int) -> bool:
    """Best-effort liveness of a pid on *this* host."""
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except (PermissionError, OSError):
        return True  # exists, owned by someone else (or unknowable)
    return True


def shard_of(digest: str) -> str:
    """The shard directory for a digest: its first two hex characters.

    Stable forever by construction — test-asserted, because changing it
    would orphan every existing store entry.
    """
    return digest[:2]


# ---------------------------------------------------------------------------
# the one interpretation path
# ---------------------------------------------------------------------------

_interpretations = 0


def interpretation_count() -> int:
    """How many traces this process has generated from scratch.

    Every trace acquisition in the repo funnels through
    :func:`build_trace`, so this counter is exactly the number of
    interpreter / fast-path executions — a warm store keeps it flat.
    """
    return _interpretations


def build_trace(program: Program, inputs: Mapping[str, np.ndarray]) -> Trace:
    """Generate a trace from scratch (the *only* interpretation path).

    Uses the vectorised affine fast path (bit-identical to the
    interpreter, asserted by the test suite) and falls back to the
    interpreter for kernels with indirect subscripts.
    """
    global _interpretations
    _interpretations += 1
    from ..ir.vectorize import fast_trace

    return fast_trace(program, inputs)


# ---------------------------------------------------------------------------
# content addressing
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class TraceKey:
    """Identity of a stored trace: kernel name + canonicalised params.

    The digest covers the trace *digest* version too — the semantic
    content version, deliberately not the on-disk layout version: the
    super-op layout (format v2) reads back bit-identically, so
    re-encoding a shard must never orphan it.  A digest-version bump
    invalidates every old entry instead of misreading it.
    """

    kernel: str
    params: tuple[tuple[str, object], ...] = ()

    @staticmethod
    def make(kernel: str, **params: object) -> "TraceKey":
        return TraceKey(kernel=kernel, params=tuple(sorted(params.items())))

    @property
    def digest(self) -> str:
        from .. import __version__

        # The package version is part of the identity: a release that
        # changes kernel builders or the trace generator invalidates
        # every old entry instead of silently replaying stale traces.
        # (Within one dev version, ``TraceStore.clear()`` or deleting
        # the store root forces a rebuild.)
        document = json.dumps(
            {
                "kernel": self.kernel,
                "params": list(self.params),
                "format_version": TRACE_DIGEST_VERSION,
                "package_version": __version__,
            },
            sort_keys=True,
            default=str,
        )
        return hashlib.sha256(document.encode()).hexdigest()

    @property
    def ref(self) -> str:
        """The digest prefix embedded in the filename — the index key."""
        return self.digest[:16]

    @property
    def filename(self) -> str:
        safe = re.sub(r"[^A-Za-z0-9_.-]+", "_", self.kernel) or "trace"
        return f"{safe}-{self.ref}.npz"

    def describe(self) -> str:
        args = ", ".join(f"{k}={v}" for k, v in self.params)
        return f"{self.kernel}({args})"


#: Version of the persisted result layout; a bump invalidates every
#: cached outcome instead of misreading it.
RESULT_FORMAT_VERSION = 1


@dataclass(frozen=True)
class ResultKey:
    """Identity of a cached evaluation: trace x scenario x backend.

    The trace digest already covers kernel identity, build parameters,
    trace format and package version; the scenario digest covers the
    machine configuration and every backend knob; ``backend`` is the
    *cache identity* — usually the backend name, but a dispatching
    backend refines it (the service caches under
    ``"service:<delegate>"``, so cached physics never survives a
    delegate switch).  Everything that can change an outcome is in the
    address, so stale hits are impossible within a package version.
    """

    trace_digest: str
    scenario_digest: str
    backend: str

    @staticmethod
    def make(trace_key: "TraceKey", scenario: Scenario) -> "ResultKey":
        """The canonical key of one evaluation point.

        Resolves the scenario's backend to its cache identity through
        :func:`repro.backends.base.cache_identity_of`.
        """
        from ..backends.base import cache_identity_of

        return ResultKey(
            trace_digest=trace_key.digest,
            scenario_digest=scenario.digest,
            backend=cache_identity_of(scenario.backend),
        )

    @property
    def digest(self) -> str:
        document = json.dumps(
            {
                "trace": self.trace_digest,
                "scenario": self.scenario_digest,
                "backend": self.backend,
                "result_format": RESULT_FORMAT_VERSION,
            },
            sort_keys=True,
        )
        return hashlib.sha256(document.encode()).hexdigest()

    @property
    def ref(self) -> str:
        """The digest prefix embedded in the filename — the index key."""
        return self.digest[:20]

    @property
    def filename(self) -> str:
        safe = re.sub(r"[^A-Za-z0-9_.-]+", "_", self.backend) or "backend"
        return f"{safe}-{self.ref}.npz"


def _ref_from_filename(name: str) -> str:
    """Recover an entry's ref from its filename (``<safe>-<hex>.npz``).

    Filenames that do not follow the convention (hand-copied files)
    fall back to the whole stem — still indexed, GC-able and preserved
    by migration, just never addressed by a key lookup (exactly their
    status in the flat layout).
    """
    stem = Path(name).stem
    candidate = stem.rsplit("-", 1)[-1]
    if len(candidate) >= 2 and all(c in "0123456789abcdef" for c in candidate):
        return candidate
    return stem


def _save_outcome(path: Path, outcome: EvalOutcome) -> Path:
    """Persist an outcome to ``.npz`` (atomic replace, exact dtypes)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    meta = json.dumps(
        {
            "result_format": RESULT_FORMAT_VERSION,
            "backend": outcome.backend,
            "scenario": outcome.scenario.to_dict(),
            "metrics": outcome.metrics,
            "array_names": list(outcome.stats.array_names),
            "per_pe_keys": sorted(outcome.per_pe),
        },
        sort_keys=True,
    )
    payload = {
        "counts": outcome.stats.counts,
        "by_array": outcome.stats.by_array,
    }
    for name in outcome.per_pe:
        payload[f"per_pe__{name}"] = outcome.per_pe[name]
    fd, tmp = tempfile.mkstemp(
        dir=path.parent, prefix=path.name, suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "wb") as fh:
            np.savez_compressed(fh, meta=np.array(meta), **payload)
        os.replace(tmp, path)
    except BaseException:
        if os.path.exists(tmp):
            os.unlink(tmp)
        raise
    return path


def _load_outcome(path: Path) -> EvalOutcome:
    """Load an outcome saved by :func:`_save_outcome` (validated)."""
    with np.load(Path(path), allow_pickle=False) as data:
        try:
            meta = json.loads(str(data["meta"][()]))
            counts = data["counts"]
            by_array = data["by_array"]
            per_pe = {
                name: data[f"per_pe__{name}"]
                for name in meta.get("per_pe_keys", [])
            }
        except KeyError as exc:
            raise ValueError(f"not a result file: missing {exc}") from None
    version = meta.get("result_format")
    if version != RESULT_FORMAT_VERSION:
        raise ValueError(
            f"unsupported result format version {version!r} "
            f"(expected {RESULT_FORMAT_VERSION})"
        )
    stats = AccessStats(
        n_pes=int(counts.shape[0]),
        array_names=tuple(meta["array_names"]),
    )
    stats.counts = counts
    stats.by_array = by_array
    return EvalOutcome(
        backend=str(meta["backend"]),
        scenario=Scenario.from_dict(meta["scenario"]),
        stats=stats,
        metrics=dict(meta["metrics"]),
        per_pe=per_pe,
    )


def append_touch(
    touch_dir: str | os.PathLike, tag: str, ref: str, *, evals: int = 0
) -> None:
    """Append one write-ahead access record for a trace entry.

    Campaign workers (and the serial executor, for symmetry) call this
    once per evaluated job instead of writing the index: each process
    appends to its *own* ``<tag>-<pid>.jsonl`` file, so no two writers
    ever share a file and the index cannot be torn by a worker crash.
    The campaign parent folds the files back into the index — access
    times, trace-hit counters and worker-side evaluation counts — via
    :meth:`TraceStore.merge_touches`.  Failures are swallowed: touches
    are advisory (LRU hints and observability), never worth failing an
    evaluation over.
    """
    try:
        directory = Path(touch_dir)
        directory.mkdir(parents=True, exist_ok=True)
        line = json.dumps(
            {
                "ref": ref,
                "kind": "trace",
                "at": time.time(),
                "evals": int(evals),
            }
        )
        # Host + pid in the filename: fleet workers on different hosts
        # sharing one store root may reuse a pid.
        name = f"{tag}-{_safe_host(_HOSTNAME)}-{os.getpid()}.jsonl"
        with open(directory / name, "a") as fh:
            fh.write(line + "\n")
    except OSError:
        pass


@dataclass
class StoreCounters:
    """Observability: where each ``get`` was satisfied, plus GC work."""

    memory_hits: int = 0
    disk_hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def total(self) -> int:
        return self.memory_hits + self.disk_hits + self.misses

    def as_dict(self) -> dict[str, int]:
        return {
            "memory_hits": self.memory_hits,
            "disk_hits": self.disk_hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }


@dataclass
class GCReport:
    """What one :meth:`TraceStore.gc` pass did."""

    #: ``(kind, ref, bytes)`` per evicted entry, in eviction order.
    evicted: list[tuple[str, str, int]] = field(default_factory=list)
    freed_bytes: int = 0
    #: store size after the pass
    total_bytes: int = 0
    #: the budget the pass enforced (``None``: nothing to enforce)
    max_bytes: int | None = None
    #: entries spared because a reader had them pinned
    pinned_skipped: int = 0

    @property
    def evicted_results(self) -> int:
        return sum(1 for kind, _r, _b in self.evicted if kind == "result")

    @property
    def evicted_traces(self) -> int:
        return sum(1 for kind, _r, _b in self.evicted if kind == "trace")

    def as_dict(self) -> dict[str, object]:
        return {
            "evicted_results": self.evicted_results,
            "evicted_traces": self.evicted_traces,
            "freed_bytes": self.freed_bytes,
            "total_bytes": self.total_bytes,
            "max_bytes": self.max_bytes,
            "pinned_skipped": self.pinned_skipped,
        }


#: Eviction policies: an index entry -> sort key (evict smallest first).
_POLICIES: dict[str, Callable[[dict], object]] = {
    "lru": lambda entry: entry.get("atime", 0.0),
    "fifo": lambda entry: entry.get("ctime", 0.0),
}


def _lease_fields(path: Path) -> dict[str, str]:
    """Event fields (kind, ref) recovered from a lease file name."""
    letter, _, rest = path.name.partition("-")
    ref = rest[:-5] if rest.endswith(".json") else rest
    kind = {"t": "trace", "r": "result"}.get(letter, letter)
    return {"kind": kind, "ref": ref}


def _counter_aliases(kind: str) -> Callable[[Mapping], dict[str, int]]:
    def build(snapshot: Mapping) -> dict[str, int]:
        return {
            name: snapshot[f"{kind}_{name}_total"]
            for name in ("memory_hits", "disk_hits", "misses", "evictions")
        }

    return build


#: One-release deprecation shim: pre-obs ``stats()`` keys -> canonical.
_STATS_ALIASES: dict[str, object] = {
    "traces": lambda s: {
        "entries": s["trace_entries"],
        "bytes": s["trace_bytes"],
    },
    "results": lambda s: {
        "entries": s["result_entries"],
        "bytes": s["result_bytes"],
    },
    "trace_counters": _counter_aliases("trace"),
    "result_counters": _counter_aliases("result"),
}


class _LeaseWaiter:
    """Cross-process analogue of an in-process claim's ``Event``.

    Returned by :meth:`TraceStore.claim_result` (and the trace path)
    when a *different process* holds the build lease for an entry.
    ``wait`` polls until the satisfaction predicate fires (the peer's
    artifact landed), the lease disappears or goes stale (the peer
    released it, crashed, or let it expire — the caller should then
    re-check and re-claim), or the timeout elapses.  Duck-types the
    ``wait(timeout) -> bool`` half of :class:`threading.Event`, which
    is all the claim protocol's waiters use.
    """

    def __init__(
        self, store: "TraceStore", kind: str, ref: str,
        satisfied: Callable[[], bool],
    ) -> None:
        self._store = store
        self._kind = kind
        self._ref = ref
        self._satisfied = satisfied

    def wait(self, timeout: float | None = None) -> bool:
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            if self._satisfied():
                return True
            if self._store.lease_holder(self._ref, kind=self._kind) is None:
                # Released, stolen, expired or crashed: the caller's
                # re-check decides whether to replay or rebuild.
                return True
            if deadline is not None:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False
                time.sleep(min(_LEASE_POLL_S, remaining))
            else:
                time.sleep(_LEASE_POLL_S)


class TraceStore:
    """Sharded two-level (memory, disk) cache of traces and results.

    ``get`` resolves a :class:`TraceKey` against the in-process map
    first, then the ``.npz`` file in its shard directory, and only then
    invokes the builder — persisting its result for every later
    process.  Unreadable or stale-format files are treated as misses
    and rebuilt in place, never propagated.  See the module docstring
    for the on-disk layout, the index format and the GC policy.

    ``max_bytes`` bounds the store's disk use: when set, every put
    triggers an LRU (or FIFO, per ``policy``) garbage-collection pass
    that evicts result-cache entries first, then traces, skipping
    entries currently pinned by a reader.  All index mutations are
    serialised behind one re-entrant lock, builds and result
    computations are single-flighted per key, and reads pin their
    entry so GC can never unlink a file mid-read — the store is safe
    for any number of threads/streams in one process, while
    multiprocessing workers go through write-ahead touch files instead
    of the index.

    Builds are additionally guarded *across processes* by lock-file
    leases (see the module docstring): a process that wins the
    in-process flight also takes a lease under ``leases/``, renewed by
    a heartbeat thread until released; a process that finds a foreign
    lease waits on a :class:`_LeaseWaiter` instead of building.
    ``lease_ttl_s`` is the crash-recovery bound — how long a rival
    waits before stealing a dead holder's lease (a holder whose pid is
    provably dead on the same host is stolen from immediately).
    """

    def __init__(
        self,
        root: str | os.PathLike,
        *,
        max_bytes: int | None = None,
        policy: str = "lru",
        lease_ttl_s: float = LEASE_TTL_S,
    ) -> None:
        if policy not in _POLICIES:
            raise ValueError(
                f"unknown eviction policy {policy!r}; "
                f"choose from {tuple(sorted(_POLICIES))}"
            )
        if max_bytes is not None and max_bytes < 0:
            raise ValueError("max_bytes must be non-negative")
        if lease_ttl_s <= 0:
            raise ValueError("lease_ttl_s must be positive")
        self.root = Path(root)
        self.max_bytes = max_bytes
        self.policy = policy
        self.lease_ttl_s = lease_ttl_s
        self.counters = StoreCounters()
        #: where each result lookup was satisfied (mirrors ``counters``)
        self.result_counters = StoreCounters()
        self._memory: dict[TraceKey, Trace] = {}
        self._result_memory: dict[ResultKey, EvalOutcome] = {}
        self._lock = threading.RLock()
        #: ref -> index entry; ``None`` until first loaded/migrated
        self._entries: dict[str, dict] | None = None
        self._dirty = False
        #: refs currently being read (GC must not evict them)
        self._pins: Counter[str] = Counter()
        #: single-flight builds/claims: "t:<ref>" / "r:<ref>" -> Event
        self._inflight: dict[str, threading.Event] = {}
        #: cross-process leases this store currently holds: (kind, ref)
        self._held_leases: set[tuple[str, str]] = set()
        self._lease_thread: threading.Thread | None = None
        #: (host, pid) -> (checked_monotonic, expires): short-lived
        #: cache of holder heartbeat manifests, so scanning N leases of
        #: one holder costs one manifest read, not N
        self._hb_cache: dict[tuple[str, int], tuple[float, float]] = {}
        #: whether unindexed shard artifacts have been adopted (once)
        self._adopted = False
        #: (inode, mtime, size) of the index as this process last
        #: wrote it — flushes skip the cross-process merge parse when
        #: the on-disk file is still our own snapshot
        self._last_flush_stat: tuple[int, int, int] | None = None

    # -- paths -----------------------------------------------------------------
    @property
    def index_path(self) -> Path:
        return self.root / _INDEX_NAME

    @property
    def touch_dir(self) -> Path:
        """Where write-ahead per-worker touch files live."""
        return self.root / _TOUCH_DIR

    def path_for(self, key: TraceKey) -> Path:
        """Canonical shard path of a trace entry."""
        return self.root / _TRACES_DIR / shard_of(key.digest) / key.filename

    def result_path_for(self, key: ResultKey) -> Path:
        """Canonical shard path of a result entry."""
        return self.root / _RESULTS_DIR / shard_of(key.digest) / key.filename

    def __contains__(self, key: TraceKey) -> bool:
        with self._lock:
            if key in self._memory:
                return True
            entry = self._index().get(key.ref)
            if entry is not None and entry.get("kind") == "trace":
                return True
        return self.path_for(key).is_file()

    def __len__(self) -> int:
        with self._lock:
            self._adopt_unindexed()
            return sum(
                1 for e in self._index().values() if e.get("kind") == "trace"
            )

    # -- the index -------------------------------------------------------------
    def _index(self) -> dict[str, dict]:
        """Entries, loading/rebuilding/migrating on first use (locked)."""
        if self._entries is not None:
            return self._entries
        entries: dict[str, dict] | None = None
        had_index = self.index_path.is_file()
        if had_index:
            try:
                data = json.loads(self.index_path.read_text())
                if (
                    isinstance(data, dict)
                    and data.get("index_format") == INDEX_FORMAT_VERSION
                    and isinstance(data.get("entries"), dict)
                ):
                    entries = {
                        str(ref): dict(entry)
                        for ref, entry in data["entries"].items()
                        if isinstance(entry, dict)
                    }
            except (OSError, ValueError):
                entries = None
        if entries is None:
            # Missing, torn or stale-format index: rebuild the ground
            # truth from the shard directories (crash-safe recovery).
            # A pristine root (no index, no shards) stays untouched on
            # disk until the first put.
            entries = self._scan_shards()
            self._dirty = had_index or bool(entries)
            self._adopted = True  # the rebuild IS a full scan
        # Drop entries whose artifact vanished behind our back.
        for ref in [
            ref
            for ref, entry in entries.items()
            if not (self.root / entry.get("path", "")).is_file()
        ]:
            del entries[ref]
            self._dirty = True
        if self._migrate_flat(entries):
            self._dirty = True
        self._entries = entries
        if self._dirty:
            self._flush_index()
        return entries

    def _adopt_unindexed(self) -> None:
        """Fold shard artifacts missing from the index back in (once).

        A valid index can still under-report: an entry another process
        indexed can lose a concurrent flush's rename race, and a crash
        between artifact write and index flush leaves the file
        unindexed.  Lookups recover per key (canonical-path adoption);
        the paths that need *ground-truth totals* — ``len``, result
        counts, ``stats``, GC budgets — call this instead.  One shard
        walk per store instance, and only on those paths, so plain
        lookup traffic never pays an O(artifacts) directory scan.
        Locked by the caller.
        """
        if self._adopted:
            return
        self._adopted = True
        entries = self._index()
        for ref, entry in self._scan_shards().items():
            if ref not in entries:
                entries[ref] = entry
                self._dirty = True

    def _scan_shards(self) -> dict[str, dict]:
        """Rebuild index entries from the shard directories."""
        entries: dict[str, dict] = {}
        for kind, base in (
            ("trace", self.root / _TRACES_DIR),
            ("result", self.root / _RESULTS_DIR),
        ):
            if not base.is_dir():
                continue
            for path in base.glob("[0-9a-f][0-9a-f]/*.npz"):
                try:
                    stat = path.stat()
                except OSError:
                    continue
                entries[_ref_from_filename(path.name)] = {
                    "kind": kind,
                    "path": str(path.relative_to(self.root)),
                    "bytes": stat.st_size,
                    "atime": stat.st_mtime,
                    "ctime": stat.st_mtime,
                }
        return entries

    def _migrate_flat(self, entries: dict[str, dict]) -> bool:
        """Move a legacy flat-layout store into shards (lossless).

        Legacy traces live directly under the root, legacy results
        directly under ``results/`` — both globs deliberately skip the
        sharded subdirectories, so migration is a no-op on a store that
        is already (or partially) sharded.
        """
        moved = False
        if not self.root.is_dir():
            return moved
        batches = [(self.root.glob("*.npz"), "trace", _TRACES_DIR)]
        legacy_results = self.root / _RESULTS_DIR
        if legacy_results.is_dir():
            batches.append(
                (
                    (p for p in legacy_results.iterdir() if p.suffix == ".npz" and p.is_file()),
                    "result",
                    _RESULTS_DIR,
                )
            )
        for paths, kind, base in batches:
            for path in paths:
                ref = _ref_from_filename(path.name)
                dest = self.root / base / shard_of(ref) / path.name
                try:
                    stat = path.stat()
                    dest.parent.mkdir(parents=True, exist_ok=True)
                    os.replace(path, dest)
                except OSError:
                    continue
                entries[ref] = {
                    "kind": kind,
                    "path": str(dest.relative_to(self.root)),
                    "bytes": stat.st_size,
                    "atime": stat.st_mtime,
                    "ctime": stat.st_mtime,
                }
                moved = True
        return moved

    def _flush_index(self) -> None:
        """Atomically persist the index (temp file + rename; locked).

        Flushes *merge* with the on-disk index first: another process
        sharing this root may have indexed entries this process has
        never seen, and publishing a raw snapshot of our in-memory map
        would erase them (last-writer-wins).  Disk-only entries whose
        artifact still exists are folded in before the rename; entries
        evicted by GC or ``clear`` do not resurrect, because their
        artifacts are gone.  A flush racing another process's flush
        can still lose one entry in the rename window — the
        ground-truth shard scan (:meth:`_adopt_unindexed`, run by
        ``len``/``stats``/GC) and the per-lookup adoption path
        re-index such survivors from their artifacts.
        """
        if self._entries is None:
            return
        self.root.mkdir(parents=True, exist_ok=True)
        # Skip the merge parse when the on-disk index is still this
        # process's own last snapshot (inode/mtime/size unchanged):
        # single-writer stores then never pay an extra O(entries)
        # read per put; only an actual foreign write triggers it.
        disk_stat = self._index_stat()
        if disk_stat is not None and disk_stat != self._last_flush_stat:
            try:
                data = json.loads(self.index_path.read_text())
                if (
                    isinstance(data, dict)
                    and data.get("index_format") == INDEX_FORMAT_VERSION
                    and isinstance(data.get("entries"), dict)
                ):
                    for ref, entry in data["entries"].items():
                        if (
                            str(ref) in self._entries
                            or not isinstance(entry, dict)
                        ):
                            continue
                        if (self.root / entry.get("path", "")).is_file():
                            self._entries[str(ref)] = dict(entry)
            except (OSError, ValueError):
                pass  # torn disk index: nothing to merge
        document = json.dumps(
            {
                "index_format": INDEX_FORMAT_VERSION,
                "policy": self.policy,
                "entries": self._entries,
            },
            sort_keys=True,
        )
        fd, tmp = tempfile.mkstemp(
            dir=self.root, prefix=_INDEX_NAME, suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as fh:
                fh.write(document + "\n")
            os.replace(tmp, self.index_path)
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise
        self._last_flush_stat = self._index_stat()
        self._dirty = False

    def _index_stat(self) -> tuple[int, int, int] | None:
        """Identity of the on-disk index file (inode, mtime, size)."""
        try:
            st = os.stat(self.index_path)
        except OSError:
            return None
        return (st.st_ino, st.st_mtime_ns, st.st_size)

    def _record_entry(self, ref: str, kind: str, path: Path) -> None:
        """Index a just-written artifact and flush (locked by caller).

        Puts flush eagerly — a concurrent reader in another process
        should see the entry without relying on the canonical-path
        adoption fallback — while access-time updates only mark the
        index dirty and ride along with the next flush.  At the store
        sizes one machine hosts the serialize-on-put cost is dwarfed
        by the compressed ``.npz`` write itself; if profiles ever say
        otherwise, batching puts behind the existing ``_dirty``
        mechanism is the lever.
        """
        try:
            size = path.stat().st_size
        except OSError:
            return
        now = time.time()
        entry = self._index().get(ref)
        self._index()[ref] = {
            "kind": kind,
            "path": str(path.relative_to(self.root)),
            "bytes": size,
            "atime": now,
            "ctime": entry["ctime"] if entry else now,
        }
        self._flush_index()

    def _touch_entry(self, ref: str, at: float | None = None) -> None:
        """Refresh an entry's access time in memory (flushed lazily)."""
        entry = self._index().get(ref)
        if entry is not None:
            entry["atime"] = max(entry.get("atime", 0.0), at or time.time())
            self._dirty = True

    # -- read pinning ----------------------------------------------------------
    @contextlib.contextmanager
    def reading(self, ref: str) -> Iterator[None]:
        """Pin an entry while a reader uses its file.

        GC skips pinned entries — even if that leaves the store over
        budget — so an eviction can never unlink an ``.npz`` under a
        reader mid-load.  Used internally by every disk read; exposed
        so tests (and long-lived readers) can hold a pin explicitly.
        """
        with self._lock:
            self._pins[ref] += 1
        try:
            yield
        finally:
            with self._lock:
                self._pins[ref] -= 1
                if self._pins[ref] <= 0:
                    del self._pins[ref]

    # -- single-flight builds --------------------------------------------------
    def _begin_flight(self, token: str) -> threading.Event | None:
        """Claim an in-flight build slot; ``None`` means we own it."""
        with self._lock:
            event = self._inflight.get(token)
            if event is not None:
                return event
            self._inflight[token] = threading.Event()
            return None

    def _steal_flight(self, token: str, event: threading.Event) -> bool:
        """Take over a flight whose owner looks stuck (wait timed out).

        If the slot still holds the same unset event, replace it with
        our own claim and wake the stragglers waiting on the old one;
        the caller becomes the builder.  Should the original owner
        eventually finish anyway, its put simply overwrites ours with
        identical content (evaluations are pure).
        """
        with self._lock:
            if self._inflight.get(token) is event:
                self._inflight[token] = threading.Event()
                stolen = True
            else:
                stolen = False
        if stolen:
            event.set()
        return stolen

    def _end_flight(self, token: str) -> None:
        with self._lock:
            event = self._inflight.pop(token, None)
        if event is not None:
            event.set()

    # -- cross-process claim leases --------------------------------------------
    @property
    def lease_dir(self) -> Path:
        """Where cross-process claim leases live."""
        return self.root / _LEASES_DIR

    def _lease_path(self, kind: str, ref: str) -> Path:
        return self.lease_dir / f"{kind[0]}-{ref}.json"

    @staticmethod
    def _parse_lease(raw: bytes) -> dict | None:
        """Validate one lease document's bytes (``None`` if torn/junk)."""
        try:
            data = json.loads(raw)
        except ValueError:
            return None
        if not isinstance(data, dict):
            return None
        try:
            return {
                "pid": int(data["pid"]),
                "host": str(data.get("host", "")),
                "acquired": float(data.get("acquired", 0.0)),
                "expires": float(data["expires"]),
            }
        except (KeyError, TypeError, ValueError):
            return None

    def _read_lease(self, path: Path) -> dict | None:
        """The lease document, or ``None`` for absent/unreadable files.

        Leases are published and renewed atomically (hard link /
        rename), so an unreadable file is crash junk, never a healthy
        lease caught mid-write.
        """
        try:
            raw = path.read_bytes()
        except OSError:
            return None
        return self._parse_lease(raw)

    def _heartbeat_path(self, host: str, pid: int) -> Path:
        """Where ``(host, pid)``'s per-process heartbeat manifest lives."""
        return self.lease_dir / _HB_DIR / f"{_safe_host(host)}-{int(pid)}.json"

    def _heartbeat_expires(self, host: str, pid: int) -> float:
        """When ``(host, pid)``'s heartbeat manifest expires (0.0 = none).

        Reads are cached for a small fraction of the TTL: a sweep over
        thousands of leases held by one campaign process costs one
        manifest read, not one per lease.
        """
        now = time.monotonic()
        window = min(1.0, self.lease_ttl_s / 6.0)
        cached = self._hb_cache.get((host, pid))
        if cached is not None and now - cached[0] <= window:
            return cached[1]
        info = self._read_lease(self._heartbeat_path(host, pid))
        expires = 0.0
        if info is not None and info["pid"] == pid and info["host"] == host:
            expires = info["expires"]
        self._hb_cache[(host, pid)] = (now, expires)
        return expires

    def _lease_stale(self, info: dict) -> bool:
        """Dead holder, or expired with no fresh holder heartbeat.

        A lease file is written once (at acquire, with one TTL of
        validity) and never rewritten; past its own expiry it stays
        live for as long as the holder's per-process heartbeat
        manifest is fresh.
        """
        if info["host"] == _HOSTNAME and not _pid_alive(info["pid"]):
            return True
        now = time.time()
        if info["expires"] > now:
            return False
        return self._heartbeat_expires(info["host"], info["pid"]) <= now

    def lease_holder(self, ref: str, *, kind: str = "result") -> dict | None:
        """The *live* lease on an entry, or ``None``.

        Stale leases (expired with no holder heartbeat, or a same-host
        holder whose pid is dead) read as ``None``: they are free to
        steal.  The reported ``expires`` is the *effective* one — the
        later of the lease file's own expiry and the holder's
        heartbeat expiry.
        """
        info = self._read_lease(self._lease_path(kind, ref))
        if info is None or self._lease_stale(info):
            return None
        heartbeat = self._heartbeat_expires(info["host"], info["pid"])
        if heartbeat > info["expires"]:
            info["expires"] = heartbeat
        return info

    def _write_lease_tmp(self) -> Path:
        """A fully-written lease document in a temp file (atomic source)."""
        self.lease_dir.mkdir(parents=True, exist_ok=True)
        now = time.time()
        document = json.dumps(
            {
                "pid": os.getpid(),
                "host": _HOSTNAME,
                "acquired": now,
                "expires": now + self.lease_ttl_s,
            }
        )
        fd, tmp = tempfile.mkstemp(dir=self.lease_dir, suffix=".tmp")
        with os.fdopen(fd, "w") as fh:
            fh.write(document + "\n")
        return Path(tmp)

    def acquire_lease(self, ref: str, *, kind: str = "result") -> bool:
        """Take the cross-process build lease for an entry.

        Returns ``True`` when this process now holds the lease (it is
        renewed by the heartbeat until :meth:`release_lease`), ``False``
        when another *live* process does.  Publication is atomic — the
        document is written to a temp file and hard-linked into place,
        so no reader ever sees a torn lease — and stale leases
        (expired, or a provably-dead same-host holder) are stolen.
        Stealing moves the observed stale lease *aside* with an atomic
        rename before publishing a fresh one: of several rivals racing
        the steal, exactly one wins the rename — the losers loop,
        observe the winner's fresh lease, and back off.  Never two
        holders.
        """
        path = self._lease_path(kind, ref)
        for _attempt in range(8):
            tmp = self._write_lease_tmp()
            try:
                os.link(tmp, path)
            except FileExistsError:
                info = self._read_lease(path)
                if info is not None and not self._lease_stale(info):
                    return False  # a live peer holds it
                self._steal_stale_lease(path)
                continue
            except OSError:
                # Filesystem without hard links: fall back to an
                # exclusive create (tiny torn-read window, same steal
                # protocol).
                try:
                    flags = os.O_CREAT | os.O_EXCL | os.O_WRONLY
                    fd = os.open(path, flags)
                except FileExistsError:
                    info = self._read_lease(path)
                    if info is not None and not self._lease_stale(info):
                        return False
                    self._steal_stale_lease(path)
                    continue
                with os.fdopen(fd, "w") as fh:
                    fh.write(tmp.read_text())
            finally:
                with contextlib.suppress(OSError):
                    os.unlink(tmp)
            with self._lock:
                first_hold = not self._held_leases
                self._held_leases.add((kind, ref))
                self._ensure_lease_heartbeat()
            if first_hold:
                # Publish the liveness manifest right away: the lease
                # file itself carries one TTL of validity, but the
                # manifest is what keeps it alive past that.
                self._renew_manifest(force=True)
            obs.emit("lease.acquire", kind=kind, ref=ref)
            return True
        return False

    def _steal_stale_lease(self, path: Path) -> None:
        """Retire a stale lease atomically (rename aside, then delete).

        A blind unlink would race rival stealers: the slower rival's
        queued unlink could remove the *winner's* freshly published
        lease, yielding two holders.  Instead the lease is re-judged
        immediately before an atomic ``os.rename`` aside — a fresh
        lease that appeared since the caller's check is left alone,
        and of several rivals racing the rename exactly one wins
        while the losers loop and observe the winner's new lease.

        The judgment is bound to the *file identity*: the staleness
        check fstats the very fd it reads, and after winning the
        rename the inode of what was actually taken is compared to
        what was judged.  A mismatch means a rival republished inside
        the judge→rename gap and we moved its *fresh* lease aside —
        it is restored (hard link back; a no-op if the path has
        already been repopulated) and the steal backs off.  That
        narrows the residual window dramatically: a wrong steal is
        detected and undone unless a *third* actor publishes into the
        emptied path before the restore lands, in which case the
        wronged holder's heartbeat notices the foreign pid within
        ``ttl/3`` and downgrades to the protocol's documented worst
        case — one redundant, atomically-replaced build, never a torn
        artifact.
        """
        try:
            with open(path, "rb") as fh:
                judged = os.fstat(fh.fileno())
                info = self._parse_lease(fh.read())
        except OSError:
            return  # already retired by a rival stealer
        if info is not None and not self._lease_stale(info):
            return  # a fresh lease appeared since we judged: back off
        if info is None:
            reason = "junk"
        elif info["expires"] <= time.time():
            reason = "expired"
        else:
            reason = "dead-holder"
        aside = path.parent / (
            f"{path.name}.stale-{os.getpid()}-{time.monotonic_ns()}"
        )
        try:
            os.rename(path, aside)
        except OSError:
            return  # another stealer won the rename; back off
        try:
            taken = os.stat(aside)
        except OSError:
            return
        if (taken.st_ino, taken.st_dev) != (judged.st_ino, judged.st_dev):
            # We took a lease republished after our judgment — a live
            # rival's. Put it back and back off.
            with contextlib.suppress(OSError):
                os.link(aside, path)
            with contextlib.suppress(OSError):
                os.unlink(aside)
            return
        with contextlib.suppress(OSError):
            os.unlink(aside)
        obs.emit("lease.steal", reason=reason, **_lease_fields(path))

    def release_lease(self, ref: str, *, kind: str = "result") -> None:
        """Drop a lease *if this store acquired it* (no-op otherwise).

        Membership in the held set is checked first — a pid match
        alone is not ownership, because another thread (or another
        ``TraceStore`` instance) of this same process may be the one
        actually holding the lease, and its build must stay protected.
        """
        with self._lock:
            if (kind, ref) not in self._held_leases:
                return
            self._held_leases.discard((kind, ref))
        path = self._lease_path(kind, ref)
        info = self._read_lease(path)
        if info is None:
            return
        if info["pid"] == os.getpid() and info["host"] == _HOSTNAME:
            with contextlib.suppress(OSError):
                os.unlink(path)
            obs.emit("lease.release", kind=kind, ref=ref)

    def _ensure_lease_heartbeat(self) -> None:
        """Start the renewal thread if it is not running (locked)."""
        if self._lease_thread is None or not self._lease_thread.is_alive():
            self._lease_thread = threading.Thread(
                target=self._lease_heartbeat,
                name="repro-lease-heartbeat",
                daemon=True,
            )
            self._lease_thread.start()

    def _lease_heartbeat(self) -> None:
        """Renew the per-process heartbeat manifest; exits when idle.

        One atomic replace per tick covers *every* lease this process
        holds — renewal I/O is O(1), not O(held leases), so campaigns
        that claim a 10⁵-point grid up front cost the same per tick as
        one that claims a single point.  A crash kills this thread
        with the process, the manifest goes stale, and rivals steal
        the leases after ``lease_ttl_s`` — the manifest *is* the
        holder's liveness signal.
        """
        interval = min(max(self.lease_ttl_s / 3.0, 0.02), 10.0)
        while True:
            time.sleep(interval)
            with self._lock:
                if not self._held_leases:
                    self._lease_thread = None
                    return
            self._renew_manifest()

    def _renew_manifest(self, *, force: bool = False) -> None:
        """Push this process's heartbeat manifest forward (one replace).

        ``force`` publishes unconditionally (first acquire); otherwise
        a manifest another store instance of this same process renewed
        moments ago is left alone, and a manifest that *already
        expired* (this heartbeat stalled past the TTL) first drops the
        held leases rivals were entitled to steal in the gap — never
        resurrect a lease a rival may have legitimately taken.
        """
        path = self._heartbeat_path(_HOSTNAME, os.getpid())
        now = time.time()
        info = self._read_lease(path)
        own = (
            info is not None
            and info["pid"] == os.getpid()
            and info["host"] == _HOSTNAME
        )
        if not force:
            if own and info["expires"] - now > self.lease_ttl_s * (2.0 / 3.0):
                return  # freshly renewed (another instance's tick)
            if not own or info["expires"] <= now:
                self._drop_stalled_leases(now)
        expires = now + self.lease_ttl_s
        document = json.dumps(
            {
                "pid": os.getpid(),
                "host": _HOSTNAME,
                "acquired": now,
                "expires": expires,
            }
        )
        tmp = ""
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=str(path.parent), suffix=".tmp")
            with os.fdopen(fd, "w") as fh:
                fh.write(document + "\n")
            os.replace(tmp, path)
        except OSError:
            # Renewal is advisory; the next tick retries.  Failed
            # renewals must not litter leases/hb/ with temp files.
            if tmp:
                with contextlib.suppress(OSError):
                    os.unlink(tmp)
            return
        self._hb_cache[(_HOSTNAME, os.getpid())] = (time.monotonic(), expires)
        if not force:
            with self._lock:
                held = len(self._held_leases)
            obs.emit("lease.renew", kind="hb", held=held)

    def _drop_stalled_leases(self, now: float) -> None:
        """Forget held leases a stalled heartbeat let go stale.

        Called when this process's manifest is found already expired:
        any held lease whose own file expiry has also passed (or whose
        file a rival replaced) was fair game to steal, so renewing the
        manifest over it could yield two holders.  The in-flight
        builds continue unprotected — the worst case is one redundant,
        atomically-replaced evaluation, never a torn artifact.
        """
        with self._lock:
            held = list(self._held_leases)
        for kind, ref in held:
            info = self._read_lease(self._lease_path(kind, ref))
            if (
                info is not None
                and info["pid"] == os.getpid()
                and info["host"] == _HOSTNAME
                and info["expires"] > now
            ):
                continue  # acquired after the stall: still safely ours
            with self._lock:
                self._held_leases.discard((kind, ref))
            obs.emit("lease.expire", kind=kind, ref=ref)

    def active_leases(self) -> int:
        """How many live (unexpired) leases exist under this root.

        Takes no store lock — only lease files are read — so it is
        safe to call from observability paths without stalling
        concurrent lookups and puts.
        """
        if not self.lease_dir.is_dir():
            return 0
        count = 0
        for path in self.lease_dir.glob("*-*.json"):
            info = self._read_lease(path)
            if info is not None and not self._lease_stale(info):
                count += 1
        return count

    def sweep_stale_leases(self) -> int:
        """Remove stale lease files (and rename-aside leftovers).

        A campaign killed mid-grid leaves one lease file per claimed
        point that nothing else revisits unless the exact ref is
        re-claimed; this sweep — run by every :meth:`gc` pass —
        retires them through the same judge-then-rename-aside protocol
        stealing uses, so a live holder is never touched.  Returns how
        many lease files were retired.
        """
        if not self.lease_dir.is_dir():
            return 0
        swept = 0
        for path in self.lease_dir.glob("*-*.json"):
            info = self._read_lease(path)
            if info is not None and not self._lease_stale(info):
                continue
            self._steal_stale_lease(path)
            swept += 1
        # Rename-aside leftovers (an unlink that failed mid-steal) are
        # plain junk once they have sat for a while.
        for path in self.lease_dir.glob("*.stale-*"):
            try:
                if time.time() - path.stat().st_mtime > 60.0:
                    path.unlink(missing_ok=True)
            except OSError:
                continue
        # Heartbeat manifests of exited (or long-idle) processes: give
        # a full extra TTL of grace so an owner republishing at this
        # very moment is never raced.
        hb_dir = self.lease_dir / _HB_DIR
        if hb_dir.is_dir():
            for path in hb_dir.glob("*.json"):
                info = self._read_lease(path)
                if (
                    info is None
                    or info["expires"] + self.lease_ttl_s < time.time()
                ):
                    with contextlib.suppress(OSError):
                        path.unlink(missing_ok=True)
        return swept

    # -- trace access ----------------------------------------------------------
    def _resolve(self, key: TraceKey) -> Path:
        """The entry's actual path: index first, canonical otherwise."""
        with self._lock:
            entry = self._index().get(key.ref)
            if entry is not None and entry.get("kind") == "trace":
                return self.root / entry["path"]
        return self.path_for(key)

    def load(self, key: TraceKey) -> Trace | None:
        """Disk lookup only; ``None`` on absent or unreadable entries."""
        path = self._resolve(key)
        with self.reading(key.ref):
            if not path.is_file():
                return None
            try:
                trace = Trace.load(path)
            except (OSError, ValueError, KeyError, zipfile.BadZipFile):
                return None
        with self._lock:
            if key.ref in self._index():
                self._touch_entry(key.ref)
            else:
                # Crash between artifact write and index flush (or a
                # hand-copied file at its canonical path): adopt it.
                self._record_entry(key.ref, "trace", path)
        return trace

    def put(self, key: TraceKey, trace: Trace) -> Path:
        with self._lock:
            self._memory[key] = trace
        path = trace.save(self.path_for(key))
        with self._lock:
            self._record_entry(key.ref, "trace", path)
            self._auto_gc()
        return path

    def compact_traces(
        self, refs: "Iterable[str] | None" = None
    ) -> list[dict]:
        """Rewrite stored traces in the super-op layout where it pays.

        Loads every indexed trace shard (or only ``refs``), runs cycle
        detection (:mod:`repro.ir.superops`) and re-saves in place —
        the atomic-replace write and the layout-independent digests
        mean concurrent readers see either the old or the new bytes,
        both of which load bit-identically.  Shards that do not
        compact are rewritten flat (a no-op apart from mtime).
        Returns one report row per shard for the CLI.
        """
        wanted = None if refs is None else set(refs)
        with self._lock:
            entries = {
                ref: dict(entry)
                for ref, entry in self._index().items()
                if entry.get("kind") == "trace"
                and (wanted is None or ref in wanted)
            }
        report: list[dict] = []
        for ref, entry in sorted(entries.items()):
            path = self.root / entry["path"]
            try:
                trace = Trace.load(path)
                bytes_before = path.stat().st_size
            except (OSError, ValueError, KeyError, zipfile.BadZipFile):
                continue
            trace.save(path, compact=True)
            superops = trace.attached_superops()
            n_ops = len(superops.ops) if superops is not None else 0
            coverage = superops.coverage if superops is not None else 0.0
            with self._lock:
                self._record_entry(ref, "trace", path)
            report.append(
                {
                    "ref": ref,
                    "path": str(entry["path"]),
                    "bytes_before": bytes_before,
                    "bytes_after": path.stat().st_size,
                    "n_ops": n_ops,
                    "coverage": round(coverage, 4),
                }
            )
        return report

    def get(self, key: TraceKey, builder: Callable[[], Trace]) -> Trace:
        """Memory → disk → ``builder()`` (which is then persisted).

        Builds are single-flighted per key — *within* this process by
        a claim event (several threads missing simultaneously produce
        exactly one builder call), and *across* processes by a
        lock-file lease: a process that finds a foreign lease waits
        for the peer's artifact to land instead of interpreting the
        same trace twice.  Never two interpreter runs for one trace,
        however many campaigns share the root — with one bounded
        exception: a foreign holder that stays alive (lease renewed)
        but never delivers is only deferred to for
        ``_INFLIGHT_TIMEOUT_S`` in total, after which this process
        interprets the trace itself rather than hanging forever (a
        redundant but benign build; ``put`` replaces atomically).
        """
        token = f"t:{key.ref}"
        defer_deadline = time.monotonic() + _INFLIGHT_TIMEOUT_S
        while True:
            with self._lock:
                trace = self._memory.get(key)
                if trace is not None:
                    self.counters.memory_hits += 1
                    self._touch_entry(key.ref)
                    return trace
            trace = self.load(key)
            if trace is not None:
                with self._lock:
                    self.counters.disk_hits += 1
                    self._memory[key] = trace
                return trace
            event = self._begin_flight(token)
            if event is None:
                if self.acquire_lease(key.ref, kind="trace"):
                    break  # won the build slot, in-process and across
                if time.monotonic() >= defer_deadline:
                    # The foreign holder is alive (its lease keeps
                    # renewing) but has not delivered: build without
                    # the lease rather than deferring forever.
                    break
                # A peer *process* is interpreting this trace: release
                # the local slot (threads behind us re-enter the loop)
                # and wait for the peer's artifact before re-checking.
                self._end_flight(token)
                _LeaseWaiter(
                    self, "trace", key.ref,
                    lambda: self._resolve(key).is_file(),
                ).wait(
                    max(0.1, defer_deadline - time.monotonic())
                )
                continue
            if not event.wait(timeout=_INFLIGHT_TIMEOUT_S):
                # The owner looks wedged: take the slot over rather
                # than waiting forever.
                if self._steal_flight(token, event):
                    break
        # We own the flight — but a rival may have finished (built,
        # put, released) between our miss and the claim: a thread of
        # this process (check memory) or another process entirely
        # (check disk — its artifact landed before its lease was
        # released).  Re-check both before interpreting twice.
        with self._lock:
            trace = self._memory.get(key)
            if trace is not None:
                self.counters.memory_hits += 1
                self._touch_entry(key.ref)
        if trace is None:
            trace = self.load(key)
            if trace is not None:
                with self._lock:
                    self.counters.disk_hits += 1
                    self._memory[key] = trace
        if trace is not None:
            self.release_lease(key.ref, kind="trace")
            self._end_flight(token)
            return trace
        try:
            with self._lock:
                self.counters.misses += 1
            obs.emit("trace.build.start", ref=key.ref)
            build_t0 = time.perf_counter()
            with obs.span("store.build_trace", ref=key.ref):
                trace = builder()
            obs.emit(
                "trace.build.done",
                ref=key.ref,
                dur_s=time.perf_counter() - build_t0,
            )
            self.put(key, trace)
            return trace
        finally:
            self.release_lease(key.ref, kind="trace")
            self._end_flight(token)

    # -- result cache ----------------------------------------------------------
    def n_results(self) -> int:
        with self._lock:
            self._adopt_unindexed()
            return sum(
                1 for e in self._index().values() if e.get("kind") == "result"
            )

    def _resolve_result(self, key: ResultKey) -> Path:
        with self._lock:
            entry = self._index().get(key.ref)
            if entry is not None and entry.get("kind") == "result":
                return self.root / entry["path"]
        return self.result_path_for(key)

    def lookup_result(
        self, key: ResultKey, *, count: bool = True
    ) -> EvalOutcome | None:
        """Memory → disk result lookup; counts the hit/miss either way.

        ``count=False`` is the uncounted *peek* the claim protocol uses
        to close the lookup→claim race — a re-check, not a new lookup,
        so it must not distort the hit/miss telemetry.
        """
        with self._lock:
            outcome = self._result_memory.get(key)
            if outcome is not None:
                if count:
                    self.result_counters.memory_hits += 1
                self._touch_entry(key.ref)
        if outcome is not None:
            if count:
                obs.emit("cache.hit", ref=key.ref, tier="memory")
            return outcome
        path = self._resolve_result(key)
        outcome = None
        with self.reading(key.ref):
            if path.is_file():
                try:
                    outcome = _load_outcome(path)
                except (OSError, ValueError, KeyError, zipfile.BadZipFile):
                    outcome = None
        with self._lock:
            if outcome is not None:
                if count:
                    self.result_counters.disk_hits += 1
                self._result_memory[key] = outcome
                if key.ref in self._index():
                    self._touch_entry(key.ref)
                else:
                    self._record_entry(key.ref, "result", path)
            elif count:
                self.result_counters.misses += 1
        if count:
            if outcome is not None:
                obs.emit("cache.hit", ref=key.ref, tier="disk")
            else:
                obs.emit("cache.miss", ref=key.ref)
        return outcome

    def claim_result(self, key: ResultKey) -> threading.Event | _LeaseWaiter | None:
        """Announce an intent to compute a missing result.

        Returns ``None`` when the caller now owns the claim (it must
        eventually :meth:`put_result` or :meth:`abandon_result_claim`),
        or something to ``wait(timeout)`` on: the owning computation's
        :class:`~threading.Event` when the owner is a thread of this
        process, a :class:`_LeaseWaiter` when the owner is *another
        process* holding the entry's lock-file lease.  Either way two
        concurrent campaigns over one store root — threads or
        independent processes — evaluate every shared point exactly
        once while the owner is alive.
        """
        token = f"r:{key.ref}"
        event = self._begin_flight(token)
        if event is not None:
            return event
        if self.acquire_lease(key.ref):
            return None  # full owner: in-process flight + lease
        # A peer process claimed this point first: hand the local slot
        # back (other threads will reach this same waiter) and defer.
        self._end_flight(token)
        return _LeaseWaiter(
            self, "result", key.ref,
            lambda: self._resolve_result(key).is_file(),
        )

    def abandon_result_claim(self, key: ResultKey) -> None:
        """Release a claim without a result (waiters wake and recompute)."""
        self.release_lease(key.ref)
        self._end_flight(f"r:{key.ref}")

    def put_result(self, key: ResultKey, outcome: EvalOutcome) -> Path:
        with self._lock:
            self._result_memory[key] = outcome
        path = _save_outcome(self.result_path_for(key), outcome)
        with self._lock:
            self._record_entry(key.ref, "result", path)
            self._auto_gc()
        self.release_lease(key.ref)
        self._end_flight(f"r:{key.ref}")  # wake any claim waiters
        return path

    def get_result(
        self, key: ResultKey, compute: Callable[[], EvalOutcome]
    ) -> EvalOutcome:
        """Memory → disk → ``compute()`` (which is then persisted).

        Single-flighted like :meth:`get`: concurrent callers for one
        key produce exactly one computation — and, like :meth:`get`,
        total deferral to a live-but-wedged foreign lease holder is
        capped at ``_INFLIGHT_TIMEOUT_S``, after which the result is
        computed without a claim (benign duplicate, atomic replace)
        rather than waiting forever.
        """
        claimed = False
        defer_deadline = time.monotonic() + _INFLIGHT_TIMEOUT_S
        while True:
            outcome = self.lookup_result(key)
            if outcome is not None:
                return outcome
            event = self.claim_result(key)
            if event is None:
                # Close the lookup→claim race: a rival may have put
                # and released this exact key in between.
                outcome = self.lookup_result(key, count=False)
                if outcome is not None:
                    self.abandon_result_claim(key)
                    return outcome
                claimed = True
                break
            if time.monotonic() >= defer_deadline:
                # A foreign holder kept its lease alive the whole time
                # without delivering (a _LeaseWaiter can never be
                # stolen through the in-process flight table): stop
                # deferring and compute without the claim.
                break
            if not event.wait(
                timeout=max(0.0, defer_deadline - time.monotonic())
            ):
                # The owner looks wedged: take the claim over (the
                # loop's lookup still prefers a late-but-landed
                # result over recomputing).
                if self._steal_flight(f"r:{key.ref}", event):
                    outcome = self.lookup_result(key, count=False)
                    if outcome is not None:
                        self.abandon_result_claim(key)
                        return outcome
                    claimed = True
                    break
        try:
            outcome = compute()
            self.put_result(key, outcome)
            return outcome
        finally:
            if claimed:
                self.abandon_result_claim(key)

    # -- write-ahead touch merging ---------------------------------------------
    def merge_touches(
        self, tag: str | None = None, *, stale_after_s: float = 0.0
    ) -> dict[str, int]:
        """Fold per-worker touch files back into the index.

        Applies every record — entry access times become the max of
        index and touch times, each trace touch counts as a trace-store
        memory hit (the job evaluated against the already-acquired
        table), and worker-side evaluation counts are summed for the
        caller to merge into the process counter — then deletes the
        files.  With ``tag`` only that campaign's files are merged, so
        a completing campaign never swallows (and half-reads) the
        write-ahead files of one still in flight.  Untagged callers
        (the ``repro store`` admin commands, which cannot know which
        campaigns are live in other processes) pass ``stale_after_s``
        to merge only files idle at least that long — a file still
        being appended to belongs to a running campaign and is left
        for its owner.  Malformed trailing lines (a worker killed
        mid-write) are skipped, not propagated.
        """
        pattern = f"{tag}-*.jsonl" if tag else "*.jsonl"
        merged = {"files": 0, "touches": 0, "evaluations": 0}
        if not self.touch_dir.is_dir():
            return merged
        for path in sorted(self.touch_dir.glob(pattern)):
            try:
                if (
                    stale_after_s
                    and time.time() - path.stat().st_mtime < stale_after_s
                ):
                    continue  # a live campaign's write-ahead file
                lines = path.read_text().splitlines()
            except OSError:
                continue
            with self._lock:
                for line in lines:
                    try:
                        record = json.loads(line)
                        ref = str(record["ref"])
                        at = float(record.get("at", 0.0))
                        evals = int(record.get("evals", 0))
                    except (ValueError, TypeError, KeyError):
                        continue  # torn write-ahead line
                    self._touch_entry(ref, at=at)
                    self.counters.memory_hits += 1
                    merged["touches"] += 1
                    merged["evaluations"] += evals
            path.unlink(missing_ok=True)
            merged["files"] += 1
        if merged["files"]:
            with self._lock:
                if self._dirty and self._entries is not None:
                    self._flush_index()
        return merged

    # -- garbage collection ----------------------------------------------------
    def total_bytes(self) -> int:
        with self._lock:
            self._adopt_unindexed()
            return sum(e.get("bytes", 0) for e in self._index().values())

    def _auto_gc(self) -> None:
        """Enforce the construction-time budget after a put (locked).

        Skips the stale-lease sweep: this path runs *inside* the store
        lock, and the sweep is directory I/O that must never stall
        concurrent lookups/puts (explicit ``gc()`` calls, which enter
        unlocked, do sweep).
        """
        if self.max_bytes is None:
            return
        if sum(e.get("bytes", 0) for e in self._index().values()) > self.max_bytes:
            self.gc(sweep_leases=False)

    def gc(
        self, max_bytes: int | None = None, *, sweep_leases: bool = True
    ) -> GCReport:
        """Evict entries until the store fits its disk budget.

        Eviction order is **results first, then traces** (results are
        recomputable from a stored trace in milliseconds; a trace costs
        an interpreter run), least-recently-used first within each kind
        (or oldest-created, under ``policy="fifo"``).  The pass stops
        the moment the budget is met — it never over-evicts below
        ``max_bytes`` — and entries pinned by an in-flight reader are
        skipped even if that leaves the store over budget.  With no
        budget (neither argument nor construction-time) it is a no-op
        that reports the current size.  Explicit passes also sweep
        stale lease files (crashed campaigns leave one per claimed
        point) — before taking the store lock, because the sweep is
        pure directory I/O; the auto-GC path, which enters with the
        lock already held, skips it.
        """
        if sweep_leases:
            self.sweep_stale_leases()
        with self._lock:
            self._adopt_unindexed()
            entries = self._index()
            budget = self.max_bytes if max_bytes is None else max_bytes
            total = sum(e.get("bytes", 0) for e in entries.values())
            report = GCReport(total_bytes=total, max_bytes=budget)
            if budget is None or total <= budget:
                return report
            order_key = _POLICIES[self.policy]
            victims = [
                (ref, entry)
                for kind in ("result", "trace")
                for ref, entry in sorted(
                    (
                        (ref, entry)
                        for ref, entry in entries.items()
                        if entry.get("kind") == kind
                    ),
                    key=lambda item: order_key(item[1]),
                )
            ]
            for ref, entry in victims:
                if total <= budget:
                    break
                if self._pins.get(ref):
                    report.pinned_skipped += 1
                    continue
                (self.root / entry["path"]).unlink(missing_ok=True)
                del entries[ref]
                self._evict_memory(ref, entry["kind"])
                size = entry.get("bytes", 0)
                total -= size
                report.freed_bytes += size
                report.evicted.append((entry["kind"], ref, size))
                if entry["kind"] == "result":
                    self.result_counters.evictions += 1
                else:
                    self.counters.evictions += 1
            report.total_bytes = total
            self._flush_index()
        if report.evicted:
            obs.emit(
                "gc.evicted",
                n=len(report.evicted),
                results=report.evicted_results,
                traces=report.evicted_traces,
                freed_bytes=report.freed_bytes,
                total_bytes=report.total_bytes,
                policy=self.policy,
            )
        return report

    def _evict_memory(self, ref: str, kind: str) -> None:
        """Drop the in-memory copies of an evicted entry (locked)."""
        if kind == "trace":
            for key in [k for k in self._memory if k.ref == ref]:
                del self._memory[key]
        else:
            for key in [k for k in self._result_memory if k.ref == ref]:
                del self._result_memory[key]

    # -- observability ---------------------------------------------------------
    def stats_registry(self) -> "obs.MetricsRegistry":
        """Layout, sizes and counters as one metrics registry.

        This is the single emission path behind ``repro store stats``
        (``--json`` and ``--prometheus``) and
        ``CampaignResult.store_stats``: gauges for layout/sizes,
        ``_total``-suffixed counters for the monotonic hit/miss/
        eviction counts.
        """
        # Lease files are read without the store lock: the scan is
        # pure file I/O, and holding the lock through it would stall
        # every concurrent lookup/put for the duration.
        active = self.active_leases()
        registry = obs.MetricsRegistry()
        with self._lock:
            self._adopt_unindexed()
            entries = self._index()
            by_kind: dict[str, dict[str, int]] = {
                "trace": {"entries": 0, "bytes": 0},
                "result": {"entries": 0, "bytes": 0},
            }
            shards: set[str] = set()
            for entry in entries.values():
                bucket = by_kind.setdefault(
                    entry.get("kind", "trace"), {"entries": 0, "bytes": 0}
                )
                bucket["entries"] += 1
                bucket["bytes"] += entry.get("bytes", 0)
                shards.add(str(Path(entry.get("path", "")).parent))
            pending = (
                sum(1 for _ in self.touch_dir.glob("*.jsonl"))
                if self.touch_dir.is_dir()
                else 0
            )
            registry.label("root", str(self.root))
            registry.label("policy", self.policy)
            registry.label("max_bytes", self.max_bytes)
            registry.label("index_format", INDEX_FORMAT_VERSION)
            for kind in ("trace", "result"):
                registry.gauge(
                    f"{kind}_entries", f"indexed {kind} artifacts"
                ).set(by_kind[kind]["entries"])
                registry.gauge(
                    f"{kind}_bytes", f"on-disk bytes of {kind} artifacts"
                ).set(by_kind[kind]["bytes"])
            registry.gauge("total_bytes", "total on-disk bytes").set(
                sum(b["bytes"] for b in by_kind.values())
            )
            registry.gauge("shards", "populated shard directories").set(
                len(shards)
            )
            registry.gauge(
                "pending_touch_files", "unmerged write-ahead files"
            ).set(pending)
            registry.gauge("active_leases", "live claim leases").set(active)
            for kind, counters in (
                ("trace", self.counters),
                ("result", self.result_counters),
            ):
                for name, value in counters.as_dict().items():
                    registry.counter(
                        f"{kind}_{name}", f"{kind} store {name}"
                    ).inc(value)
        return registry

    def stats(self) -> dict[str, object]:
        """One JSON-friendly snapshot of layout, sizes and counters.

        Canonical snake_case schema (monotonic counts suffixed
        ``_total``); the pre-obs nested keys (``traces``, ``results``,
        ``trace_counters``, ``result_counters``) still resolve for one
        release via a :class:`~repro.obs.LegacySnapshot` that warns
        ``DeprecationWarning`` on access.
        """
        return obs.LegacySnapshot(
            self.stats_registry().snapshot(), _STATS_ALIASES
        )

    # -- maintenance -----------------------------------------------------------
    def clear_memory(self) -> None:
        with self._lock:
            self._memory.clear()
            self._result_memory.clear()

    def clear(self) -> None:
        """Drop the memory maps and delete every on-disk entry."""
        with self._lock:
            self.clear_memory()
            entries = self._index()
            for entry in entries.values():
                (self.root / entry["path"]).unlink(missing_ok=True)
            entries.clear()
            if self.touch_dir.is_dir():
                for path in self.touch_dir.glob("*.jsonl"):
                    path.unlink(missing_ok=True)
            if self.lease_dir.is_dir():
                self._held_leases.clear()
                for path in self.lease_dir.glob("*-*.json"):
                    path.unlink(missing_ok=True)
                for path in (self.lease_dir / _HB_DIR).glob("*.json"):
                    path.unlink(missing_ok=True)
                self._hb_cache.clear()
            self._flush_index()

    def __repr__(self) -> str:
        return (
            f"TraceStore({str(self.root)!r}, entries={len(self)}, "
            f"results={self.n_results()}, "
            f"max_bytes={self.max_bytes}, policy={self.policy!r})"
        )


# ---------------------------------------------------------------------------
# default store
# ---------------------------------------------------------------------------

_override: TraceStore | None = None
_instances: dict[Path, TraceStore] = {}


def set_default_store(store: TraceStore | None) -> None:
    """Globally override (or with ``None`` reset) the default store.

    The test suite points the default at a tmpdir through this hook so
    runs never pollute the user's cache directory.
    """
    global _override
    _override = store


def default_store() -> TraceStore:
    """The process-wide store: ``$REPRO_TRACE_STORE`` or ``~/.cache``.

    Instances are memoised per resolved root so the in-memory layer
    survives repeated calls while env-var changes take effect.
    ``$REPRO_STORE_MAX_BYTES`` (bytes) sets the disk budget the
    store's GC enforces.
    """
    if _override is not None:
        return _override
    env = os.environ.get(TRACE_STORE_ENV)
    root = (
        Path(env).expanduser()
        if env
        else Path.home() / ".cache" / "repro" / "traces"
    )
    budget_env = os.environ.get(STORE_MAX_BYTES_ENV)
    max_bytes: int | None = None
    if budget_env:
        try:
            max_bytes = int(budget_env)
            if max_bytes < 0:
                raise ValueError(budget_env)
        except ValueError:
            warnings.warn(
                f"ignoring invalid {STORE_MAX_BYTES_ENV}={budget_env!r} "
                "(expected a non-negative integer byte count)",
                RuntimeWarning,
                stacklevel=2,
            )
            max_bytes = None
    store = _instances.get(root)
    if store is None:
        store = _instances.setdefault(
            root, TraceStore(root, max_bytes=max_bytes)
        )
    elif store.max_bytes != max_bytes:
        # Budget changes take effect on memoised instances too.
        store.max_bytes = max_bytes
    return store


def kernel_trace_key(
    name: str, n: int | None = None, seed: int | None = None
) -> TraceKey:
    """Store identity of a registry kernel's trace.

    ``n`` is resolved to the kernel's default so equivalent requests
    share one store entry — the same resolution
    :func:`kernel_trace_cached` applies, exposed so result caching can
    address ``(trace, scenario, backend)`` without re-acquiring.
    """
    from ..kernels import get_kernel

    kernel = get_kernel(name)
    eff_n = kernel.default_n if n is None else n
    return TraceKey.make(name, n=eff_n, seed=seed)


def kernel_trace_cached(
    name: str,
    n: int | None = None,
    seed: int | None = None,
    store: TraceStore | None = None,
) -> Trace:
    """Trace of a registered kernel, interpreted at most once per machine.

    The canonical acquisition path for everything keyed by a registry
    kernel name: resolves ``n`` to the kernel's default so equivalent
    requests share one store entry, and only builds (program, inputs)
    on a miss.
    """
    from ..kernels import get_kernel

    kernel = get_kernel(name)
    eff_n = kernel.default_n if n is None else n
    key = TraceKey.make(name, n=eff_n, seed=seed)
    target = store if store is not None else default_store()

    def _build() -> Trace:
        program, inputs = kernel.build(n=eff_n, seed=seed)
        return build_trace(program, inputs)

    return target.get(key, _build)
