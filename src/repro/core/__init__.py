"""The paper's primary contribution: automatic data/program partitioning.

Partition schemes, the owner-computes rule, the trace-driven
multiprocessor simulator, access statistics, and the four-way
access-distribution classifier.
"""

from .access import AccessKind
from .advisor import Advice, CandidateScore, advise, advise_trace
from .classify import (
    AccessClass,
    Classification,
    DynamicEvidence,
    ReadPattern,
    StaticEvidence,
    classify,
    classify_dynamic,
    classify_static,
)
from .owner import DataLayout, screen_iterations
from .reuse import ReuseProfile, hit_rate_curve, stack_distances
from .partition import (
    BlockCyclicPartition,
    BlockPartition,
    ModuloPartition,
    PartitionScheme,
    named_scheme,
)
from .simulator import MachineConfig, SimResult, simulate, simulate_program
from .superop_replay import replay_superops
from .vec_simulator import simulate_vec
from .stats import AccessStats, LoadBalance

__all__ = [
    "AccessClass",
    "AccessKind",
    "Advice",
    "CandidateScore",
    "advise",
    "advise_trace",
    "AccessStats",
    "BlockCyclicPartition",
    "BlockPartition",
    "Classification",
    "DataLayout",
    "DynamicEvidence",
    "LoadBalance",
    "MachineConfig",
    "ModuloPartition",
    "PartitionScheme",
    "ReadPattern",
    "ReuseProfile",
    "SimResult",
    "StaticEvidence",
    "classify",
    "classify_dynamic",
    "classify_static",
    "hit_rate_curve",
    "named_scheme",
    "replay_superops",
    "stack_distances",
    "screen_iterations",
    "simulate",
    "simulate_program",
    "simulate_vec",
]
