"""Stack-distance (reuse) analysis of page traffic.

§7.1.4 diagnoses random-distribution loops as "similar in many ways to
thrashing in virtual memory systems" and proposes larger caches; §9
asks how virtual-memory techniques apply.  The classic such technique
is **Mattson stack-distance analysis**: because LRU possesses the
inclusion property, one pass over each PE's non-local page reference
string yields the hit count for *every* cache capacity simultaneously.

:func:`stack_distances` computes, per PE, the histogram of LRU stack
distances of non-local page touches; :func:`hit_rate_curve` turns it
into remote-read percentages as a function of cache capacity — the
entire A2 cache-size ablation from a single simulation pass, with the
direct simulator used as ground truth in the tests.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..ir.trace import Trace
from ..memory.pages import PageTable
from .simulator import MachineConfig, _owners_by_array

__all__ = ["ReuseProfile", "hit_rate_curve", "stack_distances"]

#: Histogram bucket for cold (first-touch) references.
COLD = -1


@dataclass
class ReuseProfile:
    """Stack-distance census of one trace under one placement.

    ``histogram`` maps stack distance (0 = re-touch of the most recent
    page) to the number of non-local page touches at that distance;
    cold first touches are under :data:`COLD`.  ``total_reads`` is the
    machine-wide read count (local reads included) so percentages match
    the simulator's denominators.
    """

    histogram: dict[int, int]
    total_reads: int
    nonlocal_reads: int

    def remote_reads_at(self, capacity_pages: int) -> int:
        """Remote (miss) count for an LRU cache of the given capacity.

        A touch at stack distance d hits iff d < capacity.  Capacity 0
        means no cache: every non-local touch is remote.
        """
        if capacity_pages <= 0:
            return self.nonlocal_reads
        misses = self.histogram.get(COLD, 0)
        for distance, count in self.histogram.items():
            if distance != COLD and distance >= capacity_pages:
                misses += count
        return misses

    def remote_pct_at(self, capacity_pages: int) -> float:
        if self.total_reads == 0:
            return 0.0
        return 100.0 * self.remote_reads_at(capacity_pages) / self.total_reads


def stack_distances(trace: Trace, config: MachineConfig) -> ReuseProfile:
    """One pass over the per-PE non-local page strings.

    Only ``config.n_pes``, ``page_size`` and ``partition`` matter; the
    cache fields are ignored (the whole point is to cover all cache
    sizes at once).
    """
    ps = config.page_size
    tables = [PageTable(size, ps) for size in trace.array_sizes]
    if trace.n_instances == 0:
        return ReuseProfile({}, 0, 0)
    w_pages = trace.w_flat // ps
    exec_pe = _owners_by_array(
        trace.w_arr, w_pages, tables, config.partition, config.n_pes
    )
    reads_per_instance = np.diff(trace.r_ptr)
    r_exec = np.repeat(exec_pe, reads_per_instance)
    r_pages = trace.r_flat // ps
    r_owner = _owners_by_array(
        trace.r_arr, r_pages, tables, config.partition, config.n_pes
    )
    nonlocal_mask = r_owner != r_exec
    histogram: dict[int, int] = {}
    nonlocal_total = int(nonlocal_mask.sum())
    composite = trace.r_arr.astype(np.int64) * (1 << 40) + r_pages
    for pe in range(config.n_pes):
        mask = nonlocal_mask & (r_exec == pe)
        if not mask.any():
            continue
        # LRU stack as an ordered list, most recent at the end.  The
        # working sets here are page-granular and small, so the O(d)
        # list scan is the pragmatic choice.
        stack: list[int] = []
        position: dict[int, int] = {}
        for key in composite[mask].tolist():
            if key in position:
                # Distance = number of distinct pages touched since.
                idx = stack.index(key)
                distance = len(stack) - idx - 1
                del stack[idx]
                stack.append(key)
                histogram[distance] = histogram.get(distance, 0) + 1
            else:
                histogram[COLD] = histogram.get(COLD, 0) + 1
                stack.append(key)
            position[key] = True
    return ReuseProfile(
        histogram=histogram,
        total_reads=trace.n_reads,
        nonlocal_reads=nonlocal_total,
    )


def hit_rate_curve(
    trace: Trace,
    config: MachineConfig,
    capacities_pages: list[int],
) -> dict[int, float]:
    """Remote-read %% for each LRU capacity, from one analysis pass."""
    profile = stack_distances(trace, config)
    return {
        capacity: profile.remote_pct_at(capacity)
        for capacity in capacities_pages
    }
